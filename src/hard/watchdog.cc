#include "src/hard/watchdog.h"

#include <sstream>

#include "src/common/logging.h"

namespace camo::hard {

Watchdog::Watchdog(const WatchdogConfig &cfg) : cfg_(cfg)
{
    camo_assert(cfg_.window > 0, "watchdog window must be positive");
    pollPeriod_ = cfg_.pollPeriod > 0
                      ? cfg_.pollPeriod
                      : std::max<Cycle>(1, cfg_.window / 8);
}

std::optional<std::string>
Watchdog::poll(Cycle now, const std::vector<CoreProgress> &cores,
               Cycle next_event)
{
    if (cores_.size() < cores.size())
        cores_.resize(cores.size());

    // A hard deadlock is reported immediately: with no future event
    // and pending work, the fast-forward path would silently skip to
    // the end of the run instead of hanging.
    if (next_event == kNoCycle) {
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (cores[i].pending) {
                std::ostringstream os;
                os << "deadlock: core " << i
                   << " has pending work at cycle " << now
                   << " but no component reports a future event";
                return os.str();
            }
        }
    }

    if (now < nextPoll_)
        return std::nullopt;
    nextPoll_ = now + pollPeriod_;

    for (std::size_t i = 0; i < cores.size(); ++i) {
        PerCore &pc = cores_[i];
        if (!pc.seen || cores[i].progress != pc.progress) {
            pc.progress = cores[i].progress;
            pc.lastChange = now;
            pc.seen = true;
            continue;
        }
        if (cores[i].pending && now - pc.lastChange >= cfg_.window) {
            std::ostringstream os;
            os << "no forward progress: core " << i
               << " has pending work but made no progress in "
               << (now - pc.lastChange) << " cycles (window "
               << cfg_.window << ", cycle " << now << ")";
            return os.str();
        }
    }
    return std::nullopt;
}

} // namespace camo::hard
