#include "src/hard/checkers.h"

#include <sstream>

#include "src/hard/error.h"

namespace camo::hard {

DramProtocolChecker::DramProtocolChecker(
    const dram::DramOrganization &org, const dram::DramTiming &timing)
    : timing_(timing)
{
    ranks_.resize(org.ranksPerChannel);
    for (Rank &r : ranks_)
        r.banks.resize(org.banksPerRank);
}

void
DramProtocolChecker::fail(dram::Cmd cmd, const dram::DramAddress &da,
                          std::uint64_t now,
                          const std::string &why) const
{
    std::ostringstream os;
    os << "DRAM protocol violation: " << why << " (" << cmdName(cmd)
       << " to rank " << da.rank << " bank " << da.bank << " row "
       << da.row << " at DRAM cycle " << now << ")";
    throw InvariantViolation(os.str());
}

void
DramProtocolChecker::onCommand(dram::Cmd cmd,
                               const dram::DramAddress &da,
                               std::uint64_t now)
{
    ++checked_;
    if (da.rank >= ranks_.size())
        fail(cmd, da, now, "rank index out of range");
    Rank &rank = ranks_[da.rank];
    if (cmd != dram::Cmd::REF && da.bank >= rank.banks.size())
        fail(cmd, da, now, "bank index out of range");

    switch (cmd) {
      case dram::Cmd::ACT: {
        Bank &bank = rank.banks[da.bank];
        if (bank.open)
            fail(cmd, da, now, "ACT to a bank with an open row");
        if (now < bank.nextAct) {
            std::ostringstream os;
            os << "tRC/tRP not met (earliest legal ACT is "
               << bank.nextAct << ")";
            fail(cmd, da, now, os.str());
        }
        if (!rank.actTimes.empty() &&
            now < rank.actTimes.back() + timing_.tRRD) {
            std::ostringstream os;
            os << "tRRD not met (previous ACT at "
               << rank.actTimes.back() << ")";
            fail(cmd, da, now, os.str());
        }
        if (rank.actTimes.size() >= 4 &&
            now < rank.actTimes[rank.actTimes.size() - 4] +
                      timing_.tFAW) {
            std::ostringstream os;
            os << "tFAW not met (fifth ACT within " << timing_.tFAW
               << " cycles of the ACT at "
               << rank.actTimes[rank.actTimes.size() - 4] << ")";
            fail(cmd, da, now, os.str());
        }
        bank.open = true;
        bank.openRow = da.row;
        bank.actAt = now;
        bank.nextAct = now + timing_.tRC;
        rank.actTimes.push_back(now);
        if (rank.actTimes.size() > 4)
            rank.actTimes.erase(rank.actTimes.begin());
        break;
      }
      case dram::Cmd::PRE: {
        Bank &bank = rank.banks[da.bank];
        if (!bank.open)
            fail(cmd, da, now, "PRE to an already-closed bank");
        if (now < bank.actAt + timing_.tRAS) {
            std::ostringstream os;
            os << "tRAS not met (row opened at " << bank.actAt << ")";
            fail(cmd, da, now, os.str());
        }
        bank.open = false;
        bank.nextAct =
            std::max<std::uint64_t>(bank.nextAct, now + timing_.tRP);
        break;
      }
      case dram::Cmd::RD:
      case dram::Cmd::WR: {
        Bank &bank = rank.banks[da.bank];
        if (!bank.open)
            fail(cmd, da, now, "column command to a closed bank");
        if (bank.openRow != da.row) {
            std::ostringstream os;
            os << "column command to row " << da.row
               << " while row " << bank.openRow << " is open";
            fail(cmd, da, now, os.str());
        }
        if (now < bank.actAt + timing_.tRCD) {
            std::ostringstream os;
            os << "tRCD not met (row opened at " << bank.actAt << ")";
            fail(cmd, da, now, os.str());
        }
        break;
      }
      case dram::Cmd::REF: {
        for (std::size_t b = 0; b < rank.banks.size(); ++b) {
            if (rank.banks[b].open) {
                std::ostringstream os;
                os << "REF with bank " << b << " open";
                fail(cmd, da, now, os.str());
            }
        }
        for (Bank &bank : rank.banks) {
            bank.nextAct = std::max<std::uint64_t>(
                bank.nextAct, now + timing_.tRFC);
        }
        break;
      }
    }
}

void
RequestLifecycleTracker::onIssue(ReqId id, CoreId core, Cycle now)
{
    const auto [it, inserted] = inflight_.emplace(id, Entry{core, now});
    if (!inserted) {
        std::ostringstream os;
        os << "request id " << id << " (core " << core
           << ") issued at cycle " << now
           << " while already in flight since cycle "
           << it->second.issuedAt;
        throw InvariantViolation(os.str());
    }
    ++issued_;
}

void
RequestLifecycleTracker::onRetire(ReqId id, CoreId core, Cycle now)
{
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) {
        std::ostringstream os;
        os << "response id " << id << " (core " << core
           << ") delivered at cycle " << now
           << " for a request that was never issued or was already "
              "retired (duplicate response)";
        throw InvariantViolation(os.str());
    }
    inflight_.erase(it);
    ++retired_;
}

std::vector<LeakedRequest>
RequestLifecycleTracker::leaked(Cycle now, Cycle min_age) const
{
    std::vector<LeakedRequest> out;
    for (const auto &[id, entry] : inflight_) {
        if (now >= entry.issuedAt + min_age)
            out.push_back({id, entry.core, entry.issuedAt});
    }
    return out;
}

std::uint64_t
ShaperContract::totalCredits() const
{
    std::uint64_t total = 0;
    for (const std::uint32_t c : credits)
        total += c;
    return total;
}

void
ShaperConservationChecker::setContract(CoreId core,
                                       const ShaperContract &contract)
{
    PerCore &pc = cores_[core];
    pc.contract = contract;
    // The budget window restarts under the new contract; release/push
    // accounting carries across reconfigurations.
    pc.windowStart = kNoCycle;
    pc.windowCount = 0;
}

bool
ShaperConservationChecker::hasContract(CoreId core) const
{
    return cores_.find(core) != cores_.end();
}

void
ShaperConservationChecker::onShaperRelease(CoreId core, Cycle now)
{
    (void)now;
    const auto it = cores_.find(core);
    if (it != cores_.end())
        ++it->second.releases;
}

std::string
ShaperConservationChecker::onBusPush(CoreId core, Cycle now,
                                     bool is_fake, bool fakes_enabled)
{
    const auto it = cores_.find(core);
    if (it == cores_.end())
        return {};
    PerCore &pc = it->second;

    ++pc.pushes;
    if (pc.pushes > pc.releases) {
        std::ostringstream os;
        os << "core " << core << ": transaction reached the shared "
           << "channel without passing the shaper at cycle " << now
           << " (" << pc.pushes << " bus pushes vs " << pc.releases
           << " shaper releases)";
        // Resync so one leaked transaction reports exactly once.
        pc.releases = pc.pushes;
        return os.str();
    }

    if (is_fake && !fakes_enabled) {
        std::ostringstream os;
        os << "core " << core << ": fake transaction on the bus at "
           << "cycle " << now << " while fake generation is disabled";
        return os.str();
    }

    if (pc.lastPush != kNoCycle) {
        const Cycle gap = now - pc.lastPush;
        bool credited = false;
        for (std::size_t j = 0; j < pc.contract.edges.size(); ++j) {
            if (pc.contract.edges[j] <= gap &&
                pc.contract.credits[j] > 0) {
                credited = true;
                break;
            }
        }
        if (!credited) {
            std::ostringstream os;
            os << "core " << core << ": inter-arrival gap " << gap
               << " at cycle " << now
               << " lands in no credited bin of the programmed "
                  "schedule";
            pc.lastPush = now;
            return os.str();
        }
    }
    pc.lastPush = now;

    const Cycle period = pc.contract.replenishPeriod;
    if (period > 0) {
        if (pc.windowStart == kNoCycle) {
            pc.windowStart = now;
        } else if (now >= pc.windowStart + period) {
            pc.windowStart +=
                ((now - pc.windowStart) / period) * period;
            pc.windowCount = 0;
        }
        ++pc.windowCount;
        // A window can straddle one replenishment boundary, so up to
        // two periods' budgets are legitimately visible; the small
        // slack absorbs randomized-timing stragglers.
        const std::uint64_t budget =
            2 * pc.contract.totalCredits() + 8;
        if (pc.windowCount > budget) {
            std::ostringstream os;
            os << "core " << core << ": " << pc.windowCount
               << " releases within one replenishment period at cycle "
               << now << " exceed the credit budget ("
               << pc.contract.totalCredits() << " per period)";
            return os.str();
        }
    }
    return {};
}

std::string
ShaperConservationChecker::onCreditState(
    CoreId core, const std::vector<std::uint32_t> &live)
{
    const auto it = cores_.find(core);
    if (it == cores_.end())
        return {};
    const PerCore &pc = it->second;
    if (live.size() != pc.contract.credits.size()) {
        std::ostringstream os;
        os << "core " << core << ": live credit register count "
           << live.size() << " differs from the programmed bin count "
           << pc.contract.credits.size();
        return os.str();
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i] > pc.contract.credits[i]) {
            std::ostringstream os;
            os << "core " << core << ": live credit register " << i
               << " holds " << live[i]
               << ", exceeding the programmed replenishment amount "
               << pc.contract.credits[i];
            return os.str();
        }
    }
    return {};
}

std::uint64_t
ShaperConservationChecker::releasesSeen(CoreId core) const
{
    const auto it = cores_.find(core);
    return it == cores_.end() ? 0 : it->second.releases;
}

CheckerSet::CheckerSet(const CheckerConfig &cfg) : cfg_(cfg) {}

DramProtocolChecker *
CheckerSet::addProtocolChecker(const dram::DramOrganization &org,
                               const dram::DramTiming &timing)
{
    protocol_.push_back(
        std::make_unique<DramProtocolChecker>(org, timing));
    return protocol_.back().get();
}

} // namespace camo::hard
