/**
 * @file
 * Runtime invariant checkers for the System tick path.
 *
 * Three independent layers, all observe-only on the happy path (they
 * read component state, never mutate it, so enabling them keeps runs
 * bit-exact):
 *
 *  - DramProtocolChecker re-derives the DRAM timing rules (bank
 *    open/close state, tRCD, tRP, tRAS/tRC, tRRD, tFAW) from its own
 *    mirror of bank state and throws InvariantViolation on any
 *    command the protocol forbids — independently of the device's
 *    bookkeeping, so a device-model bug is caught too.
 *
 *  - RequestLifecycleTracker enforces issued-exactly-once-retired for
 *    real read requests, and reports leaked (never-retired) requests
 *    on drain.
 *
 *  - ShaperConservationChecker enforces the shaper contract at the
 *    shared-channel boundary: nothing reaches the bus without passing
 *    the shaper, live credits never exceed the programmed amounts,
 *    fakes appear only while fake generation is enabled, shaped
 *    inter-arrivals land in a credited bin, and the per-period
 *    release count respects the credit budget.
 *
 * Violations return a description string (conservation) or throw
 * (protocol); the System decides throw-vs-degrade policy per
 * CheckerConfig::recoverShaper.
 */

#ifndef CAMO_HARD_CHECKERS_H
#define CAMO_HARD_CHECKERS_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dram/device.h"
#include "src/dram/timing.h"

namespace camo::hard {

/** Which checkers run, and what happens when the shaper trips one. */
struct CheckerConfig
{
    bool protocol = true;     ///< DRAM timing-protocol checker
    bool lifecycle = true;    ///< request issued-once-retired tracker
    bool conservation = true; ///< shaper credit/schedule conservation
    /**
     * Shaper-violation policy: false = throw InvariantViolation
     * (fail-stop); true = degrade the offending core's shapers to the
     * fail-secure constant-rate schedule and continue (fail-stall).
     */
    bool recoverShaper = false;
    /** A tracked request older than this at drain time is a leak. */
    Cycle leakAge = 100000;
};

/** Independent re-derivation of the DRAM command protocol. */
class DramProtocolChecker : public dram::CommandObserver
{
  public:
    DramProtocolChecker(const dram::DramOrganization &org,
                        const dram::DramTiming &timing);

    /** Throws InvariantViolation on any protocol breach. */
    void onCommand(dram::Cmd cmd, const dram::DramAddress &da,
                   std::uint64_t now) override;

    std::uint64_t commandsChecked() const { return checked_; }

  private:
    struct Bank
    {
        bool open = false;
        std::uint32_t openRow = 0;
        std::uint64_t actAt = 0;   ///< cycle of the opening ACT
        std::uint64_t nextAct = 0; ///< earliest legal ACT (tRC/tRP)
    };

    struct Rank
    {
        std::vector<Bank> banks;
        std::vector<std::uint64_t> actTimes; ///< tFAW/tRRD window
    };

    [[noreturn]] void fail(dram::Cmd cmd, const dram::DramAddress &da,
                           std::uint64_t now,
                           const std::string &why) const;

    dram::DramTiming timing_;
    std::vector<Rank> ranks_;
    std::uint64_t checked_ = 0;
};

/** A request that was issued but never retired. */
struct LeakedRequest
{
    ReqId id = 0;
    CoreId core = kNoCore;
    Cycle issuedAt = 0;
};

/** Issued-exactly-once-retired accounting for real read requests. */
class RequestLifecycleTracker
{
  public:
    /** A real read request entered the shared request channel.
     *  Throws InvariantViolation if the id is already in flight. */
    void onIssue(ReqId id, CoreId core, Cycle now);

    /** A real read response reached delivery. Throws
     *  InvariantViolation if the id was never issued (or was already
     *  retired — a duplicate response). */
    void onRetire(ReqId id, CoreId core, Cycle now);

    std::size_t inFlight() const { return inflight_.size(); }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t retired() const { return retired_; }

    /** In-flight requests older than `min_age` at cycle `now`. */
    std::vector<LeakedRequest> leaked(Cycle now, Cycle min_age) const;

  private:
    struct Entry
    {
        CoreId core = kNoCore;
        Cycle issuedAt = 0;
    };

    std::unordered_map<ReqId, Entry> inflight_;
    std::uint64_t issued_ = 0;
    std::uint64_t retired_ = 0;
};

/** The schedule a shaper is supposed to enforce (a BinConfig's
 *  payload, kept as raw vectors so camo_hard does not depend on
 *  camo_shaper). */
struct ShaperContract
{
    std::vector<Cycle> edges;
    std::vector<std::uint32_t> credits;
    Cycle replenishPeriod = 0;

    std::uint64_t totalCredits() const;
};

/**
 * Conservation checks at one shared-channel boundary (request or
 * response side). Check methods return an empty string when the
 * invariant holds, else a one-line violation description — the
 * caller picks throw vs degrade.
 */
class ShaperConservationChecker
{
  public:
    /** (Re)program the contract the core's shaper should enforce. */
    void setContract(CoreId core, const ShaperContract &contract);

    bool hasContract(CoreId core) const;

    /** The shaper released a transaction this cycle. */
    void onShaperRelease(CoreId core, Cycle now);

    /**
     * A transaction for `core` reached the shared channel. Checks
     * shaper bypass (more bus pushes than shaper releases), fakes
     * while disabled, bin membership of the inter-arrival gap, and
     * the per-period budget.
     */
    std::string onBusPush(CoreId core, Cycle now, bool is_fake,
                          bool fakes_enabled);

    /** Live credit registers must never exceed the programmed
     *  amounts. */
    std::string onCreditState(CoreId core,
                              const std::vector<std::uint32_t> &live);

    std::uint64_t releasesSeen(CoreId core) const;

  private:
    struct PerCore
    {
        ShaperContract contract;
        Cycle lastPush = kNoCycle;
        std::uint64_t releases = 0;
        std::uint64_t pushes = 0;
        Cycle windowStart = 0;
        std::uint64_t windowCount = 0;
    };

    std::unordered_map<CoreId, PerCore> cores_;
};

/** The full checker bundle a System owns when hardening is on. */
class CheckerSet
{
  public:
    explicit CheckerSet(const CheckerConfig &cfg);

    const CheckerConfig &config() const { return cfg_; }

    /** Create (and own) one protocol checker per DRAM channel. */
    DramProtocolChecker *
    addProtocolChecker(const dram::DramOrganization &org,
                       const dram::DramTiming &timing);

    RequestLifecycleTracker &lifecycle() { return lifecycle_; }
    const RequestLifecycleTracker &lifecycle() const
    {
        return lifecycle_;
    }

    ShaperConservationChecker &reqConservation()
    {
        return reqConservation_;
    }
    ShaperConservationChecker &respConservation()
    {
        return respConservation_;
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    CheckerConfig cfg_;
    std::vector<std::unique_ptr<DramProtocolChecker>> protocol_;
    RequestLifecycleTracker lifecycle_;
    ShaperConservationChecker reqConservation_;
    ShaperConservationChecker respConservation_;
    StatGroup stats_;
};

} // namespace camo::hard

#endif // CAMO_HARD_CHECKERS_H
