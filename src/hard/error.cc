#include "src/hard/error.h"

namespace camo::hard {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config";
      case ErrorKind::Invariant: return "invariant";
      case ErrorKind::Watchdog: return "watchdog";
      case ErrorKind::Transient: return "transient";
      case ErrorKind::Leakage: return "leakage";
    }
    return "?";
}

} // namespace camo::hard
