/**
 * @file
 * Forward-progress watchdog for the System run loop.
 *
 * The System polls the watchdog with per-core progress counters
 * (instructions retired + responses served) and a pending-work flag,
 * plus its nextEventCycle() lower bound. The watchdog fires when
 *
 *  - a core with pending work has made no progress for a full
 *    window of cycles (a wedged shaper, a starved credit engine), or
 *  - nextEventCycle() reports kNoCycle while work is pending — a
 *    hard deadlock the fast-forward path would otherwise silently
 *    skip over, turning a hang into a wrong result.
 *
 * On firing, the System emits a structured diagnostic dump (stats
 * tree + trace tail + queue occupancy) and throws WatchdogTimeout.
 */

#ifndef CAMO_HARD_WATCHDOG_H
#define CAMO_HARD_WATCHDOG_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace camo::hard {

struct WatchdogConfig
{
    /** No-progress window in CPU cycles before firing. */
    Cycle window = 1000000;
    /** Poll throttle (0 = window / 8). */
    Cycle pollPeriod = 0;
    /** Trace events included in the diagnostic dump. */
    std::size_t traceTail = 64;
};

/** One core's progress sample. */
struct CoreProgress
{
    /** Monotone work counter (retired instructions + served reads). */
    std::uint64_t progress = 0;
    /** The core has outstanding work (queued or in-flight). */
    bool pending = false;
};

class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &cfg);

    /** Cheap pre-check: is a full poll due at `now`? */
    bool due(Cycle now) const { return now >= nextPoll_; }

    /** The cycle the next staleness poll falls due — the event-driven
     *  kernel schedules watchdog polls at this cadence instead of
     *  probing due() every tick. */
    Cycle nextPollAt() const { return nextPoll_; }

    /**
     * Evaluate forward progress. `next_event` is the System's
     * nextEventCycle() bound (kNoCycle = nothing can ever happen).
     * Returns the failure reason when the watchdog fires.
     */
    std::optional<std::string>
    poll(Cycle now, const std::vector<CoreProgress> &cores,
         Cycle next_event);

    const WatchdogConfig &config() const { return cfg_; }

  private:
    struct PerCore
    {
        std::uint64_t progress = 0;
        Cycle lastChange = 0;
        bool seen = false;
    };

    WatchdogConfig cfg_;
    Cycle pollPeriod_;
    Cycle nextPoll_ = 0;
    std::vector<PerCore> cores_;
};

} // namespace camo::hard

#endif // CAMO_HARD_WATCHDOG_H
