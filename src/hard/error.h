/**
 * @file
 * Structured error hierarchy for the fail-secure hardening layer.
 *
 * Library code validating *user-supplied* configuration throws
 * ConfigError instead of exiting the process, so one bad config in a
 * parallel sweep fails one job (propagating through parallelMap's
 * first-exception path) instead of killing every worker. Runtime
 * checkers throw InvariantViolation, the watchdog WatchdogTimeout,
 * and injected worker faults TransientFault (the only kind the
 * parallel engine retries).
 *
 * camo_panic / camo_assert remain aborts: they flag simulator bugs,
 * not recoverable conditions.
 */

#ifndef CAMO_HARD_ERROR_H
#define CAMO_HARD_ERROR_H

#include <stdexcept>
#include <string>

namespace camo::hard {

/** Coarse classification, also the basis of camosim's exit codes. */
enum class ErrorKind
{
    Config,    ///< invalid user-supplied configuration
    Invariant, ///< a runtime checker caught an inconsistency
    Watchdog,  ///< no forward progress within the watchdog window
    Transient, ///< a retryable per-job fault (injected or real)
    Leakage,   ///< the online leakage monitor crossed its threshold
};

const char *errorKindName(ErrorKind kind);

/** Base of every recoverable simulator error. */
class CamoError : public std::runtime_error
{
  public:
    CamoError(ErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {
    }

    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

/** A user-supplied configuration value is invalid. The message names
 *  the offending value. */
class ConfigError : public CamoError
{
  public:
    explicit ConfigError(const std::string &msg)
        : CamoError(ErrorKind::Config, msg)
    {
    }
};

/**
 * A runtime invariant checker fired. `diagnostic()` optionally
 * carries the structured dump (stats tree + trace tail + queue
 * occupancy) captured at the point of failure; `dumpPath()` names
 * the uniquely-named dump file when the System was given a
 * diagnostic directory (empty otherwise).
 */
class InvariantViolation : public CamoError
{
  public:
    explicit InvariantViolation(const std::string &msg,
                                std::string diagnostic = {},
                                std::string dump_path = {})
        : CamoError(ErrorKind::Invariant, msg),
          diagnostic_(std::move(diagnostic)),
          dumpPath_(std::move(dump_path))
    {
    }

    const std::string &diagnostic() const { return diagnostic_; }
    const std::string &dumpPath() const { return dumpPath_; }

  private:
    std::string diagnostic_;
    std::string dumpPath_;
};

/** The watchdog detected a no-forward-progress window. `dumpPath()`
 *  names the per-instance dump file when one was written. */
class WatchdogTimeout : public CamoError
{
  public:
    explicit WatchdogTimeout(const std::string &msg,
                             std::string diagnostic = {},
                             std::string dump_path = {})
        : CamoError(ErrorKind::Watchdog, msg),
          diagnostic_(std::move(diagnostic)),
          dumpPath_(std::move(dump_path))
    {
    }

    const std::string &diagnostic() const { return diagnostic_; }
    const std::string &dumpPath() const { return dumpPath_; }

  private:
    std::string diagnostic_;
    std::string dumpPath_;
};

/**
 * The online leakage monitor (src/obs/leakmon.h) measured windowed
 * mutual information above its configured threshold. Fail-secure:
 * a run that starts leaking stops with a distinct exit code instead
 * of quietly producing results. `diagnostic()` carries the structured
 * dump captured at the alerting cycle.
 */
class LeakageAlert : public CamoError
{
  public:
    explicit LeakageAlert(const std::string &msg,
                          std::string diagnostic = {},
                          std::string dump_path = {})
        : CamoError(ErrorKind::Leakage, msg),
          diagnostic_(std::move(diagnostic)),
          dumpPath_(std::move(dump_path))
    {
    }

    const std::string &diagnostic() const { return diagnostic_; }
    const std::string &dumpPath() const { return dumpPath_; }

  private:
    std::string diagnostic_;
    std::string dumpPath_;
};

/** A per-job fault worth retrying with a re-derived seed. */
class TransientFault : public CamoError
{
  public:
    explicit TransientFault(const std::string &msg)
        : CamoError(ErrorKind::Transient, msg)
    {
    }
};

} // namespace camo::hard

#endif // CAMO_HARD_ERROR_H
