#include "src/hard/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "src/hard/error.h"

namespace camo::hard {

namespace {

const char *const kKindNames[kNumFaultKinds] = {
    "drop-resp",       "delay-resp",     "dup-resp",
    "corrupt-credits", "starve-credits", "malformed-config",
    "wedge-req",       "wedge-resp",     "leak-req",
    "force-fake",      "worker-kill",    "worker-stall",
};

std::uint64_t
defaultParam(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DelayResponse: return 5000;
      case FaultKind::WorkerKill: return 1;  // failing attempts
      case FaultKind::WorkerStall: return 20; // milliseconds
      default: return 0;
    }
}

/** A spec token plus its byte offset in the full --inject string, so
 *  parse errors can point at the exact spot that failed. */
struct SpecToken
{
    std::string text;
    std::size_t offset = 0;
};

/** "token 'X' at byte N" — the common suffix of every parse error. */
std::string
where(const SpecToken &tok)
{
    std::ostringstream os;
    os << "token '" << tok.text << "' at byte " << tok.offset;
    return os.str();
}

FaultKind
parseKind(const SpecToken &token)
{
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        if (token.text == kKindNames[i])
            return static_cast<FaultKind>(i);
    }
    std::ostringstream os;
    os << "unknown fault kind " << where(token) << " (expected one of";
    for (const char *name : kKindNames)
        os << " " << name;
    os << ")";
    throw ConfigError(os.str());
}

std::uint64_t
parseU64(const std::string &value, const std::string &field,
         const SpecToken &tok)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        throw ConfigError("fault field " + field + "=" + value +
                          " is not an unsigned integer (" + where(tok) +
                          ")");
    }
    return v;
}

double
parseRate(const std::string &value, const SpecToken &tok)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
        throw ConfigError("fault rate=" + value +
                          " is not a probability in [0, 1] (" +
                          where(tok) + ")");
    }
    return v;
}

/** Split on `sep`, keeping empty tokens (they are spec errors) and
 *  recording each token's byte offset relative to the full spec
 *  (`base` = offset of `s` within it). */
std::vector<SpecToken>
split(const std::string &s, char sep, std::size_t base)
{
    std::vector<SpecToken> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back({s.substr(start), base + start});
            break;
        }
        out.push_back({s.substr(start, pos - start), base + start});
        start = pos + 1;
    }
    return out;
}

bool
isWorkerKind(FaultKind kind)
{
    return kind == FaultKind::WorkerKill ||
           kind == FaultKind::WorkerStall;
}

bool
isStochasticKind(FaultKind kind)
{
    return kind == FaultKind::DropResponse ||
           kind == FaultKind::DelayResponse ||
           kind == FaultKind::DuplicateResponse;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    return kKindNames[static_cast<std::size_t>(kind)];
}

std::string
FaultSpec::toString() const
{
    std::ostringstream os;
    os << faultKindName(kind);
    if (rate > 0.0)
        os << ":rate=" << rate;
    if (at != kNoCycle)
        os << ":at=" << at;
    if (core != kNoCore)
        os << ":core=" << core;
    if (param != 0)
        os << ":param=" << param;
    if (index != kAnyIndex)
        os << ":index=" << index;
    return os.str();
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i)
            os << ",";
        os << faults[i].toString();
    }
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    if (spec.empty())
        return plan;
    for (const SpecToken &entry : split(spec, ',', 0)) {
        const std::vector<SpecToken> fields =
            split(entry.text, ':', entry.offset);
        if (fields.empty() || fields[0].text.empty()) {
            std::ostringstream os;
            os << "empty fault entry at byte " << entry.offset
               << " in spec '" << spec << "'";
            throw ConfigError(os.str());
        }
        FaultSpec fs;
        fs.kind = parseKind(fields[0]);
        fs.param = defaultParam(fs.kind);
        for (std::size_t i = 1; i < fields.size(); ++i) {
            const SpecToken &field = fields[i];
            const auto eq = field.text.find('=');
            if (eq == std::string::npos) {
                throw ConfigError("fault field " + where(field) +
                                  " is not key=value");
            }
            const std::string key = field.text.substr(0, eq);
            const std::string value = field.text.substr(eq + 1);
            if (key == "rate") {
                fs.rate = parseRate(value, field);
            } else if (key == "at") {
                fs.at = parseU64(value, key, field);
            } else if (key == "core") {
                fs.core =
                    static_cast<CoreId>(parseU64(value, key, field));
            } else if (key == "param") {
                fs.param = parseU64(value, key, field);
            } else if (key == "index") {
                fs.index = parseU64(value, key, field);
            } else {
                throw ConfigError("unknown fault field '" + key +
                                  "' (" + where(field) +
                                  "; expected rate, at, core, param, "
                                  "or index)");
            }
        }
        if (isWorkerKind(fs.kind)) {
            if (fs.at != kNoCycle || fs.rate > 0.0) {
                throw ConfigError(
                    std::string(faultKindName(fs.kind)) +
                    " selects jobs by index, not by cycle or rate (" +
                    where(entry) + ")");
            }
        } else if (isStochasticKind(fs.kind)) {
            if (fs.rate == 0.0 && fs.at == kNoCycle) {
                throw ConfigError(std::string(faultKindName(fs.kind)) +
                                  " needs rate= or at= (" +
                                  where(entry) + ")");
            }
        } else if (fs.at == kNoCycle) {
            throw ConfigError(std::string(faultKindName(fs.kind)) +
                              " needs at=CYCLE (" + where(entry) + ")");
        }
        plan.faults.push_back(fs);
    }
    return plan;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed ? plan.seed : 1),
      latched_(plan.faults.size(), false)
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

void
FaultInjector::fired(FaultKind kind)
{
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
}

FaultInjector::RespAction
FaultInjector::onResponse(Cycle now, const MemRequest &resp,
                          Cycle *delay)
{
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
        FaultSpec &fs = plan_.faults[i];
        if (!isStochasticKind(fs.kind))
            continue;
        if (fs.core != kNoCore && fs.core != resp.core)
            continue;
        bool hit = false;
        if (fs.at != kNoCycle) {
            if (!latched_[i] && now >= fs.at) {
                latched_[i] = true;
                hit = true;
            }
        } else if (fs.rate > 0.0 && rng_.chance(fs.rate)) {
            hit = true;
        }
        if (!hit)
            continue;
        fired(fs.kind);
        switch (fs.kind) {
          case FaultKind::DropResponse:
            return RespAction::Drop;
          case FaultKind::DelayResponse:
            *delay = fs.param ? fs.param : defaultParam(fs.kind);
            return RespAction::Delay;
          case FaultKind::DuplicateResponse:
            return RespAction::Duplicate;
          default:
            break;
        }
    }
    return RespAction::Pass;
}

bool
FaultInjector::wedged(FaultKind kind, CoreId core, Cycle now) const
{
    for (const FaultSpec &fs : plan_.faults) {
        if (fs.kind != kind || fs.at == kNoCycle)
            continue;
        if (fs.core != kNoCore && fs.core != core)
            continue;
        if (now >= fs.at)
            return true;
    }
    return false;
}

bool
FaultInjector::reqShaperWedged(CoreId core, Cycle now) const
{
    return wedged(FaultKind::WedgeReqShaper, core, now);
}

bool
FaultInjector::respShaperWedged(CoreId core, Cycle now) const
{
    return wedged(FaultKind::WedgeRespShaper, core, now);
}

bool
FaultInjector::oneShotDue(FaultKind kind, CoreId core, Cycle now)
{
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
        const FaultSpec &fs = plan_.faults[i];
        if (fs.kind != kind || fs.at == kNoCycle || latched_[i])
            continue;
        if (fs.core != kNoCore && fs.core != core)
            continue;
        if (now >= fs.at) {
            latched_[i] = true;
            fired(kind);
            return true;
        }
    }
    return false;
}

bool
FaultInjector::corruptCreditsDue(CoreId core, Cycle now)
{
    return oneShotDue(FaultKind::CorruptCredits, core, now);
}

bool
FaultInjector::starveCreditsDue(CoreId core, Cycle now)
{
    return oneShotDue(FaultKind::StarveCredits, core, now);
}

bool
FaultInjector::malformedConfigDue(CoreId core, Cycle now)
{
    return oneShotDue(FaultKind::MalformedConfig, core, now);
}

bool
FaultInjector::leakRequestDue(CoreId core, Cycle now)
{
    return oneShotDue(FaultKind::LeakRequest, core, now);
}

bool
FaultInjector::forceFakeDue(CoreId core, Cycle now)
{
    return oneShotDue(FaultKind::ForceFake, core, now);
}

void
FaultInjector::maybeWorkerFault(std::size_t index, unsigned attempt)
{
    for (const FaultSpec &fs : plan_.faults) {
        if (!isWorkerKind(fs.kind))
            continue;
        if (fs.index != kAnyIndex && fs.index != index)
            continue;
        if (fs.kind == FaultKind::WorkerStall) {
            if (attempt == 0) {
                fired(fs.kind);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(fs.param));
            }
            continue;
        }
        // WorkerKill: fail the first `param` attempts of the job.
        if (attempt < fs.param) {
            fired(fs.kind);
            std::ostringstream os;
            os << "injected worker fault: job " << index << " attempt "
               << attempt;
            throw TransientFault(os.str());
        }
    }
}

Cycle
FaultInjector::nextScheduledCycle(Cycle from) const
{
    Cycle ev = kNoCycle;
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
        const FaultSpec &fs = plan_.faults[i];
        if (fs.at == kNoCycle || isWorkerKind(fs.kind))
            continue;
        const bool wedge = fs.kind == FaultKind::WedgeReqShaper ||
                           fs.kind == FaultKind::WedgeRespShaper;
        if (wedge) {
            // Only the arming edge needs a tick; once armed the
            // on-path wedge checks (and the queues backing up behind
            // them) keep the system ticking.
            if (fs.at >= from)
                ev = std::min(ev, fs.at);
        } else if (!latched_[i]) {
            ev = std::min(ev, std::max(from, fs.at));
        }
    }
    return ev;
}

std::uint64_t
FaultInjector::count(FaultKind kind) const
{
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumFaultKinds; ++i)
        total += count(static_cast<FaultKind>(i));
    return total;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        const std::uint64_t n = count(static_cast<FaultKind>(i));
        if (n == 0)
            continue;
        if (os.tellp() > 0)
            os << ", ";
        os << kKindNames[i] << "=" << n;
    }
    return os.str();
}

} // namespace camo::hard
