/**
 * @file
 * Bounded-exponential-backoff retry policy with seed-derived jitter.
 *
 * One policy object serves both recovery layers: the in-process
 * parallel engine (parallelMapRetry waits between TransientFault
 * attempts instead of busy-respawning the job) and the camosimd
 * experiment service (supervisors wait before re-forking a worker
 * that died transiently). Determinism contract: the delay for
 * (job, attempt) is a pure function of the policy fields and those
 * two integers — never of wall-clock time, thread scheduling, or a
 * shared RNG — so retried batches stay byte-identical across
 * jobs=1 / jobs=N and across runs.
 */

#ifndef CAMO_HARD_RETRY_H
#define CAMO_HARD_RETRY_H

#include <cstdint>

namespace camo::hard {

/**
 * Retry schedule for transient per-job faults.
 *
 * Attempt k (k >= 1 is the first retry) waits
 *   delay = min(maxDelayUs, baseDelayUs << (k - 1))
 * scaled by a jittered factor in [1 - jitter, 1 + jitter], where the
 * jitter draw is a splitmix-style hash of (seed, job, attempt). With
 * many jobs faulting at once (a transient-fault storm) the jitter
 * de-synchronizes their retries instead of stampeding them onto the
 * same instant.
 */
struct RetryPolicy
{
    /** Attempts per job before a TransientFault becomes permanent
     *  (attempt indices 0 .. attempts-1; 0 is treated as 1). */
    unsigned attempts = 3;
    /** Wait before the first retry, microseconds (0 = no waiting:
     *  the pre-backoff busy-respawn behaviour). */
    std::uint64_t baseDelayUs = 1000;
    /** Backoff ceiling, microseconds. */
    std::uint64_t maxDelayUs = 200000;
    /** Jitter fraction in [0, 1]: each delay is scaled by a
     *  deterministic factor in [1 - jitter, 1 + jitter]. */
    double jitter = 0.5;
    /** Jitter stream seed (independent of the simulation seeds). */
    std::uint64_t seed = 1;

    /**
     * Microseconds to wait before attempt `attempt` of job `job`
     * (attempt 0 is the initial run: always 0). Pure function of its
     * arguments and the policy fields.
     */
    std::uint64_t delayUsFor(std::uint64_t job, unsigned attempt) const;
};

/** Sleep for `us` microseconds (no-op when us == 0). Split out so
 *  tests can compute schedules without actually waiting. */
void backoffSleep(std::uint64_t us);

} // namespace camo::hard

#endif // CAMO_HARD_RETRY_H
