#include "src/hard/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace camo::hard {

namespace {

/** splitmix64 finalizer: the same mixing discipline as
 *  sim::deriveSeed, reused here so jitter draws are independent,
 *  well-distributed pure functions of (seed, job, attempt). */
std::uint64_t
mix(std::uint64_t z)
{
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z;
}

} // namespace

std::uint64_t
RetryPolicy::delayUsFor(std::uint64_t job, unsigned attempt) const
{
    if (attempt == 0 || baseDelayUs == 0)
        return 0;
    // min(max, base << (attempt-1)) without shift overflow: once the
    // un-jittered delay reaches the ceiling, further doubling is moot.
    std::uint64_t delay = baseDelayUs;
    for (unsigned k = 1; k < attempt && delay < maxDelayUs; ++k)
        delay *= 2;
    delay = std::min(delay, maxDelayUs);

    const double j = std::clamp(jitter, 0.0, 1.0);
    if (j == 0.0)
        return delay;
    const std::uint64_t h =
        mix(seed + 0x9E3779B97F4A7C15ull * (job + 1) +
            0xBF58476D1CE4E5B9ull * (attempt + 1));
    // 53 mantissa bits -> uniform u in [0, 1); factor in [1-j, 1+j].
    const double u =
        static_cast<double>(h >> 11) / 9007199254740992.0;
    const double factor = 1.0 - j + 2.0 * j * u;
    const auto scaled =
        static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
    return std::max<std::uint64_t>(scaled, 1);
}

void
backoffSleep(std::uint64_t us)
{
    if (us == 0)
        return;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
}

} // namespace camo::hard
