/**
 * @file
 * Seed-deterministic fault-injection engine.
 *
 * A FaultPlan is parsed from a compact spec string (camosim --inject)
 * and drives a FaultInjector the System consults at its hook points:
 * response routing (drop / delay / duplicate), shaper credit state
 * (corrupt / starve), the hypervisor ConfigPort (malformed register
 * image), the request path (shaper wedge, shaper bypass, forced
 * fake), and the parallel engine (worker kill / stall).
 *
 * Determinism: stochastic draws happen only on the simulation thread
 * (one seeded Rng, consulted in tick order); worker-fault decisions
 * are pure functions of (job index, attempt), never of thread
 * scheduling. Counters are atomics so the summary is exact even when
 * worker faults fire concurrently.
 */

#ifndef CAMO_HARD_FAULT_INJECTION_H
#define CAMO_HARD_FAULT_INJECTION_H

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/request.h"

namespace camo::hard {

/** Every fault the engine can inject. */
enum class FaultKind
{
    DropResponse,      ///< a DRAM read response vanishes
    DelayResponse,     ///< a response is held for `param` cycles
    DuplicateResponse, ///< a response is delivered twice
    CorruptCredits,    ///< shaper live credits overwritten with garbage
    StarveCredits,     ///< credits zeroed and replenishment stuck
    MalformedConfig,   ///< corrupted register image via ConfigPort
    WedgeReqShaper,    ///< request shaper stops being ticked
    WedgeRespShaper,   ///< response shaper stops being ticked
    LeakRequest,       ///< a real request bypasses the shaper
    ForceFake,         ///< a fake issued outside the shaper's schedule
    WorkerKill,        ///< a parallel job dies with a transient fault
    WorkerStall,       ///< a parallel job stalls mid-run
};

inline constexpr std::size_t kNumFaultKinds = 12;

/** Stable spec-string token for each kind (e.g. "drop-resp"). */
const char *faultKindName(FaultKind kind);

/** Matches any job index / core in a FaultSpec. */
inline constexpr std::uint64_t kAnyIndex =
    std::numeric_limits<std::uint64_t>::max();

/** One configured fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DropResponse;
    /** Stochastic faults: per-opportunity probability (0 = off). */
    double rate = 0.0;
    /**
     * Scheduled faults: first cycle at which the fault is armed
     * (kNoCycle = unscheduled). One-shot kinds fire once at the first
     * opportunity >= `at`; wedge kinds are persistent from `at` on.
     */
    Cycle at = kNoCycle;
    /** Restrict to one core (kNoCore = any). */
    CoreId core = kNoCore;
    /**
     * Kind-specific magnitude: DelayResponse hold cycles (default
     * 5000), WorkerKill failing attempts (default 1), WorkerStall
     * sleep in milliseconds (default 20).
     */
    std::uint64_t param = 0;
    /** Worker faults: job index to hit (kAnyIndex = every job). */
    std::uint64_t index = kAnyIndex;

    std::string toString() const;
};

/** A full injection campaign: seed + fault list. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
    std::string toString() const;

    /**
     * Parse a spec string: comma-separated faults, each a kind token
     * followed by colon-separated key=value fields, e.g.
     *   "drop-resp:rate=0.001,corrupt-credits:at=80000:core=0"
     * Keys: rate, at, core, param, index. Throws ConfigError on any
     * unknown kind/key or malformed value.
     */
    static FaultPlan parse(const std::string &spec, std::uint64_t seed);
};

/** Runtime fault decisions, consulted at the System's hook points. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** What to do with a response leaving the memory controller. */
    enum class RespAction
    {
        Pass,
        Drop,
        Delay,     ///< hold for *delay cycles
        Duplicate, ///< deliver twice
    };

    /** Simulation-thread hook: response routing. */
    RespAction onResponse(Cycle now, const MemRequest &resp,
                          Cycle *delay);

    /** Persistent from their scheduled cycle on. */
    bool reqShaperWedged(CoreId core, Cycle now) const;
    bool respShaperWedged(CoreId core, Cycle now) const;

    /** One-shot triggers (latched after the first true return). */
    bool corruptCreditsDue(CoreId core, Cycle now);
    bool starveCreditsDue(CoreId core, Cycle now);
    bool malformedConfigDue(CoreId core, Cycle now);
    bool leakRequestDue(CoreId core, Cycle now);
    bool forceFakeDue(CoreId core, Cycle now);

    /**
     * Worker-thread hook, called at the top of every parallel job
     * attempt. Deterministic in (index, attempt). WorkerKill throws
     * TransientFault while attempt < param; WorkerStall sleeps
     * `param` milliseconds and returns.
     */
    void maybeWorkerFault(std::size_t index, unsigned attempt);

    /**
     * Earliest cycle >= `from` at which a scheduled (at=) fault still
     * needs a tick to arm or fire — one-shots not yet latched, wedges
     * not yet armed. Lets the System's idle fast-forward stop exactly
     * at each fault's programmed cycle. kNoCycle when none remain.
     */
    Cycle nextScheduledCycle(Cycle from) const;

    /** Times each kind actually fired. */
    std::uint64_t count(FaultKind kind) const;
    /** Total faults fired across all kinds. */
    std::uint64_t totalFired() const;
    /** One line per kind that fired (empty string if none did). */
    std::string summary() const;

    const FaultPlan &plan() const { return plan_; }

  private:
    bool wedged(FaultKind kind, CoreId core, Cycle now) const;
    bool oneShotDue(FaultKind kind, CoreId core, Cycle now);
    void fired(FaultKind kind);

    FaultPlan plan_;
    Rng rng_;
    std::vector<bool> latched_; ///< per-spec one-shot latch
    std::array<std::atomic<std::uint64_t>, kNumFaultKinds> counts_;
};

} // namespace camo::hard

#endif // CAMO_HARD_FAULT_INJECTION_H
