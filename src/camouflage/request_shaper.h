/**
 * @file
 * Request Camouflage (ReqC, paper §III-B2): shapes a core's LLC-miss
 * request stream into a pre-determined inter-arrival distribution and
 * generates fake requests to random addresses from unused credits.
 *
 * Placed after the core's LLC, before the shared channel (Figure 5),
 * so every downstream observer — NoC, MC queue, DRAM, I/O pins — sees
 * only the camouflaged distribution.
 */

#ifndef CAMO_CAMOUFLAGE_REQUEST_SHAPER_H
#define CAMO_CAMOUFLAGE_REQUEST_SHAPER_H

#include <cstdint>
#include <deque>
#include <optional>

#include "src/camouflage/bin_config.h"
#include "src/camouflage/bin_shaper.h"
#include "src/camouflage/monitor.h"
#include "src/common/arena.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/sim/component.h"

namespace camo::shaper {

/** ReqC configuration. */
struct RequestShaperConfig
{
    BinConfig bins;
    bool generateFakes = true;
    /** Fake requests target random non-cached addresses here. */
    Addr fakeAddrBase = 1ULL << 40;
    std::uint64_t fakeAddrRange = 1ULL << 30;
    std::uint32_t queueCap = 64; ///< pending real requests

    /**
     * Non-zero selects the Ascend-style constant-rate baseline
     * instead of bin shaping: one issue slot exactly every
     * `strictSlotInterval` cycles, use-it-or-lose-it (a dummy/fake
     * access fills an empty slot when generateFakes is set). This is
     * the paper's CS comparator [Fletcher'14].
     */
    Cycle strictSlotInterval = 0;

    /**
     * The paper's SIV-B4 hardening: instead of releasing a request
     * the moment a credit becomes eligible, delay it by a uniformly
     * random slack within the credit's inter-arrival interval. This
     * decorrelates fine-grain (intra-replenishment-window) timing at
     * a small latency cost.
     */
    bool randomizeTiming = false;

    /**
     * Extension (see EXPERIMENTS.md): walk fake addresses
     * sequentially instead of uniformly at random. Random fakes are
     * all row-buffer misses, so their DRAM interference signature
     * differs from row-hit-heavy real traffic — a secondary channel
     * the sequential walk closes.
     */
    bool fakeSequential = false;

    /**
     * Extension: fraction of fake transactions issued as (posted)
     * writes. Real LLC-miss traffic is a read/writeback mix; all-read
     * fakes skip the controller's write-drain machinery, which is an
     * observable difference. Matching the mix closes it.
     */
    double fakeWriteFrac = 0.0;
};

/** The per-core request shaping unit.
 *
 * As a sim::Component the shaper is driven through the rich
 * tick(now, downstream_ready) overload by its owning station (the
 * release decision is coupled to channel backpressure); the inherited
 * one-argument tick() is a no-op. */
class RequestShaper final : public sim::Component
{
  public:
    /** `arena` (optional) backs the pending-request queue; see
     *  src/common/arena.h. */
    RequestShaper(CoreId core, const RequestShaperConfig &cfg,
                  std::uint64_t seed, Arena *arena = nullptr);

    using sim::Component::tick;

    bool canAccept() const { return queue_.size() < cfg_.queueCap; }

    /** A real LLC-miss request enters the shaper at cycle `now`. */
    void push(MemRequest req, Cycle now);

    /**
     * Advance one cycle and possibly release one transaction.
     * @param downstream_ready the shared channel can take a flit.
     * @return the released (real or fake) transaction, if any.
     */
    std::optional<MemRequest> tick(Cycle now, bool downstream_ready);

    void reconfigure(const BinConfig &bins) { bins_.reconfigure(bins); }

    /**
     * Earliest cycle >= `from` at which tick() could do observable
     * work (release, enter a stall, replenish, generate a fake),
     * assuming no push() and a ready downstream until then. Cycles
     * before it are idle and may be batched via skipIdleCycles().
     */
    Cycle nextEventCycle(Cycle from) const;

    /**
     * Account `n` skipped idle cycles exactly as `n` tick() calls in
     * the current (provably idle) state would.
     */
    void skipIdleCycles(Cycle n) override;

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle from) const override
    {
        return nextEventCycle(from);
    }
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    void registerStats(obs::StatRegistry &reg) const override;

    /** Runtime fake-generation toggle (the online GA disables fakes
     *  during highest-priority-mode measurement epochs). */
    void setGenerateFakes(bool on) { cfg_.generateFakes = on; }
    bool generateFakes() const { return cfg_.generateFakes; }

    std::size_t queueDepth() const { return queue_.size(); }
    const BinShaper &bins() const { return bins_; }
    /** Mutable credit engine (fault-injection hooks only). */
    BinShaper &binsMut() { return bins_; }
    /** Intrinsic (pre-shaper) stream monitor. */
    DistributionMonitor &preMonitor() { return pre_; }
    /** Shaped (post-shaper) stream monitor. */
    DistributionMonitor &postMonitor() { return post_; }
    const DistributionMonitor &preMonitor() const { return pre_; }
    const DistributionMonitor &postMonitor() const { return post_; }
    const StatGroup &stats() const { return stats_; }

    /** Observability hook; propagates to the bin engine. */
    void
    setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        bins_.setTracer(tracer, core_);
    }

  private:
    MemRequest makeFake(Cycle now);
    std::optional<MemRequest> tickStrictSlot(Cycle now,
                                             bool downstream_ready);

    CoreId core_;
    RequestShaperConfig cfg_;
    BinShaper bins_;
    ArenaDeque<MemRequest> queue_;
    Rng rng_;
    ReqId nextFakeId_ = 1;
    Cycle randomHoldUntil_ = kNoCycle; ///< SIV-B4 random slack state
    Addr fakeCursor_ = 0;              ///< sequential-fake extension
    DistributionMonitor pre_;
    DistributionMonitor post_;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
    bool inStall_ = false;
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_REQUEST_SHAPER_H
