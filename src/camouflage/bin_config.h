/**
 * @file
 * Bin configuration for the Camouflage traffic shaper (paper §III-A1).
 *
 * Bin i represents inter-arrival times in [edges[i], edges[i+1])
 * CPU cycles (the last bin is unbounded above). `credits[i]` memory
 * transactions per replenishment period may issue at bin i's
 * inter-arrival time. The hypervisor writes this structure into the
 * shaper's special-purpose control registers.
 */

#ifndef CAMO_CAMOUFLAGE_BIN_CONFIG_H
#define CAMO_CAMOUFLAGE_BIN_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace camo::shaper {

/**
 * How strict BinConfig::validate() is. Basic checks structural
 * invariants only; Drainable additionally requires that the full
 * credit set can be emitted within one replenishment period
 * (minDrainCycles() <= replenishPeriod). Drainable is for
 * hypervisor/CLI boundaries; the GA legitimately explores
 * non-drainable credit sets (its repair step bounds only the total),
 * so library paths default to Basic.
 */
enum class ValidatePolicy
{
    Basic,
    Drainable,
};

/** Number of hardware bins in the paper's design. */
inline constexpr std::size_t kDefaultBins = 10;

/** Register width per bin (paper §III-A3: 10-bit credit registers). */
inline constexpr std::uint32_t kMaxCreditsPerBin = (1u << 10) - 1;

/** The shape the hypervisor programs into a Camouflage unit. */
struct BinConfig
{
    /** Lower inter-arrival edge per bin, strictly increasing,
     *  edges[0] == 0. */
    std::vector<Cycle> edges;
    /** Credits granted to each bin at every replenishment. */
    std::vector<std::uint32_t> credits;
    /** Credit replenishment period, CPU cycles (paper §III-A2). */
    Cycle replenishPeriod = 10000;

    std::size_t numBins() const { return edges.size(); }

    /** Bin whose interval contains inter-arrival `gap`. */
    std::size_t binOf(Cycle gap) const;

    /** Total credits granted per period. */
    std::uint64_t totalCredits() const;

    /**
     * Upper bound of shaped bandwidth in transactions per cycle
     * (totalCredits / replenishPeriod).
     */
    double maxRate() const;

    /**
     * Minimum cycles the credit set can take to emit all credits
     * (sum over bins of credits[i] * edges[i], clamped to >= 1 per
     * transaction). If this exceeds the period the configuration can
     * never consume all credits; used by the GA feasibility repair.
     */
    Cycle minDrainCycles() const;

    /** Validate invariants; throws hard::ConfigError (naming the
     *  offending value) on user error. */
    void validate(ValidatePolicy policy = ValidatePolicy::Basic) const;

    std::string toString() const;

    /**
     * Ten geometric bins (base..base*ratio^8) with the given credits.
     */
    static BinConfig geometric(std::vector<std::uint32_t> credits,
                               Cycle base = 50, double ratio = 2.0,
                               Cycle replenish_period = 10000);

    /**
     * Degenerate constant-rate shaper (the CS baseline / Ascend):
     * exactly one usable bin at `interval`, so traffic issues at a
     * single, strictly periodic rate.
     */
    static BinConfig constantRate(Cycle interval,
                                  Cycle replenish_period = 10000);

    /**
     * The paper's Figure 11 "DESIRED" distribution: monotonically
     * decreasing bin sizes 10, 9, 8, ..., 1. The default edges are
     * chosen so that the full credit set is drainable within one
     * replenishment period (minDrainCycles() <= replenishPeriod),
     * otherwise the long-gap bins could never be exercised.
     */
    static BinConfig desired(Cycle base = 20, double ratio = 1.7,
                             Cycle replenish_period = 10000);

    /**
     * The fail-secure degradation of `from` (hardening layer): same
     * edges and period — a shaper's reconfigure() cannot change the
     * hardware bin count — but all credits moved to a minimal budget
     * in the largest-gap bin. The result is the most conservative
     * constant-rate schedule the bin set can express: every release
     * at least edges.back() apart, drainable by construction, and
     * carrying strictly less timing information than any schedule it
     * replaces (stall-only; fake generation is left untouched, never
     * suppressed).
     */
    static BinConfig failSecure(const BinConfig &from);
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_BIN_CONFIG_H
