/**
 * @file
 * Inter-arrival distribution monitor ("we use another hardware bin to
 * measure the post-Camouflage memory request distribution", §IV-E1)
 * and optional full event logging for security analysis.
 */

#ifndef CAMO_CAMOUFLAGE_MONITOR_H
#define CAMO_CAMOUFLAGE_MONITOR_H

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace camo::shaper {

/** A timestamped event in a shaped or intrinsic traffic stream. */
struct TrafficEvent
{
    Cycle at = 0;
    bool fake = false;
};

/** Measures the inter-arrival histogram of one traffic stream. */
class DistributionMonitor
{
  public:
    /** @param edges lower bin edges (usually the shaper's). */
    explicit DistributionMonitor(std::vector<Cycle> edges);

    /** Record an event at cycle `now`. */
    void record(Cycle now, bool fake = false);

    /** Enable/disable full event logging (costs memory). */
    void setLogging(bool on) { logging_ = on; }

    const Histogram &histogram() const { return hist_; }
    const std::vector<TrafficEvent> &events() const { return events_; }
    std::uint64_t count() const { return hist_.totalCount(); }

    /** Events recorded with fake == false / true (always counted,
     *  independent of event logging). */
    std::uint64_t realCount() const { return realCount_; }
    std::uint64_t fakeCount() const { return fakeCount_; }

    void clear();

  private:
    Histogram hist_;
    bool first_ = true;
    Cycle last_ = 0;
    bool logging_ = false;
    std::vector<TrafficEvent> events_;
    std::uint64_t realCount_ = 0;
    std::uint64_t fakeCount_ = 0;
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_MONITOR_H
