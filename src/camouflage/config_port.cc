#include "src/camouflage/config_port.h"

#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"

namespace camo::shaper {

namespace {

/** Append `bits` low-order bits of `value` to the packed stream. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint32_t> &words)
        : words_(words)
    {
    }

    void
    put(std::uint64_t value, std::uint32_t bits)
    {
        camo_assert(bits > 0 && bits <= 32, "field width 1..32");
        for (std::uint32_t i = 0; i < bits; ++i) {
            const std::uint32_t bit =
                static_cast<std::uint32_t>((value >> i) & 1);
            const std::size_t word = pos_ / 32;
            if (word >= words_.size())
                words_.push_back(0);
            words_[word] |= bit << (pos_ % 32);
            ++pos_;
        }
    }

  private:
    std::vector<std::uint32_t> &words_;
    std::size_t pos_ = 0;
};

class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint32_t> &words)
        : words_(words)
    {
    }

    std::uint64_t
    get(std::uint32_t bits)
    {
        std::uint64_t value = 0;
        for (std::uint32_t i = 0; i < bits; ++i) {
            const std::size_t word = pos_ / 32;
            camo_assert(word < words_.size(),
                        "register image truncated");
            const std::uint64_t bit =
                (words_[word] >> (pos_ % 32)) & 1;
            value |= bit << i;
            ++pos_;
        }
        return value;
    }

  private:
    const std::vector<std::uint32_t> &words_;
    std::size_t pos_ = 0;
};

void
checkFits(std::uint64_t value, std::uint32_t bits, const char *what)
{
    if (bits < 64 && value >= (1ULL << bits)) {
        std::ostringstream os;
        os << what << " value " << value << " does not fit in the "
           << bits << "-bit hardware register";
        throw camo::hard::ConfigError(os.str());
    }
}

} // namespace

RegisterFile
encodeConfig(const BinConfig &cfg, const RegisterWidths &widths)
{
    cfg.validate();
    RegisterFile regs;
    regs.widths = widths;
    regs.numBins = static_cast<std::uint32_t>(cfg.numBins());

    checkFits(cfg.replenishPeriod, widths.periodBits, "period");
    BitWriter writer(regs.words);
    writer.put(cfg.replenishPeriod, widths.periodBits);
    for (std::size_t i = 0; i < cfg.numBins(); ++i) {
        checkFits(cfg.edges[i], widths.edgeBits, "edge");
        checkFits(cfg.credits[i], widths.creditBits, "credit");
        writer.put(cfg.edges[i], widths.edgeBits);
        writer.put(cfg.credits[i], widths.creditBits);
    }
    return regs;
}

BinConfig
decodeConfig(const RegisterFile &regs)
{
    BinConfig cfg;
    BitReader reader(regs.words);
    cfg.replenishPeriod =
        static_cast<Cycle>(reader.get(regs.widths.periodBits));
    for (std::uint32_t i = 0; i < regs.numBins; ++i) {
        cfg.edges.push_back(
            static_cast<Cycle>(reader.get(regs.widths.edgeBits)));
        cfg.credits.push_back(static_cast<std::uint32_t>(
            reader.get(regs.widths.creditBits)));
    }
    cfg.validate();
    return cfg;
}

std::uint64_t
hardwareStorageBits(std::uint32_t num_bins, const RegisterWidths &widths)
{
    // Programmed image: period + per-bin edge and replenish amount.
    const std::uint64_t programmed =
        widths.periodBits +
        static_cast<std::uint64_t>(num_bins) *
            (widths.edgeBits + widths.creditBits);
    // Run-time state: live credits + unused credits per bin
    // (the paper's three-registers-per-bin accounting).
    const std::uint64_t runtime =
        static_cast<std::uint64_t>(num_bins) * 2 * widths.creditBits;
    return programmed + runtime;
}

} // namespace camo::shaper
