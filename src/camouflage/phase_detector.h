/**
 * @file
 * Program-phase change detection (paper §IV-C: "the online genetic
 * algorithm reconfigures the request/response hardware bins after a
 * fixed amount of time or after a program phase change").
 *
 * An EWMA of the observed per-epoch memory request rate; a sample
 * deviating from the average by more than a relative threshold
 * signals a phase change.
 */

#ifndef CAMO_CAMOUFLAGE_PHASE_DETECTOR_H
#define CAMO_CAMOUFLAGE_PHASE_DETECTOR_H

#include <cmath>
#include <cstdint>

#include "src/common/logging.h"

namespace camo::shaper {

/** EWMA-based phase-change detector over per-epoch rate samples. */
class PhaseDetector
{
  public:
    /**
     * @param alpha EWMA smoothing factor in (0, 1]
     * @param relative_threshold deviation (|x - ewma| / max(ewma, eps))
     *        that signals a phase change
     * @param warmup_samples samples absorbed before detection arms
     */
    explicit PhaseDetector(double alpha = 0.25,
                           double relative_threshold = 0.5,
                           std::uint32_t warmup_samples = 4)
        : alpha_(alpha),
          threshold_(relative_threshold),
          warmup_(warmup_samples)
    {
        camo_assert(alpha_ > 0.0 && alpha_ <= 1.0, "alpha in (0,1]");
        camo_assert(threshold_ > 0.0, "threshold must be positive");
    }

    /**
     * Feed one epoch's observed rate.
     * @return true if this sample signals a phase change (the EWMA
     *         then resets to the new level).
     */
    bool
    sample(double rate)
    {
        camo_assert(rate >= 0.0, "rate must be non-negative");
        ++samples_;
        if (samples_ == 1) {
            ewma_ = rate;
            return false;
        }
        const double base = ewma_ > 1e-9 ? ewma_ : 1e-9;
        const bool changed =
            samples_ > warmup_ &&
            std::abs(rate - ewma_) / base > threshold_;
        if (changed) {
            ewma_ = rate; // re-anchor on the new phase
            ++changes_;
        } else {
            ewma_ = alpha_ * rate + (1.0 - alpha_) * ewma_;
        }
        return changed;
    }

    double ewma() const { return ewma_; }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t changesDetected() const { return changes_; }

  private:
    double alpha_;
    double threshold_;
    std::uint32_t warmup_;
    double ewma_ = 0.0;
    std::uint64_t samples_ = 0;
    std::uint64_t changes_ = 0;
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_PHASE_DETECTOR_H
