#include "src/camouflage/bin_shaper.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::shaper {

BinShaper::BinShaper(const BinConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    credits_ = cfg_.credits;
    unused_.assign(cfg_.numBins(), 0);
    nextReplenish_ = cfg_.replenishPeriod;
}

void
BinShaper::reconfigure(const BinConfig &cfg)
{
    cfg.validate();
    camo_assert(cfg.numBins() == cfg_.numBins(),
                "reconfigure cannot change the hardware bin count");
    cfg_ = cfg;
    credits_ = cfg_.credits;
    std::fill(unused_.begin(), unused_.end(), 0);
    stats_.inc("reconfigurations");
}

void
BinShaper::tick(Cycle now)
{
    while (now >= nextReplenish_) {
        // Latch leftovers into the unused-credit registers, then
        // reload (paper §III-A2). Unconsumed fakes are discarded:
        // hardware registers are overwritten, not accumulated.
        for (std::size_t i = 0; i < credits_.size(); ++i) {
            unused_[i] = credits_[i];
            credits_[i] = cfg_.credits[i];
        }
        nextReplenish_ += cfg_.replenishPeriod;
        ++replenishments_;
        stats_.inc("replenishments");
        CAMO_TRACE_EVENT(tracer_, .at = now,
                         .type = obs::EventType::BinReplenish,
                         .core = traceCore_, .arg = unusedTotal());
    }
}

int
BinShaper::eligibleRealBin(Cycle now) const
{
    // Highest credited bin whose lower edge <= gap.
    const std::size_t gap_bin = cfg_.binOf(gapAt(now));
    for (std::size_t i = gap_bin + 1; i-- > 0;) {
        if (credits_[i] > 0)
            return static_cast<int>(i);
    }
    return -1;
}

bool
BinShaper::canIssueReal(Cycle now) const
{
    return eligibleRealBin(now) >= 0;
}

int
BinShaper::consumeReal(Cycle now)
{
    const int bin = eligibleRealBin(now);
    if (bin < 0)
        return -1;
    --credits_[static_cast<std::size_t>(bin)];
    lastIssue_ = now;
    ++realIssued_;
    stats_.inc("issued.real");
    return bin;
}

bool
BinShaper::canIssueFake(Cycle now) const
{
    const std::size_t gap_bin = cfg_.binOf(gapAt(now));
    return unused_[gap_bin] > 0;
}

int
BinShaper::consumeFake(Cycle now)
{
    const std::size_t gap_bin = cfg_.binOf(gapAt(now));
    if (unused_[gap_bin] == 0)
        return -1;
    --unused_[gap_bin];
    lastIssue_ = now;
    ++fakeIssued_;
    stats_.inc("issued.fake");
    return static_cast<int>(gap_bin);
}

Cycle
BinShaper::nextRealEligible(Cycle from) const
{
    // Credited bin i becomes eligible once the gap reaches its lower
    // edge, i.e. at cycle lastIssue_ + edges[i].
    Cycle best = kNoCycle;
    for (std::size_t i = 0; i < credits_.size(); ++i) {
        if (credits_[i] == 0)
            continue;
        const Cycle at = std::max(from, lastIssue_ + cfg_.edges[i]);
        best = std::min(best, at);
    }
    return best;
}

Cycle
BinShaper::nextFakeEligible(Cycle from) const
{
    // A fake charges exactly the bin matching the current gap, so bin
    // i is usable only while the gap lies in [edges[i], edges[i+1]).
    Cycle best = kNoCycle;
    for (std::size_t i = 0; i < unused_.size(); ++i) {
        if (unused_[i] == 0)
            continue;
        const Cycle at = std::max(from, lastIssue_ + cfg_.edges[i]);
        if (i + 1 < cfg_.edges.size() &&
            at >= lastIssue_ + cfg_.edges[i + 1]) {
            continue; // the gap already outgrew this bin
        }
        best = std::min(best, at);
    }
    return best;
}

std::uint32_t
BinShaper::creditsTotal() const
{
    std::uint32_t total = 0;
    for (const std::uint32_t c : credits_)
        total += c;
    return total;
}

void
BinShaper::injectLiveCredits(std::uint32_t value)
{
    std::fill(credits_.begin(), credits_.end(), value);
}

void
BinShaper::injectUnusedCredits(std::uint32_t value)
{
    std::fill(unused_.begin(), unused_.end(), value);
}

void
BinShaper::injectStarvation()
{
    std::fill(credits_.begin(), credits_.end(), 0u);
    std::fill(unused_.begin(), unused_.end(), 0u);
    nextReplenish_ = kNoCycle;
}

std::uint32_t
BinShaper::unusedTotal() const
{
    std::uint32_t total = 0;
    for (const std::uint32_t u : unused_)
        total += u;
    return total;
}

} // namespace camo::shaper
