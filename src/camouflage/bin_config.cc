#include "src/camouflage/bin_config.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"

namespace {

template <typename... Args>
[[noreturn]] void
configError(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw camo::hard::ConfigError(os.str());
}

} // namespace

namespace camo::shaper {

std::size_t
BinConfig::binOf(Cycle gap) const
{
    auto it = std::upper_bound(edges.begin(), edges.end(), gap);
    camo_assert(it != edges.begin(), "edges[0] must be 0");
    return static_cast<std::size_t>(it - edges.begin()) - 1;
}

std::uint64_t
BinConfig::totalCredits() const
{
    std::uint64_t total = 0;
    for (const std::uint32_t c : credits)
        total += c;
    return total;
}

double
BinConfig::maxRate() const
{
    return replenishPeriod == 0
               ? 0.0
               : static_cast<double>(totalCredits()) /
                     static_cast<double>(replenishPeriod);
}

Cycle
BinConfig::minDrainCycles() const
{
    Cycle total = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const Cycle per = std::max<Cycle>(1, edges[i]);
        total += per * credits[i];
    }
    return total;
}

void
BinConfig::validate(ValidatePolicy policy) const
{
    if (edges.empty() || edges.size() != credits.size()) {
        configError("bin config needs matching non-empty edges/credits "
                    "arrays (got ", edges.size(), " edges, ",
                    credits.size(), " credit counts)");
    }
    if (edges[0] != 0)
        configError("edges[0] must be 0, got ", edges[0]);
    for (std::size_t i = 1; i < edges.size(); ++i) {
        if (edges[i] <= edges[i - 1]) {
            configError("bin edges must be strictly increasing "
                        "(edges[", i, "] = ", edges[i],
                        " <= edges[", i - 1, "] = ", edges[i - 1], ")");
        }
    }
    for (std::size_t i = 0; i < credits.size(); ++i) {
        if (credits[i] > kMaxCreditsPerBin) {
            configError("credit count ", credits[i], " in bin ", i,
                        " exceeds the 10-bit hardware register (",
                        kMaxCreditsPerBin, ")");
        }
    }
    if (replenishPeriod == 0)
        configError("replenish period must be positive");
    if (totalCredits() == 0)
        configError("bin config grants no credits: nothing could issue");
    if (policy == ValidatePolicy::Drainable &&
        minDrainCycles() > replenishPeriod) {
        configError("credit set cannot drain within its period "
                    "(minDrain=", minDrainCycles(), " > period=",
                    replenishPeriod, "); widen the period or shrink "
                    "the edges/credits");
    }
}

std::string
BinConfig::toString() const
{
    std::ostringstream os;
    os << "period=" << replenishPeriod << " bins=[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i)
            os << ", ";
        os << edges[i] << ":" << credits[i];
    }
    os << "]";
    return os.str();
}

BinConfig
BinConfig::geometric(std::vector<std::uint32_t> credits, Cycle base,
                     double ratio, Cycle replenish_period)
{
    BinConfig cfg;
    cfg.replenishPeriod = replenish_period;
    cfg.credits = std::move(credits);
    cfg.edges.push_back(0);
    double edge = static_cast<double>(base);
    for (std::size_t i = 1; i < cfg.credits.size(); ++i) {
        auto e = static_cast<Cycle>(edge);
        if (e <= cfg.edges.back())
            e = cfg.edges.back() + 1;
        cfg.edges.push_back(e);
        edge *= ratio;
    }
    cfg.validate();
    return cfg;
}

BinConfig
BinConfig::constantRate(Cycle interval, Cycle replenish_period)
{
    if (interval < 1)
        configError("constant-rate interval must be >= 1");
    if (replenish_period < interval) {
        configError("replenish period ", replenish_period,
                    " is shorter than the constant interval ",
                    interval);
    }
    BinConfig cfg;
    cfg.replenishPeriod = replenish_period;
    // Bin 0 covers [0, interval) and gets no credits; bin 1 covers
    // [interval, inf) and carries the full budget, so every issue is
    // at least `interval` apart and fake traffic fills the rest: a
    // single, strictly periodic rate.
    cfg.edges = {0, interval};
    const auto budget =
        static_cast<std::uint32_t>(replenish_period / interval);
    cfg.credits = {0, std::min(budget, kMaxCreditsPerBin)};
    cfg.validate();
    return cfg;
}

BinConfig
BinConfig::desired(Cycle base, double ratio, Cycle replenish_period)
{
    std::vector<std::uint32_t> credits(kDefaultBins);
    for (std::size_t i = 0; i < kDefaultBins; ++i)
        credits[i] = static_cast<std::uint32_t>(kDefaultBins - i);
    BinConfig cfg =
        geometric(std::move(credits), base, ratio, replenish_period);
    // The DESIRED schedule must be able to exercise its long-gap
    // bins; Drainable rejects parameter choices that cannot.
    cfg.validate(ValidatePolicy::Drainable);
    return cfg;
}

BinConfig
BinConfig::failSecure(const BinConfig &from)
{
    from.validate();
    BinConfig cfg;
    cfg.edges = from.edges;
    cfg.replenishPeriod = from.replenishPeriod;
    cfg.credits.assign(from.edges.size(), 0);
    const Cycle slot = std::max<Cycle>(1, from.edges.back());
    const auto budget = static_cast<std::uint32_t>(std::min<Cycle>(
        std::max<Cycle>(1, from.replenishPeriod / slot),
        kMaxCreditsPerBin));
    cfg.credits.back() = budget;
    // Drainable whenever the largest edge fits in the period; when it
    // does not (budget clamped to 1) releases simply space out past
    // the period, which is still fail-secure.
    cfg.validate();
    return cfg;
}

} // namespace camo::shaper
