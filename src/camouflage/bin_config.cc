#include "src/camouflage/bin_config.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace camo::shaper {

std::size_t
BinConfig::binOf(Cycle gap) const
{
    auto it = std::upper_bound(edges.begin(), edges.end(), gap);
    camo_assert(it != edges.begin(), "edges[0] must be 0");
    return static_cast<std::size_t>(it - edges.begin()) - 1;
}

std::uint64_t
BinConfig::totalCredits() const
{
    std::uint64_t total = 0;
    for (const std::uint32_t c : credits)
        total += c;
    return total;
}

double
BinConfig::maxRate() const
{
    return replenishPeriod == 0
               ? 0.0
               : static_cast<double>(totalCredits()) /
                     static_cast<double>(replenishPeriod);
}

Cycle
BinConfig::minDrainCycles() const
{
    Cycle total = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const Cycle per = std::max<Cycle>(1, edges[i]);
        total += per * credits[i];
    }
    return total;
}

void
BinConfig::validate() const
{
    if (edges.empty() || edges.size() != credits.size())
        camo_fatal("bin config needs matching edges/credits arrays");
    if (edges[0] != 0)
        camo_fatal("edges[0] must be 0, got ", edges[0]);
    for (std::size_t i = 1; i < edges.size(); ++i) {
        if (edges[i] <= edges[i - 1])
            camo_fatal("bin edges must be strictly increasing");
    }
    for (const std::uint32_t c : credits) {
        if (c > kMaxCreditsPerBin)
            camo_fatal("credit count ", c, " exceeds the 10-bit "
                       "hardware register (", kMaxCreditsPerBin, ")");
    }
    if (replenishPeriod == 0)
        camo_fatal("replenish period must be positive");
    if (totalCredits() == 0)
        camo_fatal("bin config grants no credits: nothing could issue");
}

std::string
BinConfig::toString() const
{
    std::ostringstream os;
    os << "period=" << replenishPeriod << " bins=[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i)
            os << ", ";
        os << edges[i] << ":" << credits[i];
    }
    os << "]";
    return os.str();
}

BinConfig
BinConfig::geometric(std::vector<std::uint32_t> credits, Cycle base,
                     double ratio, Cycle replenish_period)
{
    BinConfig cfg;
    cfg.replenishPeriod = replenish_period;
    cfg.credits = std::move(credits);
    cfg.edges.push_back(0);
    double edge = static_cast<double>(base);
    for (std::size_t i = 1; i < cfg.credits.size(); ++i) {
        auto e = static_cast<Cycle>(edge);
        if (e <= cfg.edges.back())
            e = cfg.edges.back() + 1;
        cfg.edges.push_back(e);
        edge *= ratio;
    }
    cfg.validate();
    return cfg;
}

BinConfig
BinConfig::constantRate(Cycle interval, Cycle replenish_period)
{
    camo_assert(interval >= 1, "constant-rate interval must be >= 1");
    camo_assert(replenish_period >= interval,
                "period shorter than the constant interval");
    BinConfig cfg;
    cfg.replenishPeriod = replenish_period;
    // Bin 0 covers [0, interval) and gets no credits; bin 1 covers
    // [interval, inf) and carries the full budget, so every issue is
    // at least `interval` apart and fake traffic fills the rest: a
    // single, strictly periodic rate.
    cfg.edges = {0, interval};
    const auto budget =
        static_cast<std::uint32_t>(replenish_period / interval);
    cfg.credits = {0, std::min(budget, kMaxCreditsPerBin)};
    cfg.validate();
    return cfg;
}

BinConfig
BinConfig::desired(Cycle base, double ratio, Cycle replenish_period)
{
    std::vector<std::uint32_t> credits(kDefaultBins);
    for (std::size_t i = 0; i < kDefaultBins; ++i)
        credits[i] = static_cast<std::uint32_t>(kDefaultBins - i);
    BinConfig cfg =
        geometric(std::move(credits), base, ratio, replenish_period);
    camo_assert(cfg.minDrainCycles() <= cfg.replenishPeriod,
                "DESIRED config cannot drain within its period "
                "(minDrain=", cfg.minDrainCycles(), " period=",
                cfg.replenishPeriod, "); widen the period or shrink "
                "the edges");
    return cfg;
}

} // namespace camo::shaper
