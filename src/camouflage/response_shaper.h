/**
 * @file
 * Response Camouflage (RespC, paper §III-B1 and Figure 6): shapes the
 * memory responses a core observes into a pre-determined inter-arrival
 * distribution.
 *
 * Throttling buffers responses in the response queue until credits are
 * available. Acceleration works two ways: (1) at each replenishment,
 * unused credits are summed and sent to the memory scheduler as a
 * priority warning so the affected core is served faster, and (2) when
 * there is no pending or newly arrived response and unused credits
 * remain, a fake response is generated (Figure 6, case 3).
 */

#ifndef CAMO_CAMOUFLAGE_RESPONSE_SHAPER_H
#define CAMO_CAMOUFLAGE_RESPONSE_SHAPER_H

#include <cstdint>
#include <deque>
#include <optional>

#include "src/camouflage/bin_config.h"
#include "src/camouflage/bin_shaper.h"
#include "src/camouflage/monitor.h"
#include "src/common/arena.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/sim/component.h"

namespace camo::shaper {

/** RespC configuration. */
struct ResponseShaperConfig
{
    BinConfig bins;
    bool generateFakes = true;
    /** Ask the MC for priority when credits go unused. */
    bool sendPriorityWarnings = true;
    /**
     * Priority tokens granted per unused credit. The paper grants
     * priority "in proportion to the number of unused credits"; a
     * scale > 1 covers the requests the deficit window starved.
     */
    std::uint32_t boostScale = 1;
    std::uint32_t queueCap = 64; ///< buffered responses
};

/** The per-core response shaping unit at the MC egress.
 *
 * Like RequestShaper, driven through the rich tick(now,
 * downstream_ready) overload by its owning station; the inherited
 * one-argument tick() is a no-op. */
class ResponseShaper final : public sim::Component
{
  public:
    /** `arena` (optional) backs the buffered-response queue; see
     *  src/common/arena.h. */
    ResponseShaper(CoreId core, const ResponseShaperConfig &cfg,
                   Arena *arena = nullptr);

    using sim::Component::tick;

    bool canAccept() const { return queue_.size() < cfg_.queueCap; }

    /** A response for this core leaves the memory controller. */
    void push(MemRequest resp, Cycle now);

    /**
     * Advance one cycle and possibly release one response.
     * @param downstream_ready the return channel can take a flit.
     */
    std::optional<MemRequest> tick(Cycle now, bool downstream_ready);

    /**
     * Priority tokens accumulated for the memory scheduler since the
     * last call (the replenishment-time warning payload). The caller
     * forwards them to MemoryController::boostPriority().
     */
    std::uint32_t takePriorityWarning();

    void reconfigure(const BinConfig &bins) { bins_.reconfigure(bins); }

    /** Boost tokens awaiting pickup by takePriorityWarning(). */
    bool hasPendingBoost() const { return pendingBoost_ > 0; }

    /**
     * Earliest cycle >= `from` at which tick() could do observable
     * work, assuming no push() and a ready downstream until then (see
     * RequestShaper::nextEventCycle).
     */
    Cycle nextEventCycle(Cycle from) const;

    /** Account `n` skipped idle cycles (stall accounting only). */
    void skipIdleCycles(Cycle n) override;

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle from) const override
    {
        return nextEventCycle(from);
    }
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    void registerStats(obs::StatRegistry &reg) const override;

    /** Runtime fake-generation toggle. */
    void setGenerateFakes(bool on) { cfg_.generateFakes = on; }
    bool generateFakes() const { return cfg_.generateFakes; }

    std::size_t queueDepth() const { return queue_.size(); }
    const BinShaper &bins() const { return bins_; }
    /** Mutable credit engine (fault-injection hooks only). */
    BinShaper &binsMut() { return bins_; }
    DistributionMonitor &preMonitor() { return pre_; }
    DistributionMonitor &postMonitor() { return post_; }
    const DistributionMonitor &preMonitor() const { return pre_; }
    const DistributionMonitor &postMonitor() const { return post_; }
    const StatGroup &stats() const { return stats_; }

    /** Observability hook; propagates to the bin engine. */
    void
    setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        bins_.setTracer(tracer, core_);
    }

  private:
    MemRequest makeFakeResponse(Cycle now);

    CoreId core_;
    ResponseShaperConfig cfg_;
    BinShaper bins_;
    ArenaDeque<MemRequest> queue_;
    std::uint64_t lastReplenishSeen_ = 0;
    std::uint32_t pendingBoost_ = 0;
    ReqId nextFakeId_ = 1;
    DistributionMonitor pre_;
    DistributionMonitor post_;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
    bool inStall_ = false;
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_RESPONSE_SHAPER_H
