#include "src/camouflage/request_shaper.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::shaper {

RequestShaper::RequestShaper(CoreId core, const RequestShaperConfig &cfg,
                             std::uint64_t seed, Arena *arena)
    : sim::Component("shaper.req.core" + std::to_string(core)),
      core_(core),
      cfg_(cfg),
      bins_(cfg.bins),
      queue_(ArenaAllocator<MemRequest>(arena)),
      rng_(seed),
      pre_(cfg.bins.edges),
      post_(cfg.bins.edges)
{
    camo_assert(cfg_.queueCap >= 1, "shaper queue needs capacity");
    camo_assert(cfg_.fakeAddrRange >= 64, "fake address range too small");
}

void
RequestShaper::push(MemRequest req, Cycle now)
{
    camo_assert(canAccept(), "push into a full shaper queue");
    pre_.record(now);
    CAMO_TRACE_EVENT(tracer_, .at = now,
                     .type = obs::EventType::ReqShaperEnqueue,
                     .core = core_, .id = req.id, .addr = req.addr,
                     .arg = queue_.size());
    queue_.push_back(std::move(req));
    stats_.inc("pushed");
}

MemRequest
RequestShaper::makeFake(Cycle now)
{
    MemRequest req;
    req.id = (static_cast<ReqId>(core_) << 48) | (1ULL << 47) |
             nextFakeId_++;
    req.core = core_;
    if (cfg_.fakeSequential) {
        // Extension: sequential walk mimics streaming traffic's
        // row-buffer behaviour.
        fakeCursor_ = (fakeCursor_ + 64) % cfg_.fakeAddrRange;
        req.addr = cfg_.fakeAddrBase + fakeCursor_;
    } else {
        // Non-cached fake read to a random address (paper §III-A2).
        req.addr = cfg_.fakeAddrBase +
                   (rng_.below(cfg_.fakeAddrRange) &
                    ~static_cast<Addr>(63));
    }
    req.isWrite = cfg_.fakeWriteFrac > 0.0 &&
                  rng_.chance(cfg_.fakeWriteFrac);
    req.isFake = true;
    req.created = now;
    req.shaperOut = now;
    return req;
}

std::optional<MemRequest>
RequestShaper::tick(Cycle now, bool downstream_ready)
{
    if (cfg_.strictSlotInterval > 0)
        return tickStrictSlot(now, downstream_ready);

    bins_.tick(now);
    if (!downstream_ready)
        return std::nullopt;

    // Real traffic has strict priority over fake traffic.
    if (!queue_.empty()) {
        if (bins_.canIssueReal(now)) {
            // SIV-B4 randomization: once eligible, hold the head for
            // a uniform slack within the matched bin's interval.
            if (cfg_.randomizeTiming) {
                if (randomHoldUntil_ == kNoCycle) {
                    const std::size_t bin =
                        cfg_.bins.binOf(bins_.gapAt(now));
                    const Cycle lo = cfg_.bins.edges[bin];
                    const Cycle hi = bin + 1 < cfg_.bins.numBins()
                                         ? cfg_.bins.edges[bin + 1]
                                         : lo + (lo > 0 ? lo : 16);
                    const Cycle width = hi > lo ? hi - lo : 1;
                    randomHoldUntil_ = now + rng_.below(width);
                    stats_.inc("randomized.holds");
                }
                if (now < randomHoldUntil_)
                    return std::nullopt;
            }
            if (bins_.consumeReal(now) >= 0) {
                randomHoldUntil_ = kNoCycle;
                inStall_ = false;
                MemRequest req = std::move(queue_.front());
                queue_.pop_front();
                req.shaperOut = now;
                post_.record(now, /*fake=*/false);
                stats_.inc("released.real");
                CAMO_TRACE_EVENT(tracer_, .at = now,
                                 .type =
                                     obs::EventType::ReqShaperRelease,
                                 .core = core_, .id = req.id,
                                 .addr = req.addr,
                                 .arg = now - req.created);
                return req;
            }
        }
        stats_.inc("stalled.cycles");
        if (!inStall_) {
            inStall_ = true;
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::ReqShaperStall,
                             .core = core_, .id = queue_.front().id,
                             .addr = queue_.front().addr,
                             .arg = queue_.size());
        }
        return std::nullopt;
    }
    randomHoldUntil_ = kNoCycle;
    inStall_ = false;

    // Fake generation: only when no real request wants the slot.
    if (cfg_.generateFakes && bins_.consumeFake(now) >= 0) {
        post_.record(now, /*fake=*/true);
        stats_.inc("released.fake");
        MemRequest fake = makeFake(now);
        CAMO_TRACE_EVENT(tracer_, .at = now,
                         .type = obs::EventType::ReqShaperFake,
                         .core = core_, .id = fake.id,
                         .addr = fake.addr, .arg = fake.isWrite);
        return fake;
    }
    return std::nullopt;
}

Cycle
RequestShaper::nextEventCycle(Cycle from) const
{
    if (cfg_.strictSlotInterval > 0) {
        // Strict-slot mode acts only on slot boundaries (and never
        // ticks the bin engine).
        const Cycle i = cfg_.strictSlotInterval;
        return ((from + i - 1) / i) * i;
    }
    Cycle ev = bins_.nextReplenish();
    if (!queue_.empty()) {
        if (randomHoldUntil_ != kNoCycle) {
            // Holding an eligible head for random slack: nothing
            // happens (not even stall accounting) until it expires.
            ev = std::min(ev, std::max(from, randomHoldUntil_));
        } else if (!inStall_) {
            // Next tick either releases the head or emits the
            // one-shot stall event; it must execute.
            return from;
        } else {
            ev = std::min(ev, bins_.nextRealEligible(from));
        }
    } else if (cfg_.generateFakes) {
        ev = std::min(ev, bins_.nextFakeEligible(from));
    }
    return ev;
}

void
RequestShaper::skipIdleCycles(Cycle n)
{
    if (cfg_.strictSlotInterval > 0)
        return; // off-slot cycles are pure no-ops
    // A credit-starved head accrues stall accounting every cycle (the
    // one-shot stall event already fired: inStall_ is set).
    if (!queue_.empty() && inStall_ && randomHoldUntil_ == kNoCycle)
        stats_.inc("stalled.cycles", n);
}

std::optional<MemRequest>
RequestShaper::tickStrictSlot(Cycle now, bool downstream_ready)
{
    // Ascend semantics: traffic leaves at one single, strictly
    // periodic rate. A slot with no pending request is filled with a
    // dummy access (or wasted, without fake generation).
    if (now % cfg_.strictSlotInterval != 0 || !downstream_ready)
        return std::nullopt;
    if (!queue_.empty()) {
        MemRequest req = std::move(queue_.front());
        queue_.pop_front();
        req.shaperOut = now;
        post_.record(now, /*fake=*/false);
        stats_.inc("released.real");
        CAMO_TRACE_EVENT(tracer_, .at = now,
                         .type = obs::EventType::ReqShaperRelease,
                         .core = core_, .id = req.id, .addr = req.addr,
                         .arg = now - req.created);
        return req;
    }
    if (cfg_.generateFakes) {
        post_.record(now, /*fake=*/true);
        stats_.inc("released.fake");
        MemRequest fake = makeFake(now);
        CAMO_TRACE_EVENT(tracer_, .at = now,
                         .type = obs::EventType::ReqShaperFake,
                         .core = core_, .id = fake.id,
                         .addr = fake.addr, .arg = fake.isWrite);
        return fake;
    }
    stats_.inc("slots.wasted");
    return std::nullopt;
}


void
RequestShaper::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
    reg.add(name() + ".bins", &bins_.stats());
}

} // namespace camo::shaper
