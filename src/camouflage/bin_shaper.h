/**
 * @file
 * The bin-based credit engine shared by request and response shapers
 * (paper §III-A1/2).
 *
 * Three registers per bin, as in the paper's hardware sketch:
 * current credits, replenishment amount (in BinConfig), and unused
 * credits latched at each replenishment for fake-traffic generation.
 *
 * Issue rule: a transaction whose inter-arrival gap is Δ may consume a
 * credit from any bin whose interval lower edge is <= Δ ("a bin that
 * represents lower or equal to the memory transaction's inter-arrival
 * time"); we consume from the highest such bin so short-gap credits
 * are preserved for genuinely bursty traffic. If no eligible bin has
 * credits the transaction stalls until Δ grows into a credited bin or
 * credits are replenished.
 */

#ifndef CAMO_CAMOUFLAGE_BIN_SHAPER_H
#define CAMO_CAMOUFLAGE_BIN_SHAPER_H

#include <cstdint>
#include <vector>

#include "src/camouflage/bin_config.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/obs/tracer.h"

namespace camo::shaper {

/** Credit accounting for one Camouflage hardware unit. */
class BinShaper
{
  public:
    explicit BinShaper(const BinConfig &cfg);

    /** Advance to CPU cycle `now`, applying replenishment boundaries.
     *  Must be called with non-decreasing `now`. */
    void tick(Cycle now);

    /** Could a real transaction issue at `now` (some eligible bin has
     *  a credit for the current gap)? */
    bool canIssueReal(Cycle now) const;

    /**
     * Consume a credit for a real transaction issuing at `now`.
     * @return the bin index charged, or -1 if it must stall.
     */
    int consumeReal(Cycle now);

    /**
     * Consume an unused credit for a fake transaction at `now`.
     * Fake issues only charge the bin exactly matching the current
     * gap, so the generated traffic lands in the intended bins.
     * @return the bin index charged, or -1.
     */
    int consumeFake(Cycle now);

    /** Is a fake issue possible right now? */
    bool canIssueFake(Cycle now) const;

    /** Next replenishment boundary (tick() mutates state there). */
    Cycle nextReplenish() const { return nextReplenish_; }

    /**
     * Earliest cycle >= `from` at which canIssueReal() could hold,
     * assuming no issue or replenishment happens before it (the caller
     * bounds the answer by nextReplenish()). kNoCycle when no bin has
     * credits.
     */
    Cycle nextRealEligible(Cycle from) const;

    /**
     * Earliest cycle >= `from` at which canIssueFake() could hold
     * under the same assumptions. kNoCycle when no unused credit can
     * match any reachable gap.
     */
    Cycle nextFakeEligible(Cycle from) const;

    /** Inter-arrival gap if something issued at `now`. */
    Cycle gapAt(Cycle now) const { return now - lastIssue_; }

    Cycle lastIssue() const { return lastIssue_; }

    /** Sum of unused-credit registers (RespC's warning payload). */
    std::uint32_t unusedTotal() const;

    /** Unused credits latched at the most recent replenishment. */
    const std::vector<std::uint32_t> &unused() const { return unused_; }
    /** Live credit registers. */
    const std::vector<std::uint32_t> &credits() const { return credits_; }

    /** Replace the configuration (GA reconfiguration); resets credit
     *  state at the next replenishment boundary semantics: credits are
     *  reloaded immediately, unused cleared. */
    void reconfigure(const BinConfig &cfg);

    const BinConfig &config() const { return cfg_; }
    std::uint64_t realIssued() const { return realIssued_; }
    std::uint64_t fakeIssued() const { return fakeIssued_; }
    std::uint64_t replenishments() const { return replenishments_; }
    const StatGroup &stats() const { return stats_; }

    /** Live credits summed over all bins (interval bin occupancy). */
    std::uint32_t creditsTotal() const;

    /**
     * Fault-injection hooks (hardening layer): overwrite every live
     * credit register / unused-credit register with `value`. Models
     * bit-rot in the credit state the conservation checker must
     * catch.
     */
    void injectLiveCredits(std::uint32_t value);
    void injectUnusedCredits(std::uint32_t value);

    /**
     * Fault-injection hook: zero all credit state and stick the
     * replenishment counter (models a dead replenishment timer). The
     * shaper can never issue again — the watchdog's job to detect.
     */
    void injectStarvation();

    /** Observability hook; `core` labels the emitted events. */
    void
    setTracer(obs::Tracer *tracer, CoreId core)
    {
        tracer_ = tracer;
        traceCore_ = core;
    }

  private:
    int eligibleRealBin(Cycle now) const;

    BinConfig cfg_;
    std::vector<std::uint32_t> credits_;
    std::vector<std::uint32_t> unused_;
    Cycle lastIssue_ = 0;
    Cycle nextReplenish_ = 0;
    std::uint64_t realIssued_ = 0;
    std::uint64_t fakeIssued_ = 0;
    std::uint64_t replenishments_ = 0;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
    CoreId traceCore_ = kNoCore;
};

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_BIN_SHAPER_H
