#include "src/camouflage/response_shaper.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::shaper {

ResponseShaper::ResponseShaper(CoreId core, const ResponseShaperConfig &cfg,
                               Arena *arena)
    : sim::Component("shaper.resp.core" + std::to_string(core)),
      core_(core),
      cfg_(cfg),
      bins_(cfg.bins),
      queue_(ArenaAllocator<MemRequest>(arena)),
      pre_(cfg.bins.edges),
      post_(cfg.bins.edges)
{
    camo_assert(cfg_.queueCap >= 1, "response queue needs capacity");
}

void
ResponseShaper::push(MemRequest resp, Cycle now)
{
    camo_assert(canAccept(), "push into a full response queue");
    pre_.record(now, resp.isFake);
    CAMO_TRACE_EVENT(tracer_, .at = now,
                     .type = obs::EventType::RespShaperEnqueue,
                     .core = core_, .id = resp.id, .addr = resp.addr,
                     .arg = queue_.size());
    queue_.push_back(std::move(resp));
    stats_.inc("pushed");
}

MemRequest
ResponseShaper::makeFakeResponse(Cycle now)
{
    MemRequest resp;
    resp.id = (static_cast<ReqId>(core_) << 48) | (1ULL << 46) |
              nextFakeId_++;
    resp.core = core_;
    resp.addr = kNoAddr;
    resp.isFake = true;
    resp.created = now;
    resp.mcDone = now;
    resp.respShaperOut = now;
    return resp;
}

std::optional<MemRequest>
ResponseShaper::tick(Cycle now, bool downstream_ready)
{
    bins_.tick(now);

    // At each replenishment, sum the unused credits and warn the
    // memory scheduler (paper: priority proportional to unused
    // credits). takePriorityWarning() hands the tokens to the MC.
    if (cfg_.sendPriorityWarnings &&
        bins_.replenishments() > lastReplenishSeen_) {
        lastReplenishSeen_ = bins_.replenishments();
        const std::uint32_t unused = bins_.unusedTotal();
        if (unused > 0) {
            pendingBoost_ += unused * cfg_.boostScale;
            stats_.inc("warnings.sent");
            stats_.inc("warnings.tokens", unused * cfg_.boostScale);
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::PriorityBoost,
                             .core = core_,
                             .arg = unused * cfg_.boostScale);
        }
    }

    if (!downstream_ready)
        return std::nullopt;

    // Case 1 (Figure 6): pending responses are served first.
    if (!queue_.empty()) {
        if (bins_.consumeReal(now) >= 0) {
            inStall_ = false;
            MemRequest resp = std::move(queue_.front());
            queue_.pop_front();
            resp.respShaperOut = now;
            post_.record(now, resp.isFake);
            stats_.inc("released.real");
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type =
                                 obs::EventType::RespShaperRelease,
                             .core = core_, .id = resp.id,
                             .addr = resp.addr,
                             .arg = now - resp.created);
            return resp;
        }
        stats_.inc("stalled.cycles");
        if (!inStall_) {
            inStall_ = true;
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::RespShaperStall,
                             .core = core_, .id = queue_.front().id,
                             .addr = queue_.front().addr,
                             .arg = queue_.size());
        }
        return std::nullopt;
    }
    inStall_ = false;

    // Case 3: no pending or new responses, unused credits remain ->
    // fake response keeps the observed distribution fixed.
    if (cfg_.generateFakes && bins_.consumeFake(now) >= 0) {
        post_.record(now, /*fake=*/true);
        stats_.inc("released.fake");
        MemRequest fake = makeFakeResponse(now);
        CAMO_TRACE_EVENT(tracer_, .at = now,
                         .type = obs::EventType::RespShaperFake,
                         .core = core_, .id = fake.id);
        return fake;
    }
    return std::nullopt;
}

Cycle
ResponseShaper::nextEventCycle(Cycle from) const
{
    Cycle ev = bins_.nextReplenish();
    if (!queue_.empty()) {
        if (!inStall_)
            return from; // releases or emits the stall event
        ev = std::min(ev, bins_.nextRealEligible(from));
    } else if (cfg_.generateFakes) {
        ev = std::min(ev, bins_.nextFakeEligible(from));
    }
    return ev;
}

void
ResponseShaper::skipIdleCycles(Cycle n)
{
    if (!queue_.empty() && inStall_)
        stats_.inc("stalled.cycles", n);
}

std::uint32_t
ResponseShaper::takePriorityWarning()
{
    const std::uint32_t boost = pendingBoost_;
    pendingBoost_ = 0;
    return boost;
}


void
ResponseShaper::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
    reg.add(name() + ".bins", &bins_.stats());
}

} // namespace camo::shaper
