/**
 * @file
 * The hypervisor-facing hardware configuration port (paper §III-A1/3).
 *
 * "In order to control the Camouflage hardware, the hypervisor writes
 * special purpose control registers to configure the shape of the
 * request/response distributions." Each unit carries, per bin, a
 * 10-bit credit register, a 10-bit replenishment register and a
 * 10-bit unused-credit register, plus an inter-arrival edge register
 * and one replenishment-period register. This module models that
 * register file exactly: a BinConfig is encoded into packed register
 * words (rejecting values the hardware could not hold) and decoded
 * back, and the total storage cost is computable — backing the
 * paper's "minimal hardware overhead" claim with a number.
 */

#ifndef CAMO_CAMOUFLAGE_CONFIG_PORT_H
#define CAMO_CAMOUFLAGE_CONFIG_PORT_H

#include <cstdint>
#include <vector>

#include "src/camouflage/bin_config.h"

namespace camo::shaper {

/** Field widths of the hardware registers. */
struct RegisterWidths
{
    std::uint32_t creditBits = 10; ///< paper §III-A3
    std::uint32_t edgeBits = 20;   ///< inter-arrival edge, CPU cycles
    std::uint32_t periodBits = 24; ///< replenishment period
};

/** A packed register-file image of one Camouflage unit's config. */
struct RegisterFile
{
    RegisterWidths widths;
    std::uint32_t numBins = 0;
    /** Packed little-endian bit stream, 32-bit words. Layout:
     *  period, then per bin: edge, replenish-credits. (The live
     *  credit and unused registers are run-time state, not part of
     *  the programmed image, but they count toward storage.) */
    std::vector<std::uint32_t> words;

    bool operator==(const RegisterFile &o) const
    {
        return numBins == o.numBins && words == o.words;
    }
};

/**
 * Encode a configuration into the register image.
 * Throws hard::ConfigError if any field exceeds its register width.
 */
RegisterFile encodeConfig(const BinConfig &cfg,
                          const RegisterWidths &widths = {});

/** Decode a register image back into a configuration; the decoded
 *  image is validated, so a corrupted/malformed image throws
 *  hard::ConfigError instead of programming garbage. */
BinConfig decodeConfig(const RegisterFile &regs);

/**
 * Total storage of one Camouflage unit in bits: the programmed image
 * plus the per-bin live credit and unused registers. For the paper's
 * 10-bin unit this is a few hundred bits — negligible next to e.g.
 * an ORAM controller.
 */
std::uint64_t hardwareStorageBits(std::uint32_t num_bins,
                                  const RegisterWidths &widths = {});

} // namespace camo::shaper

#endif // CAMO_CAMOUFLAGE_CONFIG_PORT_H
