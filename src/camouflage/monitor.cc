#include "src/camouflage/monitor.h"

namespace camo::shaper {

DistributionMonitor::DistributionMonitor(std::vector<Cycle> edges)
    : hist_(std::move(edges))
{
}

void
DistributionMonitor::record(Cycle now, bool fake)
{
    if (!first_)
        hist_.add(now - last_);
    first_ = false;
    last_ = now;
    ++(fake ? fakeCount_ : realCount_);
    if (logging_)
        events_.push_back({now, fake});
}

void
DistributionMonitor::clear()
{
    hist_.clear();
    first_ = true;
    last_ = 0;
    events_.clear();
    realCount_ = 0;
    fakeCount_ = 0;
}

} // namespace camo::shaper
