#include "src/noc/channel.h"

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::noc {

SharedChannel::SharedChannel(std::uint32_t num_ports,
                             const ChannelConfig &cfg, std::string name,
                             obs::EventType grant_type)
    : sim::Component(std::move(name)), cfg_(cfg),
      ingress_(num_ports, sim::Wire<MemRequest>(cfg.ingressCap)),
      egress_(cfg.egressCap), grantType_(grant_type)
{
    camo_assert(num_ports >= 1, "channel needs at least one port");
    camo_assert(cfg_.ingressCap >= 1 && cfg_.egressCap >= 1,
                "channel queues need capacity");
}

bool
SharedChannel::canAccept(std::uint32_t port) const
{
    camo_assert(port < ingress_.size(), "port out of range");
    return ingress_[port].canAccept();
}

void
SharedChannel::push(std::uint32_t port, MemRequest req)
{
    camo_assert(canAccept(port), "push into a full ingress queue");
    ingress_[port].push(std::move(req));
    stats_.inc("pushed");
}

void
SharedChannel::tick(Cycle now)
{
    // Move arrived flits from the pipeline to the egress queue
    // (bounded; back-pressure holds them in the pipe).
    while (!pipe_.empty() && pipe_.front().arrivesAt <= now &&
           egress_.canAccept()) {
        // Cycle-stamped delivery: wakes the subscribed consumer
        // (the downstream link station) at `now`.
        egress_.push(pipe_.pop(), now);
    }

    // Round-robin arbitration: one grant per cycle.
    const std::uint32_t ports = static_cast<std::uint32_t>(ingress_.size());
    for (std::uint32_t i = 0; i < ports; ++i) {
        const std::uint32_t port = (rrNext_ + i) % ports;
        if (ingress_[port].empty())
            continue;
        InFlight f;
        f.req = ingress_[port].pop();
        f.arrivesAt = now + cfg_.latency;
        CAMO_TRACE_EVENT(tracer_, .at = now, .type = grantType_,
                         .core = f.req.core, .id = f.req.id,
                         .addr = f.req.addr, .arg = port);
        pipe_.push(std::move(f));
        rrNext_ = (port + 1) % ports;
        stats_.inc("granted");
        break;
    }
}

bool
SharedChannel::hasEgress(Cycle now) const
{
    (void)now;
    return !egress_.empty();
}

const MemRequest &
SharedChannel::egressFront() const
{
    camo_assert(!egress_.empty(), "egressFront on empty channel");
    return egress_.front().req;
}

MemRequest
SharedChannel::popEgress()
{
    camo_assert(!egress_.empty(), "popEgress on empty channel");
    return egress_.pop().req;
}

std::size_t
SharedChannel::ingressDepth(std::uint32_t port) const
{
    camo_assert(port < ingress_.size(), "port out of range");
    return ingress_[port].size();
}

void
SharedChannel::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
}

} // namespace camo::noc
