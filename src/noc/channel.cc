#include "src/noc/channel.h"

#include "src/common/logging.h"

namespace camo::noc {

SharedChannel::SharedChannel(std::uint32_t num_ports,
                             const ChannelConfig &cfg)
    : cfg_(cfg), ingress_(num_ports)
{
    camo_assert(num_ports >= 1, "channel needs at least one port");
    camo_assert(cfg_.ingressCap >= 1 && cfg_.egressCap >= 1,
                "channel queues need capacity");
}

bool
SharedChannel::canAccept(std::uint32_t port) const
{
    camo_assert(port < ingress_.size(), "port out of range");
    return ingress_[port].size() < cfg_.ingressCap;
}

void
SharedChannel::push(std::uint32_t port, MemRequest req)
{
    camo_assert(canAccept(port), "push into a full ingress queue");
    ingress_[port].push_back(std::move(req));
    stats_.inc("pushed");
}

void
SharedChannel::tick(Cycle now)
{
    // Move arrived flits from the pipeline to the egress queue
    // (bounded; back-pressure holds them in the pipe).
    while (!pipe_.empty() && pipe_.front().arrivesAt <= now &&
           egress_.size() < cfg_.egressCap) {
        egress_.push_back(pipe_.front());
        pipe_.pop_front();
    }

    // Round-robin arbitration: one grant per cycle.
    const std::uint32_t ports = static_cast<std::uint32_t>(ingress_.size());
    for (std::uint32_t i = 0; i < ports; ++i) {
        const std::uint32_t port = (rrNext_ + i) % ports;
        if (ingress_[port].empty())
            continue;
        InFlight f;
        f.req = std::move(ingress_[port].front());
        ingress_[port].pop_front();
        f.arrivesAt = now + cfg_.latency;
        CAMO_TRACE_EVENT(tracer_, .at = now, .type = grantType_,
                         .core = f.req.core, .id = f.req.id,
                         .addr = f.req.addr, .arg = port);
        pipe_.push_back(std::move(f));
        rrNext_ = (port + 1) % ports;
        stats_.inc("granted");
        break;
    }
}

bool
SharedChannel::hasEgress(Cycle now) const
{
    (void)now;
    return !egress_.empty();
}

const MemRequest &
SharedChannel::egressFront() const
{
    camo_assert(!egress_.empty(), "egressFront on empty channel");
    return egress_.front().req;
}

MemRequest
SharedChannel::popEgress()
{
    camo_assert(!egress_.empty(), "popEgress on empty channel");
    MemRequest req = std::move(egress_.front().req);
    egress_.pop_front();
    return req;
}

std::size_t
SharedChannel::ingressDepth(std::uint32_t port) const
{
    camo_assert(port < ingress_.size(), "port out of range");
    return ingress_[port].size();
}

} // namespace camo::noc
