/**
 * @file
 * The shared on-chip channel between cores and the memory controller
 * (leakage points SC1/SC5 in the paper's Figure 5).
 *
 * One direction of traffic: per-port ingress queues, a round-robin
 * arbiter granting one transfer per cycle (the shared-bandwidth
 * bottleneck that creates cross-domain interference), and a fixed
 * pipeline latency to the egress queue. The queues are typed
 * sim::Wire links so backpressure is uniform with the rest of the
 * component graph.
 */

#ifndef CAMO_NOC_CHANNEL_H
#define CAMO_NOC_CHANNEL_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"
#include "src/sim/port.h"

namespace camo::noc {

/** Channel parameters. */
struct ChannelConfig
{
    std::uint32_t latency = 6;     ///< pipeline cycles port -> egress
    std::uint32_t ingressCap = 16; ///< per-port queue entries
    std::uint32_t egressCap = 32;  ///< egress queue entries
};

/** One direction of the shared channel. */
class SharedChannel final : public sim::Component
{
  public:
    SharedChannel(std::uint32_t num_ports, const ChannelConfig &cfg,
                  std::string name = "noc",
                  obs::EventType grant_type =
                      obs::EventType::ReqChannelGrant);

    bool canAccept(std::uint32_t port) const;
    void push(std::uint32_t port, MemRequest req);

    /** Cycle-stamped push: additionally schedules this channel to
     *  arbitrate at `now` through its WakeSink (event kernel). */
    void
    push(std::uint32_t port, MemRequest req, Cycle now)
    {
        push(port, std::move(req));
        scheduleAt(now);
    }

    /** Wake `consumer` whenever a flit lands on the egress queue
     *  (the downstream link station); nullptr unsubscribes. */
    void subscribeEgress(sim::Component *consumer)
    {
        egress_.subscribe(consumer);
    }

    /** Arbitrate (1 grant/cycle) and advance the pipeline. */
    void tick(Cycle now) override;

    bool hasEgress(Cycle now) const;
    const MemRequest &egressFront() const;
    MemRequest popEgress();

    /** Cycle-stamped pop: additionally reschedules the channel so a
     *  pipeline flit held back by the freed egress slot advances on
     *  the next cycle (event kernel; matches the per-cycle order where
     *  the channel ticks before the consuming link station). */
    MemRequest
    popEgress(Cycle now)
    {
        MemRequest req = popEgress();
        if (!pipe_.empty())
            scheduleAt(std::max(now + 1, pipe_.front().arrivesAt));
        return req;
    }

    /**
     * Earliest cycle >= `from` at which the channel itself could do
     * work: immediately while any ingress holds flits (a grant happens
     * every cycle), at the head-of-pipe arrival while the egress queue
     * has space, kNoCycle otherwise. A pipeline blocked on a full
     * egress queue sleeps until popEgress(now) reschedules it, and a
     * non-empty egress queue alone is the consumer's work, not ours
     * (the consuming link station carries its own bound).
     * Idle cycles have no per-cycle accounting, so no skip hook.
     */
    Cycle
    nextEventCycle(Cycle from) const
    {
        for (const auto &q : ingress_) {
            if (!q.empty())
                return from; // a grant happens every cycle
        }
        if (!pipe_.empty() && egress_.canAccept())
            return std::max(from, pipe_.front().arrivesAt);
        return kNoCycle;
    }

    std::size_t ingressDepth(std::uint32_t port) const;
    std::size_t egressDepth() const { return egress_.size(); }
    const StatGroup &stats() const { return stats_; }

    /** Observability hook. The channel does not know its direction, so
     *  the owner supplies the grant event type (ReqChannelGrant or
     *  RespChannelGrant). */
    void
    setTracer(obs::Tracer *tracer, obs::EventType grant_type)
    {
        tracer_ = tracer;
        grantType_ = grant_type;
    }

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle from) const override
    {
        return nextEventCycle(from);
    }
    /** Keeps the grant type chosen at construction / via setTracer. */
    void attachTracer(obs::Tracer *tracer) override { tracer_ = tracer; }
    void registerStats(obs::StatRegistry &reg) const override;

  private:
    struct InFlight
    {
        MemRequest req;
        Cycle arrivesAt = 0;
    };

    ChannelConfig cfg_;
    std::vector<sim::Wire<MemRequest>> ingress_;
    sim::Wire<InFlight> pipe_;   ///< unbounded: latency stage
    sim::Wire<InFlight> egress_; ///< bounded: consumer-facing link
    std::uint32_t rrNext_ = 0;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
    obs::EventType grantType_;
};

} // namespace camo::noc

#endif // CAMO_NOC_CHANNEL_H
