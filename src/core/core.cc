#include "src/core/core.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::core {

Core::Core(CoreId id, const CoreConfig &cfg, trace::TraceSource &trace,
           cache::CacheHierarchy &cache, Arena *arena)
    : sim::Component("core" + std::to_string(id)), id_(id), cfg_(cfg),
      trace_(trace), cache_(cache),
      window_(ArenaAllocator<Entry>(arena)),
      waiting_(ArenaAllocator<
               std::pair<const Addr, std::vector<std::uint64_t>>>(arena))
{
    camo_assert(cfg_.width >= 1 && cfg_.windowSize >= cfg_.width,
                "bad core config");
}

void
Core::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
}

void
Core::clearEpochCounters()
{
    retired_ = 0;
    cycles_ = 0;
    memStallCycles_ = 0;
}

void
Core::retire(Cycle now)
{
    std::uint32_t n = 0;
    while (n < cfg_.width && !window_.empty()) {
        const Entry &head = window_.front();
        if (head.readyAt == kNoCycle || head.readyAt > now)
            break;
        window_.pop_front();
        ++retired_;
        ++n;
    }
    if (n == 0 && !window_.empty() && window_.front().isLoad) {
        ++memStallCycles_;
        stats_.inc("stall.memory");
    }
}

bool
Core::dispatchMemOp(Cycle now)
{
    const trace::TraceItem &op = *pendingMemOp_;
    const auto result = cache_.access(op.addr, op.isWrite, now);

    if (result.kind == cache::AccessKind::Blocked) {
        stats_.inc("dispatch.blocked");
        dispatchBlocked_ = true;
        return false; // retry next cycle; dispatch stalls
    }
    dispatchBlocked_ = false;

    Entry e;
    e.seq = nextSeq_++;
    if (op.isWrite) {
        // Stores drain through the store buffer: retire next cycle.
        e.isLoad = false;
        e.readyAt = now + 1;
    } else {
        e.isLoad = true;
        switch (result.kind) {
          case cache::AccessKind::L1Hit:
          case cache::AccessKind::L2Hit:
            e.readyAt = result.completesAt;
            break;
          case cache::AccessKind::Miss:
          case cache::AccessKind::Coalesced:
            e.readyAt = kNoCycle;
            waiting_[result.lineAddr].push_back(e.seq);
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::CoreMemIssue,
                             .core = id_, .addr = result.lineAddr,
                             .arg = op.isWrite);
            break;
          case cache::AccessKind::Blocked:
            camo_panic("unreachable");
        }
    }
    window_.push_back(e);
    pendingMemOp_.reset();
    return true;
}

void
Core::dispatch(Cycle now)
{
    if (now < waitUntil_)
        return; // busy-waiting on wall-clock time (TraceItem::waitCycles)
    std::uint32_t n = 0;
    while (n < cfg_.width && window_.size() < cfg_.windowSize) {
        if (pendingGap_ > 0) {
            // A run of non-memory instructions: 1-cycle latency each.
            Entry e;
            e.seq = nextSeq_++;
            e.readyAt = now + 1;
            window_.push_back(e);
            --pendingGap_;
            ++n;
            continue;
        }
        if (pendingMemOp_) {
            if (!dispatchMemOp(now))
                return; // MSHR pressure: stall dispatch entirely
            ++n;
            continue;
        }
        const trace::TraceItem item = trace_.next(now);
        pendingGap_ = item.gapInstrs;
        if (item.hasMemOp())
            pendingMemOp_ = item;
        if (item.waitCycles > 0) {
            waitUntil_ = now + item.waitCycles;
            return; // the rest of the item dispatches after the wait
        }
        if (pendingGap_ == 0 && !pendingMemOp_) {
            // Instruction-only item with zero gap: nothing to do, but
            // avoid spinning forever on degenerate traces.
            pendingGap_ = 1;
        }
    }
}

void
Core::tick(Cycle now)
{
    ++cycles_;
    retire(now);
    dispatch(now);
}

Cycle
Core::nextEventCycle(Cycle from) const
{
    Cycle ev = kNoCycle;
    if (!window_.empty() && window_.front().readyAt != kNoCycle)
        ev = std::max(from, window_.front().readyAt); // head retires
    if (window_.size() < cfg_.windowSize) {
        // Dispatch makes progress once any busy-wait elapses — unless
        // it is stuck retrying an MSHR-blocked access, which only a
        // fill (an external event) can unblock.
        if (!(pendingMemOp_ && dispatchBlocked_))
            ev = std::min(ev, std::max(from, waitUntil_));
    }
    return ev;
}

void
Core::skipIdleCycles(Cycle n)
{
    cycles_ += n;
    // Retirement stalled on a memory-waiting head every skipped cycle.
    if (!window_.empty() && window_.front().isLoad) {
        memStallCycles_ += n;
        stats_.inc("stall.memory", n);
    }
    // An MSHR-blocked dispatch retries (and re-misses the caches)
    // every cycle; replay that accounting in batch.
    if (pendingMemOp_ && dispatchBlocked_ &&
        window_.size() < cfg_.windowSize) {
        stats_.inc("dispatch.blocked", n);
        cache_.noteBlockedRetries(n, pendingMemOp_->isWrite);
    }
}

void
Core::onFill(Addr line, Cycle completes_at)
{
    dispatchBlocked_ = false; // an MSHR freed; retries can succeed
    auto it = waiting_.find(line);
    if (it == waiting_.end())
        return; // store-miss fill: nothing blocked on it
    // Seq numbers map to window positions via the head's seq.
    for (const std::uint64_t seq : it->second) {
        if (window_.empty())
            break;
        const std::uint64_t head_seq = window_.front().seq;
        if (seq < head_seq)
            continue; // already retired (cannot happen for loads)
        const std::size_t idx = static_cast<std::size_t>(seq - head_seq);
        if (idx < window_.size() && window_[idx].seq == seq)
            window_[idx].readyAt = completes_at;
    }
    waiting_.erase(it);
    stats_.inc("fills.received");
}

} // namespace camo::core
