/**
 * @file
 * Trace-driven out-of-order core model (Table II: 2.4 GHz, 4-wide,
 * 128-entry instruction window).
 *
 * The model captures what Camouflage's evaluation needs from a core:
 * memory-level parallelism bounded by the window and the MSHRs, and
 * retirement stalls when the window head waits on memory. Instructions
 * enter the window up to `width` per cycle; non-memory instructions
 * complete next cycle; loads complete when their cache access (or LLC
 * fill) returns; stores retire through a store buffer immediately
 * after issuing their access.
 */

#ifndef CAMO_CORE_CORE_H
#define CAMO_CORE_CORE_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/common/arena.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"
#include "src/trace/trace.h"

namespace camo::core {

/** Core pipeline parameters. */
struct CoreConfig
{
    std::uint32_t width = 4;       ///< fetch/retire width
    std::uint32_t windowSize = 128;///< instruction window entries
};

/** One simulated core. */
class Core final : public sim::Component
{
  public:
    /** `arena` (optional) backs the instruction window and the
     *  waiting-load table; see src/common/arena.h. */
    Core(CoreId id, const CoreConfig &cfg, trace::TraceSource &trace,
         cache::CacheHierarchy &cache, Arena *arena = nullptr);

    /** Advance one CPU cycle: retire, then dispatch. */
    void tick(Cycle now) override;

    /**
     * An LLC fill for `line` completed; wake loads waiting on it.
     * @param completes_at cycle the data becomes usable.
     */
    void onFill(Addr line, Cycle completes_at);

    CoreId id() const { return id_; }
    std::uint64_t retired() const { return retired_; }
    std::uint64_t cycles() const { return cycles_; }
    double ipc() const
    {
        return cycles_ ? static_cast<double>(retired_) / cycles_ : 0.0;
    }
    /** Cycles the core retired nothing while the window head waited on
     *  a memory access (the MISE alpha numerator). */
    std::uint64_t memStallCycles() const { return memStallCycles_; }
    double
    alpha() const
    {
        return cycles_ ? static_cast<double>(memStallCycles_) / cycles_
                       : 0.0;
    }

    /** Reset retired/cycle/stall counters (epoch boundaries). */
    void clearEpochCounters();

    /**
     * Earliest cycle >= `from` at which tick() could make progress
     * (retire an entry, dispatch, fetch trace items). kNoCycle when
     * only an external event (an LLC fill) can unblock the core.
     * Cycles before it are idle; account them via skipIdleCycles().
     */
    Cycle nextEventCycle(Cycle from) const;

    /** Account `n` skipped idle cycles exactly as `n` tick() calls in
     *  the current (provably idle) state would. */
    void skipIdleCycles(Cycle n) override;

    /** Observability hook (nullptr disables emission). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    const StatGroup &stats() const { return stats_; }

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle from) const override
    {
        return nextEventCycle(from);
    }
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    void reset() override { clearEpochCounters(); }
    void registerStats(obs::StatRegistry &reg) const override;

  private:
    struct Entry
    {
        bool isLoad = false;   ///< waiting-on-memory retirement rule
        Cycle readyAt = 0;     ///< kNoCycle while the fill is pending
        std::uint64_t seq = 0;
    };

    void retire(Cycle now);
    void dispatch(Cycle now);
    bool dispatchMemOp(Cycle now);

    CoreId id_;
    CoreConfig cfg_;
    trace::TraceSource &trace_;
    cache::CacheHierarchy &cache_;

    ArenaDeque<Entry> window_;
    std::uint64_t nextSeq_ = 0;
    /** Loads waiting on an LLC fill: line -> window seq numbers. */
    ArenaMap<Addr, std::vector<std::uint64_t>> waiting_;

    /** Trace decomposition state. */
    std::uint64_t pendingGap_ = 0;
    std::optional<trace::TraceItem> pendingMemOp_;
    Cycle waitUntil_ = 0; ///< busy-wait deadline (wall-clock pacing)
    /** The last dispatch attempt hit MSHR back-pressure; retries are
     *  futile (and batchable) until a fill arrives. */
    bool dispatchBlocked_ = false;

    std::uint64_t retired_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t memStallCycles_ = 0;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace camo::core

#endif // CAMO_CORE_CORE_H
