/**
 * @file
 * A single set-associative cache array with LRU replacement.
 *
 * This is the tag/state array only: timing and miss handling live in
 * CacheHierarchy. Write-back, write-allocate.
 */

#ifndef CAMO_CACHE_CACHE_H
#define CAMO_CACHE_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace camo::cache {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitLatency = 4; ///< CPU cycles

    std::uint32_t numSets() const { return sizeBytes / (ways * lineBytes); }
};

/** A line evicted by an insertion. */
struct Eviction
{
    Addr lineAddr = kNoAddr;
    bool dirty = false;
};

/** Set-associative tag array with true-LRU. */
class CacheArray
{
  public:
    explicit CacheArray(const CacheConfig &cfg);

    /** Align an address down to its line base. */
    Addr lineAddrOf(Addr addr) const;

    /** Is the line present? Does not update LRU. */
    bool contains(Addr addr) const;

    /** Is the line present and dirty? */
    bool isDirty(Addr addr) const;

    /**
     * Look up and, on hit, update LRU (and dirty bit if is_write).
     * @return true on hit.
     */
    bool access(Addr addr, bool is_write);

    /**
     * Insert a line (allocating in this set), evicting LRU if needed.
     * @return the evicted line, if a valid line was displaced.
     */
    std::optional<Eviction> insert(Addr addr, bool dirty);

    /** Remove a line if present; @return whether it was dirty. */
    bool invalidate(Addr addr);

    /** Batch-account `n` repeated missing lookups (idle-skip replay
     *  of an MSHR-blocked access retried every cycle). */
    void
    noteRetriedMisses(std::uint64_t n, bool is_write)
    {
        stats_.inc(is_write ? "misses.write" : "misses.read", n);
    }

    const CacheConfig &config() const { return cfg_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; ///< LRU timestamp
    };

    std::uint32_t setOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    CacheConfig cfg_;
    std::uint32_t lineBits_;
    std::uint32_t setBits_;
    std::vector<Line> lines_; ///< sets * ways, row-major by set
    std::uint64_t useClock_ = 0;
    StatGroup stats_;
};

} // namespace camo::cache

#endif // CAMO_CACHE_CACHE_H
