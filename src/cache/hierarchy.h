/**
 * @file
 * Per-core two-level cache hierarchy with miss status handling
 * registers (Table II: 32KB 4-way L1, 128KB 8-way private L2/LLC,
 * 64B lines, 8 MSHRs).
 *
 * The hierarchy turns a core's load/store stream into the LLC-miss
 * transaction stream that Camouflage shapes: read fills for misses and
 * posted writes for dirty evictions.
 */

#ifndef CAMO_CACHE_HIERARCHY_H
#define CAMO_CACHE_HIERARCHY_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/cache/cache.h"
#include "src/common/arena.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"

namespace camo::cache {

/** Outcome classes of a core-side access. */
enum class AccessKind
{
    L1Hit,    ///< completes after L1 latency
    L2Hit,    ///< completes after L2 latency
    Miss,     ///< LLC miss issued to memory; completes on fill
    Coalesced,///< attached to an outstanding miss to the same line
    Blocked,  ///< no MSHR available; retry later
};

/** Result of CacheHierarchy::access(). */
struct AccessResult
{
    AccessKind kind = AccessKind::Blocked;
    /** Completion cycle for hits; kNoCycle for misses (fill decides). */
    Cycle completesAt = kNoCycle;
    /** For Miss/Coalesced: the line whose fill completes this access. */
    Addr lineAddr = kNoAddr;
};

/** Hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 4, 64, 4};
    CacheConfig l2{128 * 1024, 8, 64, 12};
    std::uint32_t mshrs = 8; ///< outstanding distinct LLC-miss lines
    /**
     * Next-line prefetch on LLC miss: fetch line+1 alongside each
     * demand miss when an MSHR is free. Note for security studies:
     * prefetch traffic flows through the Camouflage shapers like all
     * other LLC-miss traffic, so it is shaped (and counted) too.
     */
    bool nextLinePrefetch = false;
};

/** One core's L1 + L2 and the memory-facing miss machinery.
 *
 * A passive sim::Component: it acts only when its owner calls
 * access()/onFill(), so tick() is a no-op and it never constrains
 * fast-forward. */
class CacheHierarchy final : public sim::Component
{
  public:
    /** `arena` (optional) backs the MSHR bookkeeping containers; see
     *  src/common/arena.h for the lifetime rules. */
    CacheHierarchy(CoreId core, const HierarchyConfig &cfg,
                   Arena *arena = nullptr);

    /**
     * Perform a demand access.
     * Misses (and dirty-eviction writebacks) append MemRequests to the
     * outgoing queue retrievable via popOutgoing().
     */
    AccessResult access(Addr addr, bool is_write, Cycle now);

    /**
     * Deliver a memory read response for `lineAddr`.
     * Fills L2 then L1, releases the MSHR, and may enqueue writeback
     * requests for displaced dirty lines.
     * @return completion cycle for the accesses waiting on this line.
     */
    Cycle onFill(Addr lineAddr, Cycle now);

    /** Drain memory-bound requests produced since the last call. */
    std::vector<MemRequest> popOutgoing();

    /** In-place access to the pending outgoing requests; pair with
     *  clearOutgoing() to drain without reallocating per miss. */
    std::vector<MemRequest> &outgoing() { return outgoing_; }
    void clearOutgoing() { outgoing_.clear(); }

    /** Batch-account `n` cycles of an MSHR-blocked access being
     *  retried (idle-skip replay: each retry re-misses L1 and L2 and
     *  records a blocked access here). */
    void noteBlockedRetries(std::uint64_t n, bool is_write);

    std::uint32_t mshrsInUse() const
    {
        return static_cast<std::uint32_t>(mshr_.size());
    }
    bool mshrAvailable() const { return mshr_.size() < cfg_.mshrs; }
    bool hasOutstanding(Addr lineAddr) const
    {
        return mshr_.count(lineAddr) > 0;
    }

    const CacheArray &l1() const { return l1_; }
    const CacheArray &l2() const { return l2_; }
    const HierarchyConfig &config() const { return cfg_; }
    const StatGroup &stats() const { return stats_; }

    /** Observability hook (nullptr disables emission). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle /*from*/) const override
    {
        return kNoCycle; // passive: only acts when called
    }
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    void registerStats(obs::StatRegistry &reg) const override;

  private:
    void emitWriteback(Addr lineAddr, Cycle now);
    MemRequest makeRequest(Addr addr, bool is_write, Cycle now);

    CoreId core_;
    HierarchyConfig cfg_;
    CacheArray l1_;
    CacheArray l2_;
    /** Outstanding LLC misses: line address -> number of coalesced
     *  demand accesses waiting on the fill. */
    ArenaMap<Addr, std::uint32_t> mshr_;
    /** Lines whose outstanding miss was caused by a store
     *  (write-allocate: the fill installs them dirty). */
    ArenaSet<Addr> pendingStoreLines_;
    std::vector<MemRequest> outgoing_;
    ReqId nextId_ = 1;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace camo::cache

#endif // CAMO_CACHE_HIERARCHY_H
