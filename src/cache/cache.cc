#include "src/cache/cache.h"

#include <bit>

#include "src/common/logging.h"

namespace camo::cache {

CacheArray::CacheArray(const CacheConfig &cfg) : cfg_(cfg)
{
    camo_assert(cfg.lineBytes > 0 && std::has_single_bit(cfg.lineBytes),
                "line size must be a power of two");
    camo_assert(cfg.ways > 0, "cache needs at least one way");
    const std::uint32_t sets = cfg.numSets();
    camo_assert(sets > 0 && std::has_single_bit(sets),
                "set count must be a positive power of two (size=",
                cfg.sizeBytes, " ways=", cfg.ways, ")");
    lineBits_ = static_cast<std::uint32_t>(std::countr_zero(cfg.lineBytes));
    setBits_ = static_cast<std::uint32_t>(std::countr_zero(sets));
    lines_.resize(static_cast<std::size_t>(sets) * cfg.ways);
}

Addr
CacheArray::lineAddrOf(Addr addr) const
{
    return addr & ~((static_cast<Addr>(1) << lineBits_) - 1);
}

std::uint32_t
CacheArray::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineBits_) &
                                      ((1ULL << setBits_) - 1));
}

std::uint64_t
CacheArray::tagOf(Addr addr) const
{
    return addr >> (lineBits_ + setBits_);
}

CacheArray::Line *
CacheArray::find(Addr addr)
{
    const std::uint32_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

bool
CacheArray::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
CacheArray::isDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line != nullptr && line->dirty;
}

bool
CacheArray::access(Addr addr, bool is_write)
{
    Line *line = find(addr);
    if (line == nullptr) {
        stats_.inc(is_write ? "misses.write" : "misses.read");
        return false;
    }
    line->lastUse = ++useClock_;
    if (is_write)
        line->dirty = true;
    stats_.inc(is_write ? "hits.write" : "hits.read");
    return true;
}

std::optional<Eviction>
CacheArray::insert(Addr addr, bool dirty)
{
    // Refill of a line that is already present just merges state.
    if (Line *line = find(addr)) {
        line->lastUse = ++useClock_;
        line->dirty = line->dirty || dirty;
        return std::nullopt;
    }

    const std::uint32_t set = setOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    Line *victim = &base[0];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    std::optional<Eviction> evicted;
    if (victim->valid) {
        const Addr victim_addr =
            (victim->tag << (lineBits_ + setBits_)) |
            (static_cast<Addr>(set) << lineBits_);
        evicted = Eviction{victim_addr, victim->dirty};
        stats_.inc(victim->dirty ? "evictions.dirty" : "evictions.clean");
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tagOf(addr);
    victim->lastUse = ++useClock_;
    return evicted;
}

bool
CacheArray::invalidate(Addr addr)
{
    Line *line = find(addr);
    if (line == nullptr)
        return false;
    const bool dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return dirty;
}

} // namespace camo::cache
