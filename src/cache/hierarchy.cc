#include "src/cache/hierarchy.h"

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::cache {

CacheHierarchy::CacheHierarchy(CoreId core, const HierarchyConfig &cfg,
                               Arena *arena)
    : sim::Component("core" + std::to_string(core) + ".cache"),
      core_(core), cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2),
      mshr_(ArenaAllocator<std::pair<const Addr, std::uint32_t>>(arena)),
      pendingStoreLines_(ArenaAllocator<Addr>(arena))
{
    camo_assert(cfg.l1.lineBytes == cfg.l2.lineBytes,
                "L1/L2 line sizes must match");
    camo_assert(cfg.mshrs >= 1, "need at least one MSHR");
}

void
CacheHierarchy::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
}

MemRequest
CacheHierarchy::makeRequest(Addr addr, bool is_write, Cycle now)
{
    MemRequest req;
    req.id = (static_cast<ReqId>(core_) << 48) | nextId_++;
    req.core = core_;
    req.addr = addr;
    req.isWrite = is_write;
    req.created = now;
    return req;
}

void
CacheHierarchy::emitWriteback(Addr lineAddr, Cycle now)
{
    outgoing_.push_back(makeRequest(lineAddr, true, now));
    stats_.inc("writebacks");
    CAMO_TRACE_EVENT(tracer_, .at = now,
                     .type = obs::EventType::CacheWriteback,
                     .core = core_, .id = outgoing_.back().id,
                     .addr = lineAddr);
}

AccessResult
CacheHierarchy::access(Addr addr, bool is_write, Cycle now)
{
    const Addr line = l1_.lineAddrOf(addr);
    stats_.inc(is_write ? "accesses.write" : "accesses.read");

    if (l1_.access(addr, is_write))
        return {AccessKind::L1Hit, now + cfg_.l1.hitLatency, line};

    if (l2_.access(addr, /*is_write=*/false)) {
        // Fill L1 from L2; a displaced dirty L1 line merges into L2.
        if (auto ev = l1_.insert(line, is_write)) {
            if (ev->dirty) {
                if (auto l2ev = l2_.insert(ev->lineAddr, true);
                    l2ev && l2ev->dirty) {
                    emitWriteback(l2ev->lineAddr, now);
                }
            }
        }
        return {AccessKind::L2Hit, now + cfg_.l2.hitLatency, line};
    }

    // LLC miss. Coalesce into an outstanding fill when possible.
    if (auto it = mshr_.find(line); it != mshr_.end()) {
        ++it->second;
        stats_.inc("mshr.coalesced");
        return {AccessKind::Coalesced, kNoCycle, line};
    }
    if (!mshrAvailable()) {
        stats_.inc("mshr.blocked");
        return {AccessKind::Blocked, kNoCycle, line};
    }

    mshr_.emplace(line, 1);
    MemRequest req = makeRequest(line, false, now);
    // A store miss fetches the line (write-allocate); the dirty bit is
    // set at fill time via the pendingStoreMiss marker below.
    if (is_write)
        pendingStoreLines_.insert(line);
    outgoing_.push_back(req);
    stats_.inc("llc.misses");
    CAMO_TRACE_EVENT(tracer_, .at = now,
                     .type = obs::EventType::LlcMiss, .core = core_,
                     .id = req.id, .addr = line, .arg = 0);

    // Optional next-line prefetch riding on the demand miss.
    if (cfg_.nextLinePrefetch) {
        const Addr next = line + cfg_.l2.lineBytes;
        if (mshrAvailable() && !mshr_.count(next) &&
            !l2_.contains(next)) {
            mshr_.emplace(next, 0); // no demand access waits on it
            outgoing_.push_back(makeRequest(next, false, now));
            stats_.inc("prefetches.issued");
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::LlcMiss,
                             .core = core_,
                             .id = outgoing_.back().id, .addr = next,
                             .arg = 1);
        }
    }
    return {AccessKind::Miss, kNoCycle, line};
}

Cycle
CacheHierarchy::onFill(Addr lineAddr, Cycle now)
{
    auto it = mshr_.find(lineAddr);
    camo_assert(it != mshr_.end(),
                "fill for a line with no outstanding MSHR: ", lineAddr);
    mshr_.erase(it);

    const bool dirty = pendingStoreLines_.erase(lineAddr) > 0;

    // Fill L2 (dirty evictions go to memory), then L1.
    if (auto l2ev = l2_.insert(lineAddr, dirty); l2ev && l2ev->dirty)
        emitWriteback(l2ev->lineAddr, now);
    if (auto l1ev = l1_.insert(lineAddr, dirty)) {
        if (l1ev->dirty) {
            if (auto l2ev = l2_.insert(l1ev->lineAddr, true);
                l2ev && l2ev->dirty) {
                emitWriteback(l2ev->lineAddr, now);
            }
        }
    }
    stats_.inc("fills");
    return now + cfg_.l1.hitLatency; // fill-to-use forwarding latency
}

std::vector<MemRequest>
CacheHierarchy::popOutgoing()
{
    std::vector<MemRequest> out;
    out.swap(outgoing_);
    return out;
}

void
CacheHierarchy::noteBlockedRetries(std::uint64_t n, bool is_write)
{
    stats_.inc(is_write ? "accesses.write" : "accesses.read", n);
    stats_.inc("mshr.blocked", n);
    l1_.noteRetriedMisses(n, is_write);
    l2_.noteRetriedMisses(n, /*is_write=*/false); // L2 probes as reads
}

} // namespace camo::cache
