/**
 * @file
 * Minimal statistics package: named scalar counters and averages with
 * a registry per component, plus a formatter for end-of-run dumps.
 */

#ifndef CAMO_COMMON_STATS_H
#define CAMO_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace camo {

/**
 * Running scalar statistic (count / sum / min / max / mean), with
 * Welford's online algorithm for numerically stable variance.
 */
class Scalar
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance (0 with fewer than two samples). */
    double variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }
    double stddev() const;
    void clear() { *this = Scalar(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0; ///< Welford sum of squared deviations
};

/**
 * A registry of named counters and scalars owned by one component.
 * Components expose `stats()` so tests and benches can inspect them.
 */
class StatGroup
{
  public:
    /** Increment a named counter. */
    void inc(const std::string &name, std::uint64_t by = 1);

    /** Sample a named scalar. */
    void sample(const std::string &name, double v);

    std::uint64_t counter(const std::string &name) const;
    const Scalar &scalar(const std::string &name) const;
    bool hasCounter(const std::string &name) const;
    bool hasScalar(const std::string &name) const;

    void clear();

    /** Human-readable dump, one line per stat. */
    std::string dump(const std::string &prefix = "") const;

    /** Iteration access (the observability registry serializes us). */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Scalar> scalars_;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &values);

} // namespace camo

#endif // CAMO_COMMON_STATS_H
