#include "src/common/build_info.h"

// The generated stamp lives in the build tree. Fall back to "unknown"
// placeholders so the file still compiles standalone (e.g. in the
// header-self-containment CI job or a bare syntax check).
#if __has_include("camo_build_info.h")
#include "camo_build_info.h"
#else
#define CAMO_BUILD_GIT_SHA "unknown"
#define CAMO_BUILD_GIT_DIRTY 0
#define CAMO_BUILD_COMPILER "unknown"
#define CAMO_BUILD_TYPE "unknown"
#define CAMO_BUILD_CXX_FLAGS ""
#endif

namespace camo {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = {
        CAMO_BUILD_GIT_SHA, CAMO_BUILD_GIT_DIRTY != 0,
        CAMO_BUILD_COMPILER, CAMO_BUILD_TYPE, CAMO_BUILD_CXX_FLAGS};
    return info;
}

std::string
buildVersionLine()
{
    const BuildInfo &b = buildInfo();
    std::string line = "camouflage " + b.gitSha;
    if (b.gitDirty)
        line += "-dirty";
    line += " (" + b.compiler + ", " + b.buildType + ")";
    return line;
}

} // namespace camo
