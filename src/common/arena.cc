#include "src/common/arena.h"

#include <bit>
#include <cstring>

#include "src/common/logging.h"

namespace camo {

Arena::Arena(std::size_t chunk_bytes) : chunkBytes_(chunk_bytes)
{
    camo_assert(chunk_bytes >= kMaxPooled,
                "arena chunks must hold the largest pooled block");
}

Arena::~Arena() = default;

std::size_t
Arena::bucketOf(std::size_t bytes)
{
    const std::size_t rounded =
        std::bit_ceil(bytes < kMinBucket ? kMinBucket : bytes);
    return rounded;
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    ++allocCalls_;
    bytesRequested_ += bytes;
    if (bytes > kMaxPooled || align > kMinBucket) {
        ++heapFallbacks_;
        if (align > alignof(std::max_align_t))
            return ::operator new(bytes, std::align_val_t(align));
        return ::operator new(bytes);
    }
    const std::size_t bucket = bucketOf(bytes);
    const std::size_t idx =
        static_cast<std::size_t>(std::bit_width(bucket) -
                                 std::bit_width(kMinBucket));
    if (FreeNode *node = freeLists_[idx]) {
        freeLists_[idx] = node->next;
        ++freeListHits_;
        return node;
    }
    // Bump-allocate from the current chunk; every bucket is a
    // power-of-two multiple of 16, so a 16-aligned cursor satisfies
    // any pooled alignment.
    if (current_ >= chunks_.size() ||
        cursor_ + bucket > chunks_[current_].size) {
        if (current_ < chunks_.size())
            ++current_;
        if (current_ >= chunks_.size()) {
            Chunk c;
            c.size = chunkBytes_;
            c.data = std::make_unique<unsigned char[]>(c.size);
            chunks_.push_back(std::move(c));
        }
        cursor_ = 0;
    }
    void *p = chunks_[current_].data.get() + cursor_;
    cursor_ += bucket;
    return p;
}

void
Arena::deallocate(void *p, std::size_t bytes,
                  std::size_t align) noexcept
{
    ++freeCalls_;
    if (bytes > kMaxPooled || align > kMinBucket) {
        if (align > alignof(std::max_align_t)) {
            ::operator delete(p, std::align_val_t(align));
            return;
        }
        ::operator delete(p);
        return;
    }
    const std::size_t bucket = bucketOf(bytes);
    const std::size_t idx =
        static_cast<std::size_t>(std::bit_width(bucket) -
                                 std::bit_width(kMinBucket));
    auto *node = static_cast<FreeNode *>(p);
    node->next = freeLists_[idx];
    freeLists_[idx] = node;
}

void
Arena::reset() noexcept
{
    current_ = 0;
    cursor_ = 0;
    std::memset(freeLists_, 0, sizeof freeLists_);
    ++resets_;
}

} // namespace camo
