/**
 * @file
 * Bump/pool allocator for the simulator's hot request path.
 *
 * A sweep constructs and tears down one `sim::System` per job; inside
 * a run, the per-request containers (MSHR maps, shaper queues,
 * controller transaction queues, instruction windows) churn through
 * millions of small fixed-size node allocations. An Arena serves
 * those from bump-allocated chunks with per-size-class free lists, so
 * a worker thread reuses the same warm pages across every job it runs
 * instead of round-tripping each node through the global heap.
 *
 * Lifetime rules (DESIGN.md §16):
 *  - An Arena is single-threaded: one System (and its components) per
 *    arena at a time, on the thread that runs it.
 *  - `reset()` rewinds every chunk for reuse. It must only be called
 *    when no container constructed from the arena is still alive —
 *    the per-worker pattern is reset(), construct System, run,
 *    destroy System, repeat.
 *  - A default-constructed ArenaAllocator (null arena) falls back to
 *    the global heap, so components stay usable standalone in tests.
 *
 * Allocation behaviour is invisible to the simulation: containers are
 * bit-exact regardless of which arena (or none) backs them. The
 * counters exported through the stats registry depend only on the
 * container operation sequence, so they are deterministic too.
 */

#ifndef CAMO_COMMON_ARENA_H
#define CAMO_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <new>
#include <set>
#include <vector>

namespace camo {

/** Chunked bump allocator with size-class free lists. */
class Arena
{
  public:
    /** Largest request served from chunks; bigger ones go straight to
     *  operator new (rare: container rehashes/large deque maps). */
    static constexpr std::size_t kMaxPooled = 4096;
    static constexpr std::size_t kMinBucket = 16;
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate `bytes` aligned to `align` (align must be <= 16 for
     *  pooled sizes; larger alignments fall back to the heap). */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Return a block obtained from allocate() with the same size and
     *  alignment. */
    void deallocate(void *p, std::size_t bytes,
                    std::size_t align) noexcept;

    /**
     * Rewind every chunk for reuse and drop the free lists. All
     * memory handed out before the reset is invalidated; see the
     * lifetime rules above.
     */
    void reset() noexcept;

    // ----- counters (exported via the stats registry) --------------
    std::uint64_t allocCalls() const { return allocCalls_; }
    std::uint64_t freeCalls() const { return freeCalls_; }
    std::uint64_t freeListHits() const { return freeListHits_; }
    std::uint64_t bytesRequested() const { return bytesRequested_; }
    std::uint64_t heapFallbacks() const { return heapFallbacks_; }
    std::uint64_t resets() const { return resets_; }
    std::size_t chunkCount() const { return chunks_.size(); }
    std::uint64_t
    bytesReserved() const
    {
        std::uint64_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.size;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };
    struct FreeNode
    {
        FreeNode *next;
    };

    static std::size_t bucketOf(std::size_t bytes);

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t current_ = 0; ///< chunk being bumped
    std::size_t cursor_ = 0;  ///< offset into chunks_[current_]
    /** Free lists indexed by log2(bucket) - log2(kMinBucket). */
    static constexpr std::size_t kNumBuckets = 9; // 16..4096
    FreeNode *freeLists_[kNumBuckets] = {};

    std::uint64_t allocCalls_ = 0;
    std::uint64_t freeCalls_ = 0;
    std::uint64_t freeListHits_ = 0;
    std::uint64_t bytesRequested_ = 0;
    std::uint64_t heapFallbacks_ = 0;
    std::uint64_t resets_ = 0;
};

/**
 * STL allocator over an Arena. Null arena (the default) degrades to
 * the global heap, so arena-typed containers behave identically when
 * a component is constructed without one.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(Arena *arena) noexcept : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr) {
            return static_cast<T *>(
                arena_->allocate(bytes, alignof(T)));
        }
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        if (arena_ != nullptr) {
            arena_->deallocate(p, n * sizeof(T), alignof(T));
            return;
        }
        ::operator delete(p);
    }

    Arena *arena() const noexcept { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_ = nullptr;
};

/** Container aliases for the hot request/response structures. */
template <typename T>
using ArenaDeque = std::deque<T, ArenaAllocator<T>>;
template <typename K, typename V, typename Cmp = std::less<K>>
using ArenaMap =
    std::map<K, V, Cmp, ArenaAllocator<std::pair<const K, V>>>;
template <typename K, typename Cmp = std::less<K>>
using ArenaSet = std::set<K, Cmp, ArenaAllocator<K>>;

} // namespace camo

#endif // CAMO_COMMON_ARENA_H
