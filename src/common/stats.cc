#include "src/common/stats.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace camo {

double
Scalar::stddev() const
{
    return std::sqrt(variance());
}

void
StatGroup::inc(const std::string &name, std::uint64_t by)
{
    counters_[name] += by;
}

void
StatGroup::sample(const std::string &name, double v)
{
    scalars_[name].sample(v);
}

std::uint64_t
StatGroup::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const Scalar &
StatGroup::scalar(const std::string &name) const
{
    static const Scalar empty;
    auto it = scalars_.find(name);
    return it == scalars_.end() ? empty : it->second;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return scalars_.count(name) > 0;
}

void
StatGroup::clear()
{
    counters_.clear();
    scalars_.clear();
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, v] : counters_)
        os << prefix << name << " = " << v << "\n";
    for (const auto &[name, s] : scalars_) {
        os << prefix << name << " : count=" << s.count()
           << " mean=" << s.mean() << " min=" << s.min()
           << " max=" << s.max() << " stddev=" << s.stddev() << "\n";
    }
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        camo_assert(v > 0.0, "geomean requires positive values, got ",
                    v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace camo
