/**
 * @file
 * Fundamental scalar types shared by every Camouflage subsystem.
 */

#ifndef CAMO_COMMON_TYPES_H
#define CAMO_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace camo {

/** Simulation time in CPU cycles (2.4 GHz in the paper's Table II). */
using Cycle = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a processor core / hardware thread. */
using CoreId = std::uint32_t;

/** Monotonically increasing identifier for memory transactions. */
using ReqId = std::uint64_t;

/** Sentinel for "no cycle" / "not yet happened". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel core id used for traffic not belonging to any core. */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

} // namespace camo

#endif // CAMO_COMMON_TYPES_H
