#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace camo {

Histogram::Histogram(std::vector<std::uint64_t> lower_edges)
    : edges_(std::move(lower_edges)), counts_(edges_.size(), 0)
{
    camo_assert(!edges_.empty(), "histogram needs at least one bin");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        camo_assert(edges_[i] > edges_[i - 1],
                    "histogram edges must be strictly increasing");
    }
}

Histogram
Histogram::makeGeometric(std::size_t nbins, std::uint64_t base, double ratio)
{
    camo_assert(nbins >= 1 && base >= 1 && ratio > 1.0,
                "bad geometric histogram spec");
    std::vector<std::uint64_t> edges;
    edges.reserve(nbins);
    edges.push_back(0);
    double edge = static_cast<double>(base);
    for (std::size_t i = 1; i < nbins; ++i) {
        auto e = static_cast<std::uint64_t>(edge);
        if (!edges.empty() && e <= edges.back())
            e = edges.back() + 1;
        edges.push_back(e);
        edge *= ratio;
    }
    return Histogram(std::move(edges));
}

Histogram
Histogram::makeLinear(std::size_t nbins, std::uint64_t step)
{
    camo_assert(nbins >= 1 && step >= 1, "bad linear histogram spec");
    std::vector<std::uint64_t> edges;
    edges.reserve(nbins);
    for (std::size_t i = 0; i < nbins; ++i)
        edges.push_back(i * step);
    return Histogram(std::move(edges));
}

std::size_t
Histogram::binOf(std::uint64_t sample) const
{
    // First edge greater than the sample, minus one.
    auto it = std::upper_bound(edges_.begin(), edges_.end(), sample);
    if (it == edges_.begin())
        return 0; // sample below edge(0); clamp into the first bin
    return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

void
Histogram::add(std::uint64_t sample)
{
    add(sample, 1);
}

void
Histogram::add(std::uint64_t sample, std::uint64_t weight)
{
    counts_[binOf(sample)] += weight;
    total_ += weight;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

std::vector<double>
Histogram::pmf() const
{
    std::vector<double> p(counts_.size(), 0.0);
    if (total_ == 0)
        return p;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    return p;
}

double
Histogram::entropyBits() const
{
    double h = 0.0;
    for (double p : pmf()) {
        if (p > 0.0)
            h -= p * std::log2(p);
    }
    return h;
}

double
Histogram::totalVariationDistance(const Histogram &other) const
{
    camo_assert(numBins() == other.numBins(),
                "TVD requires identical binning");
    const auto p = pmf();
    const auto q = other.pmf();
    double tvd = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        tvd += std::abs(p[i] - q[i]);
    return tvd / 2.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    camo_assert(p > 0.0 && p <= 1.0,
                "percentile needs p in (0, 1], got ", p);
    if (total_ == 0)
        return 0;
    const double target = p * static_cast<double>(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (static_cast<double>(cumulative) >= target)
            return edges_[i];
    }
    return edges_.back();
}

std::string
Histogram::toJson() const
{
    std::ostringstream os;
    os << "{\"edges\":[";
    for (std::size_t i = 0; i < edges_.size(); ++i)
        os << (i ? "," : "") << edges_[i];
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < counts_.size(); ++i)
        os << (i ? "," : "") << counts_[i];
    os << "],\"total\":" << total_ << "}";
    return os.str();
}

std::string
Histogram::toAscii(std::size_t width) const
{
    std::ostringstream os;
    const auto p = pmf();
    for (std::size_t i = 0; i < numBins(); ++i) {
        os << "[" << edges_[i] << ", "
           << (i + 1 < numBins() ? std::to_string(edges_[i + 1]) : "inf")
           << ")\t" << counts_[i] << "\t";
        const auto bar = static_cast<std::size_t>(p[i] * width + 0.5);
        for (std::size_t b = 0; b < bar; ++b)
            os << '#';
        os << "\n";
    }
    return os.str();
}

} // namespace camo
