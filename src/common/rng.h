/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the simulator owns its own Rng seeded
 * from the top-level configuration, so simulations are reproducible
 * bit-for-bit regardless of component tick ordering changes elsewhere.
 *
 * The generator is xoshiro256**, which is small, fast, and has no
 * libstdc++ implementation-defined behaviour (std::mt19937's
 * distributions differ across standard libraries).
 */

#ifndef CAMO_COMMON_RNG_H
#define CAMO_COMMON_RNG_H

#include <cstdint>

#include "src/common/logging.h"

namespace camo {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        camo_assert(bound > 0, "Rng::below requires bound > 0");
        // Lemire's nearly-divisionless rejection method (debiased).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            const std::uint64_t t = (0 - bound) % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        camo_assert(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish burst length: 1 + number of successes before the
     * first failure with success probability p. Bounded by cap.
     */
    std::uint64_t
    burstLength(double p, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace camo

#endif // CAMO_COMMON_RNG_H
