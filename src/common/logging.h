/**
 * @file
 * Error/status reporting in the gem5 tradition: panic() for simulator
 * bugs (aborts), fatal() for user errors (clean exit), warn()/inform()
 * for status.
 */

#ifndef CAMO_COMMON_LOGGING_H
#define CAMO_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace camo {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
fmt(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Set to false to silence warn()/inform() (tests use this). */
void setVerbose(bool verbose);
bool verbose();

} // namespace camo

/**
 * Something that should never happen regardless of user input did
 * happen: an internal bug. Aborts (core-dumpable).
 */
#define camo_panic(...) \
    ::camo::detail::panicImpl(__FILE__, __LINE__, \
                              ::camo::detail::fmt(__VA_ARGS__))

/**
 * The simulation cannot continue because of a user-side problem (bad
 * configuration, invalid arguments). Exits with status 1.
 */
#define camo_fatal(...) \
    ::camo::detail::fatalImpl(__FILE__, __LINE__, \
                              ::camo::detail::fmt(__VA_ARGS__))

/** Non-fatal suspicious condition worth telling the user about. */
#define camo_warn(...) \
    ::camo::detail::warnImpl(__FILE__, __LINE__, \
                             ::camo::detail::fmt(__VA_ARGS__))

/** Plain status message. */
#define camo_inform(...) \
    ::camo::detail::informImpl(::camo::detail::fmt(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define camo_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            camo_panic("assertion failed: " #cond " ", \
                       ::camo::detail::fmt(__VA_ARGS__)); \
        } \
    } while (0)

#endif // CAMO_COMMON_LOGGING_H
