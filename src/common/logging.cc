#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace camo {

namespace {
std::atomic<bool> g_verbose{true};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (verbose())
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    if (verbose())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace camo
