/**
 * @file
 * Rational clock divider used to run the DRAM clock domain off the CPU
 * clock without accumulating drift.
 *
 * DDR3-1333 has a 666.67 MHz command clock; with a 2.4 GHz core that
 * is 3.6 CPU cycles per DRAM cycle. A phase accumulator with exact
 * integer arithmetic (num/den) guarantees the long-run ratio is exact.
 */

#ifndef CAMO_COMMON_CLOCK_H
#define CAMO_COMMON_CLOCK_H

#include <cstdint>

#include "src/common/logging.h"

namespace camo {

/** Emits one derived-domain tick every num/den source ticks. */
class ClockDivider
{
  public:
    /**
     * @param num numerator of source-ticks-per-derived-tick
     * @param den denominator (num/den = e.g. 18/5 for 3.6)
     */
    ClockDivider(std::uint64_t num, std::uint64_t den)
        : num_(num), den_(den)
    {
        camo_assert(num_ >= den_ && den_ > 0,
                    "divider must be >= 1 source tick per derived tick");
    }

    /**
     * Advance one source-domain tick.
     * @return true if the derived domain ticks this source tick.
     */
    bool
    tick()
    {
        phase_ += den_;
        if (phase_ >= num_) {
            phase_ -= num_;
            ++derivedTicks_;
            return true;
        }
        return false;
    }

    std::uint64_t derivedTicks() const { return derivedTicks_; }

    /**
     * Source ticks until the derived domain fires for the `m`-th time
     * from now (m >= 1). tick() called that many times returns true on
     * the last call.
     */
    std::uint64_t
    ticksUntilFire(std::uint64_t m = 1) const
    {
        // Need phase_ + k*den_ >= m*num_  =>  k = ceil((m*num_ -
        // phase_) / den_). phase_ < num_ always, so the argument is
        // positive for m >= 1.
        const std::uint64_t needed = m * num_ - phase_;
        return (needed + den_ - 1) / den_;
    }

    /**
     * Advance `n` source ticks at once, exactly as `n` tick() calls
     * would (including any derived-domain fires within the span).
     */
    void
    skip(std::uint64_t n)
    {
        phase_ += n * den_;
        derivedTicks_ += phase_ / num_;
        phase_ %= num_;
    }

  private:
    std::uint64_t num_;
    std::uint64_t den_;
    std::uint64_t phase_ = 0;
    std::uint64_t derivedTicks_ = 0;
};

} // namespace camo

#endif // CAMO_COMMON_CLOCK_H
