/**
 * @file
 * Length-prefixed byte frames over file descriptors.
 *
 * The one wire encoding shared by every process boundary in the
 * simulator: camosimd's worker/child protocol (src/server/protocol.h
 * delegates here) and the multi-process sweep shards
 * (src/sim/shard.h). A frame is a 4-byte little-endian payload length
 * followed by the payload; a length above the caller's cap is
 * rejected before any allocation, so a corrupt or adversarial peer
 * cannot make the reader balloon.
 */

#ifndef CAMO_COMMON_FRAME_H
#define CAMO_COMMON_FRAME_H

#include <cstdint>
#include <string>

namespace camo::frame {

/** Default payload cap (camosimd job results). */
inline constexpr std::uint32_t kDefaultMaxBytes = 4u << 20;
inline constexpr std::uint32_t kHeaderBytes = 4;

enum class ReadStatus
{
    Ok,
    Eof,      ///< clean end of stream at a frame boundary
    Error,    ///< I/O error or truncated frame
    Oversize, ///< length prefix above the cap
};

/** Append the frame (header + payload) to `out`. */
void encode(const std::string &payload, std::string *out);

/** Decode the little-endian length prefix. */
std::uint32_t decodeLength(const unsigned char *header);

/** Write one frame, retrying on EINTR and short writes. */
bool writeFrame(int fd, const std::string &payload,
                std::uint32_t max_bytes = kDefaultMaxBytes);

/** Read one frame, retrying on EINTR and short reads. */
ReadStatus readFrame(int fd, std::string *payload,
                     std::uint32_t max_bytes = kDefaultMaxBytes);

} // namespace camo::frame

#endif // CAMO_COMMON_FRAME_H
