/**
 * @file
 * Fixed-edge histogram used throughout Camouflage for inter-arrival
 * time distributions.
 *
 * Bin i covers the half-open interval [edge(i), edge(i+1)); the last
 * bin is unbounded above. Edges are strictly increasing and edge(0) is
 * the smallest representable sample (0 by default).
 */

#ifndef CAMO_COMMON_HISTOGRAM_H
#define CAMO_COMMON_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace camo {

/** Histogram over uint64 samples with caller-provided bin edges. */
class Histogram
{
  public:
    /**
     * Build a histogram from explicit lower edges.
     * @param lower_edges strictly increasing lower edge per bin;
     *        lower_edges[0] is typically 0.
     */
    explicit Histogram(std::vector<std::uint64_t> lower_edges);

    /** Geometric edges: 0, base, base*ratio, ... (nbins total). */
    static Histogram makeGeometric(std::size_t nbins, std::uint64_t base,
                                   double ratio);

    /** Linear edges: 0, step, 2*step, ... (nbins total). */
    static Histogram makeLinear(std::size_t nbins, std::uint64_t step);

    /** Index of the bin a sample falls into. */
    std::size_t binOf(std::uint64_t sample) const;

    /** Record one sample. */
    void add(std::uint64_t sample);

    /** Record a sample with an explicit weight. */
    void add(std::uint64_t sample, std::uint64_t weight);

    /** Zero all counts (edges retained). */
    void clear();

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    std::uint64_t totalCount() const { return total_; }
    std::uint64_t lowerEdge(std::size_t bin) const { return edges_.at(bin); }

    /** Per-bin probability mass; all zeros if the histogram is empty. */
    std::vector<double> pmf() const;

    /** Shannon entropy in bits of the pmf (0 if empty). */
    double entropyBits() const;

    /**
     * Total variation distance to another histogram's pmf.
     * @pre identical bin count.
     */
    double totalVariationDistance(const Histogram &other) const;

    /**
     * Lower edge of the first bin whose cumulative mass reaches `p`
     * (0 < p <= 1); 0 for an empty histogram. A bin-granular quantile:
     * percentile(0.5) is the median bin's lower edge.
     */
    std::uint64_t percentile(double p) const;

    /** Render an ASCII bar chart (for bench output). */
    std::string toAscii(std::size_t width = 50) const;

    /**
     * Serialize to a JSON object string:
     * {"edges": [...], "counts": [...], "total": N}.
     */
    std::string toJson() const;

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace camo

#endif // CAMO_COMMON_HISTOGRAM_H
