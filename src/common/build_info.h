/**
 * @file
 * Build provenance: which commit and toolchain produced this binary.
 *
 * The values come from a header generated at build time (see
 * cmake/GenBuildInfo.cmake); only build_info.cc includes it, so this
 * header stays self-contained and nothing recompiles when the sha
 * changes except that one translation unit. Perf reports and
 * `camosim --version` stamp themselves with buildInfo() so every
 * number in a tracked BENCH_*.json is attributable to a commit.
 */

#ifndef CAMO_COMMON_BUILD_INFO_H
#define CAMO_COMMON_BUILD_INFO_H

#include <string>

namespace camo {

struct BuildInfo
{
    std::string gitSha;    ///< short revision, "unknown" outside git
    bool gitDirty = false; ///< uncommitted tracked changes at build
    std::string compiler;  ///< e.g. "GNU 13.2.0"
    std::string buildType; ///< CMAKE_BUILD_TYPE, e.g. "Release"
    std::string cxxFlags;  ///< extra CMAKE_CXX_FLAGS ("" when none)
};

/** The stamp baked into this binary. */
const BuildInfo &buildInfo();

/** One-line human rendering: "camouflage <sha>[-dirty] (<compiler>,
 *  <build type>)". Printed by camosim --version. */
std::string buildVersionLine();

} // namespace camo

#endif // CAMO_COMMON_BUILD_INFO_H
