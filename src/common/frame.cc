#include "src/common/frame.h"

#include <cerrno>
#include <cstddef>
#include <unistd.h>

namespace camo::frame {

void
encode(const std::string &payload, std::string *out)
{
    const auto n = static_cast<std::uint32_t>(payload.size());
    out->push_back(static_cast<char>(n & 0xFF));
    out->push_back(static_cast<char>((n >> 8) & 0xFF));
    out->push_back(static_cast<char>((n >> 16) & 0xFF));
    out->push_back(static_cast<char>((n >> 24) & 0xFF));
    out->append(payload);
}

std::uint32_t
decodeLength(const unsigned char *header)
{
    return static_cast<std::uint32_t>(header[0]) |
           (static_cast<std::uint32_t>(header[1]) << 8) |
           (static_cast<std::uint32_t>(header[2]) << 16) |
           (static_cast<std::uint32_t>(header[3]) << 24);
}

namespace {

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Read exactly `len` bytes; 1 = ok, 0 = clean EOF at offset 0,
 *  -1 = error or truncation. */
int
readAll(int fd, char *data, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, data + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(n);
    }
    return 1;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload, std::uint32_t max_bytes)
{
    if (payload.size() > max_bytes)
        return false;
    std::string buf;
    buf.reserve(kHeaderBytes + payload.size());
    encode(payload, &buf);
    return writeAll(fd, buf.data(), buf.size());
}

ReadStatus
readFrame(int fd, std::string *payload, std::uint32_t max_bytes)
{
    unsigned char header[kHeaderBytes];
    const int h =
        readAll(fd, reinterpret_cast<char *>(header), sizeof header);
    if (h == 0)
        return ReadStatus::Eof;
    if (h < 0)
        return ReadStatus::Error;
    const std::uint32_t len = decodeLength(header);
    if (len > max_bytes)
        return ReadStatus::Oversize;
    payload->resize(len);
    if (len > 0 && readAll(fd, payload->data(), len) != 1)
        return ReadStatus::Error;
    return ReadStatus::Ok;
}

} // namespace camo::frame
