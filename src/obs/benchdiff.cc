#include "src/obs/benchdiff.h"

#include <cstdio>

#include "src/common/build_info.h"

namespace camo::obs {

json::Value
buildInfoJson()
{
    const BuildInfo &b = buildInfo();
    json::Value v = json::Value::makeObject();
    v["git_sha"] = json::Value(b.gitSha);
    v["git_dirty"] = json::Value(b.gitDirty);
    v["compiler"] = json::Value(b.compiler);
    v["build_type"] = json::Value(b.buildType);
    v["cxx_flags"] = json::Value(b.cxxFlags);
    return v;
}

namespace {

/** Numeric field at doc[path0][path1]... or nullptr. */
const json::Value *
findPath(const json::Value &doc, const std::vector<std::string> &path)
{
    const json::Value *at = &doc;
    for (const std::string &key : path) {
        at = at->find(key);
        if (!at)
            return nullptr;
    }
    return at->isNumber() ? at : nullptr;
}

/** single_thread row for `mitigation`, or nullptr. */
const json::Value *
singleThreadRow(const json::Value &doc, const std::string &mitigation)
{
    const json::Value *rows = doc.find("single_thread");
    if (!rows || !rows->isArray())
        return nullptr;
    for (const json::Value &row : rows->asArray()) {
        const json::Value *m = row.find("mitigation");
        if (m && m->isString() && m->asString() == mitigation)
            return &row;
    }
    return nullptr;
}

struct MetricSpec
{
    std::string name;
    bool higherIsBetter;
    bool ratio; ///< machine-independent => gated by default
};

void
compareOne(DiffReport &report, const DiffOptions &opts,
           const std::string &name, const json::Value *before,
           const json::Value *after, bool higher_is_better, bool ratio)
{
    if (!before || !after) {
        report.notes.push_back("metric " + name + " missing in " +
                               (before ? "new" : "baseline") +
                               " report (skipped)");
        return;
    }
    MetricDelta d;
    d.name = name;
    d.before = before->asNumber();
    d.after = after->asNumber();
    d.higherIsBetter = higher_is_better;
    d.gated = ratio || opts.gateAbsolute;
    report.metrics.push_back(d);
}

int
schemaVersionOf(const json::Value &doc)
{
    const json::Value *v = doc.find("schema_version");
    return v && v->isNumber() ? static_cast<int>(v->asNumber()) : 1;
}

} // namespace

std::vector<const MetricDelta *>
DiffReport::regressions() const
{
    std::vector<const MetricDelta *> out;
    for (const MetricDelta &m : metrics) {
        if (m.gated && m.regressed(threshold))
            out.push_back(&m);
    }
    return out;
}

std::string
DiffReport::text() const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-44s %12s %12s %8s  %s\n",
                  "metric", "baseline", "new", "change", "status");
    out += buf;
    for (const MetricDelta &m : metrics) {
        const double change = m.relativeChange() * 100.0;
        const char *status =
            !m.gated ? "info"
                     : (m.regressed(threshold) ? "REGRESSED" : "ok");
        std::snprintf(buf, sizeof buf,
                      "%-44s %12.4g %12.4g %+7.1f%%  %s\n",
                      m.name.c_str(), m.before, m.after, change,
                      status);
        out += buf;
    }
    for (const std::string &n : notes)
        out += "note: " + n + "\n";
    const auto bad = regressions();
    if (bad.empty()) {
        std::snprintf(buf, sizeof buf,
                      "OK: no gated metric regressed more than "
                      "%.0f%%\n", threshold * 100.0);
    } else {
        std::snprintf(buf, sizeof buf,
                      "FAIL: %zu gated metric(s) regressed more than "
                      "%.0f%%\n", bad.size(), threshold * 100.0);
    }
    out += buf;
    return out;
}

DiffReport
diffBenchReports(const json::Value &before, const json::Value &after,
                 const DiffOptions &opts)
{
    DiffReport report;
    report.threshold = opts.threshold;

    const int vb = schemaVersionOf(before);
    const int va = schemaVersionOf(after);
    if (vb != va) {
        report.notes.push_back(
            "schema versions differ (baseline v" + std::to_string(vb) +
            ", new v" + std::to_string(va) +
            "); comparing the common metrics");
    }

    static const std::vector<MetricSpec> kSingleThread = {
        {"ticks_per_sec_loop", true, false},
        {"ticks_per_sec_fastforward", true, false},
        {"speedup", true, true},
    };
    // Compare whatever mitigation rows the baseline carries (matched
    // by name in the new report), so adding or dropping a mitigation
    // is a note, not a hard failure.
    const json::Value *base_rows = before.find("single_thread");
    if (base_rows && base_rows->isArray()) {
        for (const json::Value &rb : base_rows->asArray()) {
            const json::Value *m = rb.find("mitigation");
            if (!m || !m->isString())
                continue;
            const std::string &mit = m->asString();
            const json::Value *ra = singleThreadRow(after, mit);
            if (!ra) {
                report.notes.push_back("single_thread row '" + mit +
                                       "' missing in new report "
                                       "(skipped)");
                continue;
            }
            for (const MetricSpec &spec : kSingleThread) {
                compareOne(report, opts,
                           "single_thread." + mit + "." + spec.name,
                           rb.find(spec.name), ra->find(spec.name),
                           spec.higherIsBetter, spec.ratio);
            }
        }
    } else {
        report.notes.push_back(
            "single_thread section missing in baseline report "
            "(skipped)");
    }

    // sweep.speedup is a ratio, but it is only meaningful when both
    // reports actually ran multi-worker with the same worker count:
    // at jobs=1 the "speedup" is pure scheduler/load noise, and
    // across differing worker counts it is apples to oranges.
    const json::Value *jobs_b = findPath(before, {"sweep", "jobs"});
    const json::Value *jobs_a = findPath(after, {"sweep", "jobs"});
    const bool gate_sweep = jobs_b && jobs_a &&
                            jobs_b->asNumber() == jobs_a->asNumber() &&
                            jobs_b->asNumber() > 1.0;
    if (!gate_sweep && (before.find("sweep") || after.find("sweep"))) {
        report.notes.push_back(
            "sweep.speedup not gated (worker counts unrecorded, "
            "unequal, or jobs<=1 makes the ratio load noise)");
    }
    // A report produced on a single-hardware-thread host says so
    // explicitly; surface that rather than leaving a silently absent
    // speedup metric.
    const auto note_skipped = [&report](const json::Value &doc,
                                        const char *which) {
        const json::Value *sw = doc.find("sweep");
        const json::Value *n = sw ? sw->find("note") : nullptr;
        if (n && n->isString() &&
            n->asString() == "skipped_parallel_speedup") {
            report.notes.push_back(
                std::string(which) +
                " report ran on a single-hardware-thread host "
                "(sweep.note=skipped_parallel_speedup): the parallel "
                "speedup was deliberately not recorded, wall-clocks "
                "compared informationally");
        }
    };
    note_skipped(before, "baseline");
    note_skipped(after, "new");
    static const std::vector<MetricSpec> kSweep = {
        {"wall_clock_jobs1_sec", false, false},
        {"wall_clock_jobsN_sec", false, false},
        {"wall_clock_procs2_sec", false, false},
        {"speedup", true, true},
    };
    for (const MetricSpec &spec : kSweep) {
        compareOne(report, opts, "sweep." + spec.name,
                   findPath(before, {"sweep", spec.name}),
                   findPath(after, {"sweep", spec.name}),
                   spec.higherIsBetter, spec.ratio && gate_sweep);
    }

    // The compiled-plan setup cost (perf_report "setup" section,
    // schema v3). Per-sim wall-clocks are host absolutes; the
    // legacy/plan speedup is a same-host ratio and gated — losing it
    // means System construction started re-doing per-run work the
    // SystemPlan layer exists to amortize.
    if (before.find("setup") || after.find("setup")) {
        static const std::vector<MetricSpec> kSetup = {
            {"sec_per_sim_legacy", false, false},
            {"sec_per_sim_plan", false, false},
            {"speedup", true, true},
        };
        for (const MetricSpec &spec : kSetup) {
            compareOne(report, opts, "setup." + spec.name,
                       findPath(before, {"setup", spec.name}),
                       findPath(after, {"setup", spec.name}),
                       spec.higherIsBetter, spec.ratio);
        }
    }

    // The attack-scenario catalog (BENCH_scenarios.json). Rows are
    // matched by scenario name, like single_thread rows, so adding a
    // scenario is a note on old baselines rather than a failure. The
    // two indicator columns are simulated-time booleans and must stay
    // at 1.0 (the channel still opens unshaped; shaping still closes
    // it); slowdown is a simulated ratio and is gated too. Raw
    // BER/MI/capacity numbers shift with legitimate model tuning, so
    // they ride along informationally.
    const json::Value *scen_rows = before.find("scenarios");
    if (scen_rows && scen_rows->isArray()) {
        static const std::vector<MetricSpec> kScenario = {
            {"ber_open", false, false},
            {"ber_shaped", true, false},
            {"capacity_open_bits_per_pulse", true, false},
            {"capacity_shaped_bits_per_pulse", false, false},
            {"window_mi_open_bits", true, false},
            {"window_mi_shaped_bits", false, false},
            {"slowdown", false, true},
            {"channel_open", true, true},
            {"shaping_effective", true, true},
        };
        for (const json::Value &rb : scen_rows->asArray()) {
            const json::Value *nm = rb.find("name");
            if (!nm || !nm->isString())
                continue;
            const std::string &name = nm->asString();
            const json::Value *ra = nullptr;
            const json::Value *after_rows = after.find("scenarios");
            if (after_rows && after_rows->isArray()) {
                for (const json::Value &row : after_rows->asArray()) {
                    const json::Value *m = row.find("name");
                    if (m && m->isString() && m->asString() == name) {
                        ra = &row;
                        break;
                    }
                }
            }
            if (!ra) {
                report.notes.push_back("scenarios row '" + name +
                                       "' missing in new report "
                                       "(skipped)");
                continue;
            }
            for (const MetricSpec &spec : kScenario) {
                // Covert-only columns are absent from key-less rows;
                // skip silently rather than noting each.
                if (!rb.find(spec.name) && !ra->find(spec.name))
                    continue;
                compareOne(report, opts,
                           "scenarios." + name + "." + spec.name,
                           rb.find(spec.name), ra->find(spec.name),
                           spec.higherIsBetter, spec.ratio);
            }
        }
    }

    // The chaos-soak report (BENCH_server.json). Correctness ratios
    // (every job accounted, results byte-identical, clean drain) are
    // gated: they are machine-independent and must stay at 1.0.
    // Throughput and latency are machine-dependent absolutes, so
    // they stay informational rows.
    if (before.find("server")) {
        static const std::vector<MetricSpec> kServer = {
            {"jobs_per_sec", true, false},
            {"p99_latency_ms", false, false},
            {"accounted_ratio", true, true},
            {"byte_identical", true, true},
            {"clean_exit", true, true},
        };
        for (const MetricSpec &spec : kServer) {
            compareOne(report, opts, "server." + spec.name,
                       findPath(before, {"server", spec.name}),
                       findPath(after, {"server", spec.name}),
                       spec.higherIsBetter, spec.ratio);
        }
    }

    return report;
}

} // namespace camo::obs
