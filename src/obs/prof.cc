#include "src/obs/prof.h"

namespace camo::obs {

Profiler::Profiler()
{
    Node root;
    root.name = "run";
    nodes_.push_back(std::move(root));
}

Profiler::NodeId
Profiler::child(NodeId parent, const std::string &name)
{
    for (const NodeId c : nodes_[parent].children) {
        if (nodes_[c].name == name)
            return c;
    }
    const NodeId id = static_cast<NodeId>(nodes_.size());
    Node n;
    n.name = name;
    n.parent = parent;
    nodes_.push_back(std::move(n));
    nodes_[parent].children.push_back(id);
    return id;
}

std::uint64_t
Profiler::selfNs(NodeId id) const
{
    const Node &n = nodes_[id];
    std::uint64_t kids = 0;
    for (const NodeId c : n.children)
        kids += nodes_[c].ns;
    return kids > n.ns ? 0 : n.ns - kids;
}

void
Profiler::clear()
{
    for (Node &n : nodes_) {
        n.ns = 0;
        n.calls = 0;
    }
}

json::Value
Profiler::nodeJson(NodeId id) const
{
    const Node &n = nodes_[id];
    json::Value v = json::Value::makeObject();
    v["name"] = json::Value(n.name);
    v["calls"] = json::Value(n.calls);
    v["total_ns"] = json::Value(n.ns);
    v["self_ns"] = json::Value(selfNs(id));
    if (!n.children.empty()) {
        json::Value kids = json::Value::makeArray();
        for (const NodeId c : n.children)
            kids.push(nodeJson(c));
        v["children"] = std::move(kids);
    }
    return v;
}

json::Value
Profiler::toJson() const
{
    json::Value root = json::Value::makeObject();
    root["schema"] = json::Value("camo-prof-1");
    root["total_ns"] = json::Value(totalNs());
    root["root"] = nodeJson(0);
    return root;
}

std::string
Profiler::toFolded() const
{
    std::string out;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const std::uint64_t self = selfNs(id);
        if (self == 0)
            continue;
        // Stack path from root to this node.
        std::vector<const std::string *> path;
        for (NodeId at = id; at != kNoNode; at = nodes_[at].parent)
            path.push_back(&nodes_[at].name);
        for (std::size_t i = path.size(); i-- > 0;) {
            out += *path[i];
            if (i > 0)
                out += ';';
        }
        out += ' ';
        out += std::to_string(self);
        out += '\n';
    }
    return out;
}

} // namespace camo::obs
