/**
 * @file
 * Chrome trace-event (Perfetto / chrome://tracing loadable) export.
 *
 * One JSON-array file carries two clock domains as separate "process"
 * rows:
 *
 *  - pid 0 "host time": the profiler's node tree rendered as nested
 *    duration ("X") spans, ts/dur in microseconds of accumulated wall
 *    time. Children are laid out sequentially inside their parent, so
 *    the gap at the end of a parent span is its self time.
 *  - pid 1 "simulated time": the tracer's cycle-stamped event stream,
 *    with 1 simulated cycle rendered as 1 µs. One thread row per
 *    core; request lifecycles (LLC miss → response delivered) are
 *    async ("b"/"e") spans keyed by request id, and the remaining
 *    events (shaper fakes/stalls, DRAM commands, MC activity) are
 *    instant ("i") events on their owning row.
 *
 * ChromeTraceWriter owns the enclosing array; ChromeTraceSink is a
 * TraceSink adapter so it can sit behind the existing Tracer ring,
 * and writeProfile() appends the host-time spans after the run. The
 * writer's finish() closes the array (ChromeTraceSink::finish() is a
 * deliberate no-op so profile spans can still be appended after the
 * tracer flushes).
 */

#ifndef CAMO_OBS_CHROME_TRACE_H
#define CAMO_OBS_CHROME_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>

#include "src/obs/prof.h"
#include "src/obs/tracer.h"

namespace camo::obs {

/** Streams one well-formed trace-event JSON array. */
class ChromeTraceWriter
{
  public:
    /** @param os stream the caller keeps alive past the writer. */
    explicit ChromeTraceWriter(std::ostream &os);

    /** Append one raw event object (no enclosing braces needed in
     *  `fields`, e.g. "\"ph\":\"i\",\"ts\":0"). */
    void rawEvent(const std::string &fields);

    /** Metadata records naming a process / thread row. */
    void processName(int pid, const std::string &name);
    void threadName(int pid, int tid, const std::string &name);

    /** Close the JSON array. Idempotent. */
    void finish();

  private:
    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
};

/**
 * TraceSink rendering the simulated-cycle stream (pid 1). Attach via
 * Tracer::setSink; emits its process/thread metadata lazily on the
 * first batch.
 */
class ChromeTraceSink final : public TraceSink
{
  public:
    ChromeTraceSink(ChromeTraceWriter &writer, std::uint32_t num_cores);

    void write(const Event *events, std::size_t n) override;
    /** No-op: the writer is finished by its owner, after the profile
     *  spans (if any) are appended. */
    void finish() override {}

  private:
    void writeMeta();
    int tidOf(const Event &e) const;

    ChromeTraceWriter &writer_;
    std::uint32_t numCores_;
    bool wroteMeta_ = false;
    /** Request ids with an open async span (begin seen, no end). */
    std::unordered_set<std::uint64_t> open_;
};

/** Render a profiler tree as nested host-time spans (pid 0). */
void writeProfile(ChromeTraceWriter &writer, const Profiler &prof);

} // namespace camo::obs

#endif // CAMO_OBS_CHROME_TRACE_H
