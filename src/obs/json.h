/**
 * @file
 * Minimal JSON value tree, writer, and parser for the observability
 * layer's exports (stats trees, trace lines, interval series).
 *
 * Deliberately small: objects are ordered maps, numbers are doubles
 * (integral values are printed without a decimal point), and parse
 * errors are reported by tryParse() returning nullopt. No external
 * dependencies; everything the simulator exports round-trips.
 */

#ifndef CAMO_OBS_JSON_H
#define CAMO_OBS_JSON_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace camo::obs::json {

/** One JSON value (null, bool, number, string, array, or object). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Array = std::vector<Value>;
    using Object = std::map<std::string, Value>;

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(std::uint64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n))
    {
    }
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

    static Value makeArray() { return Value(Array{}); }
    static Value makeObject() { return Value(Object{}); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const Array &asArray() const { return arr_; }
    const Object &asObject() const { return obj_; }

    /** Object access; creates the key (and coerces to Object). */
    Value &operator[](const std::string &key);
    /** Object lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Array append (coerces to Array). */
    void push(Value v);

    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const
    {
        return !(*this == other);
    }

    /**
     * Serialize. indent == 0 emits one compact line; indent > 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** JSON-escape the characters of `s` (no surrounding quotes). */
std::string escape(const std::string &s);

/** Format a double the way dump() does (integers stay integral). */
std::string formatNumber(double v);

/** Parse a complete JSON document; nullopt on any syntax error. */
std::optional<Value> tryParse(const std::string &text);

/** Parse a complete JSON document; panics on syntax errors. */
Value parse(const std::string &text);

} // namespace camo::obs::json

#endif // CAMO_OBS_JSON_H
