#include "src/obs/registry.h"

#include <sstream>

#include "src/common/logging.h"

namespace camo::obs {

void
StatRegistry::add(const std::string &path, const StatGroup *group)
{
    camo_assert(!path.empty(), "stat path cannot be empty");
    camo_assert(group != nullptr, "stat group cannot be null");
    for (auto &[p, g] : groups_) {
        if (p == path) {
            g = group;
            return;
        }
    }
    groups_.emplace_back(path, group);
}

const StatGroup *
StatRegistry::find(const std::string &path) const
{
    for (const auto &[p, g] : groups_) {
        if (p == path)
            return g;
    }
    return nullptr;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(groups_.size());
    for (const auto &[p, g] : groups_)
        out.push_back(p);
    return out;
}

std::map<std::string, double>
StatRegistry::flat() const
{
    std::map<std::string, double> out;
    for (const auto &[path, group] : groups_) {
        for (const auto &[name, v] : group->counters())
            out[path + "." + name] = static_cast<double>(v);
        for (const auto &[name, s] : group->scalars()) {
            const std::string base = path + "." + name;
            out[base + ".count"] = static_cast<double>(s.count());
            out[base + ".mean"] = s.mean();
            out[base + ".min"] = s.min();
            out[base + ".max"] = s.max();
            out[base + ".stddev"] = s.stddev();
        }
    }
    return out;
}

json::Value
StatRegistry::toJson() const
{
    json::Value root = json::Value::makeObject();
    for (const auto &[path, group] : groups_) {
        // Walk/create the nested node for each dotted segment.
        json::Value *node = &root;
        std::size_t start = 0;
        while (start <= path.size()) {
            const auto dot = path.find('.', start);
            const std::string seg =
                dot == std::string::npos
                    ? path.substr(start)
                    : path.substr(start, dot - start);
            node = &(*node)[seg];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }

        json::Value &counters = (*node)["counters"];
        counters = json::Value::makeObject();
        for (const auto &[name, v] : group->counters())
            counters[name] = json::Value(v);
        json::Value &scalars = (*node)["scalars"];
        scalars = json::Value::makeObject();
        for (const auto &[name, s] : group->scalars()) {
            json::Value &entry = scalars[name];
            entry["count"] = json::Value(s.count());
            entry["sum"] = json::Value(s.sum());
            entry["mean"] = json::Value(s.mean());
            entry["min"] = json::Value(s.min());
            entry["max"] = json::Value(s.max());
            entry["stddev"] = json::Value(s.stddev());
        }
    }
    return root;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[path, group] : groups_)
        os << group->dump(path + ".");
    return os.str();
}

} // namespace camo::obs
