/**
 * @file
 * Typed, cycle-stamped trace events covering the full request
 * lifecycle: core issue → LLC miss → ReqC shaper enqueue/release/
 * fake/stall → shared channel → MC queue → DRAM bank activity →
 * RespC shape/accelerate → response delivery.
 *
 * Events are compact PODs so the tracer's ring buffer stays cheap;
 * the `arg` field carries one type-specific payload (documented per
 * enumerator below).
 */

#ifndef CAMO_OBS_EVENT_H
#define CAMO_OBS_EVENT_H

#include <cstdint>

#include "src/common/types.h"

namespace camo::obs {

/** What happened. The comment gives the meaning of Event::arg. */
enum class EventType : std::uint8_t
{
    CoreMemIssue,      ///< core dispatched an LLC-bound access; arg = isWrite
    LlcMiss,           ///< demand miss left the hierarchy; arg = 1 if prefetch
    CacheWriteback,    ///< dirty eviction issued to memory; arg = 0
    ReqShaperEnqueue,  ///< real request entered ReqC queue; arg = queue depth
    ReqShaperRelease,  ///< ReqC released a real request; arg = bins gap
    ReqShaperFake,     ///< ReqC generated a fake request; arg = 0
    ReqShaperStall,    ///< ReqC head began stalling; arg = queue depth
    BinReplenish,      ///< credit replenishment; arg = unused credits latched
    ReqChannelGrant,   ///< request-channel arbiter grant; arg = port
    RespChannelGrant,  ///< response-channel arbiter grant; arg = port
    McEnqueue,         ///< entered an MC queue; arg = queue depth after
    McServe,           ///< CAS issued for it; arg = DRAM-cycle queue latency
    McFakeDropped,     ///< fake dropped under queue pressure; arg = 0
    PriorityBoost,     ///< RespC acceleration warning; arg = tokens granted
    DramActivate,      ///< ACT; addr = row, arg = rank<<16 | bank
    DramPrecharge,     ///< PRE; addr = row, arg = rank<<16 | bank
    DramRead,          ///< RD burst; addr = row, arg = rank<<16 | bank
    DramWrite,         ///< WR burst; addr = row, arg = rank<<16 | bank
    DramRefresh,       ///< REF; arg = rank
    RespShaperEnqueue, ///< response entered RespC queue; arg = queue depth
    RespShaperRelease, ///< RespC released a real response; arg = 0
    RespShaperFake,    ///< RespC generated a fake response; arg = 0
    RespShaperStall,   ///< RespC head began stalling; arg = queue depth
    RespDelivered,     ///< real response reached the core; arg = total latency
    FakeRespDropped,   ///< fake response discarded at delivery; arg = 0
};

/** Number of enumerators in EventType (for tables and tests). */
inline constexpr std::size_t kNumEventTypes = 25;

/** Stable lower-snake name used in every export format. */
const char *eventTypeName(EventType type);

/** One trace record. */
struct Event
{
    Cycle at = 0;             ///< CPU cycle of the event
    EventType type = EventType::CoreMemIssue;
    CoreId core = kNoCore;    ///< owning core (kNoCore if none)
    ReqId id = 0;             ///< transaction id (0 if none)
    Addr addr = kNoAddr;      ///< address / row (kNoAddr if none)
    std::uint64_t arg = 0;    ///< type-specific payload (see EventType)
};

} // namespace camo::obs

#endif // CAMO_OBS_EVENT_H
