#include "src/obs/tracer.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace camo::obs {

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::CoreMemIssue: return "core_mem_issue";
      case EventType::LlcMiss: return "llc_miss";
      case EventType::CacheWriteback: return "cache_writeback";
      case EventType::ReqShaperEnqueue: return "req_shaper_enqueue";
      case EventType::ReqShaperRelease: return "req_shaper_release";
      case EventType::ReqShaperFake: return "req_shaper_fake";
      case EventType::ReqShaperStall: return "req_shaper_stall";
      case EventType::BinReplenish: return "bin_replenish";
      case EventType::ReqChannelGrant: return "req_channel_grant";
      case EventType::RespChannelGrant: return "resp_channel_grant";
      case EventType::McEnqueue: return "mc_enqueue";
      case EventType::McServe: return "mc_serve";
      case EventType::McFakeDropped: return "mc_fake_dropped";
      case EventType::PriorityBoost: return "priority_boost";
      case EventType::DramActivate: return "dram_activate";
      case EventType::DramPrecharge: return "dram_precharge";
      case EventType::DramRead: return "dram_read";
      case EventType::DramWrite: return "dram_write";
      case EventType::DramRefresh: return "dram_refresh";
      case EventType::RespShaperEnqueue: return "resp_shaper_enqueue";
      case EventType::RespShaperRelease: return "resp_shaper_release";
      case EventType::RespShaperFake: return "resp_shaper_fake";
      case EventType::RespShaperStall: return "resp_shaper_stall";
      case EventType::RespDelivered: return "resp_delivered";
      case EventType::FakeRespDropped: return "fake_resp_dropped";
    }
    return "?";
}

std::string
eventToJson(const Event &e)
{
    // Hand-rolled for the hot drain path; keys are schema-stable.
    std::string out;
    out.reserve(128);
    out += "{\"at\":";
    out += json::formatNumber(static_cast<double>(e.at));
    out += ",\"type\":\"";
    out += eventTypeName(e.type);
    out += '"';
    if (e.core != kNoCore) {
        out += ",\"core\":";
        out += json::formatNumber(static_cast<double>(e.core));
    }
    if (e.id != 0) {
        out += ",\"id\":";
        out += json::formatNumber(static_cast<double>(e.id));
    }
    if (e.addr != kNoAddr) {
        out += ",\"addr\":";
        out += json::formatNumber(static_cast<double>(e.addr));
    }
    out += ",\"arg\":";
    out += json::formatNumber(static_cast<double>(e.arg));
    out += '}';
    return out;
}

void
JsonlTraceSink::write(const Event *events, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        os_ << eventToJson(events[i]) << '\n';
}

void
CsvTraceSink::write(const Event *events, std::size_t n)
{
    if (!wroteHeader_) {
        os_ << "at,type,core,id,addr,arg\n";
        wroteHeader_ = true;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const Event &e = events[i];
        os_ << e.at << ',' << eventTypeName(e.type) << ',';
        if (e.core != kNoCore)
            os_ << e.core;
        os_ << ',';
        if (e.id != 0)
            os_ << e.id;
        os_ << ',';
        if (e.addr != kNoAddr)
            os_ << e.addr;
        os_ << ',' << e.arg << '\n';
    }
}

namespace {

constexpr char kBinaryMagic[8] = {'C', 'A', 'M', 'O',
                                  'T', 'R', 'C', '1'};
/** type(1) + at(8) + core(4) + id(8) + addr(8) + arg(8). */
constexpr std::size_t kBinaryRecordSize = 37;

void
putU64(char *dst, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU32(char *dst, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t
getU64(const char *src)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(src[i]))
             << (8 * i);
    return v;
}

std::uint32_t
getU32(const char *src)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(src[i]))
             << (8 * i);
    return v;
}

} // namespace

void
BinaryTraceSink::write(const Event *events, std::size_t n)
{
    if (!wroteMagic_) {
        os_.write(kBinaryMagic, sizeof(kBinaryMagic));
        wroteMagic_ = true;
    }
    char rec[kBinaryRecordSize];
    for (std::size_t i = 0; i < n; ++i) {
        const Event &e = events[i];
        rec[0] = static_cast<char>(e.type);
        putU64(rec + 1, e.at);
        putU32(rec + 9, e.core);
        putU64(rec + 13, e.id);
        putU64(rec + 21, e.addr);
        putU64(rec + 29, e.arg);
        os_.write(rec, sizeof(rec));
    }
}

std::vector<Event>
readBinaryTrace(std::istream &is)
{
    char magic[8];
    std::vector<Event> out;
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
        return out;
    }
    char rec[kBinaryRecordSize];
    while (is.read(rec, sizeof(rec))) {
        Event e;
        e.type = static_cast<EventType>(rec[0]);
        e.at = getU64(rec + 1);
        e.core = getU32(rec + 9);
        e.id = getU64(rec + 13);
        e.addr = getU64(rec + 21);
        e.arg = getU64(rec + 29);
        out.push_back(e);
    }
    return out;
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), buf_(capacity)
{
    camo_assert(capacity >= 1, "tracer needs a ring buffer");
}

Tracer::Tracer(DeferRing, std::size_t capacity) : capacity_(capacity)
{
    camo_assert(capacity >= 1, "tracer needs a ring buffer");
}

Tracer::~Tracer()
{
    flush();
}

void
Tracer::setSink(std::unique_ptr<TraceSink> sink)
{
    if (sink_)
        flush();
    sink_ = std::move(sink);
}

void
Tracer::drainToSink()
{
    // The ring is contiguous in at most two spans.
    const std::size_t first =
        std::min(size_, buf_.size() - head_);
    if (first > 0)
        sink_->write(buf_.data() + head_, first);
    if (size_ > first)
        sink_->write(buf_.data(), size_ - first);
    head_ = 0;
    size_ = 0;
}

void
Tracer::flush()
{
    if (!sink_)
        return;
    drainToSink();
    sink_->finish();
}

std::vector<Event>
Tracer::snapshot() const
{
    std::vector<Event> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

} // namespace camo::obs
