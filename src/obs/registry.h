/**
 * @file
 * Hierarchical statistics registry: components register their
 * existing StatGroups under dotted paths ("core0", "mc.ch0.dram",
 * "shaper.req.core1"), and the registry serializes the whole tree —
 * flat text for humans, nested JSON for tools.
 */

#ifndef CAMO_OBS_REGISTRY_H
#define CAMO_OBS_REGISTRY_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/json.h"

namespace camo::obs {

/** Non-owning index of StatGroups keyed by dotted path. */
class StatRegistry
{
  public:
    /**
     * Register `group` under `path`. The group must outlive the
     * registry; re-registering a path replaces the pointer.
     */
    void add(const std::string &path, const StatGroup *group);

    /** Registered group, or nullptr. */
    const StatGroup *find(const std::string &path) const;

    /** All registered paths, in registration order. */
    std::vector<std::string> paths() const;

    std::size_t size() const { return groups_.size(); }

    /**
     * Every stat as one fully-dotted name -> value ("mc.ch0.reads.
     * served" -> 1234). Scalars expand to .mean/.min/.max/.stddev.
     */
    std::map<std::string, double> flat() const;

    /**
     * Nested JSON tree following the dotted path segments. Each
     * group node holds "counters" (name -> integer) and "scalars"
     * (name -> {count, sum, mean, min, max, stddev}).
     */
    json::Value toJson() const;

    /** Human-readable flat dump, one `path.name = value` per line. */
    std::string dump() const;

  private:
    std::vector<std::pair<std::string, const StatGroup *>> groups_;
};

} // namespace camo::obs

#endif // CAMO_OBS_REGISTRY_H
