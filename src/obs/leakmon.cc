#include "src/obs/leakmon.h"

#include <cstdio>

#include "src/hard/error.h"

namespace camo::obs {

LeakMonitor::LeakMonitor(const LeakMonitorConfig &cfg,
                         const shaper::DistributionMonitor &intrinsic,
                         const shaper::DistributionMonitor &shaped)
    : cfg_(cfg), intrinsic_(&intrinsic), shaped_(&shaped),
      quantizer_(security::makeMiQuantizer(cfg.quantBins, cfg.quantBase,
                                           cfg.quantRatio)),
      intrinsicHist_(quantizer_),
      cumulative_(cfg.quantBins + 1, cfg.quantBins),
      nextCheckAt_(cfg.checkPeriod)
{
    if (cfg_.windowCycles == 0)
        throw hard::ConfigError("leakmon windowCycles must be > 0");
    if (cfg_.checkPeriod == 0)
        throw hard::ConfigError("leakmon checkPeriod must be > 0");
    if (cfg_.quantBins < 2)
        throw hard::ConfigError("leakmon needs >= 2 quantizer bins");
    if (cfg_.alerting() && cfg_.consecutiveBreaches == 0)
        throw hard::ConfigError(
            "leakmon consecutiveBreaches must be > 0");
    intrinsicHist_.clear();
}

void
LeakMonitor::consume()
{
    // Intrinsic side first: by FIFO ordering the k-th real shaped
    // event's intrinsic gap is always available by the time the
    // shaped walk below needs it.
    const auto &xs = intrinsic_->events();
    while (xIdx_ < xs.size()) {
        const Cycle at = xs[xIdx_].at;
        if (haveX_) {
            const Cycle gap = at - lastX_;
            xbins_.push_back(quantizer_.binOf(gap));
            intrinsicHist_.add(gap);
        }
        haveX_ = true;
        lastX_ = at;
        ++xIdx_;
    }

    // Shaped walk: identical pairing to security::computeShapingMi —
    // the k-th real shaped event pairs with intrinsic gap k-2
    // (1-based; the first real event has no gap), fakes pair with the
    // extra idle X-symbol.
    const auto &ys = shaped_->events();
    while (yIdx_ < ys.size()) {
        const shaper::TrafficEvent &e = ys[yIdx_];
        if (!haveY_) {
            haveY_ = true;
            if (!e.fake)
                ++realSeen_;
        } else {
            const std::size_t ybin = quantizer_.binOf(e.at - lastY_);
            if (e.fake) {
                cumulative_.add(idleSymbol(), ybin);
                window_.push_back(
                    {e.at, static_cast<std::uint32_t>(idleSymbol()),
                     static_cast<std::uint32_t>(ybin)});
                ++fakeEvents_;
            } else {
                ++realSeen_;
                if (realSeen_ >= 2 && realSeen_ - 2 < xbins_.size()) {
                    const std::size_t xbin = xbins_[realSeen_ - 2];
                    cumulative_.add(xbin, ybin);
                    window_.push_back(
                        {e.at, static_cast<std::uint32_t>(xbin),
                         static_cast<std::uint32_t>(ybin)});
                }
            }
        }
        lastY_ = e.at;
        ++yIdx_;
    }
}

std::string
LeakMonitor::evaluate(Cycle now)
{
    // Drop pairs that have slid out of (now - windowCycles, now].
    while (!window_.empty() &&
           now >= cfg_.windowCycles &&
           window_.front().at <= now - cfg_.windowCycles) {
        window_.pop_front();
    }

    security::JointDistribution joint(cfg_.quantBins + 1,
                                      cfg_.quantBins);
    for (const Pair &p : window_)
        joint.add(p.x, p.y);

    const double mi = joint.mutualInformationBitsCorrected();
    lastMiBits_ = mi;
    if (mi > peakMiBits_)
        peakMiBits_ = mi;
    stats_.inc("evals");
    stats_.sample("window_mi_bits", mi);

    const bool breach = cfg_.alerting() &&
                        joint.total() >= cfg_.minWindowPairs &&
                        mi > cfg_.alertThresholdBits;
    history_.push_back({now, mi, joint.total(), breach});
    if (!breach) {
        breachStreak_ = 0;
        return {};
    }
    ++breachStreak_;
    stats_.inc("breaches");
    if (breachStreak_ < cfg_.consecutiveBreaches || alerted_)
        return {};
    alerted_ = true;
    alertAt_ = now;
    stats_.inc("alerts");
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "core %u windowed leakage %.4f bits > threshold "
                  "%.4f bits for %u consecutive windows",
                  cfg_.core, mi, cfg_.alertThresholdBits,
                  breachStreak_);
    return buf;
}

std::string
LeakMonitor::poll(Cycle now)
{
    if (now < nextCheckAt_)
        return {};
    consume();
    const std::string alert = evaluate(now);
    nextCheckAt_ = now + cfg_.checkPeriod;
    return alert;
}

security::ShapingMiResult
LeakMonitor::cumulativeResult()
{
    consume();
    security::ShapingMiResult r;
    r.miBitsRaw = cumulative_.mutualInformationBits();
    r.miBits = cumulative_.mutualInformationBitsCorrected();
    r.intrinsicEntropy = intrinsicHist_.entropyBits();
    r.shapedEntropy = cumulative_.entropyYBits();
    r.pairs = cumulative_.total();
    r.fakeEvents = fakeEvents_;
    return r;
}

json::Value
LeakMonitor::toJson() const
{
    json::Value root = json::Value::makeObject();
    json::Value cfg = json::Value::makeObject();
    cfg["core"] = json::Value(static_cast<std::uint64_t>(cfg_.core));
    cfg["window_cycles"] =
        json::Value(static_cast<std::uint64_t>(cfg_.windowCycles));
    cfg["check_period"] =
        json::Value(static_cast<std::uint64_t>(cfg_.checkPeriod));
    cfg["alert_threshold_bits"] =
        cfg_.alerting() ? json::Value(cfg_.alertThresholdBits)
                        : json::Value();
    cfg["min_window_pairs"] = json::Value(cfg_.minWindowPairs);
    cfg["consecutive_breaches"] = json::Value(
        static_cast<std::uint64_t>(cfg_.consecutiveBreaches));
    root["config"] = std::move(cfg);

    root["last_window_mi_bits"] = json::Value(lastMiBits_);
    root["peak_window_mi_bits"] = json::Value(peakMiBits_);
    root["alerted"] = json::Value(alerted_);
    if (alerted_) {
        root["alert_at"] =
            json::Value(static_cast<std::uint64_t>(alertAt_));
    }

    json::Value hist = json::Value::makeArray();
    for (const LeakWindowSample &s : history_) {
        json::Value row = json::Value::makeObject();
        row["at"] = json::Value(static_cast<std::uint64_t>(s.at));
        row["mi_bits"] = json::Value(s.miBits);
        row["pairs"] = json::Value(s.pairs);
        row["breach"] = json::Value(s.breach);
        hist.push(std::move(row));
    }
    root["windows"] = std::move(hist);
    return root;
}

} // namespace camo::obs
