/**
 * @file
 * Low-overhead host-time profiler for the simulation kernel.
 *
 * The profiler is a small tree of named nodes ("run" at the root,
 * kernel phases below it, one leaf per component under the per-
 * component phases) holding accumulated wall-clock nanoseconds and
 * call counts. The System's loop hooks (src/sim/system.cc) time each
 * phase with a monotonic stopwatch and add into cached node ids, so
 * the per-event cost is two steady_clock reads and two additions —
 * and exactly one pointer test when no profiler is attached.
 *
 * Node time is *inclusive* (total); self time is derived as
 * total - sum(children), so the per-node self times partition the
 * root's total and sum to the measured run time. Exports: a JSON
 * tree (total/self/calls per node) and the folded-stack format
 * ("run;tick;core0 1234") consumed by flamegraph.pl / speedscope /
 * inferno. Chrome-trace rendering lives in src/obs/chrome_trace.h.
 */

#ifndef CAMO_OBS_PROF_H
#define CAMO_OBS_PROF_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace camo::obs {

class Profiler
{
  public:
    using NodeId = std::uint32_t;
    static constexpr NodeId kNoNode = 0xffffffffu;

    struct Node
    {
        std::string name;
        NodeId parent = kNoNode;
        std::vector<NodeId> children;
        std::uint64_t ns = 0;    ///< inclusive (total) time
        std::uint64_t calls = 0;
    };

    /** Starts with a single root node named "run". */
    Profiler();

    NodeId root() const { return 0; }

    /** Find-or-create a child of `parent` named `name`. Stable: the
     *  same (parent, name) always returns the same id. */
    NodeId child(NodeId parent, const std::string &name);

    /** Accumulate `ns` nanoseconds (and `calls` invocations) on a
     *  node. Hot path: two additions. */
    void
    add(NodeId id, std::uint64_t ns, std::uint64_t calls = 1)
    {
        Node &n = nodes_[id];
        n.ns += ns;
        n.calls += calls;
    }

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(NodeId id) const { return nodes_[id]; }

    /** Inclusive time on the root ("run"). */
    std::uint64_t totalNs() const { return nodes_[0].ns; }

    /** total - sum(children), clamped at 0 (clock jitter can make a
     *  child's reading exceed its parent's by a few ns). */
    std::uint64_t selfNs(NodeId id) const;

    /** Zero all counts; the node tree (and ids) survive. */
    void clear();

    /**
     * JSON tree: {"schema": "camo-prof-1", "total_ns": N,
     * "root": {"name", "calls", "total_ns", "self_ns", "children"}}.
     */
    json::Value toJson() const;

    /** Folded-stack flamegraph lines, one per node with nonzero self
     *  time: "run;tick;core0 <self_ns>\n". */
    std::string toFolded() const;

    /** Monotonic nanoseconds (steady_clock). */
    static std::uint64_t
    clockNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Stopwatch: started at construction. */
    class Timer
    {
      public:
        Timer() : start_(clockNs()) {}
        std::uint64_t elapsedNs() const { return clockNs() - start_; }

      private:
        std::uint64_t start_;
    };

    /** RAII scope: adds its lifetime to `id` (no-op on null). */
    class Scope
    {
      public:
        Scope(Profiler *prof, NodeId id) : prof_(prof), id_(id) {}
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        ~Scope()
        {
            if (prof_)
                prof_->add(id_, timer_.elapsedNs());
        }

      private:
        Profiler *prof_;
        NodeId id_;
        Timer timer_;
    };

  private:
    json::Value nodeJson(NodeId id) const;

    std::vector<Node> nodes_;
};

} // namespace camo::obs

#endif // CAMO_OBS_PROF_H
