#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <ostream>

#include "src/obs/json.h"

namespace camo::obs {

namespace {

std::string
microsFromNs(std::uint64_t ns)
{
    // Trace-event ts/dur are microseconds; keep nanosecond precision
    // as fractional µs.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream &os) : os_(os)
{
    os_ << "[";
}

void
ChromeTraceWriter::rawEvent(const std::string &fields)
{
    if (finished_)
        return;
    if (!first_)
        os_ << ",";
    os_ << "\n{" << fields << "}";
    first_ = false;
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    rawEvent("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) +
             ",\"args\":{\"name\":\"" + json::escape(name) + "\"}");
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    rawEvent("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
             ",\"args\":{\"name\":\"" + json::escape(name) + "\"}");
}

void
ChromeTraceWriter::finish()
{
    if (finished_)
        return;
    os_ << "\n]\n";
    finished_ = true;
}

// ---------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(ChromeTraceWriter &writer,
                                 std::uint32_t num_cores)
    : writer_(writer), numCores_(num_cores)
{
}

void
ChromeTraceSink::writeMeta()
{
    writer_.processName(1, "simulated time (1 cycle = 1us)");
    for (std::uint32_t i = 0; i < numCores_; ++i)
        writer_.threadName(1, static_cast<int>(i),
                           "core" + std::to_string(i));
    writer_.threadName(1, static_cast<int>(numCores_), "uncore");
    wroteMeta_ = true;
}

int
ChromeTraceSink::tidOf(const Event &e) const
{
    if (e.core == kNoCore || e.core >= numCores_)
        return static_cast<int>(numCores_); // uncore row
    return static_cast<int>(e.core);
}

void
ChromeTraceSink::write(const Event *events, std::size_t n)
{
    if (!wroteMeta_)
        writeMeta();
    for (std::size_t i = 0; i < n; ++i) {
        const Event &e = events[i];
        const std::string common =
            ",\"ts\":" + std::to_string(e.at) +
            ",\"pid\":1,\"tid\":" + std::to_string(tidOf(e));
        const std::string async_id =
            ",\"id\":" + std::to_string(e.id);
        switch (e.type) {
          case EventType::LlcMiss:
            // One async span per request id, LLC miss -> delivery.
            if (open_.insert(e.id).second) {
                writer_.rawEvent(
                    "\"name\":\"req\",\"cat\":\"req\",\"ph\":\"b\"" +
                    common + async_id);
            }
            break;
          case EventType::McServe:
            // Mid-lifecycle marker on the same async track.
            if (open_.count(e.id)) {
                writer_.rawEvent(
                    "\"name\":\"mc_serve\",\"cat\":\"req\",\"ph\":"
                    "\"n\"" + common + async_id);
            }
            break;
          case EventType::RespDelivered:
            if (open_.erase(e.id)) {
                writer_.rawEvent(
                    "\"name\":\"req\",\"cat\":\"req\",\"ph\":\"e\"" +
                    common + async_id);
            }
            break;
          default:
            // Everything else is an instant on its owning row.
            writer_.rawEvent("\"name\":\"" +
                             std::string(eventTypeName(e.type)) +
                             "\",\"ph\":\"i\",\"s\":\"t\"" + common);
            break;
        }
    }
}

// ---------------------------------------------------------------------

namespace {

void
writeProfileNode(ChromeTraceWriter &writer, const Profiler &prof,
                 Profiler::NodeId id, std::uint64_t start_ns)
{
    const Profiler::Node &n = prof.node(id);
    writer.rawEvent("\"name\":\"" + json::escape(n.name) +
                    "\",\"ph\":\"X\",\"ts\":" + microsFromNs(start_ns) +
                    ",\"dur\":" + microsFromNs(n.ns) +
                    ",\"pid\":0,\"tid\":0,\"args\":{\"calls\":" +
                    std::to_string(n.calls) + "}");
    // Children laid out back-to-back from the parent's start; the
    // remaining gap inside the parent is its self time.
    std::uint64_t at = start_ns;
    for (const Profiler::NodeId c : n.children) {
        writeProfileNode(writer, prof, c, at);
        at += prof.node(c).ns;
    }
}

} // namespace

void
writeProfile(ChromeTraceWriter &writer, const Profiler &prof)
{
    writer.processName(0, "host time");
    writer.threadName(0, 0, "profile");
    writeProfileNode(writer, prof, prof.root(), 0);
}

} // namespace camo::obs
