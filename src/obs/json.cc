#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace camo::obs::json {

Value &
Value::operator[](const std::string &key)
{
    if (kind_ != Kind::Object) {
        kind_ = Kind::Object;
        obj_.clear();
    }
    return obj_[key];
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Array) {
        kind_ = Kind::Array;
        arr_.clear();
    }
    arr_.push_back(std::move(v));
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::Number: return num_ == other.num_;
      case Kind::String: return str_ == other.str_;
      case Kind::Array: return arr_ == other.arr_;
      case Kind::Object: return obj_ == other.obj_;
    }
    return false;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    if (!std::isfinite(v))
        return "null"; // NaN/inf are not representable in JSON
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     (static_cast<std::size_t>(depth) + 1),
                                 ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     static_cast<std::size_t>(depth),
                                 ' ')
                   : std::string();
    const char *nl = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number:
        out += formatNumber(num_);
        return;
      case Kind::String:
        out += '"';
        out += escape(str_);
        out += '"';
        return;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        return;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, value] : obj_) {
            out += pad;
            out += '"';
            out += escape(key);
            out += "\":";
            if (indent > 0)
                out += ' ';
            value.dumpTo(out, indent, depth + 1);
            if (++i < obj_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        return;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string; pos_ is the cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<Value>
    parseDocument()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return std::nullopt;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return std::nullopt;
                }
                // The exports only escape control characters, so a
                // plain one-byte decode covers everything we emit.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated string
    }

    std::optional<Value>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null") ? std::optional<Value>(Value())
                                   : std::nullopt;
        if (c == 't')
            return literal("true") ? std::optional<Value>(Value(true))
                                   : std::nullopt;
        if (c == 'f')
            return literal("false") ? std::optional<Value>(Value(false))
                                    : std::nullopt;
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return Value(std::move(*s));
        }
        if (c == '[') {
            ++pos_;
            Value arr = Value::makeArray();
            skipWs();
            if (consume(']'))
                return arr;
            while (true) {
                auto v = parseValue();
                if (!v)
                    return std::nullopt;
                arr.push(std::move(*v));
                if (consume(']'))
                    return arr;
                if (!consume(','))
                    return std::nullopt;
            }
        }
        if (c == '{') {
            ++pos_;
            Value obj = Value::makeObject();
            skipWs();
            if (consume('}'))
                return obj;
            while (true) {
                skipWs();
                auto key = parseString();
                if (!key || !consume(':'))
                    return std::nullopt;
                auto v = parseValue();
                if (!v)
                    return std::nullopt;
                obj[*key] = std::move(*v);
                if (consume('}'))
                    return obj;
                if (!consume(','))
                    return std::nullopt;
            }
        }
        return parseNumber();
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return std::nullopt;
        char *end = nullptr;
        const std::string num = text_.substr(start, pos_ - start);
        const double v = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return std::nullopt;
        return Value(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Value>
tryParse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Value
parse(const std::string &text)
{
    auto v = tryParse(text);
    camo_assert(v.has_value(), "malformed JSON document");
    return std::move(*v);
}

} // namespace camo::obs::json
