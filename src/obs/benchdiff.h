/**
 * @file
 * Perf-trajectory report schema + regression diff.
 *
 * bench/perf_report emits one schema-versioned BENCH_ticks.json per
 * build (provenance-stamped via buildInfo()); diffBenchReports()
 * compares two such reports metric-by-metric and flags regressions
 * beyond a threshold. Ratio metrics (fast-forward speedup, sweep
 * parallel speedup) are machine-independent and *gated*; absolute
 * metrics (ticks/sec, wall seconds) vary with the host and are
 * informational unless gateAbsolute is set. tools/benchdiff wraps
 * this as the CI regression gate (exit 1 on any gated regression).
 */

#ifndef CAMO_OBS_BENCHDIFF_H
#define CAMO_OBS_BENCHDIFF_H

#include <string>
#include <vector>

#include "src/obs/json.h"

namespace camo::obs {

/** Schema version written by bench/perf_report. v3 added the "setup"
 *  section (compiled-plan construction cost) and the sweep's
 *  multi-process sharding wall-clock. */
inline constexpr int kBenchSchemaVersion = 3;

/** buildInfo() as a JSON object ("git_sha", "git_dirty", "compiler",
 *  "build_type", "cxx_flags") — the provenance stamp every bench
 *  report carries. */
json::Value buildInfoJson();

/** One metric compared across two reports. */
struct MetricDelta
{
    std::string name;  ///< dotted path, e.g. "single_thread.bdc.speedup"
    double before = 0.0;
    double after = 0.0;
    bool higherIsBetter = true;
    bool gated = false; ///< counts toward the regression verdict

    /** Relative change in the "better" direction (negative = worse). */
    double
    relativeChange() const
    {
        if (before == 0.0)
            return 0.0;
        const double d = (after - before) / before;
        return higherIsBetter ? d : -d;
    }

    bool
    regressed(double threshold) const
    {
        return relativeChange() < -threshold;
    }
};

struct DiffOptions
{
    double threshold = 0.10; ///< relative regression tolerance
    bool gateAbsolute = false;
};

struct DiffReport
{
    std::vector<MetricDelta> metrics;
    /** Schema/shape issues (missing metrics, version mismatch). */
    std::vector<std::string> notes;
    double threshold = 0.10;

    /** Gated metrics that regressed beyond the threshold. */
    std::vector<const MetricDelta *> regressions() const;
    bool ok() const { return regressions().empty(); }

    /** Human-readable table + verdict. */
    std::string text() const;
};

/** Compare two perf reports (old baseline vs new run). */
DiffReport diffBenchReports(const json::Value &before,
                            const json::Value &after,
                            const DiffOptions &opts = {});

} // namespace camo::obs

#endif // CAMO_OBS_BENCHDIFF_H
