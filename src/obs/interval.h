/**
 * @file
 * Interval metrics: fixed-period snapshots of live system health
 * (per-core IPC, queue depths, fake-vs-real traffic, bin occupancy)
 * collected into a time-series exportable as CSV or JSON.
 *
 * The collector is layout-agnostic: the owner declares the column
 * names once and appends one row of doubles per interval. System
 * drives it from tick(); anything else (tests, benches) can too.
 */

#ifndef CAMO_OBS_INTERVAL_H
#define CAMO_OBS_INTERVAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/json.h"

namespace camo::obs {

/** Fixed-period time-series of named metrics. */
class IntervalCollector
{
  public:
    struct Row
    {
        Cycle at = 0; ///< cycle the interval ended
        std::vector<double> values;
    };

    /**
     * @param period snapshot every `period` cycles (>= 1)
     * @param columns metric name per value column
     */
    IntervalCollector(Cycle period, std::vector<std::string> columns);

    Cycle period() const { return period_; }
    const std::vector<std::string> &columns() const { return columns_; }

    /** Has the current interval elapsed at cycle `now`? */
    bool due(Cycle now) const { return now >= nextAt_; }

    /** Cycle the current interval elapses (next sample boundary). */
    Cycle nextAt() const { return nextAt_; }

    /**
     * Append a snapshot and arm the next interval.
     * @pre values.size() == columns().size()
     */
    void addRow(Cycle now, std::vector<double> values);

    const std::vector<Row> &rows() const { return rows_; }

    /** "cycle,col0,col1,..." header plus one line per row. */
    std::string toCsv() const;

    /** {"period": N, "columns": [...], "rows": [[cycle, ...], ...]}. */
    json::Value toJson() const;

  private:
    Cycle period_;
    Cycle nextAt_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

} // namespace camo::obs

#endif // CAMO_OBS_INTERVAL_H
