/**
 * @file
 * Low-overhead, ring-buffered event tracer.
 *
 * Components hold a `Tracer *` (nullptr or disabled by default) and
 * emit through CAMO_TRACE_EVENT, which costs one pointer test and one
 * predictable branch when tracing is off — and compiles away entirely
 * under -DCAMO_OBS_NO_TRACING. With a sink attached, the ring drains
 * to it whenever it fills and on flush(); without one the ring keeps
 * the most recent `capacity` events (oldest dropped, counted).
 *
 * Sinks: JSONL (one object per line, the canonical analysis format),
 * CSV (loads directly into pandas/gnuplot for the Fig. 9/10 latency
 * timelines), and a compact fixed-width binary format.
 */

#ifndef CAMO_OBS_TRACER_H
#define CAMO_OBS_TRACER_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/obs/event.h"

namespace camo::obs {

/** Destination for drained trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Append `n` events (in emission order). */
    virtual void write(const Event *events, std::size_t n) = 0;
    /** Final records/trailers; called once by Tracer::flush(). */
    virtual void finish() {}
};

/** One JSON object per line (JSONL). */
class JsonlTraceSink : public TraceSink
{
  public:
    /** @param os stream the caller keeps alive past the tracer. */
    explicit JsonlTraceSink(std::ostream &os) : os_(os) {}
    void write(const Event *events, std::size_t n) override;

  private:
    std::ostream &os_;
};

/** Header + one comma-separated row per event. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(std::ostream &os) : os_(os) {}
    void write(const Event *events, std::size_t n) override;

  private:
    std::ostream &os_;
    bool wroteHeader_ = false;
};

/** Compact binary: "CAMOTRC1" magic then fixed 37-byte LE records. */
class BinaryTraceSink : public TraceSink
{
  public:
    explicit BinaryTraceSink(std::ostream &os) : os_(os) {}
    void write(const Event *events, std::size_t n) override;

  private:
    std::ostream &os_;
    bool wroteMagic_ = false;
};

/** Parse a BinaryTraceSink stream back into events (for tools/tests). */
std::vector<Event> readBinaryTrace(std::istream &is);

/** Render one event as a single-line JSON object (no newline). */
std::string eventToJson(const Event &e);

/** The ring buffer + drain engine. */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    /** Defer the ring allocation until setEnabled(true): the ring is
     *  ~4MB of zero-initialized Events, which dominates System
     *  construction cost, and sweep/GA runs never enable tracing.
     *  Safe because both emit() and CAMO_TRACE_EVENT gate on
     *  enabled(). */
    struct DeferRing
    {
    };
    Tracer(DeferRing, std::size_t capacity = kDefaultCapacity);

    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Attach the drain destination (flushes any buffered events). */
    void setSink(std::unique_ptr<TraceSink> sink);

    void
    setEnabled(bool on)
    {
        if (on && buf_.size() < capacity_)
            buf_.resize(capacity_);
        enabled_ = on;
    }
    bool enabled() const { return enabled_; }

    /** Record one event. Near-free when disabled. */
    void
    emit(const Event &e)
    {
        if (!enabled_)
            return;
        ++emitted_;
        if (size_ == buf_.size()) {
            if (sink_) {
                drainToSink();
            } else {
                // No sink: ring semantics, overwrite the oldest.
                head_ = (head_ + 1) % buf_.size();
                --size_;
                ++dropped_;
            }
        }
        buf_[(head_ + size_) % buf_.size()] = e;
        ++size_;
    }

    /** Drain buffered events to the sink (and finish() it). */
    void flush();

    /** Buffered events, oldest first (mainly for sink-less use). */
    std::vector<Event> snapshot() const;

    std::uint64_t emitted() const { return emitted_; }
    std::uint64_t dropped() const { return dropped_; }
    std::size_t buffered() const { return size_; }
    std::size_t capacity() const { return capacity_; }

  private:
    void drainToSink();

    std::size_t capacity_;
    std::vector<Event> buf_;
    std::size_t head_ = 0; ///< index of the oldest buffered event
    std::size_t size_ = 0;
    bool enabled_ = false;
    std::unique_ptr<TraceSink> sink_;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace camo::obs

/**
 * Emission macro used at every instrumentation point. `tracer` is a
 * `camo::obs::Tracer *` (may be null); the remaining arguments are
 * the Event designated-initializer payload.
 */
#ifndef CAMO_OBS_NO_TRACING
#define CAMO_TRACE_EVENT(tracer, ...) \
    do { \
        ::camo::obs::Tracer *camo_tr_ = (tracer); \
        if (camo_tr_ && camo_tr_->enabled()) \
            camo_tr_->emit(::camo::obs::Event{__VA_ARGS__}); \
    } while (0)
#else
#define CAMO_TRACE_EVENT(tracer, ...) \
    do { \
    } while (0)
#endif

#endif // CAMO_OBS_TRACER_H
