#include "src/obs/interval.h"

#include <sstream>

#include "src/common/logging.h"

namespace camo::obs {

IntervalCollector::IntervalCollector(Cycle period,
                                     std::vector<std::string> columns)
    : period_(period), nextAt_(period), columns_(std::move(columns))
{
    camo_assert(period_ >= 1, "interval period must be positive");
    camo_assert(!columns_.empty(), "interval needs at least one column");
}

void
IntervalCollector::addRow(Cycle now, std::vector<double> values)
{
    camo_assert(values.size() == columns_.size(),
                "interval row has ", values.size(), " values for ",
                columns_.size(), " columns");
    rows_.push_back({now, std::move(values)});
    // Arm relative to `now` so a late snapshot (e.g. after a config
    // phase that ran the clock forward) does not fire a burst of
    // catch-up rows.
    nextAt_ = now + period_;
}

std::string
IntervalCollector::toCsv() const
{
    std::ostringstream os;
    os << "cycle";
    for (const auto &c : columns_)
        os << ',' << c;
    os << '\n';
    for (const Row &row : rows_) {
        os << row.at;
        for (const double v : row.values)
            os << ',' << json::formatNumber(v);
        os << '\n';
    }
    return os.str();
}

json::Value
IntervalCollector::toJson() const
{
    json::Value root = json::Value::makeObject();
    root["period"] = json::Value(period_);
    json::Value cols = json::Value::makeArray();
    for (const auto &c : columns_)
        cols.push(json::Value(c));
    root["columns"] = std::move(cols);
    json::Value rows = json::Value::makeArray();
    for (const Row &row : rows_) {
        json::Value r = json::Value::makeArray();
        r.push(json::Value(row.at));
        for (const double v : row.values)
            r.push(json::Value(v));
        rows.push(std::move(r));
    }
    root["rows"] = std::move(rows);
    return root;
}

} // namespace camo::obs
