/**
 * @file
 * Online leakage monitor: runtime mutual-information estimation over
 * the traffic a core actually puts on the shared request channel.
 *
 * The offline analysis (security::computeShapingMi) pairs the k-th
 * real shaped event with the k-th intrinsic LLC-miss event and
 * measures I(intrinsic gap; shaped gap) after the run. This monitor
 * performs the *same* pairing incrementally while the simulation
 * runs, consuming the DistributionMonitor event logs through
 * cursors:
 *
 *  - a cumulative joint distribution, built with the identical
 *    algorithm, so cumulativeResult() equals the offline number
 *    exactly (tests pin this), and
 *  - a sliding window of recent (intrinsic-bin, shaped-bin) pairs,
 *    re-evaluated every checkPeriod cycles, giving a *windowed* MI
 *    time series that reacts to leakage transients (e.g. a fault that
 *    bypasses the shaper) instead of diluting them into a run-length
 *    average.
 *
 * When a configured alert threshold is breached on consecutive
 * window evaluations, poll() returns an alert message; the System
 * escalates it through the src/hard structured-error machinery
 * (hard::LeakageAlert, camosim exit code 6, JSON diagnostic).
 *
 * Motivated by treating leakage as a continuously measured quantity
 * (arxiv 1906.08957) rather than a one-shot offline number.
 */

#ifndef CAMO_OBS_LEAKMON_H
#define CAMO_OBS_LEAKMON_H

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "src/camouflage/monitor.h"
#include "src/common/histogram.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/obs/json.h"
#include "src/security/mutual_information.h"

namespace camo::obs {

struct LeakMonitorConfig
{
    /** Core whose intrinsic/bus streams are monitored. */
    std::uint32_t core = 0;
    /** Sliding-window width in cycles. */
    Cycle windowCycles = 50000;
    /** Re-evaluate the window every this many cycles. */
    Cycle checkPeriod = 10000;
    /**
     * Windowed-MI alert threshold in bits; infinity (the default)
     * monitors without alerting.
     */
    double alertThresholdBits =
        std::numeric_limits<double>::infinity();
    /** Windows with fewer pairs than this never alert (an MI
     *  estimate over a handful of samples is noise). */
    std::uint64_t minWindowPairs = 64;
    /** Consecutive breaching windows required before alerting. */
    std::uint32_t consecutiveBreaches = 2;

    // Quantizer for inter-arrival gaps; defaults mirror
    // security::makeMiQuantizer.
    std::size_t quantBins = 32;
    Cycle quantBase = 8;
    double quantRatio = 1.6;

    bool
    alerting() const
    {
        return alertThresholdBits <
               std::numeric_limits<double>::infinity();
    }
};

/** One window evaluation, kept as a time series. */
struct LeakWindowSample
{
    Cycle at = 0;
    double miBits = 0.0;
    std::uint64_t pairs = 0;
    bool breach = false;
};

class LeakMonitor
{
  public:
    /**
     * @param intrinsic pre-shaper (LLC-miss) stream monitor
     * @param shaped what actually went onto the request channel
     * Both must have event logging enabled and outlive the monitor.
     */
    LeakMonitor(const LeakMonitorConfig &cfg,
                const shaper::DistributionMonitor &intrinsic,
                const shaper::DistributionMonitor &shaped);

    /**
     * Consume newly logged events and, when a check is due, evaluate
     * the window. Returns a non-empty alert message the first time
     * the breach-streak condition is met; the caller escalates.
     */
    std::string poll(Cycle now);

    /** Next cycle at which poll() will evaluate (fast-forward
     *  bound). */
    Cycle nextCheckAt() const { return nextCheckAt_; }

    const LeakMonitorConfig &config() const { return cfg_; }

    /** Most recent window evaluation (0 bits before the first). */
    double lastWindowMiBits() const { return lastMiBits_; }
    double peakWindowMiBits() const { return peakMiBits_; }
    const std::vector<LeakWindowSample> &history() const
    {
        return history_;
    }

    bool alerted() const { return alerted_; }
    Cycle alertAt() const { return alertAt_; }

    /**
     * Consume any remaining events and compute the cumulative MI over
     * everything observed so far. Equals
     * security::computeShapingMi(intrinsic.events(), shaped.events(),
     * quantizer) exactly — same pairing, same estimator.
     */
    security::ShapingMiResult cumulativeResult();

    const StatGroup &stats() const { return stats_; }

    /** Config + state + window history as JSON (diagnostics). */
    json::Value toJson() const;

  private:
    void consume();
    std::string evaluate(Cycle now);
    std::size_t idleSymbol() const { return cfg_.quantBins; }

    LeakMonitorConfig cfg_;
    const shaper::DistributionMonitor *intrinsic_;
    const shaper::DistributionMonitor *shaped_;
    Histogram quantizer_;

    // Intrinsic-side cursor state.
    std::size_t xIdx_ = 0;
    bool haveX_ = false;
    Cycle lastX_ = 0;
    std::vector<std::size_t> xbins_; ///< gap bin per real ordinal
    Histogram intrinsicHist_;        ///< for H(X)

    // Shaped-side cursor state (mirrors computeShapingMi's walk).
    std::size_t yIdx_ = 0;
    bool haveY_ = false;
    Cycle lastY_ = 0;
    std::size_t realSeen_ = 0;
    std::uint64_t fakeEvents_ = 0;

    struct Pair
    {
        Cycle at;
        std::uint32_t x, y;
    };
    std::deque<Pair> window_;
    security::JointDistribution cumulative_;

    Cycle nextCheckAt_;
    double lastMiBits_ = 0.0;
    double peakMiBits_ = 0.0;
    std::vector<LeakWindowSample> history_;
    std::uint32_t breachStreak_ = 0;
    bool alerted_ = false;
    Cycle alertAt_ = 0;
    StatGroup stats_;
};

} // namespace camo::obs

#endif // CAMO_OBS_LEAKMON_H
