#include "src/trace/file_trace.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"

namespace camo::trace {

namespace {

/** A token plus its byte offset in the trace text, so every parse
 *  error can point at the exact input position. */
struct Token
{
    std::string text;
    std::size_t offset = 0;
};

[[noreturn]] void
failTrace(const std::string &source, const std::string &what,
          const Token &tok)
{
    std::ostringstream os;
    os << "trace '" << source << "': " << what << " token '" << tok.text
       << "' at byte " << tok.offset;
    throw hard::ConfigError(os.str());
}

/** Whitespace-split one line, recording absolute byte offsets.
 *  `line_start` is the line's offset in the full text; `#` and `;`
 *  start a comment. */
std::vector<Token>
tokenizeLine(const std::string &line, std::size_t line_start)
{
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
        }
        if (i >= line.size() || line[i] == '#' || line[i] == ';')
            break;
        const std::size_t begin = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
        }
        out.push_back({line.substr(begin, i - begin), line_start + begin});
    }
    return out;
}

/** Comma-split one line, trimming surrounding whitespace per field
 *  and recording absolute byte offsets. Returns an empty list for
 *  blank/comment lines; an empty field between commas is kept (as an
 *  empty token) so field-count errors point at the right place. */
std::vector<Token>
tokenizeCsvLine(const std::string &line, std::size_t line_start)
{
    // Comments and blank lines follow the whitespace tokenizer rules.
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first]))) {
        ++first;
    }
    if (first >= line.size() || line[first] == '#' || line[first] == ';')
        return {};

    std::vector<Token> out;
    std::size_t i = first;
    while (true) {
        std::size_t end = line.find(',', i);
        if (end == std::string::npos)
            end = line.size();
        std::size_t begin = i;
        std::size_t stop = end;
        while (begin < stop &&
               std::isspace(static_cast<unsigned char>(line[begin]))) {
            ++begin;
        }
        while (stop > begin &&
               std::isspace(static_cast<unsigned char>(line[stop - 1]))) {
            --stop;
        }
        out.push_back({line.substr(begin, stop - begin),
                       line_start + begin});
        if (end >= line.size())
            break;
        i = end + 1;
    }
    return out;
}

/** Parse an unsigned integer token in `base`; the whole token must
 *  convert. */
bool
parseUint(const Token &tok, int base, std::uint64_t &value)
{
    const std::string &t = tok.text;
    std::size_t start = 0;
    if (base == 16 && t.size() > 2 && t[0] == '0' &&
        (t[1] == 'x' || t[1] == 'X')) {
        start = 2;
    }
    if (start >= t.size())
        return false;
    value = 0;
    for (std::size_t i = start; i < t.size(); ++i) {
        const char c = t[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = 10 + (c - 'A');
        else
            return false;
        if (digit >= base)
            return false;
        value = value * static_cast<std::uint64_t>(base) +
                static_cast<std::uint64_t>(digit);
    }
    return true;
}

std::uint64_t
readLeU64(const std::string &bytes, std::size_t at)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
    }
    return v;
}

void
writeLeU64(std::string &bytes, std::uint64_t v)
{
    for (std::size_t i = 0; i < 8; ++i)
        bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

} // namespace

const char *
traceFileFormatName(TraceFileFormat format)
{
    switch (format) {
      case TraceFileFormat::DramSim2: return "dramsim2";
      case TraceFileFormat::ChampSim: return "champsim";
      case TraceFileFormat::Gem5: return "gem5";
    }
    return "?";
}

std::vector<TraceItem>
parseDramSim2Trace(const std::string &text, const std::string &source)
{
    std::vector<TraceItem> items;
    std::uint64_t prev_cycle = 0;
    bool first = true;

    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        const std::vector<Token> toks = tokenizeLine(line, pos);
        pos = eol + 1;
        if (toks.empty()) {
            if (pos > text.size())
                break;
            continue;
        }
        if (toks.size() < 3) {
            failTrace(source,
                      "incomplete record (want ADDR CMD CYCLE) at",
                      toks.front());
        }
        if (toks.size() > 3)
            failTrace(source, "unexpected trailing", toks[3]);

        std::uint64_t addr = 0;
        if (!parseUint(toks[0], 16, addr))
            failTrace(source, "bad address", toks[0]);

        bool is_write;
        if (toks[1].text == "P_MEM_RD" || toks[1].text == "P_FETCH")
            is_write = false;
        else if (toks[1].text == "P_MEM_WR")
            is_write = true;
        else
            failTrace(source, "unknown command", toks[1]);

        std::uint64_t cycle = 0;
        if (!parseUint(toks[2], 10, cycle))
            failTrace(source, "bad cycle", toks[2]);
        if (!first && cycle < prev_cycle)
            failTrace(source, "non-monotonic cycle", toks[2]);

        TraceItem item;
        item.waitCycles = first ? cycle : cycle - prev_cycle;
        item.addr = addr;
        item.isWrite = is_write;
        items.push_back(item);
        prev_cycle = cycle;
        first = false;
        if (pos > text.size())
            break;
    }

    if (items.empty()) {
        throw hard::ConfigError("trace '" + source +
                                "': contains no memory operations");
    }
    return items;
}

std::vector<TraceItem>
parseChampSimTrace(const std::string &bytes, const std::string &source)
{
    // One input_instr record is 64 bytes:
    //   [ 0] ip                      u64
    //   [ 8] is_branch               u8
    //   [ 9] branch_taken            u8
    //   [10] destination_registers   u8 x 2
    //   [12] source_registers        u8 x 4
    //   [16] destination_memory      u64 x 2
    //   [32] source_memory           u64 x 4
    constexpr std::size_t kRecordBytes = 64;
    if (bytes.empty()) {
        throw hard::ConfigError("trace '" + source +
                                "': empty ChampSim trace");
    }
    if (bytes.size() % kRecordBytes != 0) {
        const std::size_t at = (bytes.size() / kRecordBytes) * kRecordBytes;
        throw hard::ConfigError(
            "trace '" + source + "': truncated ChampSim record at byte " +
            std::to_string(at) + " (size " + std::to_string(bytes.size()) +
            " is not a multiple of " + std::to_string(kRecordBytes) + ")");
    }

    std::vector<TraceItem> items;
    std::uint64_t gap = 0;
    for (std::size_t at = 0; at < bytes.size(); at += kRecordBytes) {
        bool emitted = false;
        auto emit = [&](std::uint64_t addr, bool is_write) {
            if (addr == 0)
                return; // empty slot
            TraceItem item;
            item.gapInstrs = emitted ? 0 : gap;
            item.addr = addr;
            item.isWrite = is_write;
            items.push_back(item);
            if (!emitted)
                gap = 0;
            emitted = true;
        };
        for (std::size_t s = 0; s < 4; ++s)
            emit(readLeU64(bytes, at + 32 + 8 * s), false);
        for (std::size_t d = 0; d < 2; ++d)
            emit(readLeU64(bytes, at + 16 + 8 * d), true);
        if (!emitted)
            ++gap; // a non-memory instruction widens the next gap
    }

    if (items.empty()) {
        throw hard::ConfigError("trace '" + source +
                                "': contains no memory operations");
    }
    return items;
}

std::vector<TraceItem>
parseGem5Trace(const std::string &text, const std::string &source)
{
    constexpr std::uint64_t kLineBytes = 64;
    constexpr std::uint64_t kMaxPacketBytes = 4096;
    std::vector<TraceItem> items;
    std::uint64_t prev_tick = 0;
    bool first = true;

    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        const std::vector<Token> toks = tokenizeCsvLine(line, pos);
        pos = eol + 1;
        if (toks.empty()) {
            if (pos > text.size())
                break;
            continue;
        }
        if (toks.size() < 4) {
            failTrace(source,
                      "incomplete record (want TICK,CMD,ADDR,SIZE) at",
                      toks.front());
        }
        if (toks.size() > 4)
            failTrace(source, "unexpected trailing", toks[4]);

        std::uint64_t tick = 0;
        if (!parseUint(toks[0], 10, tick))
            failTrace(source, "bad tick", toks[0]);
        if (!first && tick < prev_tick)
            failTrace(source, "non-monotonic tick", toks[0]);

        bool is_write;
        const std::string &cmd = toks[1].text;
        if (cmd == "r" || cmd == "ReadReq")
            is_write = false;
        else if (cmd == "w" || cmd == "WriteReq")
            is_write = true;
        else
            failTrace(source, "unknown command", toks[1]);

        // gem5's decoder emits decimal addresses; hand-written traces
        // tend to use hex. Accept both (0x selects hex).
        const bool hex_addr = toks[2].text.rfind("0x", 0) == 0 ||
                              toks[2].text.rfind("0X", 0) == 0;
        std::uint64_t addr = 0;
        if (!parseUint(toks[2], hex_addr ? 16 : 10, addr))
            failTrace(source, "bad address", toks[2]);

        std::uint64_t size = 0;
        if (!parseUint(toks[3], 10, size) || size == 0 ||
            size > kMaxPacketBytes) {
            failTrace(source, "bad size (1..4096 bytes)", toks[3]);
        }

        // One TraceItem per 64-byte line the packet touches; the tick
        // delta paces the first, the rest ride along immediately.
        const std::uint64_t first_line = addr / kLineBytes;
        const std::uint64_t last_line = (addr + size - 1) / kLineBytes;
        for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
            TraceItem item;
            item.waitCycles =
                ln == first_line ? (first ? tick : tick - prev_tick) : 0;
            item.addr = ln == first_line ? addr : ln * kLineBytes;
            item.isWrite = is_write;
            items.push_back(item);
        }
        prev_tick = tick;
        first = false;
        if (pos > text.size())
            break;
    }

    if (items.empty()) {
        throw hard::ConfigError("trace '" + source +
                                "': contains no memory operations");
    }
    return items;
}

std::string
formatDramSim2Trace(const std::vector<TraceItem> &items)
{
    std::string out;
    char buf[64];
    std::uint64_t cycle = 0;
    for (const TraceItem &item : items) {
        if (!item.hasMemOp())
            continue;
        cycle += item.waitCycles;
        std::snprintf(buf, sizeof buf, "0x%llx %s %llu\n",
                      static_cast<unsigned long long>(item.addr),
                      item.isWrite ? "P_MEM_WR" : "P_MEM_RD",
                      static_cast<unsigned long long>(cycle));
        out += buf;
    }
    return out;
}

const std::string &
builtinSampleTrace(TraceFileFormat format)
{
    // Deterministic embedded examples (PATH == "@sample"), so shipped
    // topologies run from any directory. Both model a pointer-walk
    // with periodic streaming bursts — memory-intensive but with
    // realistic pacing.
    static const std::string dramsim2 = [] {
        std::vector<TraceItem> items;
        std::uint64_t lcg = 0x2545F4914F6CDD1DULL;
        auto next_rand = [&lcg] {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            return lcg >> 33;
        };
        std::uint64_t wait = 40;
        for (int burst = 0; burst < 32; ++burst) {
            // A short streaming burst...
            const std::uint64_t base =
                0x10000000ULL + (next_rand() % 4096) * 8192;
            for (int i = 0; i < 6; ++i) {
                TraceItem item;
                item.waitCycles = 12;
                item.addr = base + static_cast<std::uint64_t>(i) * 64;
                item.isWrite = (burst % 3 == 0);
                items.push_back(item);
            }
            // ...then a sparse pointer-chase stretch.
            for (int i = 0; i < 4; ++i) {
                TraceItem item;
                item.waitCycles = wait;
                item.addr = 0x40000000ULL + (next_rand() % 65536) * 64;
                item.isWrite = false;
                items.push_back(item);
                wait = 30 + next_rand() % 220;
            }
        }
        return formatDramSim2Trace(items);
    }();
    static const std::string champsim = [] {
        std::string bytes;
        std::uint64_t lcg = 0x9E3779B97F4A7C15ULL;
        auto next_rand = [&lcg] {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            return lcg >> 33;
        };
        std::uint64_t ip = 0x400000;
        for (int n = 0; n < 512; ++n) {
            ip += 4;
            const bool is_load = n % 5 == 0;
            const bool is_store = n % 11 == 3;
            std::string rec;
            writeLeU64(rec, ip);
            rec.push_back(0); // is_branch
            rec.push_back(0); // branch_taken
            rec.append(2, static_cast<char>(1)); // destination registers
            rec.append(4, static_cast<char>(2)); // source registers
            // destination_memory[2]
            writeLeU64(rec, is_store ? 0x20000000ULL +
                                           (next_rand() % 32768) * 64
                                     : 0);
            writeLeU64(rec, 0);
            // source_memory[4]
            writeLeU64(rec, is_load ? 0x30000000ULL +
                                          (next_rand() % 32768) * 64
                                    : 0);
            writeLeU64(rec, 0);
            writeLeU64(rec, 0);
            writeLeU64(rec, 0);
            bytes += rec;
        }
        return bytes;
    }();
    static const std::string gem5 = [] {
        // Same flavor as the other samples: streaming bursts with
        // pointer-chase stretches, in gem5 packet-CSV form. A few
        // 128-byte packets exercise the multi-line split.
        std::string out;
        char buf[96];
        std::uint64_t lcg = 0x1D8AF066D5E69B85ULL;
        auto next_rand = [&lcg] {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            return lcg >> 33;
        };
        std::uint64_t tick = 100;
        for (int burst = 0; burst < 32; ++burst) {
            const std::uint64_t base =
                0x50000000ULL + (next_rand() % 4096) * 8192;
            for (int i = 0; i < 6; ++i) {
                tick += 12;
                const bool wide = i == 0 && burst % 4 == 0;
                std::snprintf(buf, sizeof buf, "%llu,%s,0x%llx,%u\n",
                              static_cast<unsigned long long>(tick),
                              burst % 3 == 0 ? "w" : "r",
                              static_cast<unsigned long long>(
                                  base + static_cast<std::uint64_t>(i) *
                                             64),
                              wide ? 128u : 64u);
                out += buf;
            }
            for (int i = 0; i < 4; ++i) {
                tick += 30 + next_rand() % 220;
                std::snprintf(buf, sizeof buf, "%llu,%s,0x%llx,%u\n",
                              static_cast<unsigned long long>(tick),
                              "ReadReq",
                              static_cast<unsigned long long>(
                                  0x60000000ULL +
                                  (next_rand() % 65536) * 64),
                              64u);
                out += buf;
            }
        }
        return out;
    }();
    switch (format) {
      case TraceFileFormat::DramSim2: return dramsim2;
      case TraceFileFormat::ChampSim: return champsim;
      case TraceFileFormat::Gem5: return gem5;
    }
    return dramsim2;
}

FileTrace::FileTrace(std::vector<TraceItem> items, std::string name,
                     Addr addr_base)
    : FileTrace(std::make_shared<const std::vector<TraceItem>>(
                    std::move(items)),
                std::move(name), addr_base)
{
}

FileTrace::FileTrace(std::shared_ptr<const std::vector<TraceItem>> items,
                     std::string name, Addr addr_base)
    : items_(std::move(items)), name_(std::move(name)),
      addrBase_(addr_base)
{
    camo_assert(items_ != nullptr && !items_->empty(),
                "FileTrace needs at least one item");
}

TraceItem
FileTrace::next(Cycle)
{
    TraceItem item = (*items_)[cursor_];
    if (++cursor_ >= items_->size()) {
        cursor_ = 0;
        ++iterations_;
    }
    if (item.hasMemOp())
        item.addr += addrBase_;
    return item;
}

std::shared_ptr<const std::vector<TraceItem>>
loadTraceItems(TraceFileFormat format, const std::string &path)
{
    const std::string name =
        std::string(traceFileFormatName(format)) + ":" + path;
    std::string content;
    if (path == "@sample") {
        content = builtinSampleTrace(format);
    } else if (path.rfind('@', 0) == 0) {
        throw hard::ConfigError("trace '" + name +
                                "': unknown builtin trace '" + path +
                                "' (only '@sample' is embedded)");
    } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            throw hard::ConfigError("trace '" + name +
                                    "': cannot open trace file");
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        content = buf.str();
    }
    std::vector<TraceItem> items;
    switch (format) {
      case TraceFileFormat::DramSim2:
        items = parseDramSim2Trace(content, name);
        break;
      case TraceFileFormat::ChampSim:
        items = parseChampSimTrace(content, name);
        break;
      case TraceFileFormat::Gem5:
        items = parseGem5Trace(content, name);
        break;
    }
    return std::make_shared<const std::vector<TraceItem>>(
        std::move(items));
}

std::unique_ptr<TraceSource>
loadTraceWorkload(TraceFileFormat format, const std::string &path,
                  Addr addr_base)
{
    const std::string name =
        std::string(traceFileFormatName(format)) + ":" + path;
    return std::make_unique<FileTrace>(loadTraceItems(format, path),
                                       name, addr_base);
}

} // namespace camo::trace
