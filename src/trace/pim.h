/**
 * @file
 * PIM-command covert sender: a processing-in-memory offload engine as
 * a trace program.
 *
 * One PIM command is cheap on the host (a few instructions to launch)
 * but moves an entire DRAM row's worth of data inside the memory
 * system. Modulating the command rate therefore swings memory-system
 * occupancy far harder per host instruction than a load/store loop
 * can — the covert-channel amplification studied by arXiv 2404.11284.
 * The model issues each PIM command as a burst of back-to-back
 * row-sized line accesses at near-zero instruction cost, so a 1-pulse
 * saturates the channel within a few hundred cycles and pulses can be
 * several times shorter than Algorithm 1's for the same bit-error
 * rate.
 */

#ifndef CAMO_TRACE_PIM_H
#define CAMO_TRACE_PIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace camo::trace {

/** PIM covert-sender parameters. */
struct PimSenderParams
{
    std::vector<bool> key;
    /** Pulse duration in CPU cycles (one key bit per pulse). Shorter
     *  than Algorithm 1's 20000: PIM bursts ramp occupancy faster. */
    Cycle pulseCycles = 5000;
    /** Lines one PIM command touches (a full 8 KB row by default). */
    std::uint32_t opLines = 128;
    /** Host instructions to launch one PIM command. */
    std::uint64_t launchInstrs = 4;
    /** Operand buffer placement (streamed, never cache-resident). */
    Addr bufferBase = 1ULL << 33;
    std::uint64_t bufferBytes = 128ULL * 1024 * 1024;
    std::uint32_t lineBytes = 64;
};

/**
 * The sender: during a 1-pulse, launch PIM commands back to back —
 * `launchInstrs` of host work, then `opLines` line writes with zero
 * instruction gap. During a 0-pulse, idle. The key repeats forever.
 */
class PimCovertSender : public TraceSource
{
  public:
    explicit PimCovertSender(const PimSenderParams &params);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

    std::uint64_t commandsLaunched() const { return commands_; }

  private:
    PimSenderParams params_;
    std::string name_ = "pim-sender";
    std::size_t bitIndex_ = 0;
    Cycle pulseEnd_ = 0;
    bool started_ = false;
    Addr nextLine_ = 0;
    std::uint32_t burstLeft_ = 0; ///< lines left in the current command
    std::uint64_t commands_ = 0;
};

} // namespace camo::trace

#endif // CAMO_TRACE_PIM_H
