/**
 * @file
 * Parameterized synthetic workload model.
 *
 * The model reproduces the aspects of a benchmark's memory behaviour
 * Camouflage's evaluation depends on (DESIGN.md §5): demand intensity,
 * burstiness, phase changes, row-buffer locality, and read/write mix.
 *
 * Structure: a two-state (HIGH/LOW intensity) Markov phase modulator
 * scales the base memory-op probability; memory ops target either a
 * small hot set (cache-resident) or a large cold region; cold accesses
 * stream sequentially with probability `seqFrac` (row-buffer hits) or
 * jump randomly; bursts cluster consecutive memory ops.
 */

#ifndef CAMO_TRACE_SYNTHETIC_H
#define CAMO_TRACE_SYNTHETIC_H

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/trace/trace.h"

namespace camo::trace {

/** Knobs of the synthetic workload model. */
struct WorkloadParams
{
    std::string name = "synthetic";

    /** Memory instructions per 1000 instructions. */
    double memPerKiloInstr = 300.0;
    /** Fraction of memory ops that target the cold (LLC-missing)
     *  region; this controls LLC MPKI. */
    double coldFrac = 0.02;
    /** Fraction of cold accesses that continue a sequential stream
     *  (row-buffer locality); the rest jump randomly. */
    double seqFrac = 0.5;
    /** Probability a cold access continues a burst. */
    double burstContinue = 0.5;
    /** Maximum burst length. */
    std::uint64_t burstCap = 32;
    /** Fraction of memory ops that are stores. */
    double writeFrac = 0.3;

    /** Hot working-set bytes (should fit in L1/L2). */
    std::uint64_t hotBytes = 16 * 1024;
    /** Cold region bytes (must dwarf the LLC). */
    std::uint64_t coldBytes = 64ULL * 1024 * 1024;

    /** Mean instructions spent in the HIGH-intensity phase. */
    double highPhaseMeanInstrs = 50000.0;
    /** Mean instructions spent in the LOW-intensity phase. */
    double lowPhaseMeanInstrs = 50000.0;
    /** Cold-access multiplier while in the LOW phase (0..1]. */
    double lowIntensityScale = 0.25;

    /** Base of this workload's address space (keeps cores disjoint). */
    Addr addrBase = 0;
};

/** Synthetic workload generator. */
class SyntheticWorkload : public TraceSource
{
  public:
    SyntheticWorkload(const WorkloadParams &params, std::uint64_t seed);

    const std::string &name() const override { return params_.name; }
    TraceItem next(Cycle now) override;

    const WorkloadParams &params() const { return params_; }
    bool inHighPhase() const { return highPhase_; }

  private:
    Addr pickAddr(bool cold);
    void maybeSwitchPhase();

    WorkloadParams params_;
    Rng rng_;
    bool highPhase_ = true;
    std::uint64_t phaseInstrsLeft_ = 0;
    std::uint64_t burstLeft_ = 0;
    Addr seqCursor_ = 0;
    std::uint64_t instrCount_ = 0;
};

} // namespace camo::trace

#endif // CAMO_TRACE_SYNTHETIC_H
