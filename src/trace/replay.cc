#include "src/trace/replay.h"

#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace camo::trace {

RecordingTrace::RecordingTrace(std::unique_ptr<TraceSource> inner,
                               std::size_t max_items)
    : inner_(std::move(inner)), maxItems_(max_items)
{
    camo_assert(inner_ != nullptr, "recording needs a source");
    name_ = "record:" + inner_->name();
}

TraceItem
RecordingTrace::next(Cycle now)
{
    TraceItem item = inner_->next(now);
    if (items_.size() < maxItems_)
        items_.push_back(item);
    return item;
}

void
RecordingTrace::save(std::ostream &os) const
{
    os << "# camouflage trace v1: waitCycles gapInstrs addrHex r|w|-\n";
    for (const TraceItem &item : items_) {
        os << item.waitCycles << ' ' << item.gapInstrs << ' ';
        if (item.hasMemOp()) {
            os << std::hex << item.addr << std::dec << ' '
               << (item.isWrite ? 'w' : 'r');
        } else {
            os << "0 -";
        }
        os << '\n';
    }
}

void
RecordingTrace::saveFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        camo_fatal("cannot write trace file: ", path);
    save(os);
}

ReplayTrace::ReplayTrace(std::vector<TraceItem> items, std::string name)
    : items_(std::move(items)), name_(std::move(name))
{
    if (items_.empty())
        camo_fatal("replay trace is empty");
}

ReplayTrace
ReplayTrace::fromStream(std::istream &is, std::string name)
{
    std::vector<TraceItem> items;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        TraceItem item;
        std::string addr_hex, kind;
        if (!(ls >> item.waitCycles >> item.gapInstrs >> addr_hex >>
              kind)) {
            camo_fatal("trace parse error at line ", lineno, ": '",
                       line, "'");
        }
        if (kind == "-") {
            item.addr = kNoAddr;
        } else if (kind == "r" || kind == "w") {
            item.addr = std::stoull(addr_hex, nullptr, 16);
            item.isWrite = kind == "w";
        } else {
            camo_fatal("trace parse error at line ", lineno,
                       ": bad op kind '", kind, "'");
        }
        items.push_back(item);
    }
    return ReplayTrace(std::move(items), std::move(name));
}

ReplayTrace
ReplayTrace::fromFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        camo_fatal("cannot read trace file: ", path);
    return fromStream(is, "replay:" + path);
}

TraceItem
ReplayTrace::next(Cycle now)
{
    (void)now;
    const TraceItem &item = items_[idx_];
    ++idx_;
    if (idx_ >= items_.size()) {
        idx_ = 0;
        ++loops_;
    }
    return item;
}

} // namespace camo::trace
