#include "src/trace/pim.h"

#include "src/common/logging.h"

namespace camo::trace {

PimCovertSender::PimCovertSender(const PimSenderParams &params)
    : params_(params), nextLine_(params.bufferBase)
{
    camo_assert(!params_.key.empty(), "PIM key must be non-empty");
    camo_assert(params_.pulseCycles >= 100, "pulse too short to carry");
    camo_assert(params_.opLines >= 1, "PIM op must touch a line");
}

TraceItem
PimCovertSender::next(Cycle now)
{
    if (!started_) {
        started_ = true;
        pulseEnd_ = now + params_.pulseCycles;
    }
    if (now >= pulseEnd_) {
        ++bitIndex_;
        pulseEnd_ += params_.pulseCycles;
        burstLeft_ = 0; // a pulse boundary cancels the current burst
    }

    const bool bit = params_.key[bitIndex_ % params_.key.size()];
    TraceItem item;

    if (!bit) {
        // 0-pulse: the offload engine is quiet.
        item.waitCycles = pulseEnd_ - now;
        burstLeft_ = 0;
        return item;
    }

    // 1-pulse: stream PIM commands. Each command costs a handful of
    // launch instructions, then its row-sized data movement hits the
    // memory system as back-to-back line writes.
    if (burstLeft_ == 0) {
        burstLeft_ = params_.opLines;
        ++commands_;
        item.gapInstrs =
            params_.launchInstrs > 0 ? params_.launchInstrs - 1 : 0;
    }
    --burstLeft_;
    item.addr = nextLine_;
    item.isWrite = true;
    nextLine_ += params_.lineBytes;
    if (nextLine_ >= params_.bufferBase + params_.bufferBytes)
        nextLine_ = params_.bufferBase;
    return item;
}

} // namespace camo::trace
