/**
 * @file
 * Trace recording and replay.
 *
 * RecordingTrace wraps any TraceSource and logs the items it serves;
 * the log can be saved to a simple line-oriented text format and
 * replayed later with ReplayTrace (looping forever, like every other
 * source). This is how users plug their own application traces into
 * the simulator, and how regression tests freeze a synthetic
 * workload's exact behaviour.
 *
 * Format: one item per line, "<waitCycles> <gapInstrs> <addrHex> <r|w|->"
 * ('-' marks an instructions-only item). Lines starting with '#' are
 * comments.
 */

#ifndef CAMO_TRACE_REPLAY_H
#define CAMO_TRACE_REPLAY_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace camo::trace {

/** Pass-through wrapper that records the served items. */
class RecordingTrace : public TraceSource
{
  public:
    /**
     * @param inner the source to wrap
     * @param max_items recording stops (pass-through continues) after
     *        this many items
     */
    RecordingTrace(std::unique_ptr<TraceSource> inner,
                   std::size_t max_items = 1 << 20);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

    const std::vector<TraceItem> &items() const { return items_; }

    /** Write the recorded items in replay format. */
    void save(std::ostream &os) const;
    void saveFile(const std::string &path) const;

  private:
    std::unique_ptr<TraceSource> inner_;
    std::size_t maxItems_;
    std::vector<TraceItem> items_;
    std::string name_;
};

/** Replays a recorded item sequence, looping forever. */
class ReplayTrace : public TraceSource
{
  public:
    explicit ReplayTrace(std::vector<TraceItem> items,
                         std::string name = "replay");

    /** Parse the replay text format. camo_fatal on syntax errors. */
    static ReplayTrace fromStream(std::istream &is,
                                  std::string name = "replay");
    static ReplayTrace fromFile(const std::string &path);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

    std::size_t size() const { return items_.size(); }
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<TraceItem> items_;
    std::string name_;
    std::size_t idx_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace camo::trace

#endif // CAMO_TRACE_REPLAY_H
