/**
 * @file
 * The covert-channel sender of the paper's Algorithm 1, as a trace
 * program, plus a constant-rate probe used as the receiving adversary.
 *
 * Both are wall-clock paced (Algorithm 1 loops "while ElapsedTime <
 * PULSE"), which the trace interface models with TraceItem::waitCycles.
 */

#ifndef CAMO_TRACE_COVERT_H
#define CAMO_TRACE_COVERT_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace camo::trace {

/** Expand a word into its bit vector, MSB first. */
std::vector<bool> keyBits(std::uint32_t key, std::uint32_t bits = 32);

/** Algorithm 1 parameters. */
struct CovertSenderParams
{
    std::vector<bool> key;
    /** PULSE duration in CPU cycles (one bit per pulse). */
    Cycle pulseCycles = 20000;
    /** Instructions between consecutive buffer writes in a 1-pulse. */
    std::uint64_t writeEveryInstrs = 8;
    /** BigBuffer placement and size (streams through cache lines). */
    Addr bufferBase = 1ULL << 32;
    std::uint64_t bufferBytes = 64ULL * 1024 * 1024;
    std::uint32_t lineBytes = 64;

    /**
     * RowHammer mode: >= 2 makes 1-pulses ping-pong between this many
     * rows of ONE bank (an ACT storm of row conflicts, the classic
     * hammer pattern) instead of streaming sequential lines. Every
     * access still touches a fresh cache line, so each one reaches
     * DRAM. 0 = plain Algorithm 1 streaming.
     */
    std::uint32_t hammerRows = 0;
    /**
     * Byte stride between same-bank rows and same-bank lines within a
     * row. Defaults match the default organization (1 channel, 1
     * rank, 8 banks, 8 KB rows, 64 B lines) under RowColRankBank
     * mapping: the row field starts at bit 16 and the column field at
     * bit 9, so +64 KB is "next row, same bank" and +512 B is "next
     * line, same bank, same row".
     */
    std::uint64_t hammerRowStrideBytes = 64ULL * 1024;
    std::uint64_t hammerLineStrideBytes = 512;
};

/**
 * Covert-channel sender (paper Algorithm 1):
 * for each key bit: if 1, write BigBuffer[NextCacheLine] (advancing a
 * line each time) until PULSE time elapses; if 0, do nothing until
 * PULSE time elapses. The key repeats indefinitely.
 */
class CovertSender : public TraceSource
{
  public:
    explicit CovertSender(const CovertSenderParams &params);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

    /** Bit index currently being transmitted (mod key length). */
    std::size_t currentBit() const { return bitIndex_ % params_.key.size(); }
    std::uint64_t pulsesSent() const { return bitIndex_; }

  private:
    CovertSenderParams params_;
    std::string name_ = "covert-sender";
    std::size_t bitIndex_ = 0;
    Cycle pulseEnd_ = 0;
    bool started_ = false;
    Addr nextLine_ = 0;
    std::uint64_t hammerN_ = 0; ///< accesses issued in hammer mode
};

/** Constant-rate memory probe: the measuring adversary. */
struct ProbeParams
{
    /** CPU cycles between probes (wall-clock cadence). */
    Cycle probeEveryCycles = 150;
    /** Probe region (never cache-resident: strided beyond the LLC). */
    Addr base = 1ULL << 36;
    std::uint64_t regionBytes = 256ULL * 1024 * 1024;
    /** 65 lines: defeats the LLC and walks every bank. */
    std::uint32_t strideBytes = 4160;
};

/**
 * The receiving adversary: issues loads at a fixed wall-clock cadence
 * with an LLC-defeating stride and watches its own latencies (the
 * latency log lives in the System, not here).
 */
class ProbeWorkload : public TraceSource
{
  public:
    explicit ProbeWorkload(const ProbeParams &params);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

  private:
    ProbeParams params_;
    std::string name_ = "probe";
    Addr cursor_ = 0;
    Cycle nextProbeAt_ = 0;
};

} // namespace camo::trace

#endif // CAMO_TRACE_COVERT_H
