#include "src/trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace camo::trace {

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     std::uint64_t seed)
    : params_(params), rng_(seed)
{
    camo_assert(params_.memPerKiloInstr > 0 &&
                    params_.memPerKiloInstr <= 1000.0,
                "memPerKiloInstr must be in (0, 1000]");
    camo_assert(params_.coldFrac >= 0 && params_.coldFrac <= 1.0,
                "coldFrac must be in [0, 1]");
    camo_assert(params_.hotBytes >= 64 && params_.coldBytes >= 4096,
                "address regions too small");
    seqCursor_ = params_.addrBase + params_.hotBytes;
    phaseInstrsLeft_ = static_cast<std::uint64_t>(
        std::max(1.0, params_.highPhaseMeanInstrs));
}

void
SyntheticWorkload::maybeSwitchPhase()
{
    if (phaseInstrsLeft_ > 0)
        return;
    highPhase_ = !highPhase_;
    const double mean = highPhase_ ? params_.highPhaseMeanInstrs
                                   : params_.lowPhaseMeanInstrs;
    // Exponentially distributed phase length (memoryless switching).
    const double u = std::max(1e-12, rng_.uniform());
    phaseInstrsLeft_ =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       -mean * std::log(u)));
}

Addr
SyntheticWorkload::pickAddr(bool cold)
{
    if (!cold) {
        // Hot set: uniform within a small cache-resident region.
        const Addr offset = rng_.below(params_.hotBytes) & ~Addr{7};
        return params_.addrBase + offset;
    }
    const Addr cold_base = params_.addrBase + params_.hotBytes;
    if (rng_.chance(params_.seqFrac)) {
        seqCursor_ += 64; // next cache line: row-buffer friendly
        if (seqCursor_ >= cold_base + params_.coldBytes)
            seqCursor_ = cold_base;
        return seqCursor_;
    }
    const Addr offset = rng_.below(params_.coldBytes) & ~Addr{63};
    seqCursor_ = cold_base + offset; // streams restart at the jump
    return seqCursor_;
}

TraceItem
SyntheticWorkload::next(Cycle now)
{
    (void)now; // instruction-paced: wall-clock time is irrelevant
    TraceItem item;

    // Continue an in-progress cold burst: back-to-back memory ops.
    if (burstLeft_ > 0) {
        --burstLeft_;
        item.gapInstrs = 0;
        item.addr = pickAddr(/*cold=*/true);
        item.isWrite = rng_.chance(params_.writeFrac);
        ++instrCount_;
        if (phaseInstrsLeft_ > 0)
            --phaseInstrsLeft_;
        maybeSwitchPhase();
        return item;
    }

    // Geometric gap to the next memory instruction.
    const double mem_prob = params_.memPerKiloInstr / 1000.0;
    std::uint64_t gap = 0;
    while (!rng_.chance(mem_prob) && gap < 100000)
        ++gap;

    item.gapInstrs = gap;
    const double scale = highPhase_ ? 1.0 : params_.lowIntensityScale;
    const bool cold = rng_.chance(params_.coldFrac * scale);
    item.addr = pickAddr(cold);
    item.isWrite = rng_.chance(params_.writeFrac);

    if (cold && rng_.chance(params_.burstContinue)) {
        burstLeft_ =
            rng_.burstLength(params_.burstContinue, params_.burstCap) - 1;
    }

    const std::uint64_t instrs = gap + 1;
    instrCount_ += instrs;
    phaseInstrsLeft_ -= std::min(phaseInstrsLeft_, instrs);
    maybeSwitchPhase();
    return item;
}

} // namespace camo::trace
