#include "src/trace/workloads.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/trace/covert.h"
#include "src/trace/file_trace.h"
#include "src/trace/pim.h"

namespace camo::trace {

namespace {

/** "workload 'NAME': WHAT token 'TOK' at byte N" — the structured
 *  rejection every malformed parameterized name gets (mirrors
 *  FaultPlan::parse; a bad name fails one job, never the process). */
[[noreturn]] void
failWorkload(const std::string &name, const std::string &what,
             const std::string &tok, std::size_t offset)
{
    std::ostringstream os;
    os << "workload '" << name << "': " << what << " token '" << tok
       << "' at byte " << offset;
    throw hard::ConfigError(os.str());
}

/** Parse the hex key of "covert:HEX"-style names (`offset` = where
 *  HEX starts in `name`). */
std::uint32_t
parseKeyHex(const std::string &name, const std::string &hex,
            std::size_t offset)
{
    if (hex.empty() || hex.size() > 8)
        failWorkload(name, "bad covert key (1..8 hex digits expected)",
                     hex, offset);
    std::uint64_t key = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else if (c >= 'A' && c <= 'F')
            digit = 10 + (c - 'A');
        else
            failWorkload(name, "bad covert key (hex expected)", hex,
                         offset);
        key = (key << 4) | static_cast<std::uint64_t>(digit);
    }
    return static_cast<std::uint32_t>(key);
}

/**
 * Benchmark parameter table. `coldFrac` is the dial for LLC MPKI
 * (memory instructions/kilo-instr x coldFrac ~ LLC misses/kilo-instr);
 * `seqFrac` the dial for row-buffer locality; the phase parameters
 * give each benchmark its characteristic intensity swings.
 */
WorkloadParams
baseParams(const std::string &name)
{
    WorkloadParams p;
    p.name = name;

    if (name == "mcf") {
        // Pointer-chasing sparse graph: extremely memory intensive,
        // poor locality, strong phases.
        p.memPerKiloInstr = 350;
        p.coldFrac = 0.17;
        p.seqFrac = 0.15;
        p.burstContinue = 0.60;
        p.coldBytes = 512ULL << 20;
        p.highPhaseMeanInstrs = 80000;
        p.lowPhaseMeanInstrs = 40000;
        p.lowIntensityScale = 0.35;
        p.writeFrac = 0.25;
    } else if (name == "libqt" || name == "libquantum") {
        // Pure streaming over a large vector: intense and sequential.
        p.memPerKiloInstr = 300;
        p.coldFrac = 0.10;
        p.seqFrac = 0.95;
        p.burstContinue = 0.75;
        p.coldBytes = 128ULL << 20;
        p.highPhaseMeanInstrs = 200000;
        p.lowPhaseMeanInstrs = 20000;
        p.lowIntensityScale = 0.8;
        p.writeFrac = 0.35;
    } else if (name == "omnetpp") {
        // Discrete-event simulator: heap-heavy, random, intensive.
        p.memPerKiloInstr = 340;
        p.coldFrac = 0.08;
        p.seqFrac = 0.25;
        p.burstContinue = 0.45;
        p.coldBytes = 256ULL << 20;
        p.highPhaseMeanInstrs = 60000;
        p.lowPhaseMeanInstrs = 60000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.35;
    } else if (name == "apache") {
        // Request-driven server: bursty on/off behaviour, random.
        p.memPerKiloInstr = 320;
        p.coldFrac = 0.045;
        p.seqFrac = 0.35;
        p.burstContinue = 0.70;
        p.burstCap = 64;
        p.coldBytes = 128ULL << 20;
        p.highPhaseMeanInstrs = 25000;
        p.lowPhaseMeanInstrs = 75000;
        p.lowIntensityScale = 0.1;
        p.writeFrac = 0.3;
    } else if (name == "astar") {
        // Path-finding: moderate intensity, mixed locality.
        p.memPerKiloInstr = 330;
        p.coldFrac = 0.030;
        p.seqFrac = 0.4;
        p.burstContinue = 0.5;
        p.coldBytes = 64ULL << 20;
        p.highPhaseMeanInstrs = 70000;
        p.lowPhaseMeanInstrs = 50000;
        p.lowIntensityScale = 0.45;
        p.writeFrac = 0.3;
    } else if (name == "gcc") {
        p.memPerKiloInstr = 310;
        p.coldFrac = 0.020;
        p.seqFrac = 0.45;
        p.burstContinue = 0.55;
        p.coldBytes = 96ULL << 20;
        p.highPhaseMeanInstrs = 30000;
        p.lowPhaseMeanInstrs = 30000;
        p.lowIntensityScale = 0.3;
        p.writeFrac = 0.35;
    } else if (name == "bzip" || name == "bzip2") {
        p.memPerKiloInstr = 290;
        p.coldFrac = 0.014;
        p.seqFrac = 0.7;
        p.burstContinue = 0.6;
        p.coldBytes = 48ULL << 20;
        p.highPhaseMeanInstrs = 120000;
        p.lowPhaseMeanInstrs = 80000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.4;
    } else if (name == "hmmer") {
        p.memPerKiloInstr = 380;
        p.coldFrac = 0.009;
        p.seqFrac = 0.8;
        p.burstContinue = 0.7;
        p.coldBytes = 32ULL << 20;
        p.highPhaseMeanInstrs = 300000;
        p.lowPhaseMeanInstrs = 30000;
        p.lowIntensityScale = 0.7;
        p.writeFrac = 0.3;
    } else if (name == "h264ref") {
        p.memPerKiloInstr = 350;
        p.coldFrac = 0.005;
        p.seqFrac = 0.75;
        p.burstContinue = 0.5;
        p.coldBytes = 32ULL << 20;
        p.highPhaseMeanInstrs = 50000;
        p.lowPhaseMeanInstrs = 50000;
        p.lowIntensityScale = 0.6;
        p.writeFrac = 0.3;
    } else if (name == "gobmk") {
        p.memPerKiloInstr = 280;
        p.coldFrac = 0.004;
        p.seqFrac = 0.3;
        p.burstContinue = 0.35;
        p.coldBytes = 24ULL << 20;
        p.highPhaseMeanInstrs = 40000;
        p.lowPhaseMeanInstrs = 40000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.3;
    } else if (name == "sjeng") {
        p.memPerKiloInstr = 270;
        p.coldFrac = 0.003;
        p.seqFrac = 0.25;
        p.burstContinue = 0.3;
        p.coldBytes = 96ULL << 20;
        p.highPhaseMeanInstrs = 60000;
        p.lowPhaseMeanInstrs = 60000;
        p.lowIntensityScale = 0.6;
        p.writeFrac = 0.25;
    } else {
        throw hard::ConfigError("unknown workload '" + name + "'");
    }
    return p;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "astar", "bzip", "gcc", "h264ref", "gobmk", "libqt",
        "sjeng", "mcf", "hmmer", "omnetpp", "apache",
    };
    return names;
}

bool
isKnownWorkload(const std::string &name)
{
    if (name == "probe" || name.rfind("probe:", 0) == 0 ||
        name.rfind("covert:", 0) == 0 || name.rfind("hammer:", 0) == 0 ||
        name.rfind("pim:", 0) == 0 || name.rfind("dramsim2:", 0) == 0 ||
        name.rfind("champsim:", 0) == 0) {
        return true;
    }
    const auto &names = workloadNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return true;
    return name == "bzip2" || name == "libquantum";
}

WorkloadParams
workloadParams(const std::string &name)
{
    return baseParams(name);
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &name, std::uint64_t seed, Addr addr_base)
{
    if (name == "probe" || name.rfind("probe:", 0) == 0) {
        ProbeParams p;
        if (name.size() > 6) {
            // "probe:N" probes every N CPU cycles; the default 150 is
            // the paper's dense receiver, large N gives the sparse
            // (DRAM-idle-heavy) receiver.
            const std::string every_str = name.substr(6);
            char *end = nullptr;
            const unsigned long every =
                std::strtoul(every_str.c_str(), &end, 10);
            if (every_str.empty() || end == nullptr || *end != '\0' ||
                every == 0) {
                failWorkload(name, "bad probe cadence (cycles >= 1)",
                             every_str, 6);
            }
            p.probeEveryCycles = every;
        }
        p.base += addr_base;
        return std::make_unique<ProbeWorkload>(p);
    }
    if (name.rfind("covert:", 0) == 0) {
        CovertSenderParams p;
        p.key = keyBits(parseKeyHex(name, name.substr(7), 7));
        p.bufferBase += addr_base;
        return std::make_unique<CovertSender>(p);
    }
    if (name.rfind("hammer:", 0) == 0) {
        // RowHammer-pattern covert sender: 1-pulses ping-pong between
        // two rows of one bank (ACT per access) instead of streaming.
        CovertSenderParams p;
        p.key = keyBits(parseKeyHex(name, name.substr(7), 7));
        p.hammerRows = 2;
        p.bufferBase += addr_base;
        return std::make_unique<CovertSender>(p);
    }
    if (name.rfind("pim:", 0) == 0) {
        // "pim:HEX[:PULSE]" — PIM-command sender, optional pulse
        // length in CPU cycles.
        std::string rest = name.substr(4);
        PimSenderParams p;
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            const std::string pulse_str = rest.substr(colon + 1);
            char *end = nullptr;
            const unsigned long pulse =
                std::strtoul(pulse_str.c_str(), &end, 10);
            if (pulse_str.empty() || end == nullptr || *end != '\0' ||
                pulse < 100) {
                failWorkload(name, "bad PIM pulse (cycles >= 100)",
                             pulse_str, 4 + colon + 1);
            }
            p.pulseCycles = pulse;
            rest = rest.substr(0, colon);
        }
        p.key = keyBits(parseKeyHex(name, rest, 4));
        p.bufferBase += addr_base;
        return std::make_unique<PimCovertSender>(p);
    }
    if (name.rfind("dramsim2:", 0) == 0) {
        return loadTraceWorkload(TraceFileFormat::DramSim2,
                                 name.substr(9), addr_base);
    }
    if (name.rfind("champsim:", 0) == 0) {
        return loadTraceWorkload(TraceFileFormat::ChampSim,
                                 name.substr(9), addr_base);
    }
    WorkloadParams p = baseParams(name);
    p.addrBase = addr_base;
    return std::make_unique<SyntheticWorkload>(p, seed);
}

} // namespace camo::trace
