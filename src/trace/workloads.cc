#include "src/trace/workloads.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/trace/covert.h"
#include "src/trace/file_trace.h"
#include "src/trace/pim.h"

namespace camo::trace {

namespace {

/** "workload 'NAME': WHAT token 'TOK' at byte N" — the structured
 *  rejection every malformed parameterized name gets (mirrors
 *  FaultPlan::parse; a bad name fails one job, never the process). */
[[noreturn]] void
failWorkload(const std::string &name, const std::string &what,
             const std::string &tok, std::size_t offset)
{
    std::ostringstream os;
    os << "workload '" << name << "': " << what << " token '" << tok
       << "' at byte " << offset;
    throw hard::ConfigError(os.str());
}

/** Parse the hex key of "covert:HEX"-style names (`offset` = where
 *  HEX starts in `name`). */
std::uint32_t
parseKeyHex(const std::string &name, const std::string &hex,
            std::size_t offset)
{
    if (hex.empty() || hex.size() > 8)
        failWorkload(name, "bad covert key (1..8 hex digits expected)",
                     hex, offset);
    std::uint64_t key = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else if (c >= 'A' && c <= 'F')
            digit = 10 + (c - 'A');
        else
            failWorkload(name, "bad covert key (hex expected)", hex,
                         offset);
        key = (key << 4) | static_cast<std::uint64_t>(digit);
    }
    return static_cast<std::uint32_t>(key);
}

/**
 * Benchmark parameter table. `coldFrac` is the dial for LLC MPKI
 * (memory instructions/kilo-instr x coldFrac ~ LLC misses/kilo-instr);
 * `seqFrac` the dial for row-buffer locality; the phase parameters
 * give each benchmark its characteristic intensity swings.
 */
WorkloadParams
baseParams(const std::string &name)
{
    WorkloadParams p;
    p.name = name;

    if (name == "mcf") {
        // Pointer-chasing sparse graph: extremely memory intensive,
        // poor locality, strong phases.
        p.memPerKiloInstr = 350;
        p.coldFrac = 0.17;
        p.seqFrac = 0.15;
        p.burstContinue = 0.60;
        p.coldBytes = 512ULL << 20;
        p.highPhaseMeanInstrs = 80000;
        p.lowPhaseMeanInstrs = 40000;
        p.lowIntensityScale = 0.35;
        p.writeFrac = 0.25;
    } else if (name == "libqt" || name == "libquantum") {
        // Pure streaming over a large vector: intense and sequential.
        p.memPerKiloInstr = 300;
        p.coldFrac = 0.10;
        p.seqFrac = 0.95;
        p.burstContinue = 0.75;
        p.coldBytes = 128ULL << 20;
        p.highPhaseMeanInstrs = 200000;
        p.lowPhaseMeanInstrs = 20000;
        p.lowIntensityScale = 0.8;
        p.writeFrac = 0.35;
    } else if (name == "omnetpp") {
        // Discrete-event simulator: heap-heavy, random, intensive.
        p.memPerKiloInstr = 340;
        p.coldFrac = 0.08;
        p.seqFrac = 0.25;
        p.burstContinue = 0.45;
        p.coldBytes = 256ULL << 20;
        p.highPhaseMeanInstrs = 60000;
        p.lowPhaseMeanInstrs = 60000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.35;
    } else if (name == "apache") {
        // Request-driven server: bursty on/off behaviour, random.
        p.memPerKiloInstr = 320;
        p.coldFrac = 0.045;
        p.seqFrac = 0.35;
        p.burstContinue = 0.70;
        p.burstCap = 64;
        p.coldBytes = 128ULL << 20;
        p.highPhaseMeanInstrs = 25000;
        p.lowPhaseMeanInstrs = 75000;
        p.lowIntensityScale = 0.1;
        p.writeFrac = 0.3;
    } else if (name == "astar") {
        // Path-finding: moderate intensity, mixed locality.
        p.memPerKiloInstr = 330;
        p.coldFrac = 0.030;
        p.seqFrac = 0.4;
        p.burstContinue = 0.5;
        p.coldBytes = 64ULL << 20;
        p.highPhaseMeanInstrs = 70000;
        p.lowPhaseMeanInstrs = 50000;
        p.lowIntensityScale = 0.45;
        p.writeFrac = 0.3;
    } else if (name == "gcc") {
        p.memPerKiloInstr = 310;
        p.coldFrac = 0.020;
        p.seqFrac = 0.45;
        p.burstContinue = 0.55;
        p.coldBytes = 96ULL << 20;
        p.highPhaseMeanInstrs = 30000;
        p.lowPhaseMeanInstrs = 30000;
        p.lowIntensityScale = 0.3;
        p.writeFrac = 0.35;
    } else if (name == "bzip" || name == "bzip2") {
        p.memPerKiloInstr = 290;
        p.coldFrac = 0.014;
        p.seqFrac = 0.7;
        p.burstContinue = 0.6;
        p.coldBytes = 48ULL << 20;
        p.highPhaseMeanInstrs = 120000;
        p.lowPhaseMeanInstrs = 80000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.4;
    } else if (name == "hmmer") {
        p.memPerKiloInstr = 380;
        p.coldFrac = 0.009;
        p.seqFrac = 0.8;
        p.burstContinue = 0.7;
        p.coldBytes = 32ULL << 20;
        p.highPhaseMeanInstrs = 300000;
        p.lowPhaseMeanInstrs = 30000;
        p.lowIntensityScale = 0.7;
        p.writeFrac = 0.3;
    } else if (name == "h264ref") {
        p.memPerKiloInstr = 350;
        p.coldFrac = 0.005;
        p.seqFrac = 0.75;
        p.burstContinue = 0.5;
        p.coldBytes = 32ULL << 20;
        p.highPhaseMeanInstrs = 50000;
        p.lowPhaseMeanInstrs = 50000;
        p.lowIntensityScale = 0.6;
        p.writeFrac = 0.3;
    } else if (name == "gobmk") {
        p.memPerKiloInstr = 280;
        p.coldFrac = 0.004;
        p.seqFrac = 0.3;
        p.burstContinue = 0.35;
        p.coldBytes = 24ULL << 20;
        p.highPhaseMeanInstrs = 40000;
        p.lowPhaseMeanInstrs = 40000;
        p.lowIntensityScale = 0.5;
        p.writeFrac = 0.3;
    } else if (name == "sjeng") {
        p.memPerKiloInstr = 270;
        p.coldFrac = 0.003;
        p.seqFrac = 0.25;
        p.burstContinue = 0.3;
        p.coldBytes = 96ULL << 20;
        p.highPhaseMeanInstrs = 60000;
        p.lowPhaseMeanInstrs = 60000;
        p.lowIntensityScale = 0.6;
        p.writeFrac = 0.25;
    } else {
        throw hard::ConfigError("unknown workload '" + name + "'");
    }
    return p;
}

/**
 * Bursty diurnal web-traffic model ("webdiurnal").
 *
 * Requests arrive at a rate that follows a 24-hour load curve (quiet
 * overnight, busy midday, evening peak), compressed so one simulated
 * "day" spans `dayInstrs` instructions. Each request touches
 * connection state in a small hot region, then streams a response
 * body as a back-to-back burst of cold lines — the on/off pattern
 * that makes web servers hard for traffic shaping. At each simulated
 * hour boundary a flash crowd may start, tripling the arrival rate
 * for a fraction of the day.
 */
class DiurnalWebWorkload final : public TraceSource
{
  public:
    DiurnalWebWorkload(std::uint64_t day_instrs, std::uint64_t seed,
                       Addr addr_base)
        : rng_(seed), dayInstrs_(day_instrs), addrBase_(addr_base)
    {
        camo_assert(dayInstrs_ >= 24, "day must cover 24 hours");
        seqCursor_ = coldBase();
    }

    const std::string &name() const override { return name_; }

    TraceItem
    next(Cycle) override
    {
        TraceItem item;
        if (burstLeft_ > 0) {
            // Streaming one response body: sequential cold lines.
            --burstLeft_;
            item.gapInstrs = 0;
            seqCursor_ += 64;
            if (seqCursor_ >= coldBase() + kColdBytes)
                seqCursor_ = coldBase();
            item.addr = seqCursor_;
            item.isWrite = rng_.chance(0.2);
            advance(1);
            return item;
        }

        // Idle until the next request; arrival probability per
        // instruction scales with the current diurnal load.
        const double req_prob = 0.04 * currentLoad();
        std::uint64_t gap = 0;
        while (!rng_.chance(req_prob) && gap < 100000)
            ++gap;
        item.gapInstrs = gap;

        // Accept: read/update connection state in the hot region.
        item.addr = addrBase_ + (rng_.below(kHotBytes) & ~Addr{7});
        item.isWrite = rng_.chance(0.5);

        // Response length in lines (mix of small pages, some large).
        burstLeft_ = rng_.burstLength(0.85, 96);
        if (rng_.chance(0.3))
            seqCursor_ = coldBase() + (rng_.below(kColdBytes) & ~Addr{63});

        advance(gap + 1);
        return item;
    }

  private:
    static constexpr std::uint64_t kHotBytes = 32 * 1024;
    static constexpr std::uint64_t kColdBytes = 192ULL << 20;

    Addr coldBase() const { return addrBase_ + kHotBytes; }

    std::uint64_t
    hourOf(std::uint64_t instr) const
    {
        return (instr % dayInstrs_) * 24 / dayInstrs_;
    }

    double
    currentLoad() const
    {
        // Typical web-server diurnal request-rate profile, midnight
        // first, normalized to the evening peak. Table instead of a
        // sinusoid: real curves are asymmetric (sharp morning ramp,
        // slow evening decay).
        static constexpr double kHourLoad[24] = {
            0.22, 0.16, 0.12, 0.10, 0.09, 0.10, 0.14, 0.25,
            0.45, 0.65, 0.78, 0.88, 0.92, 0.90, 0.85, 0.82,
            0.80, 0.85, 0.95, 1.00, 0.92, 0.75, 0.52, 0.33,
        };
        const double load = kHourLoad[hourOf(instrCount_)];
        return flashLeft_ > 0 ? std::min(1.0, load * 3.0) : load;
    }

    void
    advance(std::uint64_t instrs)
    {
        const std::uint64_t before = hourOf(instrCount_);
        instrCount_ += instrs;
        flashLeft_ -= std::min(flashLeft_, instrs);
        if (hourOf(instrCount_) != before && flashLeft_ == 0 &&
            rng_.chance(1.0 / 16.0)) {
            // Flash crowd: viral link / breaking news for 0.5..2 hours.
            flashLeft_ = rng_.range(dayInstrs_ / 48, dayInstrs_ / 12);
        }
    }

    Rng rng_;
    std::string name_ = "webdiurnal";
    std::uint64_t dayInstrs_;
    Addr addrBase_;
    std::uint64_t instrCount_ = 0;
    std::uint64_t flashLeft_ = 0; ///< instrs of flash crowd remaining
    std::uint64_t burstLeft_ = 0; ///< response lines still streaming
    Addr seqCursor_ = 0;
};

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "astar", "bzip", "gcc", "h264ref", "gobmk", "libqt",
        "sjeng", "mcf", "hmmer", "omnetpp", "apache",
    };
    return names;
}

bool
isKnownWorkload(const std::string &name)
{
    if (name == "probe" || name.rfind("probe:", 0) == 0 ||
        name.rfind("covert:", 0) == 0 || name.rfind("hammer:", 0) == 0 ||
        name.rfind("pim:", 0) == 0 || name.rfind("dramsim2:", 0) == 0 ||
        name.rfind("champsim:", 0) == 0 || name.rfind("gem5:", 0) == 0 ||
        name == "webdiurnal" || name.rfind("webdiurnal:", 0) == 0) {
        return true;
    }
    const auto &names = workloadNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return true;
    return name == "bzip2" || name == "libquantum";
}

WorkloadParams
workloadParams(const std::string &name)
{
    return baseParams(name);
}

CompiledWorkload
compileWorkload(const std::string &name)
{
    CompiledWorkload w;
    w.name_ = name;
    if (name == "probe" || name.rfind("probe:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::Probe;
        if (name.size() > 6) {
            // "probe:N" probes every N CPU cycles; the default 150 is
            // the paper's dense receiver, large N gives the sparse
            // (DRAM-idle-heavy) receiver.
            const std::string every_str = name.substr(6);
            char *end = nullptr;
            const unsigned long every =
                std::strtoul(every_str.c_str(), &end, 10);
            if (every_str.empty() || end == nullptr || *end != '\0' ||
                every == 0) {
                failWorkload(name, "bad probe cadence (cycles >= 1)",
                             every_str, 6);
            }
            w.probe_.probeEveryCycles = every;
        }
        return w;
    }
    if (name.rfind("covert:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::Covert;
        w.covert_.key = keyBits(parseKeyHex(name, name.substr(7), 7));
        return w;
    }
    if (name.rfind("hammer:", 0) == 0) {
        // RowHammer-pattern covert sender: 1-pulses ping-pong between
        // two rows of one bank (ACT per access) instead of streaming.
        w.kind_ = CompiledWorkload::Kind::Hammer;
        w.covert_.key = keyBits(parseKeyHex(name, name.substr(7), 7));
        w.covert_.hammerRows = 2;
        return w;
    }
    if (name.rfind("pim:", 0) == 0) {
        // "pim:HEX[:PULSE]" — PIM-command sender, optional pulse
        // length in CPU cycles.
        w.kind_ = CompiledWorkload::Kind::Pim;
        std::string rest = name.substr(4);
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            const std::string pulse_str = rest.substr(colon + 1);
            char *end = nullptr;
            const unsigned long pulse =
                std::strtoul(pulse_str.c_str(), &end, 10);
            if (pulse_str.empty() || end == nullptr || *end != '\0' ||
                pulse < 100) {
                failWorkload(name, "bad PIM pulse (cycles >= 100)",
                             pulse_str, 4 + colon + 1);
            }
            w.pim_.pulseCycles = pulse;
            rest = rest.substr(0, colon);
        }
        w.pim_.key = keyBits(parseKeyHex(name, rest, 4));
        return w;
    }
    if (name.rfind("dramsim2:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::File;
        w.traceItems_ =
            loadTraceItems(TraceFileFormat::DramSim2, name.substr(9));
        w.traceName_ = "dramsim2:" + name.substr(9);
        return w;
    }
    if (name.rfind("champsim:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::File;
        w.traceItems_ =
            loadTraceItems(TraceFileFormat::ChampSim, name.substr(9));
        w.traceName_ = "champsim:" + name.substr(9);
        return w;
    }
    if (name.rfind("gem5:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::File;
        w.traceItems_ =
            loadTraceItems(TraceFileFormat::Gem5, name.substr(5));
        w.traceName_ = "gem5:" + name.substr(5);
        return w;
    }
    if (name == "webdiurnal" || name.rfind("webdiurnal:", 0) == 0) {
        w.kind_ = CompiledWorkload::Kind::DiurnalWeb;
        w.dayInstrs_ = 240000; // ~10k instructions per simulated hour
        if (name.size() > 10) {
            // "webdiurnal:DAY" compresses one 24-hour day into DAY
            // instructions.
            const std::string day_str = name.substr(11);
            char *end = nullptr;
            const unsigned long day =
                std::strtoul(day_str.c_str(), &end, 10);
            if (day_str.empty() || end == nullptr || *end != '\0' ||
                day < 24) {
                failWorkload(name,
                             "bad day length (instructions >= 24)",
                             day_str, 11);
            }
            w.dayInstrs_ = day;
        }
        return w;
    }
    w.kind_ = CompiledWorkload::Kind::Synthetic;
    w.synth_ = baseParams(name);
    return w;
}

std::unique_ptr<TraceSource>
CompiledWorkload::instantiate(std::uint64_t seed, Addr addr_base) const
{
    switch (kind_) {
      case Kind::Probe: {
        ProbeParams p = probe_;
        p.base += addr_base;
        return std::make_unique<ProbeWorkload>(p);
      }
      case Kind::Covert:
      case Kind::Hammer: {
        CovertSenderParams p = covert_;
        p.bufferBase += addr_base;
        return std::make_unique<CovertSender>(p);
      }
      case Kind::Pim: {
        PimSenderParams p = pim_;
        p.bufferBase += addr_base;
        return std::make_unique<PimCovertSender>(p);
      }
      case Kind::File:
        return std::make_unique<FileTrace>(traceItems_, traceName_,
                                           addr_base);
      case Kind::DiurnalWeb:
        return std::make_unique<DiurnalWebWorkload>(dayInstrs_, seed,
                                                    addr_base);
      case Kind::Synthetic:
        break;
    }
    WorkloadParams p = synth_;
    p.addrBase = addr_base;
    return std::make_unique<SyntheticWorkload>(p, seed);
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &name, std::uint64_t seed, Addr addr_base)
{
    return compileWorkload(name).instantiate(seed, addr_base);
}

} // namespace camo::trace
