/**
 * @file
 * Trace-source abstraction feeding the cores.
 *
 * A trace is an infinite stream of TraceItems; each item is either a
 * run of non-memory instructions or a single memory instruction
 * preceded by a (possibly zero) run of non-memory instructions. The
 * paper drove its simulator with gem5-generated SPECInt 2006 traces;
 * we substitute synthetic models (see DESIGN.md §5).
 */

#ifndef CAMO_TRACE_TRACE_H
#define CAMO_TRACE_TRACE_H

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/types.h"

namespace camo::trace {

/** One unit of work from a trace. */
struct TraceItem
{
    /**
     * Busy-wait for this many CPU cycles before anything else in the
     * item (models wall-clock pacing such as Algorithm 1's
     * "while ElapsedTime < PULSE"). Dispatch stalls for the duration.
     */
    std::uint64_t waitCycles = 0;
    /** Non-memory instructions preceding the memory op (may be 0). */
    std::uint64_t gapInstrs = 0;
    /** Memory op address; kNoAddr if this item is instructions only. */
    Addr addr = kNoAddr;
    bool isWrite = false;

    bool hasMemOp() const { return addr != kNoAddr; }
};

/** An infinite instruction/memory stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual const std::string &name() const = 0;
    /**
     * Produce the next item. Streams never end.
     * @param now current CPU cycle, for wall-clock-paced programs
     *        (most workloads ignore it).
     */
    virtual TraceItem next(Cycle now) = 0;
};

} // namespace camo::trace

#endif // CAMO_TRACE_TRACE_H
