/**
 * @file
 * Registry of the paper's evaluation workloads.
 *
 * SPECInt 2006 benchmarks plus the Apache web server, modelled
 * synthetically (DESIGN.md §5). Parameters encode each benchmark's
 * qualitative memory character: demand intensity (LLC MPKI ordering:
 * mcf >> libquantum ~ omnetpp > apache > astar > gcc > bzip2 > hmmer >
 * h264ref > gobmk > sjeng), sequential vs pointer-chasing access, and
 * phase/burst structure.
 */

#ifndef CAMO_TRACE_WORKLOADS_H
#define CAMO_TRACE_WORKLOADS_H

#include <memory>
#include <string>
#include <vector>

#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace camo::trace {

/** Names of the 11 evaluation workloads, in the paper's order. */
const std::vector<std::string> &workloadNames();

/** Is `name` a known workload (including the parameterized
 *  "covert:" / "probe" / "hammer:" / "pim:" / "dramsim2:" /
 *  "champsim:" families)? */
bool isKnownWorkload(const std::string &name);

/** Parameters for one of the 11 named workloads. */
WorkloadParams workloadParams(const std::string &name);

/**
 * Instantiate a workload trace.
 *
 * Accepted names:
 *  - the 11 benchmark names;
 *  - "probe" / "probe:N" (constant-rate measuring adversary, one
 *    load per N CPU cycles);
 *  - "covert:HEX" (Algorithm 1 sender with a 32-bit key, e.g.
 *    "covert:2AAAAAAA");
 *  - "hammer:HEX" (covert sender whose 1-pulses are a same-bank
 *    row-conflict storm — drives TRR/PRAC RowHammer mitigations);
 *  - "pim:HEX" / "pim:HEX:PULSE" (PIM-command covert sender,
 *    src/trace/pim.h; PULSE in CPU cycles, default 5000);
 *  - "dramsim2:PATH" / "champsim:PATH" (trace-file replay,
 *    src/trace/file_trace.h; PATH may be "@sample").
 *
 * Malformed parameterized names raise hard::ConfigError naming the
 * offending token and byte offset.
 *
 * @param addr_base keeps different cores' address spaces disjoint.
 */
std::unique_ptr<TraceSource> makeWorkload(const std::string &name,
                                          std::uint64_t seed,
                                          Addr addr_base);

} // namespace camo::trace

#endif // CAMO_TRACE_WORKLOADS_H
