/**
 * @file
 * Registry of the paper's evaluation workloads.
 *
 * SPECInt 2006 benchmarks plus the Apache web server, modelled
 * synthetically (DESIGN.md §5). Parameters encode each benchmark's
 * qualitative memory character: demand intensity (LLC MPKI ordering:
 * mcf >> libquantum ~ omnetpp > apache > astar > gcc > bzip2 > hmmer >
 * h264ref > gobmk > sjeng), sequential vs pointer-chasing access, and
 * phase/burst structure.
 */

#ifndef CAMO_TRACE_WORKLOADS_H
#define CAMO_TRACE_WORKLOADS_H

#include <memory>
#include <string>
#include <vector>

#include "src/trace/covert.h"
#include "src/trace/pim.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace camo::trace {

/** Names of the 11 evaluation workloads, in the paper's order. */
const std::vector<std::string> &workloadNames();

/** Is `name` a known workload (including the parameterized
 *  "covert:" / "probe" / "hammer:" / "pim:" / "dramsim2:" /
 *  "champsim:" / "gem5:" / "webdiurnal" families)? */
bool isKnownWorkload(const std::string &name);

/** Parameters for one of the 11 named workloads. */
WorkloadParams workloadParams(const std::string &name);

/**
 * Instantiate a workload trace.
 *
 * Accepted names:
 *  - the 11 benchmark names;
 *  - "probe" / "probe:N" (constant-rate measuring adversary, one
 *    load per N CPU cycles);
 *  - "covert:HEX" (Algorithm 1 sender with a 32-bit key, e.g.
 *    "covert:2AAAAAAA");
 *  - "hammer:HEX" (covert sender whose 1-pulses are a same-bank
 *    row-conflict storm — drives TRR/PRAC RowHammer mitigations);
 *  - "pim:HEX" / "pim:HEX:PULSE" (PIM-command covert sender,
 *    src/trace/pim.h; PULSE in CPU cycles, default 5000);
 *  - "dramsim2:PATH" / "champsim:PATH" / "gem5:PATH" (trace-file
 *    replay, src/trace/file_trace.h; PATH may be "@sample");
 *  - "webdiurnal" / "webdiurnal:DAY" (bursty web server following a
 *    24-hour load curve with flash crowds; DAY = instructions per
 *    simulated day, default 240000).
 *
 * Malformed parameterized names raise hard::ConfigError naming the
 * offending token and byte offset.
 *
 * @param addr_base keeps different cores' address spaces disjoint.
 */
std::unique_ptr<TraceSource> makeWorkload(const std::string &name,
                                          std::uint64_t seed,
                                          Addr addr_base);

/**
 * A workload name, parsed and validated once.
 *
 * Sweeps and the GA instantiate the same workload mix hundreds of
 * times with per-run seeds and address bases. CompiledWorkload does
 * the name parsing, parameter validation, and (for "dramsim2:" /
 * "champsim:" / "gem5:" names) the trace-file load + parse exactly
 * once; instantiate() then builds a fresh TraceSource per run without
 * re-touching the filesystem. Instantiation is bit-exact with
 * makeWorkload (which now delegates here), so plan-built and
 * directly-built systems produce identical results.
 *
 * Copying a CompiledWorkload is cheap: parsed trace items are shared
 * immutably (std::shared_ptr), never duplicated.
 */
class CompiledWorkload
{
  public:
    enum class Kind
    {
        Probe,      ///< "probe" / "probe:N"
        Covert,     ///< "covert:HEX"
        Hammer,     ///< "hammer:HEX"
        Pim,        ///< "pim:HEX[:PULSE]"
        File,       ///< "dramsim2:" / "champsim:" / "gem5:" replay
        Synthetic,  ///< one of the 11 benchmark models
        DiurnalWeb, ///< "webdiurnal[:DAY]"
    };

    Kind kind() const { return kind_; }
    const std::string &name() const { return name_; }

    /** Build a fresh per-run source. `seed` and `addr_base` play the
     *  same roles as in makeWorkload. */
    std::unique_ptr<TraceSource> instantiate(std::uint64_t seed,
                                             Addr addr_base) const;

  private:
    friend CompiledWorkload compileWorkload(const std::string &name);
    CompiledWorkload() = default;

    Kind kind_ = Kind::Synthetic;
    std::string name_;
    ProbeParams probe_;
    CovertSenderParams covert_;
    PimSenderParams pim_;
    WorkloadParams synth_;
    std::shared_ptr<const std::vector<TraceItem>> traceItems_;
    std::string traceName_;
    std::uint64_t dayInstrs_ = 0;
};

/**
 * Parse and validate `name` (same grammar as makeWorkload, identical
 * ConfigError texts), loading any trace file it references.
 * @throws hard::ConfigError on malformed or unknown names.
 */
CompiledWorkload compileWorkload(const std::string &name);

} // namespace camo::trace

#endif // CAMO_TRACE_WORKLOADS_H
