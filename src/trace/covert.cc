#include "src/trace/covert.h"

#include "src/common/logging.h"

namespace camo::trace {

std::vector<bool>
keyBits(std::uint32_t key, std::uint32_t bits)
{
    camo_assert(bits >= 1 && bits <= 32, "key width must be 1..32");
    std::vector<bool> out;
    out.reserve(bits);
    for (std::uint32_t i = 0; i < bits; ++i)
        out.push_back(((key >> (bits - 1 - i)) & 1u) != 0);
    return out;
}

CovertSender::CovertSender(const CovertSenderParams &params)
    : params_(params), nextLine_(params.bufferBase)
{
    camo_assert(!params_.key.empty(), "covert key must be non-empty");
    camo_assert(params_.pulseCycles >= 100, "pulse too short to carry");
}

TraceItem
CovertSender::next(Cycle now)
{
    if (!started_) {
        started_ = true;
        pulseEnd_ = now + params_.pulseCycles;
    }
    if (now >= pulseEnd_) {
        ++bitIndex_;
        pulseEnd_ += params_.pulseCycles;
    }

    const bool bit = params_.key[bitIndex_ % params_.key.size()];
    TraceItem item;

    if (!bit) {
        // 0-pulse: DoNothing until the pulse elapses (busy wait).
        item.waitCycles = pulseEnd_ - now;
        return item;
    }

    // 1-pulse: hammer memory by writing successive cache lines of
    // BigBuffer for the duration of the pulse.
    item.gapInstrs = params_.writeEveryInstrs - 1;
    item.addr = nextLine_;
    item.isWrite = true;
    nextLine_ += params_.lineBytes;
    if (nextLine_ >= params_.bufferBase + params_.bufferBytes)
        nextLine_ = params_.bufferBase;
    return item;
}

ProbeWorkload::ProbeWorkload(const ProbeParams &params)
    : params_(params), cursor_(params.base)
{
    camo_assert(params_.probeEveryCycles >= 1, "probe cadence >= 1");
    camo_assert(params_.strideBytes >= 64, "probe stride >= one line");
}

TraceItem
ProbeWorkload::next(Cycle now)
{
    TraceItem item;
    // Fixed wall-clock cadence: wait out the remainder of the probe
    // period, then load.
    if (nextProbeAt_ > now)
        item.waitCycles = nextProbeAt_ - now;
    nextProbeAt_ = (nextProbeAt_ > now ? nextProbeAt_ : now) +
                   params_.probeEveryCycles;
    item.addr = cursor_;
    item.isWrite = false;
    cursor_ += params_.strideBytes;
    if (cursor_ >= params_.base + params_.regionBytes)
        cursor_ = params_.base;
    return item;
}

} // namespace camo::trace
