#include "src/trace/covert.h"

#include "src/common/logging.h"

namespace camo::trace {

std::vector<bool>
keyBits(std::uint32_t key, std::uint32_t bits)
{
    camo_assert(bits >= 1 && bits <= 32, "key width must be 1..32");
    std::vector<bool> out;
    out.reserve(bits);
    for (std::uint32_t i = 0; i < bits; ++i)
        out.push_back(((key >> (bits - 1 - i)) & 1u) != 0);
    return out;
}

CovertSender::CovertSender(const CovertSenderParams &params)
    : params_(params), nextLine_(params.bufferBase)
{
    camo_assert(!params_.key.empty(), "covert key must be non-empty");
    camo_assert(params_.pulseCycles >= 100, "pulse too short to carry");
    if (params_.hammerRows >= 2) {
        camo_assert(params_.hammerLineStrideBytes >= params_.lineBytes,
                    "hammer line stride below one cache line");
        camo_assert(params_.hammerRowStrideBytes %
                            params_.hammerLineStrideBytes ==
                        0,
                    "hammer row stride must be a multiple of the line "
                    "stride");
        name_ = "hammer-sender";
    }
}

TraceItem
CovertSender::next(Cycle now)
{
    if (!started_) {
        started_ = true;
        pulseEnd_ = now + params_.pulseCycles;
    }
    if (now >= pulseEnd_) {
        ++bitIndex_;
        pulseEnd_ += params_.pulseCycles;
    }

    const bool bit = params_.key[bitIndex_ % params_.key.size()];
    TraceItem item;

    if (!bit) {
        // 0-pulse: DoNothing until the pulse elapses (busy wait).
        item.waitCycles = pulseEnd_ - now;
        return item;
    }

    // 1-pulse: hammer memory by writing successive cache lines of
    // BigBuffer for the duration of the pulse.
    item.gapInstrs = params_.writeEveryInstrs - 1;
    item.isWrite = true;
    if (params_.hammerRows >= 2) {
        // RowHammer mode: alternate rows of one bank, advancing a
        // line (column) per full rotation so every access misses the
        // caches, and a whole row-group once the rows' lines are
        // spent. Consecutive accesses conflict in the row buffer, so
        // each one costs an ACT — the activation storm a TRR/PRAC
        // defense converts into RFM stalls.
        const std::uint64_t lines_per_row =
            params_.hammerRowStrideBytes / params_.hammerLineStrideBytes;
        const std::uint64_t row = hammerN_ % params_.hammerRows;
        const std::uint64_t line =
            (hammerN_ / params_.hammerRows) % lines_per_row;
        const std::uint64_t group =
            hammerN_ / (params_.hammerRows * lines_per_row);
        const std::uint64_t group_span =
            params_.hammerRows * params_.hammerRowStrideBytes;
        Addr offset = group * group_span +
                      row * params_.hammerRowStrideBytes +
                      line * params_.hammerLineStrideBytes;
        offset %= params_.bufferBytes;
        item.addr = params_.bufferBase + offset;
        ++hammerN_;
        return item;
    }
    item.addr = nextLine_;
    nextLine_ += params_.lineBytes;
    if (nextLine_ >= params_.bufferBase + params_.bufferBytes)
        nextLine_ = params_.bufferBase;
    return item;
}

ProbeWorkload::ProbeWorkload(const ProbeParams &params)
    : params_(params), cursor_(params.base)
{
    camo_assert(params_.probeEveryCycles >= 1, "probe cadence >= 1");
    camo_assert(params_.strideBytes >= 64, "probe stride >= one line");
}

TraceItem
ProbeWorkload::next(Cycle now)
{
    TraceItem item;
    // Fixed wall-clock cadence: wait out the remainder of the probe
    // period, then load.
    if (nextProbeAt_ > now)
        item.waitCycles = nextProbeAt_ - now;
    nextProbeAt_ = (nextProbeAt_ > now ? nextProbeAt_ : now) +
                   params_.probeEveryCycles;
    item.addr = cursor_;
    item.isWrite = false;
    cursor_ += params_.strideBytes;
    if (cursor_ >= params_.base + params_.regionBytes)
        cursor_ = params_.base;
    return item;
}

} // namespace camo::trace
