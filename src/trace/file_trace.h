/**
 * @file
 * Trace-ingestion frontend: real memory traces as TraceSources.
 *
 * Three interchange formats feed the existing TraceItem stream so
 * real workloads drive cores alongside the synthetic SPEC models:
 *
 *  - DRAMSim2 text: one request per line, `0xADDR CMD CYCLE` with CMD
 *    in {P_MEM_RD, P_MEM_WR, P_FETCH} and CYCLE the absolute
 *    (non-decreasing) CPU issue cycle. Blank lines and `#`/`;`
 *    comments are tolerated. Cycle deltas become TraceItem::waitCycles
 *    (wall-clock pacing).
 *
 *  - ChampSim binary: fixed 64-byte input_instr records (ip u64,
 *    is_branch u8, branch_taken u8, 2 destination registers, 4 source
 *    registers, 2 destination-memory u64, 4 source-memory u64, all
 *    little-endian). Each record is one instruction; non-zero memory
 *    slots become accesses paced by instruction gaps
 *    (TraceItem::gapInstrs).
 *
 *  - gem5 packet CSV (util/decode_packet_trace.py output): one
 *    `TICK,CMD,ADDR,SIZE` packet per line with CMD in {r, w, ReadReq,
 *    WriteReq}. Tick deltas become TraceItem::waitCycles; an access
 *    spanning multiple 64-byte lines becomes one item per line.
 *
 * Malformed input raises hard::ConfigError naming the offending token
 * and byte offset (mirroring FaultPlan::parse) — never an abort, so
 * one bad trace fails one job, not a whole sweep. Parsing is pure and
 * the replay is stateless-per-iteration, so trace-driven runs stay
 * bit-exact across jobs=1/N.
 *
 * Workload names (src/trace/workloads.h): `dramsim2:PATH`,
 * `champsim:PATH`, and `gem5:PATH`; `PATH` may be `@sample` for the
 * embedded example trace of each format (used by the shipped scenario
 * topologies so they work from any directory).
 */

#ifndef CAMO_TRACE_FILE_TRACE_H
#define CAMO_TRACE_FILE_TRACE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace camo::trace {

/** Supported trace-file formats. */
enum class TraceFileFormat
{
    DramSim2, ///< text, one request per line
    ChampSim, ///< binary, 64-byte input_instr records
    Gem5,     ///< text, one `TICK,CMD,ADDR,SIZE` packet per line
};

const char *traceFileFormatName(TraceFileFormat format);

/**
 * Parse DRAMSim2 text. `source` names the trace in error messages.
 * @throws hard::ConfigError naming the offending token and its byte
 *         offset in `text`.
 */
std::vector<TraceItem> parseDramSim2Trace(const std::string &text,
                                          const std::string &source);

/**
 * Parse ChampSim binary records. `source` names the trace in error
 * messages.
 * @throws hard::ConfigError naming the offending byte offset.
 */
std::vector<TraceItem> parseChampSimTrace(const std::string &bytes,
                                          const std::string &source);

/**
 * Parse a gem5 packet trace (util/decode_packet_trace.py CSV):
 * `TICK,CMD,ADDR,SIZE` per line with CMD in {r, w, ReadReq,
 * WriteReq}, ADDR decimal or 0x-hex, and TICK absolute and
 * non-decreasing (interpreted as CPU cycles). An access spanning
 * multiple 64-byte lines becomes one TraceItem per line touched.
 * Blank lines and `#`/`;` comments are tolerated.
 * @throws hard::ConfigError naming the offending token and byte
 *         offset, like the other formats.
 */
std::vector<TraceItem> parseGem5Trace(const std::string &text,
                                      const std::string &source);

/** Render items back into DRAMSim2 text (round-trip inverse of
 *  parseDramSim2Trace for wait-paced items; used by tests). */
std::string formatDramSim2Trace(const std::vector<TraceItem> &items);

/** The embedded example trace for `format` (`@sample`). */
const std::string &builtinSampleTrace(TraceFileFormat format);

/**
 * Replay a parsed trace forever: items stream in order and the
 * sequence restarts after the last one. `addr_base` relocates every
 * access (per-core address-space disjointness).
 */
class FileTrace final : public TraceSource
{
  public:
    FileTrace(std::vector<TraceItem> items, std::string name,
              Addr addr_base);

    /** Share an already-parsed item sequence (SystemPlan compiles a
     *  trace file once per sweep; every run replays the same
     *  immutable items). */
    FileTrace(std::shared_ptr<const std::vector<TraceItem>> items,
              std::string name, Addr addr_base);

    const std::string &name() const override { return name_; }
    TraceItem next(Cycle now) override;

    std::size_t size() const { return items_->size(); }
    std::uint64_t iterations() const { return iterations_; }

  private:
    std::shared_ptr<const std::vector<TraceItem>> items_;
    std::string name_;
    Addr addrBase_;
    std::size_t cursor_ = 0;
    std::uint64_t iterations_ = 0;
};

/**
 * Load and parse `path` (or the embedded sample when `path` ==
 * "@sample") into an immutable, shareable item sequence.
 * @throws hard::ConfigError on unreadable files or malformed content.
 */
std::shared_ptr<const std::vector<TraceItem>>
loadTraceItems(TraceFileFormat format, const std::string &path);

/**
 * Load `path` (or the embedded sample when `path` == "@sample") and
 * build the replaying source.
 * @throws hard::ConfigError on unreadable files or malformed content.
 */
std::unique_ptr<TraceSource> loadTraceWorkload(TraceFileFormat format,
                                               const std::string &path,
                                               Addr addr_base);

} // namespace camo::trace

#endif // CAMO_TRACE_FILE_TRACE_H
