/**
 * @file
 * The receiving side of the covert channel (paper §IV-G): the
 * adversary issues probe loads at a fixed cadence and decodes key bits
 * from its own observed response latencies, one bit per PULSE window.
 */

#ifndef CAMO_SECURITY_COVERT_RECEIVER_H
#define CAMO_SECURITY_COVERT_RECEIVER_H

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace camo::security {

/** One observed probe: when it completed and how long it took. */
struct LatencySample
{
    Cycle at = 0;      ///< completion cycle
    Cycle latency = 0; ///< end-to-end latency the adversary measured
};

/** Decoder configuration. */
struct CovertDecoderConfig
{
    /** Window length in CPU cycles (the sender's PULSE duration as
     *  seen at the memory system). */
    Cycle windowCycles = 20000;
    /** First window starts here (alignment). */
    Cycle start = 0;
};

/** Result of a decode attempt. */
struct DecodeResult
{
    std::vector<bool> bits;
    std::vector<double> windowMeans; ///< mean probe latency per window
    double threshold = 0.0;
};

/**
 * Latency-threshold decoder: average the adversary's probe latencies
 * in each PULSE window; windows above the midpoint threshold decode
 * as 1 (the victim was hammering memory), below as 0.
 */
DecodeResult decodeCovert(const std::vector<LatencySample> &samples,
                          const CovertDecoderConfig &cfg,
                          std::size_t num_bits);

/**
 * Bit error rate of `decoded` against the repeating `key`, trying all
 * cyclic alignments and reporting the best (the attacker can
 * synchronize); 0.5 means the channel carries nothing.
 */
double bitErrorRate(const std::vector<bool> &decoded,
                    const std::vector<bool> &key);

} // namespace camo::security

#endif // CAMO_SECURITY_COVERT_RECEIVER_H
