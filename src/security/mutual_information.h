/**
 * @file
 * Mutual-information analysis of traffic shaping (paper §IV-B).
 *
 * X is the intrinsic inter-arrival time of a security domain's memory
 * requests, Y the shaped inter-arrival time an observer sees.
 * Camouflage is secure to the extent I(X;Y) ≈ 0; without shaping the
 * observer sees X itself and the leakage is I(X;X) = H(X).
 */

#ifndef CAMO_SECURITY_MUTUAL_INFORMATION_H
#define CAMO_SECURITY_MUTUAL_INFORMATION_H

#include <cstdint>
#include <vector>

#include "src/camouflage/monitor.h"
#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/security/covert_receiver.h"

namespace camo::security {

/** Joint distribution over two discrete variables. */
class JointDistribution
{
  public:
    JointDistribution(std::size_t nx, std::size_t ny);

    void add(std::size_t x, std::size_t y, std::uint64_t weight = 1);

    /** I(X;Y) in bits. 0 for an empty distribution. */
    double mutualInformationBits() const;

    /**
     * Miller-Madow bias-corrected I(X;Y) in bits, clamped at 0.
     * Plug-in MI estimates are biased upward by roughly
     * (K_xy - K_x - K_y + 1) / (2 N ln 2) where K are the occupied
     * symbol counts; the correction matters when comparing near-zero
     * leakage numbers like the paper's 0.002-0.006 bits.
     */
    double mutualInformationBitsCorrected() const;
    /** Marginal entropies in bits. */
    double entropyXBits() const;
    double entropyYBits() const;

    std::uint64_t total() const { return total_; }
    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::uint64_t count(std::size_t x, std::size_t y) const;

  private:
    std::size_t nx_;
    std::size_t ny_;
    std::vector<std::uint64_t> counts_; ///< nx * ny, row-major by x
    std::uint64_t total_ = 0;
};

/** Result of a shaping-leakage measurement. */
struct ShapingMiResult
{
    double miBits = 0.0;       ///< I(intrinsic; shaped), bias-corrected
    double miBitsRaw = 0.0;    ///< plug-in estimate (biased upward)
    double intrinsicEntropy = 0.0; ///< H(X): the no-shaping leakage
    double shapedEntropy = 0.0;    ///< H(Y)
    std::uint64_t pairs = 0;
    std::uint64_t fakeEvents = 0;

    /** Fraction of the unshaped leakage that survives shaping. */
    double
    leakFraction() const
    {
        return intrinsicEntropy > 0 ? miBits / intrinsicEntropy : 0.0;
    }
};

/**
 * Quantization used for MI measurement. Finer than the shaper's ten
 * hardware bins so the intrinsic entropy is well resolved (the paper
 * reports H(X) = 4.4 bits for bzip, which needs > 2^4 symbols).
 */
Histogram makeMiQuantizer(std::size_t nbins = 32, Cycle base = 8,
                          double ratio = 1.6);

/**
 * Pair the i-th real shaped event with the i-th intrinsic event
 * (the shaper is FIFO for real traffic) and compute I(X;Y) over
 * quantized inter-arrival gaps. Fake shaped events pair with an extra
 * "idle" X-symbol: the observer sees them, but no intrinsic request
 * caused them.
 *
 * @param intrinsic pre-shaper event log (real requests only)
 * @param shaped post-shaper event log (real + fake, in issue order)
 */
ShapingMiResult
computeShapingMi(const std::vector<shaper::TrafficEvent> &intrinsic,
                 const std::vector<shaper::TrafficEvent> &shaped,
                 const Histogram &quantizer);

/**
 * The no-shaping baseline: the observer sees the intrinsic stream
 * itself, so leakage is H(X) (returned in ShapingMiResult::miBits,
 * with intrinsicEntropy == miBits).
 */
ShapingMiResult
computeUnshapedLeakage(const std::vector<shaper::TrafficEvent> &intrinsic,
                       const Histogram &quantizer);

/** Windowed cross-MI result. */
struct CrossMiResult
{
    double miBits = 0.0;       ///< bias-corrected
    double miBitsRaw = 0.0;
    double victimEntropy = 0.0;///< H(victim activity per window)
    std::uint64_t windows = 0;
};

/**
 * The attack-surface leakage of Figure 2's legend ("MI between
 * attacker's response and victim's request"): slice time into windows,
 * pair the victim's request count in each window with the adversary's
 * mean response latency in the same window (both quantile-quantized
 * into `levels` symbols), and compute MI. This measures what a
 * response-inspecting adversary actually learns, so it applies to
 * every scheme including TP and FS which do not reshape requests.
 */
CrossMiResult
computeWindowedCrossMi(const std::vector<shaper::TrafficEvent> &victim,
                       const std::vector<LatencySample> &adversary,
                       Cycle window_cycles, std::size_t levels = 8);

/**
 * Windowed MI between two event streams (per-window event counts,
 * quantile-quantized). Used for the pin/bus-monitoring channel: X is
 * the protected core's intrinsic activity, Y is the activity an
 * observer timestamps on the shared channel.
 */
CrossMiResult
computeWindowedCrossMiCounts(const std::vector<shaper::TrafficEvent> &x,
                             const std::vector<shaper::TrafficEvent> &y,
                             Cycle window_cycles,
                             std::size_t levels = 8);

/**
 * Capacity of a binary symmetric channel with crossover probability
 * `ber`: 1 - H2(ber) bits per transmitted bit. Converts a covert
 * decoder's bit-error rate into channel capacity — 1.0 for a perfect
 * channel, 0.0 at BER 0.5 (the decoder does no better than a coin).
 * BER above 0.5 is folded (an anti-correlated decoder still carries
 * information).
 */
double binaryChannelCapacityBits(double ber);

} // namespace camo::security

#endif // CAMO_SECURITY_MUTUAL_INFORMATION_H
