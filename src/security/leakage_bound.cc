#include "src/security/leakage_bound.h"

#include <cmath>

namespace camo::security {

double
reconfigLeakBoundBits(std::uint64_t epochs, std::uint64_t configs)
{
    if (configs <= 1 || epochs == 0)
        return 0.0;
    return static_cast<double>(epochs) *
           std::log2(static_cast<double>(configs));
}

double
gaConfigPhaseLeakBoundBits(std::uint64_t generations,
                           std::uint64_t population)
{
    return reconfigLeakBoundBits(generations * population, population);
}

} // namespace camo::security
