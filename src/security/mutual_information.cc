#include "src/security/mutual_information.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace camo::security {

JointDistribution::JointDistribution(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), counts_(nx * ny, 0)
{
    camo_assert(nx >= 1 && ny >= 1, "joint distribution needs symbols");
}

void
JointDistribution::add(std::size_t x, std::size_t y, std::uint64_t weight)
{
    camo_assert(x < nx_ && y < ny_, "symbol out of range");
    counts_[x * ny_ + y] += weight;
    total_ += weight;
}

std::uint64_t
JointDistribution::count(std::size_t x, std::size_t y) const
{
    camo_assert(x < nx_ && y < ny_, "symbol out of range");
    return counts_[x * ny_ + y];
}

namespace {

double
entropyOf(const std::vector<double> &p)
{
    double h = 0.0;
    for (const double v : p) {
        if (v > 0.0)
            h -= v * std::log2(v);
    }
    return h;
}

} // namespace

double
JointDistribution::mutualInformationBits() const
{
    if (total_ == 0)
        return 0.0;
    std::vector<double> px(nx_, 0.0), py(ny_, 0.0);
    const double n = static_cast<double>(total_);
    for (std::size_t x = 0; x < nx_; ++x) {
        for (std::size_t y = 0; y < ny_; ++y) {
            const double pxy = counts_[x * ny_ + y] / n;
            px[x] += pxy;
            py[y] += pxy;
        }
    }
    double mi = 0.0;
    for (std::size_t x = 0; x < nx_; ++x) {
        for (std::size_t y = 0; y < ny_; ++y) {
            const double pxy = counts_[x * ny_ + y] / n;
            if (pxy > 0.0)
                mi += pxy * std::log2(pxy / (px[x] * py[y]));
        }
    }
    return mi < 0.0 ? 0.0 : mi; // clamp -0.0 / fp noise
}

double
JointDistribution::mutualInformationBitsCorrected() const
{
    if (total_ == 0)
        return 0.0;
    std::size_t kxy = 0;
    std::vector<bool> x_seen(nx_, false), y_seen(ny_, false);
    for (std::size_t x = 0; x < nx_; ++x) {
        for (std::size_t y = 0; y < ny_; ++y) {
            if (counts_[x * ny_ + y] > 0) {
                ++kxy;
                x_seen[x] = true;
                y_seen[y] = true;
            }
        }
    }
    const auto kx = static_cast<double>(
        std::count(x_seen.begin(), x_seen.end(), true));
    const auto ky = static_cast<double>(
        std::count(y_seen.begin(), y_seen.end(), true));
    const double bias = (static_cast<double>(kxy) - kx - ky + 1.0) /
                        (2.0 * static_cast<double>(total_) *
                         std::log(2.0));
    const double mi = mutualInformationBits() - std::max(0.0, bias);
    return mi < 0.0 ? 0.0 : mi;
}

double
JointDistribution::entropyXBits() const
{
    if (total_ == 0)
        return 0.0;
    std::vector<double> px(nx_, 0.0);
    const double n = static_cast<double>(total_);
    for (std::size_t x = 0; x < nx_; ++x) {
        for (std::size_t y = 0; y < ny_; ++y)
            px[x] += counts_[x * ny_ + y] / n;
    }
    return entropyOf(px);
}

double
JointDistribution::entropyYBits() const
{
    if (total_ == 0)
        return 0.0;
    std::vector<double> py(ny_, 0.0);
    const double n = static_cast<double>(total_);
    for (std::size_t x = 0; x < nx_; ++x) {
        for (std::size_t y = 0; y < ny_; ++y)
            py[y] += counts_[x * ny_ + y] / n;
    }
    return entropyOf(py);
}

Histogram
makeMiQuantizer(std::size_t nbins, Cycle base, double ratio)
{
    return Histogram::makeGeometric(nbins, base, ratio);
}

ShapingMiResult
computeShapingMi(const std::vector<shaper::TrafficEvent> &intrinsic,
                 const std::vector<shaper::TrafficEvent> &shaped,
                 const Histogram &quantizer)
{
    const std::size_t nq = quantizer.numBins();
    const std::size_t idle_symbol = nq; // extra X symbol for fakes
    JointDistribution joint(nq + 1, nq);

    ShapingMiResult result;

    // Intrinsic gaps, indexed by real-request ordinal.
    std::vector<std::size_t> xbins;
    xbins.reserve(intrinsic.size());
    for (std::size_t i = 1; i < intrinsic.size(); ++i) {
        xbins.push_back(
            quantizer.binOf(intrinsic[i].at - intrinsic[i - 1].at));
    }

    Histogram intrinsic_hist = quantizer;
    intrinsic_hist.clear();
    for (std::size_t i = 1; i < intrinsic.size(); ++i)
        intrinsic_hist.add(intrinsic[i].at - intrinsic[i - 1].at);
    result.intrinsicEntropy = intrinsic_hist.entropyBits();

    // Walk the shaped stream: the k-th real shaped event corresponds
    // to the k-th intrinsic event (FIFO release order), so its
    // intrinsic gap is xbins[k-2] (1-based k; the first real event
    // has no gap).
    std::size_t real_seen =
        shaped.empty() || shaped[0].fake ? 0 : 1;
    for (std::size_t i = 1; i < shaped.size(); ++i) {
        const std::size_t ybin =
            quantizer.binOf(shaped[i].at - shaped[i - 1].at);
        if (shaped[i].fake) {
            joint.add(idle_symbol, ybin);
            ++result.fakeEvents;
        } else {
            ++real_seen;
            if (real_seen >= 2 && real_seen - 2 < xbins.size())
                joint.add(xbins[real_seen - 2], ybin);
        }
    }

    result.miBitsRaw = joint.mutualInformationBits();
    result.miBits = joint.mutualInformationBitsCorrected();
    result.shapedEntropy = joint.entropyYBits();
    result.pairs = joint.total();
    return result;
}

namespace {

/** Equal-frequency quantization of `values` into <= levels symbols. */
std::vector<std::size_t>
quantileBins(const std::vector<double> &values, std::size_t levels)
{
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> cuts;
    for (std::size_t q = 1; q < levels; ++q) {
        const std::size_t idx = q * sorted.size() / levels;
        if (idx < sorted.size())
            cuts.push_back(sorted[idx]);
    }
    std::vector<std::size_t> bins;
    bins.reserve(values.size());
    for (const double v : values) {
        std::size_t b = 0;
        while (b < cuts.size() && v >= cuts[b])
            ++b;
        bins.push_back(b);
    }
    return bins;
}

} // namespace

CrossMiResult
computeWindowedCrossMi(const std::vector<shaper::TrafficEvent> &victim,
                       const std::vector<LatencySample> &adversary,
                       Cycle window_cycles, std::size_t levels)
{
    camo_assert(window_cycles > 0 && levels >= 2, "bad cross-MI params");
    CrossMiResult result;
    if (victim.empty() || adversary.empty())
        return result;

    const Cycle end = std::max(victim.back().at, adversary.back().at);
    const std::size_t nwin =
        static_cast<std::size_t>(end / window_cycles) + 1;

    std::vector<double> victim_count(nwin, 0.0);
    for (const auto &e : victim)
        victim_count[e.at / window_cycles] += 1.0;

    std::vector<double> lat_sum(nwin, 0.0);
    std::vector<std::uint64_t> lat_n(nwin, 0);
    for (const auto &s : adversary) {
        const std::size_t w = s.at / window_cycles;
        lat_sum[w] += static_cast<double>(s.latency);
        ++lat_n[w];
    }

    // Keep only windows where the adversary probed.
    std::vector<double> x, y;
    for (std::size_t w = 0; w < nwin; ++w) {
        if (lat_n[w] == 0)
            continue;
        x.push_back(victim_count[w]);
        y.push_back(lat_sum[w] / static_cast<double>(lat_n[w]));
    }
    if (x.size() < 2)
        return result;

    const auto xb = quantileBins(x, levels);
    const auto yb = quantileBins(y, levels);
    JointDistribution joint(levels, levels);
    for (std::size_t i = 0; i < xb.size(); ++i)
        joint.add(xb[i], yb[i]);

    result.miBitsRaw = joint.mutualInformationBits();
    result.miBits = joint.mutualInformationBitsCorrected();
    result.victimEntropy = joint.entropyXBits();
    result.windows = joint.total();
    return result;
}

CrossMiResult
computeWindowedCrossMiCounts(const std::vector<shaper::TrafficEvent> &x,
                             const std::vector<shaper::TrafficEvent> &y,
                             Cycle window_cycles, std::size_t levels)
{
    camo_assert(window_cycles > 0 && levels >= 2, "bad cross-MI params");
    CrossMiResult result;
    if (x.empty() || y.empty())
        return result;

    const Cycle end = std::max(x.back().at, y.back().at);
    const std::size_t nwin =
        static_cast<std::size_t>(end / window_cycles) + 1;
    std::vector<double> xc(nwin, 0.0), yc(nwin, 0.0);
    for (const auto &e : x)
        xc[e.at / window_cycles] += 1.0;
    for (const auto &e : y)
        yc[e.at / window_cycles] += 1.0;

    const auto xb = quantileBins(xc, levels);
    const auto yb = quantileBins(yc, levels);
    JointDistribution joint(levels, levels);
    for (std::size_t i = 0; i < xb.size(); ++i)
        joint.add(xb[i], yb[i]);

    result.miBitsRaw = joint.mutualInformationBits();
    result.miBits = joint.mutualInformationBitsCorrected();
    result.victimEntropy = joint.entropyXBits();
    result.windows = joint.total();
    return result;
}

ShapingMiResult
computeUnshapedLeakage(const std::vector<shaper::TrafficEvent> &intrinsic,
                       const Histogram &quantizer)
{
    ShapingMiResult result;
    Histogram hist = quantizer;
    hist.clear();
    for (std::size_t i = 1; i < intrinsic.size(); ++i)
        hist.add(intrinsic[i].at - intrinsic[i - 1].at);
    result.intrinsicEntropy = hist.entropyBits();
    result.shapedEntropy = result.intrinsicEntropy;
    result.miBits = result.intrinsicEntropy; // I(X;X) = H(X)
    result.miBitsRaw = result.intrinsicEntropy;
    result.pairs = hist.totalCount();
    return result;
}

double
binaryChannelCapacityBits(double ber)
{
    if (ber > 0.5)
        ber = 1.0 - ber;
    if (ber < 0.0)
        ber = 0.0;
    double h2 = 0.0;
    if (ber > 0.0 && ber < 1.0) {
        h2 = -ber * std::log2(ber) -
             (1.0 - ber) * std::log2(1.0 - ber);
    }
    return 1.0 - h2;
}

} // namespace camo::security
