#include "src/security/covert_receiver.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace camo::security {

DecodeResult
decodeCovert(const std::vector<LatencySample> &samples,
             const CovertDecoderConfig &cfg, std::size_t num_bits)
{
    camo_assert(cfg.windowCycles > 0, "window must be positive");
    DecodeResult result;
    if (num_bits == 0)
        return result;

    // Mean latency per window.
    std::vector<double> sums(num_bits, 0.0);
    std::vector<std::uint64_t> counts(num_bits, 0);
    for (const LatencySample &s : samples) {
        if (s.at < cfg.start)
            continue;
        const std::uint64_t w = (s.at - cfg.start) / cfg.windowCycles;
        if (w >= num_bits)
            break;
        sums[w] += static_cast<double>(s.latency);
        ++counts[w];
    }
    result.windowMeans.resize(num_bits, 0.0);
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (std::size_t w = 0; w < num_bits; ++w) {
        const double mean = counts[w] ? sums[w] / counts[w] : 0.0;
        result.windowMeans[w] = mean;
        if (first) {
            lo = hi = mean;
            first = false;
        } else {
            lo = std::min(lo, mean);
            hi = std::max(hi, mean);
        }
    }

    // Midpoint threshold between the quietest and loudest windows.
    result.threshold = (lo + hi) / 2.0;
    result.bits.reserve(num_bits);
    for (std::size_t w = 0; w < num_bits; ++w)
        result.bits.push_back(result.windowMeans[w] > result.threshold);
    return result;
}

double
bitErrorRate(const std::vector<bool> &decoded, const std::vector<bool> &key)
{
    if (decoded.empty() || key.empty())
        return 0.5;
    double best = 1.0;
    for (std::size_t shift = 0; shift < key.size(); ++shift) {
        std::uint64_t errors = 0;
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            const bool expect = key[(i + shift) % key.size()];
            if (decoded[i] != expect)
                ++errors;
        }
        best = std::min(best, static_cast<double>(errors) /
                                  static_cast<double>(decoded.size()));
    }
    return best;
}

} // namespace camo::security
