/**
 * @file
 * Analytic leakage bounds for rate/configuration changes.
 *
 * A shaper whose configuration never changes leaks nothing through
 * its (fixed) output distribution; every observable reconfiguration,
 * however, transmits up to log2(R) bits when one of R configurations
 * is chosen (Fletcher et al., HPCA'14 — cited by the paper in SII-B:
 * "this technique bounds the leakage to E x log R"). The same bound
 * applies to Camouflage's epoch-based GA reconfiguration (SIV-C).
 */

#ifndef CAMO_SECURITY_LEAKAGE_BOUND_H
#define CAMO_SECURITY_LEAKAGE_BOUND_H

#include <cstdint>

namespace camo::security {

/**
 * Upper bound, in bits, of the information leaked by `epochs`
 * observable configuration choices, each drawn from `configs`
 * alternatives: epochs * log2(configs).
 * @return 0 when there is at most one configuration (nothing to
 *         choose, nothing to leak).
 */
double reconfigLeakBoundBits(std::uint64_t epochs,
                             std::uint64_t configs);

/**
 * Leakage bound of an online-GA CONFIG_PHASE (paper Figure 8): every
 * child evaluation is an observable reconfiguration among
 * `population` candidates, repeated for `generations` generations.
 */
double gaConfigPhaseLeakBoundBits(std::uint64_t generations,
                                  std::uint64_t population);

} // namespace camo::security

#endif // CAMO_SECURITY_LEAKAGE_BOUND_H
