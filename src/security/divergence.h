/**
 * @file
 * Distribution-comparison statistics used to *test* (not just
 * eyeball) the Figure 11 claim that shaped traffic matches the
 * programmed distribution: Kullback-Leibler divergence and Pearson's
 * chi-square goodness-of-fit.
 */

#ifndef CAMO_SECURITY_DIVERGENCE_H
#define CAMO_SECURITY_DIVERGENCE_H

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"

namespace camo::security {

/**
 * D_KL(P || Q) in bits. Bins where p > 0 but q == 0 contribute
 * infinity; this implementation smooths Q by `epsilon` mass so the
 * result stays finite and comparable (standard practice for sampled
 * distributions).
 */
double klDivergenceBits(const std::vector<double> &p,
                        const std::vector<double> &q,
                        double epsilon = 1e-9);

/** Convenience: KL between two identically-binned histograms. */
double klDivergenceBits(const Histogram &p, const Histogram &q,
                        double epsilon = 1e-9);

/** Result of a chi-square goodness-of-fit test. */
struct ChiSquareResult
{
    double statistic = 0.0;
    std::uint32_t degreesOfFreedom = 0;
    /**
     * Conservative acceptance at ~1% significance using the
     * normal approximation chi2_crit ~ df + 3*sqrt(2*df).
     */
    bool fitsAtOnePercent = false;
};

/**
 * Pearson chi-square of observed counts against an expected pmf.
 * Bins with expected mass below `min_expected` counts are pooled into
 * their neighbour (standard validity rule).
 */
ChiSquareResult chiSquareGoodnessOfFit(
    const std::vector<std::uint64_t> &observed,
    const std::vector<double> &expected_pmf, double min_expected = 5.0);

} // namespace camo::security

#endif // CAMO_SECURITY_DIVERGENCE_H
