#include "src/security/divergence.h"

#include <cmath>

#include "src/common/logging.h"

namespace camo::security {

double
klDivergenceBits(const std::vector<double> &p, const std::vector<double> &q,
                 double epsilon)
{
    camo_assert(p.size() == q.size(), "KL needs matching supports");
    camo_assert(epsilon > 0.0, "epsilon must be positive");
    // Smooth Q: mix in epsilon uniform mass.
    const double n = static_cast<double>(p.size());
    double kl = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] <= 0.0)
            continue;
        const double qi =
            (q[i] + epsilon / n) / (1.0 + epsilon);
        kl += p[i] * std::log2(p[i] / qi);
    }
    return kl < 0.0 ? 0.0 : kl;
}

double
klDivergenceBits(const Histogram &p, const Histogram &q, double epsilon)
{
    camo_assert(p.numBins() == q.numBins(),
                "KL needs identical binning");
    return klDivergenceBits(p.pmf(), q.pmf(), epsilon);
}

ChiSquareResult
chiSquareGoodnessOfFit(const std::vector<std::uint64_t> &observed,
                       const std::vector<double> &expected_pmf,
                       double min_expected)
{
    camo_assert(observed.size() == expected_pmf.size(),
                "chi-square needs matching supports");
    std::uint64_t total = 0;
    for (const auto o : observed)
        total += o;

    ChiSquareResult result;
    if (total == 0)
        return result;

    // Pool adjacent cells until every expected count is large enough.
    std::vector<double> exp_pool;
    std::vector<double> obs_pool;
    double exp_acc = 0.0;
    double obs_acc = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        exp_acc += expected_pmf[i] * static_cast<double>(total);
        obs_acc += static_cast<double>(observed[i]);
        if (exp_acc >= min_expected) {
            exp_pool.push_back(exp_acc);
            obs_pool.push_back(obs_acc);
            exp_acc = 0.0;
            obs_acc = 0.0;
        }
    }
    if (exp_acc > 0.0 || obs_acc > 0.0) {
        if (exp_pool.empty()) {
            exp_pool.push_back(exp_acc);
            obs_pool.push_back(obs_acc);
        } else {
            exp_pool.back() += exp_acc;
            obs_pool.back() += obs_acc;
        }
    }

    double stat = 0.0;
    for (std::size_t i = 0; i < exp_pool.size(); ++i) {
        if (exp_pool[i] <= 0.0)
            continue;
        const double d = obs_pool[i] - exp_pool[i];
        stat += d * d / exp_pool[i];
    }
    result.statistic = stat;
    result.degreesOfFreedom =
        exp_pool.size() > 1
            ? static_cast<std::uint32_t>(exp_pool.size() - 1)
            : 0;
    const double df = static_cast<double>(result.degreesOfFreedom);
    const double critical = df + 3.0 * std::sqrt(2.0 * df);
    result.fitsAtOnePercent =
        result.degreesOfFreedom == 0 || stat <= critical;
    return result;
}

} // namespace camo::security
