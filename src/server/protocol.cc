#include "src/server/protocol.h"

#include "src/common/frame.h"

namespace camo::server {

// The wire encoding lives in src/common/frame.* so the sweep-shard
// protocol (src/sim/shard.*) shares it; this translation unit keeps
// the server-facing API stable.

void
encodeFrame(const std::string &payload, std::string *out)
{
    frame::encode(payload, out);
}

std::uint32_t
decodeFrameLength(const unsigned char *header)
{
    return frame::decodeLength(header);
}

bool
writeFrame(int fd, const std::string &payload)
{
    return frame::writeFrame(fd, payload, kMaxFrameBytes);
}

ReadStatus
readFrame(int fd, std::string *payload)
{
    switch (frame::readFrame(fd, payload, kMaxFrameBytes)) {
      case frame::ReadStatus::Ok: return ReadStatus::Ok;
      case frame::ReadStatus::Eof: return ReadStatus::Eof;
      case frame::ReadStatus::Error: return ReadStatus::Error;
      case frame::ReadStatus::Oversize: return ReadStatus::Oversize;
    }
    return ReadStatus::Error;
}

bool
writeJson(int fd, const obs::json::Value &doc)
{
    return writeFrame(fd, doc.dump());
}

std::optional<obs::json::Value>
readJson(int fd)
{
    std::string payload;
    if (readFrame(fd, &payload) != ReadStatus::Ok)
        return std::nullopt;
    return obs::json::tryParse(payload);
}

obs::json::Value
errorResponse(const std::string &msg)
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["ok"] = false;
    v["error"] = msg;
    return v;
}

obs::json::Value
okResponse()
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["ok"] = true;
    return v;
}

} // namespace camo::server
