/**
 * @file
 * The camosimd job service: a supervised worker pool with admission
 * control, bounded retry, result caching, and graceful lifecycle —
 * everything the daemon does except the socket.
 *
 * Socket-free by design so the whole supervision/retry/cache state
 * machine is unit-testable in-process; src/server/server.h puts the
 * Unix-domain protocol front end on top.
 *
 * Invariants the chaos soak pins:
 *  - Every accepted job reaches exactly one terminal state
 *    (succeeded, cached, failed, crashed, deadline, canceled);
 *    nothing is lost, nothing is double-counted.
 *  - A crashing or stalling worker never takes the service down:
 *    jobs run in forked children (src/server/worker.h), supervisors
 *    only classify what came back.
 *  - Results are byte-identical to one-shot `camosim --stats-json`
 *    runs of the same spec, including after seed-re-derived retries.
 *  - drain() completes: it stops admission and returns once every
 *    in-flight job is terminal.
 */

#ifndef CAMO_SERVER_SERVICE_H
#define CAMO_SERVER_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/hard/retry.h"
#include "src/server/job.h"
#include "src/server/worker.h"

namespace camo::server {

/** Tunables; the reload()-able subset is documented per field. */
struct ServiceConfig
{
    /** Supervisor threads = concurrently forked workers. Fixed at
     *  start (not reloadable). */
    unsigned workers = 2;
    /** Max queued (not yet running) jobs before submissions are
     *  shed. Reloadable. */
    std::size_t maxQueue = 256;
    /** Default wall-clock deadline per attempt, ms (0 = none).
     *  Reloadable. */
    std::uint64_t defaultTimeoutMs = 120000;
    /** Backoff schedule for transient faults and crashes.
     *  Reloadable. */
    hard::RetryPolicy retry;
    /** Result-cache capacity in entries (0 disables). Reloadable. */
    std::size_t maxCacheEntries = 128;
    /** Diagnostic-dump directory handed to workers ("" = stderr). */
    std::string diagDir;
    /**
     * Terminal job records retained for status/result queries
     * (0 = unbounded). Oldest-terminal-first eviction keeps a
     * long-lived daemon's memory bounded; querying an evicted id
     * reports it unknown. Cumulative counters are unaffected.
     * Reloadable.
     */
    std::size_t maxTerminalJobs = 4096;
};

/** Observable snapshot of one job. */
struct JobStatus
{
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    unsigned attempts = 0;   ///< attempts started
    int code = 0;            ///< camosim-compatible code when terminal
    std::string kind;        ///< error kind ("" unless failed)
    std::string error;
    std::string dumpPath;
    std::string crashDetail;
    bool fromCache = false;  ///< served by cache or single-flight
    double latencyMs = 0.0;  ///< submit -> terminal (terminal only)
};

/** What submit() decided. */
struct SubmitResult
{
    bool accepted = false;
    bool shed = false; ///< rejected by admission control
    std::uint64_t id = 0;
    std::string error; ///< reason when !accepted
};

class Service
{
  public:
    explicit Service(const ServiceConfig &cfg);
    /** Calls stop(). */
    ~Service();

    /**
     * Cancel pending jobs and join the supervisors. Idempotent.
     * After it returns no supervisor thread is alive, so the
     * completion hook can never fire again — callers that hand the
     * hook resources they are about to tear down (the server's
     * completion pipe) stop() the service first.
     */
    void stop();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Admission control: rejects (shed) when the queue is at
     * maxQueue, or (not shed) when draining. A cache hit or an
     * identical in-flight job never occupies a queue slot: hits go
     * terminal Cached immediately, duplicates join the in-flight
     * leader single-flight and go terminal when it does.
     */
    SubmitResult submit(const JobSpec &spec);

    /** Snapshot a job; false if the id is unknown. */
    bool status(std::uint64_t id, JobStatus *out) const;

    /** Result document text; false unless state is
     *  Succeeded/Cached. */
    bool result(std::uint64_t id, std::string *out) const;

    /**
     * Block until the job is terminal or `timeout_ms` passed
     * (0 = no wait, just snapshot). False if the id is unknown.
     */
    bool waitTerminal(std::uint64_t id, std::uint64_t timeout_ms,
                      JobStatus *out) const;

    /**
     * Cancel: a queued job goes terminal Canceled here; a running
     * job's child is killed and classified Canceled by its
     * supervisor. False if unknown or already terminal.
     */
    bool cancel(std::uint64_t id);

    /** Stop admission. New submits fail (not shed) with
     *  "draining". */
    void beginDrain();

    /** True once draining and every job is terminal. */
    bool drained() const;

    /** beginDrain() + block until drained. */
    void drain();

    /**
     * Reload the reloadable limits (queue depth, timeout, retry,
     * cache size, diag dir) without touching queued or running jobs.
     * Worker count changes are ignored (documented fixed).
     */
    void reload(const ServiceConfig &cfg);

    /** Counters + gauges as a JSON object (see keys in service.cc). */
    obs::json::Value statsJson() const;

    /** Invoked (outside the lock) each time a job goes terminal;
     *  the socket server uses it to wake result waiters. */
    void setCompletionHook(std::function<void(std::uint64_t)> hook);

    const ServiceConfig &config() const { return cfg_; }

  private:
    struct Job
    {
        std::uint64_t id = 0;
        JobSpec spec;
        std::string cacheKey;
        JobState state = JobState::Queued;
        unsigned attempts = 0;
        int code = 0;
        std::string kind;
        std::string error;
        std::string dumpPath;
        std::string crashDetail;
        std::string resultText;
        bool fromCache = false;
        std::uint64_t submitMs = 0;
        std::uint64_t endMs = 0;
        std::atomic<bool> cancelFlag{false};
        std::atomic<pid_t> childPid{-1};
        /** Jobs joined to this leader single-flight. */
        std::vector<std::uint64_t> joiners;
    };

    void supervisorLoop();
    /** Run one job to a terminal state (called by a supervisor). */
    void runJob(Job &job);
    /** Mark terminal, settle joiners, fire the hook. Lock held on
     *  entry; released and re-taken around the hook. */
    void finishLocked(std::unique_lock<std::mutex> &lk, Job &job,
                      JobState state);
    void noteTerminalLocked(Job &job);
    /** Erase oldest terminal job records past maxTerminalJobs.
     *  Only call when no Job reference is held across it: evicted
     *  records are destroyed. */
    void evictTerminalLocked();
    JobStatus snapshotLocked(const Job &job) const;

    ServiceConfig cfg_;
    mutable std::mutex m_;
    mutable std::condition_variable cv_;      ///< terminal-state waits
    std::condition_variable work_;            ///< supervisor wakeups
    std::map<std::uint64_t, Job> jobs_;
    std::deque<std::uint64_t> queue_;
    /** cacheKey -> in-flight leader id (queued or running). */
    std::map<std::string, std::uint64_t> inflight_;
    /** cacheKey -> result text, LRU by recency list. */
    std::map<std::string, std::pair<std::string,
                                    std::list<std::string>::iterator>>
        cache_;
    std::list<std::string> cacheLru_; ///< front = most recent
    std::vector<std::thread> supervisors_;
    std::function<void(std::uint64_t)> completionHook_;
    /** Terminal job ids, oldest first — the eviction order. */
    std::deque<std::uint64_t> terminalFifo_;
    std::uint64_t nextId_ = 1;
    bool draining_ = false;
    bool stopping_ = false;
    bool stopped_ = false; ///< stop() ran; supervisors joined

    // Accounting (under m_).
    std::uint64_t submitted_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t rejectedDraining_ = 0;
    std::uint64_t rejectedBad_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t joined_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t reloads_ = 0;
    std::map<std::string, std::uint64_t> terminal_;
    double latencySumMs_ = 0.0;       ///< cumulative, for the mean
    std::uint64_t latencyCount_ = 0;  ///< cumulative, for the mean
    /** Ring of the most recent kLatencyWindow terminal latencies;
     *  statsJson's p99 is over this window so a long-lived daemon
     *  neither grows nor re-sorts its whole history per stats
     *  call. */
    std::vector<double> latencyWindow_;
    std::size_t latencyWindowNext_ = 0;
};

} // namespace camo::server

#endif // CAMO_SERVER_SERVICE_H
