#include "src/server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/server/protocol.h"

namespace camo::server {

namespace {

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** One byte down a notification pipe; safe from signal handlers and
 *  supervisor threads alike. */
void
poke(int fd, char token)
{
    if (fd >= 0) {
        [[maybe_unused]] const ssize_t n = ::write(fd, &token, 1);
    }
}

} // namespace

Server::Server(const ServerConfig &cfg)
    : cfg_(cfg), service_(cfg.service)
{
    reloadSource_ = [this] { return cfg_.service; };
}

Server::~Server()
{
    // Quiesce the service first: supervisors fire the completion
    // hook, which write()s to completionPipe_ — after stop() joins
    // them, nothing can touch the fds we close below (a hook call
    // after close would hit a closed — or worse, reused — fd).
    service_.stop();
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(cfg_.socketPath.c_str());
    }
    for (const int fd : {signalPipe_[0], signalPipe_[1],
                         completionPipe_[0], completionPipe_[1]}) {
        if (fd >= 0)
            ::close(fd);
    }
}

bool
Server::start(std::string *error)
{
    if (cfg_.socketPath.empty()) {
        *error = "no socket path configured";
        return false;
    }
    struct sockaddr_un addr;
    if (cfg_.socketPath.size() >= sizeof addr.sun_path) {
        *error = "socket path too long: " + cfg_.socketPath;
        return false;
    }
    if (::pipe(signalPipe_) != 0 || ::pipe(completionPipe_) != 0) {
        *error = "pipe() failed";
        return false;
    }
    setNonBlocking(signalPipe_[0]);
    setNonBlocking(signalPipe_[1]);
    setNonBlocking(completionPipe_[0]);
    setNonBlocking(completionPipe_[1]);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        *error = "socket() failed";
        return false;
    }
    // A leftover socket file from a dead daemon would fail bind();
    // replacing it is the standard local-daemon idiom.
    ::unlink(cfg_.socketPath.c_str());
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0) {
        *error = "bind(" + cfg_.socketPath +
                 ") failed: " + std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        *error = "listen() failed";
        return false;
    }
    setNonBlocking(listenFd_);

    service_.setCompletionHook(
        [this](std::uint64_t) { poke(completionPipe_[1], 'c'); });
    return true;
}

void
Server::notifyShutdown()
{
    poke(signalPipe_[1], 't');
}

void
Server::notifyReload()
{
    poke(signalPipe_[1], 'h');
}

void
Server::setReloadSource(std::function<ServiceConfig()> source)
{
    reloadSource_ = std::move(source);
}

void
Server::acceptClients()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient error; poll retries
        setNonBlocking(fd);
        conns_[fd];
    }
}

bool
Server::readConn(int fd, Conn &conn)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        if (n == 0)
            return false; // EOF
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > kFrameHeaderBytes + kMaxFrameBytes) {
            enqueue(fd, conn, errorResponse("frame too large"));
            conn.closeAfterFlush = true;
            return true;
        }
    }
    // Process every complete frame buffered so far.
    while (!conn.closeAfterFlush &&
           conn.in.size() >= kFrameHeaderBytes) {
        const std::uint32_t len = decodeFrameLength(
            reinterpret_cast<const unsigned char *>(conn.in.data()));
        if (len > kMaxFrameBytes) {
            enqueue(fd, conn,
                    errorResponse("frame length " +
                                  std::to_string(len) +
                                  " exceeds limit"));
            conn.closeAfterFlush = true;
            break;
        }
        if (conn.in.size() < kFrameHeaderBytes + len)
            break;
        const std::string payload =
            conn.in.substr(kFrameHeaderBytes, len);
        conn.in.erase(0, kFrameHeaderBytes + len);
        handleFrame(fd, conn, payload);
    }
    return true;
}

void
Server::handleFrame(int fd, Conn &conn, const std::string &payload)
{
    const auto doc = obs::json::tryParse(payload);
    if (!doc || !doc->isObject()) {
        // A client that desynced its framing can't be trusted to
        // resync; answer and drop it.
        enqueue(fd, conn, errorResponse("malformed request frame"));
        conn.closeAfterFlush = true;
        return;
    }
    const obs::json::Value resp = handleRequest(fd, *doc);
    // A deferred `result` wait returns Null: the waiter answers
    // later from settleWaiters().
    if (!resp.isNull())
        enqueue(fd, conn, resp);
}

obs::json::Value
Server::statusResponse(const JobStatus &s, bool include_result)
{
    obs::json::Value v = okResponse();
    v["id"] = s.id;
    v["state"] = jobStateName(s.state);
    v["done"] = jobStateTerminal(s.state);
    v["attempts"] = static_cast<std::uint64_t>(s.attempts);
    v["from_cache"] = s.fromCache;
    if (jobStateTerminal(s.state)) {
        v["code"] = s.code;
        v["latency_ms"] = s.latencyMs;
    }
    if (!s.kind.empty())
        v["kind"] = s.kind;
    if (!s.error.empty())
        v["error_detail"] = s.error;
    if (!s.dumpPath.empty())
        v["dump_path"] = s.dumpPath;
    if (!s.crashDetail.empty())
        v["crash_detail"] = s.crashDetail;
    if (include_result &&
        (s.state == JobState::Succeeded ||
         s.state == JobState::Cached)) {
        std::string text;
        if (service_.result(s.id, &text))
            v["result"] = text;
    }
    return v;
}

obs::json::Value
Server::handleRequest(int fd, const obs::json::Value &req)
{
    const obs::json::Value *op = req.find("op");
    if (!op || !op->isString())
        return errorResponse("request needs a string 'op'");
    const std::string &name = op->asString();

    if (name == "submit") {
        const obs::json::Value *jobDoc = req.find("job");
        if (!jobDoc)
            return errorResponse("submit needs a 'job' object");
        JobSpec spec;
        std::string err;
        if (!JobSpec::fromJson(*jobDoc, &spec, &err))
            return errorResponse(err);
        const SubmitResult r = service_.submit(spec);
        if (!r.accepted) {
            obs::json::Value v = errorResponse(r.error);
            v["shed"] = r.shed;
            return v;
        }
        obs::json::Value v = okResponse();
        v["id"] = r.id;
        return v;
    }

    const auto jobIdOf =
        [&req]() -> std::optional<std::uint64_t> {
        const obs::json::Value *id = req.find("id");
        if (!id || !id->isNumber() || id->asNumber() < 0)
            return std::nullopt;
        return static_cast<std::uint64_t>(id->asNumber());
    };

    if (name == "status" || name == "result") {
        const auto id = jobIdOf();
        if (!id)
            return errorResponse(name + " needs a numeric 'id'");
        JobStatus s;
        if (!service_.status(*id, &s))
            return errorResponse("unknown job id " +
                                 std::to_string(*id));
        if (name == "result" && !jobStateTerminal(s.state)) {
            std::uint64_t wait_ms = 0;
            if (const obs::json::Value *w = req.find("wait_ms")) {
                if (w->isNumber() && w->asNumber() > 0)
                    wait_ms =
                        static_cast<std::uint64_t>(w->asNumber());
            }
            if (wait_ms > 0) {
                waiters_.push_back({fd, *id, nowMs() + wait_ms});
                return obs::json::Value(); // answered on completion
            }
        }
        return statusResponse(s, name == "result");
    }

    if (name == "cancel") {
        const auto id = jobIdOf();
        if (!id)
            return errorResponse("cancel needs a numeric 'id'");
        obs::json::Value v = okResponse();
        v["canceled"] = service_.cancel(*id);
        return v;
    }

    if (name == "stats") {
        obs::json::Value v = okResponse();
        v["stats"] = service_.statsJson();
        return v;
    }

    if (name == "drain") {
        shutdownRequested_ = true;
        service_.beginDrain();
        obs::json::Value v = okResponse();
        v["draining"] = true;
        return v;
    }

    if (name == "reload") {
        ServiceConfig limits = reloadSource_();
        if (const obs::json::Value *lim = req.find("limits")) {
            if (!lim->isObject())
                return errorResponse("'limits' must be an object");
            for (const auto &[key, value] : lim->asObject()) {
                if (!value.isNumber() || value.asNumber() < 0)
                    return errorResponse("limit '" + key +
                                         "' must be a non-negative "
                                         "number");
                const auto n =
                    static_cast<std::uint64_t>(value.asNumber());
                if (key == "max_queue")
                    limits.maxQueue = n;
                else if (key == "timeout_ms")
                    limits.defaultTimeoutMs = n;
                else if (key == "retries")
                    limits.retry.attempts =
                        static_cast<unsigned>(n);
                else if (key == "cache_entries")
                    limits.maxCacheEntries = n;
                else if (key == "terminal_jobs")
                    limits.maxTerminalJobs = n;
                else
                    return errorResponse("unknown limit '" + key +
                                         "'");
            }
        }
        service_.reload(limits);
        return okResponse();
    }

    return errorResponse("unknown op '" + name + "'");
}

void
Server::settleWaiters(std::uint64_t now_ms)
{
    std::vector<Waiter> keep;
    keep.reserve(waiters_.size());
    for (const Waiter &w : waiters_) {
        auto it = conns_.find(w.fd);
        if (it == conns_.end())
            continue; // client went away
        JobStatus s;
        if (!service_.status(w.jobId, &s)) {
            enqueue(w.fd, it->second,
                    errorResponse("unknown job id " +
                                  std::to_string(w.jobId)));
            continue;
        }
        if (jobStateTerminal(s.state)) {
            enqueue(w.fd, it->second, statusResponse(s, true));
            continue;
        }
        if (now_ms >= w.deadlineMs) {
            obs::json::Value v = statusResponse(s, false);
            v["timed_out"] = true;
            enqueue(w.fd, it->second, v);
            continue;
        }
        keep.push_back(w);
    }
    waiters_.swap(keep);
}

void
Server::enqueue(int fd, Conn &conn, const obs::json::Value &doc)
{
    (void)fd;
    encodeFrame(doc.dump(), &conn.out);
}

bool
Server::flushConn(int fd, Conn &conn)
{
    while (!conn.out.empty()) {
        const ssize_t n = ::write(fd, conn.out.data(),
                                  conn.out.size());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            return false;
        }
        conn.out.erase(0, static_cast<std::size_t>(n));
    }
    return !conn.closeAfterFlush;
}

void
Server::closeConn(int fd)
{
    ::close(fd);
    conns_.erase(fd);
    waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                  [fd](const Waiter &w) {
                                      return w.fd == fd;
                                  }),
                   waiters_.end());
}

int
Server::run()
{
    // Once drained, responses still buffered on slow connections
    // (the drain ack itself, a final status) get this long to flush
    // before the clean exit stops caring.
    constexpr std::uint64_t kFlushGraceMs = 2000;
    std::uint64_t flushDeadlineMs = 0;
    for (;;) {
        // Exit condition: a requested shutdown that has finished
        // draining. Checked first so a drain with no jobs exits
        // without waiting for traffic.
        if (shutdownRequested_ && service_.drained()) {
            bool pendingOut = false;
            for (const auto &[fd, conn] : conns_) {
                if (!conn.out.empty()) {
                    pendingOut = true;
                    break;
                }
            }
            if (!pendingOut)
                return 0;
            if (flushDeadlineMs == 0)
                flushDeadlineMs = nowMs() + kFlushGraceMs;
            else if (nowMs() >= flushDeadlineMs)
                return 0; // stuck client; don't hold the exit
        }

        std::vector<struct pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        fds.push_back({signalPipe_[0], POLLIN, 0});
        fds.push_back({completionPipe_[0], POLLIN, 0});
        for (auto &[fd, conn] : conns_) {
            short events = POLLIN;
            if (!conn.out.empty())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        int timeout = -1;
        if (!waiters_.empty()) {
            const std::uint64_t now = nowMs();
            std::uint64_t next = ~0ull;
            for (const Waiter &w : waiters_)
                next = std::min(next, w.deadlineMs);
            timeout = next <= now
                          ? 0
                          : static_cast<int>(
                                std::min<std::uint64_t>(next - now,
                                                        1000));
        } else if (shutdownRequested_) {
            timeout = 50; // poll drained() while the pool empties
        }

        const int pr =
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), timeout);
        if (pr < 0 && errno != EINTR)
            return 1;

        // Drain notification pipes (level-triggered wakeups).
        char buf[256];
        bool reload = false;
        for (;;) {
            const ssize_t n =
                ::read(signalPipe_[0], buf, sizeof buf);
            if (n <= 0)
                break;
            for (ssize_t i = 0; i < n; ++i) {
                if (buf[i] == 't') {
                    shutdownRequested_ = true;
                    service_.beginDrain();
                } else if (buf[i] == 'h') {
                    reload = true;
                }
            }
        }
        if (reload)
            service_.reload(reloadSource_());
        while (::read(completionPipe_[0], buf, sizeof buf) > 0) {
        }

        acceptClients();

        // Service connection I/O. Collect doomed fds first: closing
        // while iterating conns_ would invalidate the loop.
        std::vector<int> doomed;
        for (auto &pfd : fds) {
            auto it = conns_.find(pfd.fd);
            if (it == conns_.end())
                continue;
            bool alive = true;
            if (pfd.revents & (POLLIN | POLLHUP | POLLERR))
                alive = readConn(pfd.fd, it->second);
            if (alive)
                alive = flushConn(pfd.fd, it->second);
            else
                flushConn(pfd.fd, it->second);
            if (!alive ||
                (it->second.closeAfterFlush &&
                 it->second.out.empty()))
                doomed.push_back(pfd.fd);
        }
        for (const int fd : doomed)
            closeConn(fd);

        settleWaiters(nowMs());
    }
}

} // namespace camo::server
