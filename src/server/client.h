/**
 * @file
 * Blocking client for the camosimd protocol, shared by the
 * camosim_client CLI and the chaos-soak harness.
 *
 * One connection, strict request/response: every request() writes
 * one frame and reads one frame. The soak also uses rawFd() to send
 * deliberately malformed bytes — the daemon must survive those too.
 */

#ifndef CAMO_SERVER_CLIENT_H
#define CAMO_SERVER_CLIENT_H

#include <cstdint>
#include <optional>
#include <string>

#include "src/server/job.h"

namespace camo::server {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to a daemon socket. False with *error set on
     *  failure (daemon not up yet, path wrong, ...). */
    bool connect(const std::string &socket_path, std::string *error);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** One request frame out, one response frame in. Nullopt on any
     *  transport error (connection closed, bad frame). */
    std::optional<obs::json::Value>
    request(const obs::json::Value &req);

    /** submit; returns the job id, or nullopt with *error set
     *  (sheds and rejects land here with the server's reason). */
    std::optional<std::uint64_t> submit(const JobSpec &spec,
                                        std::string *error);

    /**
     * result with wait_ms: blocks server-side until the job is
     * terminal or the wait times out. Returns the full response
     * document (state, code, result text on success).
     */
    std::optional<obs::json::Value>
    waitResult(std::uint64_t id, std::uint64_t wait_ms);

    std::optional<obs::json::Value> status(std::uint64_t id);
    std::optional<obs::json::Value> stats();
    bool cancel(std::uint64_t id);
    bool drain();

    /** The raw socket, for protocol-abuse tests. */
    int rawFd() const { return fd_; }

  private:
    int fd_ = -1;
};

} // namespace camo::server

#endif // CAMO_SERVER_CLIENT_H
