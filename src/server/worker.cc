#include "src/server/worker.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <memory>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/server/protocol.h"
#include "src/sim/parallel.h"
#include "src/sim/plan.h"
#include "src/sim/runner.h"
#include "src/sim/topology.h"

namespace camo::server {

const char *
workerOutcomeName(WorkerOutcome o)
{
    switch (o) {
      case WorkerOutcome::Success: return "success";
      case WorkerOutcome::Failure: return "failure";
      case WorkerOutcome::Transient: return "transient";
      case WorkerOutcome::Crashed: return "crashed";
      case WorkerOutcome::Deadline: return "deadline";
      case WorkerOutcome::Canceled: return "canceled";
    }
    return "unknown";
}

namespace {

/** camosim exit codes, mirrored (keep in sync with tools/camosim.cc
 *  and the README table). */
constexpr int kCodeOk = 0;
constexpr int kCodeRuntime = 1;
constexpr int kCodeConfig = 3;
constexpr int kCodeInvariant = 4;
constexpr int kCodeWatchdog = 5;
constexpr int kCodeLeakage = 6;

obs::json::Value
errorPayload(int code, const char *kind, const std::string &msg,
             const std::string &dump_path = {})
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["code"] = code;
    v["kind"] = kind;
    v["error"] = msg;
    if (!dump_path.empty())
        v["dump_path"] = dump_path;
    return v;
}

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

obs::json::Value
runJobPayload(const JobSpec &spec, std::uint64_t job_id,
              unsigned attempt, const std::string &diag_dir)
{
    try {
        const sim::TopologyConfig topo =
            sim::topologyFromJson(spec.config);
        sim::SystemConfig cfg = topo.system;
        cfg.numCores =
            static_cast<std::uint32_t>(topo.workloads.size());
        const std::uint64_t base = spec.seed ? spec.seed : cfg.seed;
        // Same re-derivation as runConfigsParallel: a retried attempt
        // must not replay the RNG sequence that just faulted, and the
        // result must equal a one-shot run at the re-derived seed.
        cfg.seed = attempt == 0
                       ? base
                       : sim::deriveSeed(base, sim::kRetrySeedStream,
                                         attempt);

        std::unique_ptr<hard::FaultInjector> injector;
        if (!spec.inject.empty()) {
            const hard::FaultPlan plan = hard::FaultPlan::parse(
                spec.inject,
                spec.injectSeed ? spec.injectSeed : cfg.seed);
            injector = std::make_unique<hard::FaultInjector>(plan);
            // Worker faults select by job id, like the in-process
            // engine selects by batch index.
            injector->maybeWorkerFault(job_id, attempt);
        }
        if (attempt < spec.crashAttempts) {
            // Chaos-soak hook: a genuine wild store, so the crash
            // path is exercised by a real SIGSEGV rather than a
            // simulated one.
            volatile int *wild = nullptr;
            *wild = 0xDEAD;
        }

        // Compiled-plan path: same construction the sweep engine
        // uses, so daemon results stay byte-identical to the CLI's
        // while skipping the eager tracer-ring allocation.
        const sim::SystemPlan plan(cfg, topo.workloads);
        const std::unique_ptr<sim::System> system_owner =
            plan.instantiate();
        sim::System &system = *system_owner;
        if (!diag_dir.empty())
            system.setDiagnosticDir(diag_dir);
        if (spec.checkers) {
            hard::CheckerConfig hc;
            system.enableCheckers(hc);
        }
        if (spec.watchdog > 0) {
            hard::WatchdogConfig wc;
            wc.window = spec.watchdog;
            system.enableWatchdog(wc);
        }
        if (injector)
            system.setFaultInjector(injector.get());

        sim::runAndMeasure(system, spec.cycles, spec.warmup);
        if (spec.checkers)
            system.checkForLeaks();

        obs::json::Value payload = obs::json::Value::makeObject();
        payload["code"] = kCodeOk;
        // Byte-for-byte what `camosim --stats-json` writes.
        payload["result"] =
            sim::summaryJson(system, topo.workloads, false).dump(2) +
            "\n";
        return payload;
    } catch (const hard::ConfigError &e) {
        return errorPayload(kCodeConfig, "config", e.what());
    } catch (const hard::InvariantViolation &e) {
        return errorPayload(kCodeInvariant, "invariant", e.what(),
                            e.dumpPath());
    } catch (const hard::WatchdogTimeout &e) {
        return errorPayload(kCodeWatchdog, "watchdog", e.what(),
                            e.dumpPath());
    } catch (const hard::LeakageAlert &e) {
        return errorPayload(kCodeLeakage, "leakage", e.what(),
                            e.dumpPath());
    } catch (const hard::TransientFault &e) {
        return errorPayload(kCodeRuntime, "transient", e.what());
    } catch (const hard::CamoError &e) {
        return errorPayload(kCodeRuntime, hard::errorKindName(e.kind()),
                            e.what());
    } catch (const std::exception &e) {
        return errorPayload(kCodeRuntime, "runtime", e.what());
    }
}

namespace {

[[noreturn]] void
childMain(const JobSpec &spec, std::uint64_t job_id, unsigned attempt,
          const std::string &diag_dir, int write_fd)
{
    // Drop every inherited descriptor except std streams and our
    // pipe, so a dying child can't hold daemon sockets open.
    if (write_fd != 3) {
        ::dup2(write_fd, 3);
        write_fd = 3;
    }
#if defined(__linux__)
    ::close_range(4, ~0u, 0);
#endif
    const obs::json::Value payload =
        runJobPayload(spec, job_id, attempt, diag_dir);
    writeJson(write_fd, payload);
    int code = kCodeRuntime;
    if (const obs::json::Value *c = payload.find("code"))
        code = static_cast<int>(c->asNumber());
    // _exit, not exit: skip atexit hooks and (under ASan) leak
    // checking — the parent classifies by payload, not teardown.
    ::_exit(code);
}

} // namespace

WorkerResult
runJobForked(const JobSpec &spec, std::uint64_t job_id,
             unsigned attempt, std::uint64_t timeout_ms,
             const std::string &diag_dir,
             const std::atomic<bool> *cancel,
             std::atomic<pid_t> *child_pid)
{
    WorkerResult r;
    int fds[2];
    if (::pipe(fds) != 0) {
        r.outcome = WorkerOutcome::Crashed;
        r.crashDetail = "pipe() failed";
        return r;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        r.outcome = WorkerOutcome::Crashed;
        r.crashDetail = "fork() failed";
        return r;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(spec, job_id, attempt, diag_dir, fds[1]);
    }
    ::close(fds[1]);
    if (child_pid)
        child_pid->store(pid, std::memory_order_relaxed);

    // Drain the pipe until EOF, watching the deadline and the cancel
    // flag. The child is tiny-output (one frame), so a blocking-ish
    // poll loop with 20 ms slices is plenty.
    const std::uint64_t start = nowMs();
    std::string raw;
    bool killed_deadline = false;
    bool killed_cancel = false;
    char buf[4096];
    for (;;) {
        if (!killed_deadline && !killed_cancel) {
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                ::kill(pid, SIGKILL);
                killed_cancel = true;
            } else if (timeout_ms > 0 &&
                       nowMs() - start >= timeout_ms) {
                ::kill(pid, SIGKILL);
                killed_deadline = true;
            }
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 20);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: child exited (or was killed)
        raw.append(buf, static_cast<std::size_t>(n));
        if (raw.size() > kFrameHeaderBytes + kMaxFrameBytes)
            break; // runaway child; classify as crash below
    }
    ::close(fds[0]);

    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (child_pid)
        child_pid->store(-1, std::memory_order_relaxed);

    if (killed_cancel) {
        r.outcome = WorkerOutcome::Canceled;
        r.kind = "canceled";
        r.error = "canceled while running";
        return r;
    }
    if (killed_deadline) {
        r.outcome = WorkerOutcome::Deadline;
        r.kind = "deadline";
        r.error = "wall-clock deadline (" +
                  std::to_string(timeout_ms) + " ms) exceeded";
        return r;
    }

    // Classify strictly by the payload. No parseable payload — for
    // any reason — is a crash.
    std::optional<obs::json::Value> payload;
    if (raw.size() >= kFrameHeaderBytes) {
        const std::uint32_t len = decodeFrameLength(
            reinterpret_cast<const unsigned char *>(raw.data()));
        if (len <= kMaxFrameBytes &&
            raw.size() == kFrameHeaderBytes + len) {
            payload = obs::json::tryParse(
                raw.substr(kFrameHeaderBytes, len));
        }
    }
    if (!payload || !payload->isObject() || !payload->find("code")) {
        r.outcome = WorkerOutcome::Crashed;
        r.code = kCodeRuntime;
        r.kind = "crash";
        if (WIFSIGNALED(wstatus)) {
            r.crashDetail =
                "signal " + std::to_string(WTERMSIG(wstatus));
        } else if (WIFEXITED(wstatus)) {
            r.crashDetail = "exit " +
                            std::to_string(WEXITSTATUS(wstatus)) +
                            " without payload";
        } else {
            r.crashDetail = "unknown child status";
        }
        r.error = "worker crashed (" + r.crashDetail + ")";
        return r;
    }

    const obs::json::Value &p = *payload;
    r.code = static_cast<int>(p.find("code")->asNumber());
    if (const obs::json::Value *v = p.find("kind"))
        r.kind = v->asString();
    if (const obs::json::Value *v = p.find("error"))
        r.error = v->asString();
    if (const obs::json::Value *v = p.find("dump_path"))
        r.dumpPath = v->asString();
    if (const obs::json::Value *v = p.find("result"))
        r.result = v->asString();
    if (r.code == kCodeOk && !r.result.empty()) {
        r.outcome = WorkerOutcome::Success;
    } else if (r.kind == "transient") {
        r.outcome = WorkerOutcome::Transient;
    } else if (r.code == kCodeOk) {
        // Claimed success without a result document: treat as crash.
        r.outcome = WorkerOutcome::Crashed;
        r.code = kCodeRuntime;
        r.kind = "crash";
        r.crashDetail = "success payload without result";
        r.error = "worker crashed (" + r.crashDetail + ")";
    } else {
        r.outcome = WorkerOutcome::Failure;
    }
    return r;
}

} // namespace camo::server
