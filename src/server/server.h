/**
 * @file
 * Unix-domain socket front end of the camosimd experiment service.
 *
 * One poll()-driven thread owns the listener, every client
 * connection, and the request/response framing; simulation work
 * happens on the Service's supervisor threads (which execute each
 * attempt in a forked child — see src/server/worker.h). The two
 * halves meet at a completion pipe: supervisors write one byte when
 * a job goes terminal, waking the poll loop to settle blocked
 * `result` waiters.
 *
 * Robustness contract: nothing a client sends — malformed JSON,
 * oversize frames, half-frames, sudden disconnects — and nothing a
 * job does ever takes the loop down. Protocol violations get an
 * error frame and a closed connection; everything else gets a
 * structured response.
 *
 * Lifecycle: SIGTERM (via notifyShutdown) or a `drain` request stops
 * admission, lets in-flight jobs finish, then run() returns 0.
 * SIGHUP (via notifyReload) re-applies the reload source's limits
 * without dropping queued jobs.
 */

#ifndef CAMO_SERVER_SERVER_H
#define CAMO_SERVER_SERVER_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/server/service.h"

namespace camo::server {

struct ServerConfig
{
    std::string socketPath;
    ServiceConfig service;
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen on cfg.socketPath (replacing a stale socket
     *  file). False with *error set on failure. */
    bool start(std::string *error);

    /**
     * Serve until a shutdown request has fully drained. Returns the
     * process exit code (0 on a clean drain). Call from the thread
     * that owns the server.
     */
    int run();

    /** Async-signal-safe: request drain-then-exit (SIGTERM/SIGINT
     *  handlers call this). */
    void notifyShutdown();

    /** Async-signal-safe: request a limits reload (SIGHUP). */
    void notifyReload();

    /** Supplies the limits applied on reload (default: the startup
     *  config). Called on the poll thread, may read files. */
    void setReloadSource(std::function<ServiceConfig()> source);

    Service &service() { return service_; }

  private:
    struct Waiter
    {
        int fd = -1;
        std::uint64_t jobId = 0;
        std::uint64_t deadlineMs = 0;
    };

    struct Conn
    {
        std::string in;
        std::string out;
        bool closeAfterFlush = false;
    };

    void handleFrame(int fd, Conn &conn, const std::string &payload);
    obs::json::Value handleRequest(int fd,
                                   const obs::json::Value &req);
    obs::json::Value statusResponse(const JobStatus &s,
                                    bool include_result);
    void settleWaiters(std::uint64_t now_ms);
    void acceptClients();
    bool readConn(int fd, Conn &conn);
    bool flushConn(int fd, Conn &conn);
    void closeConn(int fd);
    void enqueue(int fd, Conn &conn, const obs::json::Value &doc);

    ServerConfig cfg_;
    Service service_;
    std::function<ServiceConfig()> reloadSource_;
    int listenFd_ = -1;
    int signalPipe_[2] = {-1, -1};
    int completionPipe_[2] = {-1, -1};
    std::map<int, Conn> conns_;
    std::vector<Waiter> waiters_;
    bool shutdownRequested_ = false;
};

} // namespace camo::server

#endif // CAMO_SERVER_SERVER_H
