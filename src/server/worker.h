/**
 * @file
 * Crash-isolated job execution for the camosimd daemon.
 *
 * Every attempt of every job runs in a forked child: the child
 * builds the System, runs it, serializes the same summary document
 * `camosim --stats-json` writes, sends it up a pipe as a structured
 * payload, and _exit()s. The parent classifies strictly by what came
 * back: a parseable payload is a structured outcome (success or a
 * typed simulator error); anything else — SIGSEGV, abort, _exit
 * without a payload, a corrupted pipe — is a crash. A crash is a
 * fact about the job, never about the daemon: the supervisor thread
 * that called wait() keeps running no matter how the child died.
 *
 * The parent enforces a wall-clock deadline and a cancel flag by
 * SIGKILLing the child; both are terminal classifications, not
 * retries.
 */

#ifndef CAMO_SERVER_WORKER_H
#define CAMO_SERVER_WORKER_H

#include <atomic>
#include <cstdint>
#include <string>

#include <sys/types.h>

#include "src/server/job.h"

namespace camo::server {

/** How an attempt ended, from the supervising parent's view. */
enum class WorkerOutcome
{
    Success,   ///< payload with code 0 and a result document
    Failure,   ///< typed simulator error (config, invariant, ...)
    Transient, ///< hard::TransientFault — the retryable kind
    Crashed,   ///< child died without a parseable payload
    Deadline,  ///< wall-clock timeout; child killed
    Canceled,  ///< cancel flag observed; child killed
};

const char *workerOutcomeName(WorkerOutcome o);

/** Classified result of one forked attempt. */
struct WorkerResult
{
    WorkerOutcome outcome = WorkerOutcome::Crashed;
    /** camosim-compatible exit code of the outcome (0 success,
     *  3 config, 4 invariant, 5 watchdog, 6 leakage, 1 runtime /
     *  transient / crash). */
    int code = 1;
    std::string kind;     ///< error kind name ("" on success)
    std::string error;    ///< error message ("" on success)
    std::string dumpPath; ///< diagnostic dump file ("" if none)
    std::string result;   ///< stats JSON text (success only)
    /** How the child died when outcome == Crashed ("signal 11",
     *  "exit 3 without payload", ...). */
    std::string crashDetail;
};

/**
 * Run one attempt of `spec` in a forked child and classify it.
 *
 * @param job_id   daemon job id; selects worker-kill/worker-stall
 *                 faults with an index= field and names the job in
 *                 errors
 * @param attempt  0 = first run; > 0 re-derives the seed with
 *                 sim::deriveSeed(seed, kRetrySeedStream, attempt),
 *                 matching the in-process parallel engine
 * @param timeout_ms wall-clock deadline (0 = none)
 * @param diag_dir  System diagnostic-dump directory ("" = stderr)
 * @param cancel   polled ~every 20 ms; kills the child when set
 *                 (may be null)
 * @param child_pid published while the child runs (may be null);
 *                 reset to -1 before wait returns
 */
WorkerResult runJobForked(const JobSpec &spec, std::uint64_t job_id,
                          unsigned attempt, std::uint64_t timeout_ms,
                          const std::string &diag_dir,
                          const std::atomic<bool> *cancel,
                          std::atomic<pid_t> *child_pid);

/**
 * The child-side body of runJobForked, exposed for direct unit
 * testing: runs the simulation in-process and returns the payload
 * document it would have written to the pipe.
 */
obs::json::Value runJobPayload(const JobSpec &spec,
                               std::uint64_t job_id, unsigned attempt,
                               const std::string &diag_dir);

} // namespace camo::server

#endif // CAMO_SERVER_WORKER_H
