#include "src/server/service.h"

#include <algorithm>
#include <chrono>

namespace camo::server {

namespace {

/** Recent-latency ring size: bounds both stats memory and the
 *  per-stats-call sort for p99. */
constexpr std::size_t kLatencyWindow = 2048;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Service::Service(const ServiceConfig &cfg) : cfg_(cfg)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    supervisors_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        supervisors_.emplace_back([this] { supervisorLoop(); });
}

Service::~Service()
{
    stop();
}

void
Service::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    {
        std::unique_lock<std::mutex> lk(m_);
        stopping_ = true;
        // Cancel everything still pending: queued jobs go terminal
        // here, running jobs get their children killed and are
        // classified by their supervisors.
        while (!queue_.empty()) {
            const std::uint64_t id = queue_.front();
            queue_.pop_front();
            auto it = jobs_.find(id);
            if (it != jobs_.end() && !jobStateTerminal(it->second.state))
                finishLocked(lk, it->second, JobState::Canceled);
            if (!lk.owns_lock())
                lk.lock();
        }
        for (auto &[id, job] : jobs_) {
            if (job.state == JobState::Running)
                job.cancelFlag.store(true, std::memory_order_relaxed);
        }
    }
    work_.notify_all();
    for (auto &t : supervisors_)
        t.join();
}

SubmitResult
Service::submit(const JobSpec &spec)
{
    const std::string key = spec.cacheKey();
    std::unique_lock<std::mutex> lk(m_);
    SubmitResult res;
    if (stopping_ || draining_) {
        ++rejectedDraining_;
        res.error = "draining";
        return res;
    }

    // Cache hit: terminal immediately, no queue slot consumed.
    auto cit = cache_.find(key);
    if (cit != cache_.end()) {
        ++submitted_;
        ++cacheHits_;
        cacheLru_.splice(cacheLru_.begin(), cacheLru_,
                         cit->second.second);
        Job &job = jobs_[nextId_];
        job.id = nextId_++;
        job.spec = spec;
        job.cacheKey = key;
        job.submitMs = nowMs();
        job.resultText = cit->second.first;
        job.fromCache = true;
        res.accepted = true;
        res.id = job.id;
        finishLocked(lk, job, JobState::Cached);
        return res;
    }

    // Single-flight: an identical job already queued or running
    // becomes this submission's leader.
    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
        ++submitted_;
        ++joined_;
        Job &job = jobs_[nextId_];
        job.id = nextId_++;
        job.spec = spec;
        job.cacheKey = key;
        job.submitMs = nowMs();
        jobs_[fit->second].joiners.push_back(job.id);
        res.accepted = true;
        res.id = job.id;
        return res;
    }

    // Admission control: a full queue sheds explicitly instead of
    // growing without bound.
    if (queue_.size() >= cfg_.maxQueue) {
        ++shed_;
        res.shed = true;
        res.error = "queue full (" + std::to_string(cfg_.maxQueue) +
                    " jobs); shed";
        return res;
    }

    ++submitted_;
    Job &job = jobs_[nextId_];
    job.id = nextId_++;
    job.spec = spec;
    job.cacheKey = key;
    job.submitMs = nowMs();
    queue_.push_back(job.id);
    inflight_[key] = job.id;
    res.accepted = true;
    res.id = job.id;
    lk.unlock();
    work_.notify_one();
    return res;
}

void
Service::supervisorLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            work_.wait(lk,
                       [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping
            const std::uint64_t id = queue_.front();
            queue_.pop_front();
            auto it = jobs_.find(id);
            if (it == jobs_.end() ||
                jobStateTerminal(it->second.state))
                continue; // canceled while queued
            it->second.state = JobState::Running;
            // Captured under the lock: std::map references stay
            // valid across concurrent inserts, and only terminal
            // jobs are ever erased, so a Running job's address is
            // stable for the whole unlocked execution.
            job = &it->second;
        }
        runJob(*job);
    }
}

void
Service::runJob(Job &job)
{
    // `job` lives in jobs_, which only erases terminal entries, so
    // holding the reference to this Running job across unlocked
    // sections is safe; only this supervisor mutates a Running job.
    for (unsigned attempt = 0;; ++attempt) {
        std::uint64_t timeout_ms = 0;
        hard::RetryPolicy retry;
        std::string diag_dir;
        {
            std::lock_guard<std::mutex> lk(m_);
            job.attempts = attempt + 1;
            if (attempt > 0)
                ++retries_;
            timeout_ms = job.spec.timeoutMs ? job.spec.timeoutMs
                                            : cfg_.defaultTimeoutMs;
            retry = cfg_.retry;
            diag_dir = cfg_.diagDir;
        }
        if (attempt > 0)
            hard::backoffSleep(retry.delayUsFor(job.id, attempt));

        const WorkerResult r = runJobForked(
            job.spec, job.id, attempt, timeout_ms, diag_dir,
            &job.cancelFlag, &job.childPid);

        std::unique_lock<std::mutex> lk(m_);
        job.code = r.code;
        job.kind = r.kind;
        job.error = r.error;
        job.dumpPath = r.dumpPath;
        job.crashDetail = r.crashDetail;
        switch (r.outcome) {
          case WorkerOutcome::Success: {
            job.resultText = r.result;
            if (cfg_.maxCacheEntries > 0) {
                cacheLru_.push_front(job.cacheKey);
                cache_[job.cacheKey] = {r.result, cacheLru_.begin()};
                while (cache_.size() > cfg_.maxCacheEntries) {
                    cache_.erase(cacheLru_.back());
                    cacheLru_.pop_back();
                }
            }
            finishLocked(lk, job, JobState::Succeeded);
            return;
          }
          case WorkerOutcome::Transient:
          case WorkerOutcome::Crashed: {
            const unsigned tries =
                retry.attempts == 0 ? 1 : retry.attempts;
            if (attempt + 1 < tries &&
                !job.cancelFlag.load(std::memory_order_relaxed) &&
                !stopping_) {
                lk.unlock();
                break; // next attempt, seed re-derived in the worker
            }
            finishLocked(lk, job,
                         r.outcome == WorkerOutcome::Crashed
                             ? JobState::Crashed
                             : JobState::Failed);
            return;
          }
          case WorkerOutcome::Failure:
            finishLocked(lk, job, JobState::Failed);
            return;
          case WorkerOutcome::Deadline:
            finishLocked(lk, job, JobState::Deadline);
            return;
          case WorkerOutcome::Canceled:
            finishLocked(lk, job, JobState::Canceled);
            return;
        }
    }
}

void
Service::finishLocked(std::unique_lock<std::mutex> &lk, Job &job,
                      JobState state)
{
    job.state = state;
    job.endMs = nowMs();
    noteTerminalLocked(job);

    // The leader settles its single-flight joiners: success serves
    // them from its result; any other terminal state is mirrored.
    std::vector<std::uint64_t> to_notify;
    to_notify.push_back(job.id);
    auto fit = inflight_.find(job.cacheKey);
    if (fit != inflight_.end() && fit->second == job.id)
        inflight_.erase(fit);
    for (const std::uint64_t jid : job.joiners) {
        auto it = jobs_.find(jid);
        if (it == jobs_.end() || jobStateTerminal(it->second.state))
            continue;
        Job &joiner = it->second;
        joiner.code = job.code;
        joiner.kind = job.kind;
        joiner.error = job.error;
        joiner.dumpPath = job.dumpPath;
        joiner.crashDetail = job.crashDetail;
        if (state == JobState::Succeeded || state == JobState::Cached) {
            joiner.resultText = job.resultText;
            joiner.fromCache = true;
            joiner.state = JobState::Cached;
        } else {
            joiner.state = state;
        }
        joiner.endMs = job.endMs;
        noteTerminalLocked(joiner);
        to_notify.push_back(jid);
    }
    job.joiners.clear();
    // Retention: past this point nothing dereferences `job` or the
    // joiners, so evicting — even one of the jobs just finished,
    // under a tiny cap — is safe.
    evictTerminalLocked();

    cv_.notify_all();
    const auto hook = completionHook_;
    lk.unlock();
    if (hook) {
        for (const std::uint64_t id : to_notify)
            hook(id);
    }
}

void
Service::noteTerminalLocked(Job &job)
{
    ++terminal_[jobStateName(job.state)];
    const double ms =
        static_cast<double>(job.endMs - job.submitMs);
    latencySumMs_ += ms;
    ++latencyCount_;
    if (latencyWindow_.size() < kLatencyWindow) {
        latencyWindow_.push_back(ms);
    } else {
        latencyWindow_[latencyWindowNext_] = ms;
        latencyWindowNext_ =
            (latencyWindowNext_ + 1) % kLatencyWindow;
    }
    terminalFifo_.push_back(job.id);
}

void
Service::evictTerminalLocked()
{
    if (cfg_.maxTerminalJobs == 0)
        return;
    while (terminalFifo_.size() > cfg_.maxTerminalJobs) {
        jobs_.erase(terminalFifo_.front());
        terminalFifo_.pop_front();
    }
}

JobStatus
Service::snapshotLocked(const Job &job) const
{
    JobStatus s;
    s.id = job.id;
    s.state = job.state;
    s.attempts = job.attempts;
    s.code = job.code;
    s.kind = job.kind;
    s.error = job.error;
    s.dumpPath = job.dumpPath;
    s.crashDetail = job.crashDetail;
    s.fromCache = job.fromCache ||
                  (job.state == JobState::Cached);
    if (jobStateTerminal(job.state))
        s.latencyMs = static_cast<double>(job.endMs - job.submitMs);
    return s;
}

bool
Service::status(std::uint64_t id, JobStatus *out) const
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    *out = snapshotLocked(it->second);
    return true;
}

bool
Service::result(std::uint64_t id, std::string *out) const
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    const Job &job = it->second;
    if (job.state != JobState::Succeeded &&
        job.state != JobState::Cached)
        return false;
    *out = job.resultText;
    return true;
}

bool
Service::waitTerminal(std::uint64_t id, std::uint64_t timeout_ms,
                      JobStatus *out) const
{
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    if (timeout_ms > 0) {
        // Re-find on every wakeup: retention may evict the record
        // (necessarily already terminal) while we wait, which would
        // invalidate a held iterator.
        cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
            auto jit = jobs_.find(id);
            return jit == jobs_.end() ||
                   jobStateTerminal(jit->second.state);
        });
        it = jobs_.find(id);
        if (it == jobs_.end())
            return false; // went terminal, then evicted
    }
    *out = snapshotLocked(it->second);
    return true;
}

bool
Service::cancel(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = it->second;
    if (jobStateTerminal(job.state))
        return false;
    if (job.state == JobState::Running) {
        // The supervisor kills the child and classifies Canceled.
        job.cancelFlag.store(true, std::memory_order_relaxed);
        return true;
    }
    // Queued: either a queue occupant (possibly a single-flight
    // leader) or a joiner waiting on one.
    auto qit = std::find(queue_.begin(), queue_.end(), id);
    if (qit != queue_.end()) {
        if (!job.joiners.empty()) {
            // Promote the first live joiner to leader so the others
            // still get their shared execution.
            std::uint64_t heir = 0;
            std::vector<std::uint64_t> rest;
            for (const std::uint64_t jid : job.joiners) {
                auto jit = jobs_.find(jid);
                if (jit == jobs_.end() ||
                    jobStateTerminal(jit->second.state))
                    continue;
                if (heir == 0)
                    heir = jid;
                else
                    rest.push_back(jid);
            }
            if (heir != 0) {
                *qit = heir;
                jobs_[heir].joiners = std::move(rest);
                inflight_[job.cacheKey] = heir;
                job.joiners.clear();
                finishLocked(lk, job, JobState::Canceled);
                return true;
            }
        }
        queue_.erase(qit);
        finishLocked(lk, job, JobState::Canceled);
        return true;
    }
    // A joiner: detach from its leader and cancel alone.
    auto fit = inflight_.find(job.cacheKey);
    if (fit != inflight_.end()) {
        auto lit = jobs_.find(fit->second);
        if (lit != jobs_.end()) {
            auto &js = lit->second.joiners;
            js.erase(std::remove(js.begin(), js.end(), id), js.end());
        }
    }
    finishLocked(lk, job, JobState::Canceled);
    return true;
}

void
Service::beginDrain()
{
    std::lock_guard<std::mutex> lk(m_);
    draining_ = true;
}

bool
Service::drained() const
{
    std::lock_guard<std::mutex> lk(m_);
    if (!draining_)
        return false;
    for (const auto &[id, job] : jobs_) {
        if (!jobStateTerminal(job.state))
            return false;
    }
    return queue_.empty();
}

void
Service::drain()
{
    beginDrain();
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
        if (!queue_.empty())
            return false;
        for (const auto &[id, job] : jobs_) {
            if (!jobStateTerminal(job.state))
                return false;
        }
        return true;
    });
}

void
Service::reload(const ServiceConfig &cfg)
{
    std::lock_guard<std::mutex> lk(m_);
    // Worker count is fixed at start; everything else swaps in place
    // without touching queued or running jobs.
    cfg_.maxQueue = cfg.maxQueue;
    cfg_.defaultTimeoutMs = cfg.defaultTimeoutMs;
    cfg_.retry = cfg.retry;
    cfg_.maxCacheEntries = cfg.maxCacheEntries;
    cfg_.diagDir = cfg.diagDir;
    cfg_.maxTerminalJobs = cfg.maxTerminalJobs;
    while (cache_.size() > cfg_.maxCacheEntries) {
        cache_.erase(cacheLru_.back());
        cacheLru_.pop_back();
    }
    evictTerminalLocked();
    ++reloads_;
}

obs::json::Value
Service::statsJson() const
{
    std::lock_guard<std::mutex> lk(m_);
    obs::json::Value v = obs::json::Value::makeObject();
    v["submitted"] = submitted_;
    v["shed"] = shed_;
    v["rejected_draining"] = rejectedDraining_;
    v["cache_hits"] = cacheHits_;
    v["joined"] = joined_;
    v["retries"] = retries_;
    v["reloads"] = reloads_;
    v["queue_depth"] = static_cast<std::uint64_t>(queue_.size());
    std::uint64_t running = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Running)
            ++running;
    }
    v["running"] = running;
    v["workers"] = static_cast<std::uint64_t>(cfg_.workers);
    v["draining"] = draining_;
    obs::json::Value t = obs::json::Value::makeObject();
    for (const auto &[name, n] : terminal_)
        t[name] = n;
    v["terminal"] = t;
    obs::json::Value lat = obs::json::Value::makeObject();
    if (latencyCount_ > 0) {
        // Mean is over every terminal job; p99 is over the bounded
        // recent window, so stats cost stays O(window) forever.
        lat["mean"] = latencySumMs_ /
                      static_cast<double>(latencyCount_);
        std::vector<double> sorted = latencyWindow_;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t p99 = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(
                static_cast<double>(sorted.size()) * 0.99));
        lat["p99"] = sorted[p99];
    } else {
        lat["mean"] = 0.0;
        lat["p99"] = 0.0;
    }
    v["latency_ms"] = lat;
    v["retained_jobs"] = static_cast<std::uint64_t>(jobs_.size());
    return v;
}

void
Service::setCompletionHook(std::function<void(std::uint64_t)> hook)
{
    std::lock_guard<std::mutex> lk(m_);
    completionHook_ = std::move(hook);
}

} // namespace camo::server
