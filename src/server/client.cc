#include "src/server/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/server/protocol.h"

namespace camo::server {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &socket_path, std::string *error)
{
    close();
    struct sockaddr_un addr;
    if (socket_path.size() >= sizeof addr.sun_path) {
        *error = "socket path too long: " + socket_path;
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        *error = "socket() failed";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        *error = "connect(" + socket_path +
                 ") failed: " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

std::optional<obs::json::Value>
Client::request(const obs::json::Value &req)
{
    if (fd_ < 0)
        return std::nullopt;
    if (!writeJson(fd_, req)) {
        close();
        return std::nullopt;
    }
    auto resp = readJson(fd_);
    if (!resp)
        close();
    return resp;
}

std::optional<std::uint64_t>
Client::submit(const JobSpec &spec, std::string *error)
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "submit";
    req["job"] = spec.toJson();
    const auto resp = request(req);
    if (!resp) {
        *error = "connection lost";
        return std::nullopt;
    }
    const obs::json::Value *ok = resp->find("ok");
    if (!ok || !ok->isBool() || !ok->asBool()) {
        const obs::json::Value *msg = resp->find("error");
        *error = msg && msg->isString() ? msg->asString()
                                        : "submit rejected";
        const obs::json::Value *shed = resp->find("shed");
        if (shed && shed->isBool() && shed->asBool())
            *error = "shed: " + *error;
        return std::nullopt;
    }
    const obs::json::Value *id = resp->find("id");
    if (!id || !id->isNumber()) {
        *error = "submit response missing id";
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(id->asNumber());
}

std::optional<obs::json::Value>
Client::waitResult(std::uint64_t id, std::uint64_t wait_ms)
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "result";
    req["id"] = id;
    req["wait_ms"] = wait_ms;
    return request(req);
}

std::optional<obs::json::Value>
Client::status(std::uint64_t id)
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "status";
    req["id"] = id;
    return request(req);
}

std::optional<obs::json::Value>
Client::stats()
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "stats";
    return request(req);
}

bool
Client::cancel(std::uint64_t id)
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "cancel";
    req["id"] = id;
    const auto resp = request(req);
    if (!resp)
        return false;
    const obs::json::Value *c = resp->find("canceled");
    return c && c->isBool() && c->asBool();
}

bool
Client::drain()
{
    obs::json::Value req = obs::json::Value::makeObject();
    req["op"] = "drain";
    const auto resp = request(req);
    if (!resp)
        return false;
    const obs::json::Value *ok = resp->find("ok");
    return ok && ok->isBool() && ok->asBool();
}

} // namespace camo::server
