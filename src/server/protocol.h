/**
 * @file
 * Wire protocol of the camosimd experiment service: length-prefixed
 * JSON frames over a local Unix-domain stream socket.
 *
 * A frame is a 4-byte little-endian payload length followed by that
 * many bytes of UTF-8 JSON. Requests are objects with an "op" key
 * (submit, status, result, cancel, stats, drain, reload); responses
 * are objects with an "ok" bool and, on failure, an "error" string.
 * Frames above kMaxFrameBytes are a protocol violation: the daemon
 * answers with an error and drops the connection instead of
 * allocating attacker-controlled buffers.
 *
 * All I/O helpers here are blocking-fd oriented (client side and
 * tests); the daemon's poll loop does its own incremental buffering
 * and uses only the encode/decode halves.
 */

#ifndef CAMO_SERVER_PROTOCOL_H
#define CAMO_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>

#include "src/obs/json.h"

namespace camo::server {

/** Frame size cap: topology documents are small; anything bigger is
 *  a malformed or hostile frame. */
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/** Bytes of the length prefix. */
inline constexpr std::size_t kFrameHeaderBytes = 4;

/** Encode `payload` as header + body, appended to `out`. */
void encodeFrame(const std::string &payload, std::string *out);

/** Decode a header from 4 raw bytes (little-endian). */
std::uint32_t decodeFrameLength(const unsigned char *header);

/** Outcome of a blocking frame read. */
enum class ReadStatus
{
    Ok,
    Eof,      ///< clean close before any header byte
    Error,    ///< syscall failure or truncated frame
    Oversize, ///< header announced more than kMaxFrameBytes
};

/**
 * Blocking write of one frame; retries short writes and EINTR.
 * Returns false on any unrecoverable error (EPIPE included — callers
 * must ignore SIGPIPE).
 */
bool writeFrame(int fd, const std::string &payload);

/** Blocking read of one complete frame into *payload. */
ReadStatus readFrame(int fd, std::string *payload);

/** Serialize a JSON document into one frame on `fd`. */
bool writeJson(int fd, const obs::json::Value &doc);

/** Read one frame and parse it; nullopt on EOF/error/bad JSON. */
std::optional<obs::json::Value> readJson(int fd);

/** {"ok": false, "error": msg} */
obs::json::Value errorResponse(const std::string &msg);

/** {"ok": true} to extend. */
obs::json::Value okResponse();

} // namespace camo::server

#endif // CAMO_SERVER_PROTOCOL_H
