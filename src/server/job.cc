#include "src/server/job.h"

#include "src/hard/error.h"
#include "src/scenario/scenario.h"

namespace camo::server {

namespace {

bool
asU64(const obs::json::Value &v, std::uint64_t *out)
{
    if (!v.isNumber() || v.asNumber() < 0)
        return false;
    *out = static_cast<std::uint64_t>(v.asNumber());
    return true;
}

} // namespace

bool
JobSpec::fromJson(const obs::json::Value &doc, JobSpec *out,
                  std::string *error)
{
    if (!doc.isObject()) {
        *error = "job must be an object";
        return false;
    }
    JobSpec spec;
    bool haveConfig = false;
    bool haveScenario = false;
    for (const auto &[key, value] : doc.asObject()) {
        bool ok = true;
        if (key == "config") {
            ok = value.isObject();
            if (ok) {
                spec.config = value;
                haveConfig = true;
            }
        } else if (key == "scenario") {
            // Registered attack scenario: resolves to its embedded
            // topology, so the job is identical to submitting that
            // topology as "config" (and caches as such).
            ok = value.isString();
            if (ok) {
                try {
                    spec.config = obs::json::parse(
                        scenario::scenarioTopologyJson(
                            value.asString()));
                } catch (const hard::ConfigError &e) {
                    *error = e.what();
                    return false;
                }
                haveScenario = true;
            }
        } else if (key == "cycles") {
            ok = asU64(value, &spec.cycles);
        } else if (key == "warmup") {
            ok = asU64(value, &spec.warmup);
        } else if (key == "seed") {
            ok = asU64(value, &spec.seed);
        } else if (key == "watchdog") {
            ok = asU64(value, &spec.watchdog);
        } else if (key == "checkers") {
            ok = value.isBool();
            if (ok)
                spec.checkers = value.asBool();
        } else if (key == "inject") {
            ok = value.isString();
            if (ok)
                spec.inject = value.asString();
        } else if (key == "inject_seed") {
            ok = asU64(value, &spec.injectSeed);
        } else if (key == "timeout_ms") {
            ok = asU64(value, &spec.timeoutMs);
        } else if (key == "shard_procs") {
            ok = asU64(value, &spec.shardProcs);
        } else if (key == "crash_attempts") {
            ok = asU64(value, &spec.crashAttempts);
        } else {
            *error = "unknown job field '" + key + "'";
            return false;
        }
        if (!ok) {
            *error = "job field '" + key + "' has the wrong type";
            return false;
        }
    }
    if (haveConfig && haveScenario) {
        *error = "job has both 'config' and 'scenario'; pick one";
        return false;
    }
    if (!haveConfig && !haveScenario) {
        *error =
            "job needs a 'config' topology object or a 'scenario' "
            "name";
        return false;
    }
    *out = std::move(spec);
    return true;
}

obs::json::Value
JobSpec::toJson() const
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["config"] = config;
    v["cycles"] = cycles;
    v["warmup"] = warmup;
    if (seed != 0)
        v["seed"] = seed;
    if (watchdog != 0)
        v["watchdog"] = watchdog;
    if (checkers)
        v["checkers"] = true;
    if (!inject.empty())
        v["inject"] = inject;
    if (injectSeed != 0)
        v["inject_seed"] = injectSeed;
    if (timeoutMs != 0)
        v["timeout_ms"] = timeoutMs;
    if (shardProcs != 0)
        v["shard_procs"] = shardProcs;
    if (crashAttempts != 0)
        v["crash_attempts"] = crashAttempts;
    return v;
}

std::string
JobSpec::cacheKey() const
{
    // timeoutMs and shardProcs are excluded: the deadline changes
    // whether a result arrives, and the shard layout changes how it
    // is computed — never its bytes. crashAttempts IS included — crashing
    // attempt 0 means the surviving attempt runs with a re-derived
    // seed, which changes the result.
    obs::json::Value v = obs::json::Value::makeObject();
    v["config"] = config;
    v["cycles"] = cycles;
    v["warmup"] = warmup;
    v["seed"] = seed;
    v["watchdog"] = watchdog;
    v["checkers"] = checkers;
    v["inject"] = inject;
    v["inject_seed"] = injectSeed;
    v["crash_attempts"] = crashAttempts;
    return v.dump();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Succeeded: return "succeeded";
      case JobState::Cached: return "cached";
      case JobState::Failed: return "failed";
      case JobState::Crashed: return "crashed";
      case JobState::Deadline: return "deadline";
      case JobState::Canceled: return "canceled";
    }
    return "unknown";
}

bool
jobStateTerminal(JobState s)
{
    return s != JobState::Queued && s != JobState::Running;
}

} // namespace camo::server
