/**
 * @file
 * Job model of the camosimd experiment service: what a client asks
 * for (JobSpec), every state a job can terminate in (JobState), and
 * the cache key that makes identical asks share one execution.
 *
 * A JobSpec is deliberately the same configuration surface as a
 * one-shot `camosim --config=FILE --stats-json` run: a topology JSON
 * document plus the execution flags (cycles, warmup, seed override,
 * watchdog, checkers, fault-injection spec). A job that runs clean
 * through the daemon produces a result byte-identical to that CLI
 * invocation — the chaos soak pins this.
 */

#ifndef CAMO_SERVER_JOB_H
#define CAMO_SERVER_JOB_H

#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/obs/json.h"

namespace camo::server {

/** What a client submits: topology + execution flags. */
struct JobSpec
{
    /** Topology document (src/sim/topology.h schema). Required,
     *  supplied either directly as "config" or by naming a registered
     *  attack scenario as "scenario" ("NAME" or "NAME:shaped", see
     *  src/scenario/scenario.h), which resolves to its embedded
     *  topology before the job is queued. */
    obs::json::Value config;
    Cycle cycles = 1000000;
    Cycle warmup = 50000;
    /** 0 = use the topology's seed. */
    std::uint64_t seed = 0;
    /** Watchdog window in cycles (0 = off); fires as a structured
     *  watchdog failure, never as a daemon problem. */
    Cycle watchdog = 0;
    bool checkers = false;
    /** Fault-injection campaign (hard::FaultPlan spec string). The
     *  worker kinds (worker-kill / worker-stall) hit the daemon's
     *  forked worker for this job, keyed by job id. */
    std::string inject;
    std::uint64_t injectSeed = 0; ///< 0 = effective seed
    /** Wall-clock deadline in milliseconds (0 = server default). */
    std::uint64_t timeoutMs = 0;
    /** Execution hint, like timeoutMs: processes the runner may fork
     *  for multi-run phases (camosim --shard-procs). Sharding is
     *  byte-invisible to results, so this never enters the cache
     *  key. 0 = in-process only. */
    std::uint64_t shardProcs = 0;
    /** Test hook for the chaos soak: the worker dies with a real
     *  SIGSEGV while attempt < crashAttempts, exercising the
     *  crash-isolation and retry paths with a genuine signal death. */
    std::uint64_t crashAttempts = 0;

    /**
     * Parse from the "job" object of a submit request. Unknown keys
     * and wrong types are errors (returned in *error), so a typo'd
     * flag fails the submission instead of silently running the
     * wrong experiment.
     */
    static bool fromJson(const obs::json::Value &doc, JobSpec *out,
                         std::string *error);

    /** Inverse of fromJson (used by the client CLI and tests). */
    obs::json::Value toJson() const;

    /**
     * Deterministic cache identity: the compact dump of every
     * execution-affecting field (json objects are ordered maps, so
     * the dump is canonical). Two specs with equal keys produce
     * byte-identical results, so one may serve the other's answer.
     */
    std::string cacheKey() const;
};

/** Every state a job can be observed in. Exactly one terminal state
 *  per job — the soak's accounting invariant. */
enum class JobState
{
    Queued,
    Running,
    Succeeded, ///< result payload available
    Cached,    ///< served from the result cache / single-flight leader
    Failed,    ///< structured simulator error (config, invariant,
               ///  watchdog, leakage, runtime, exhausted transient)
    Crashed,   ///< worker died without a payload, retries exhausted
    Deadline,  ///< wall-clock timeout; worker killed
    Canceled,
};

const char *jobStateName(JobState s);

/** True for states no transition leaves. */
bool jobStateTerminal(JobState s);

} // namespace camo::server

#endif // CAMO_SERVER_JOB_H
