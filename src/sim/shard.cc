#include "src/sim/shard.h"

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/frame.h"
#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/obs/json.h"

namespace camo::sim {

namespace {

using obs::json::Value;

/** A full GA generation of fitness values is tiny; a sweep shard's
 *  RunMetrics payload grows with cores x jobs. 64 MB is orders of
 *  magnitude above any real shard while still bounding a corrupt
 *  length prefix. */
constexpr std::uint32_t kShardFrameCap = 64u << 20;

std::string
u64Str(std::uint64_t v)
{
    return std::to_string(v);
}

/** Doubles cross the pipe as their IEEE-754 bit patterns so the
 *  round-trip is exact; obs::json numbers would re-format. */
Value
bitsOfDouble(double d)
{
    return Value(u64Str(std::bit_cast<std::uint64_t>(d)));
}

[[noreturn]] void
failShardFrame(unsigned shard, const std::string &what)
{
    throw hard::TransientFault("shard " + std::to_string(shard) +
                               ": " + what);
}

std::uint64_t
parseU64Field(const Value *v, unsigned shard, const char *what)
{
    if (v == nullptr || !v->isString())
        failShardFrame(shard, std::string("frame missing ") + what);
    const std::string &s = v->asString();
    errno = 0;
    char *end = nullptr;
    const unsigned long long r = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        failShardFrame(shard, std::string("malformed ") + what +
                                  " '" + s + "'");
    return static_cast<std::uint64_t>(r);
}

double
parseDoubleBits(const Value &v, unsigned shard, const char *what)
{
    return std::bit_cast<double>(parseU64Field(&v, shard, what));
}

Value
u64VecToJson(const std::vector<std::uint64_t> &xs)
{
    Value a = Value::makeArray();
    for (std::uint64_t x : xs)
        a.push(Value(u64Str(x)));
    return a;
}

Value
doubleVecToJson(const std::vector<double> &xs)
{
    Value a = Value::makeArray();
    for (double x : xs)
        a.push(bitsOfDouble(x));
    return a;
}

std::vector<std::uint64_t>
u64VecFromJson(const Value *v, unsigned shard, const char *what)
{
    if (v == nullptr || !v->isArray())
        failShardFrame(shard, std::string("frame missing ") + what);
    std::vector<std::uint64_t> out;
    out.reserve(v->asArray().size());
    for (const Value &e : v->asArray())
        out.push_back(parseU64Field(&e, shard, what));
    return out;
}

std::vector<double>
doubleVecFromJson(const Value *v, unsigned shard, const char *what)
{
    if (v == nullptr || !v->isArray())
        failShardFrame(shard, std::string("frame missing ") + what);
    std::vector<double> out;
    out.reserve(v->asArray().size());
    for (const Value &e : v->asArray())
        out.push_back(parseDoubleBits(e, shard, what));
    return out;
}

Value
metricsToJson(const RunMetrics &m)
{
    Value v = Value::makeObject();
    v["cycles"] = Value(u64Str(m.cycles));
    v["ipc"] = doubleVecToJson(m.ipc);
    v["retired"] = u64VecToJson(m.retired);
    v["served_reads"] = u64VecToJson(m.servedReads);
    v["avg_read_latency"] = doubleVecToJson(m.avgReadLatency);
    v["alpha"] = doubleVecToJson(m.alpha);
    return v;
}

RunMetrics
metricsFromJson(const Value &v, unsigned shard)
{
    RunMetrics m;
    m.cycles = parseU64Field(v.find("cycles"), shard, "cycles");
    m.ipc = doubleVecFromJson(v.find("ipc"), shard, "ipc");
    m.retired = u64VecFromJson(v.find("retired"), shard, "retired");
    m.servedReads =
        u64VecFromJson(v.find("served_reads"), shard, "served_reads");
    m.avgReadLatency = doubleVecFromJson(v.find("avg_read_latency"),
                                         shard, "avg_read_latency");
    m.alpha = doubleVecFromJson(v.find("alpha"), shard, "alpha");
    return m;
}

/** Re-throw a child-reported error as the class its kind names, so a
 *  sharded sweep fails with the same exception type an in-process one
 *  would. Unknown kinds degrade to TransientFault (retryable). */
[[noreturn]] void
rethrowChildError(const Value &err)
{
    const Value *k = err.find("kind");
    const Value *m = err.find("message");
    const std::string kind = k && k->isString() ? k->asString() : "";
    const std::string msg = m && m->isString()
                                ? m->asString()
                                : "shard child reported an error";
    using hard::ErrorKind;
    if (kind == hard::errorKindName(ErrorKind::Config))
        throw hard::ConfigError(msg);
    if (kind == hard::errorKindName(ErrorKind::Invariant))
        throw hard::InvariantViolation(msg);
    if (kind == hard::errorKindName(ErrorKind::Watchdog))
        throw hard::WatchdogTimeout(msg);
    if (kind == hard::errorKindName(ErrorKind::Leakage))
        throw hard::LeakageAlert(msg);
    throw hard::TransientFault(msg);
}

int
waitChild(pid_t pid)
{
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return status;
        if (r < 0 && errno == EINTR)
            continue;
        return -1;
    }
}

/**
 * Fork one child per shard, run `body(shard)` in it, and return each
 * shard's authenticated payload in shard order. The child's result
 * object (or the error it threw, kind + message) crosses its pipe as
 * one length-prefixed JSON frame stamped with
 * deriveSeed(auth_base, kShardSeedStream, shard); the child then
 * _exit()s without running destructors or atexit hooks (the plan and
 * batch copies die with the address space). Every child is read and
 * reaped before the first failure is thrown, so an early bad shard
 * never leaks processes.
 */
std::vector<Value>
collectShardFrames(unsigned shards, std::uint64_t auth_base,
                   const std::function<Value(unsigned)> &body)
{
    std::vector<pid_t> pids;
    std::vector<int> rfds;
    pids.reserve(shards);
    rfds.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        int fds[2] = {-1, -1};
        pid_t pid = -1;
        if (::pipe(fds) == 0) {
            pid = ::fork();
        } else {
            fds[0] = fds[1] = -1;
        }
        if (pid == 0) {
            // Child: only this thread survives the fork. Produce the
            // payload, push one frame, and vanish without cleanup.
            ::close(fds[0]);
            const std::string token =
                u64Str(deriveSeed(auth_base, kShardSeedStream, s));
            std::string payload;
            try {
                Value v = body(s);
                v["token"] = Value(token);
                payload = v.dump();
            } catch (const hard::CamoError &e) {
                Value v = Value::makeObject();
                v["token"] = Value(token);
                v["error"] = Value::makeObject();
                v["error"]["kind"] =
                    Value(hard::errorKindName(e.kind()));
                v["error"]["message"] = Value(std::string(e.what()));
                payload = v.dump();
            } catch (const std::exception &e) {
                Value v = Value::makeObject();
                v["token"] = Value(token);
                v["error"] = Value::makeObject();
                v["error"]["kind"] = Value("transient");
                v["error"]["message"] = Value(std::string(e.what()));
                payload = v.dump();
            }
            frame::writeFrame(fds[1], payload, kShardFrameCap);
            ::_exit(0);
        }
        if (pid < 0) {
            // pipe() or fork() failed: abandon the spawn, drain what
            // already started, and report the resource failure.
            const int err = errno;
            if (fds[0] >= 0)
                ::close(fds[0]);
            if (fds[1] >= 0)
                ::close(fds[1]);
            for (unsigned t = 0; t < pids.size(); ++t) {
                ::close(rfds[t]);
                waitChild(pids[t]);
            }
            throw hard::TransientFault(
                std::string("shard spawn failed: ") +
                std::strerror(err));
        }
        ::close(fds[1]);
        pids.push_back(pid);
        rfds.push_back(fds[0]);
    }

    // Read and reap every shard before judging any of them: children
    // are independent, and each must be collected even if an earlier
    // one failed.
    std::vector<std::string> payloads(shards);
    std::vector<frame::ReadStatus> statuses(shards);
    std::vector<int> waits(shards);
    for (unsigned s = 0; s < shards; ++s) {
        statuses[s] =
            frame::readFrame(rfds[s], &payloads[s], kShardFrameCap);
        ::close(rfds[s]);
        waits[s] = waitChild(pids[s]);
    }

    std::vector<Value> out;
    out.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        if (statuses[s] != frame::ReadStatus::Ok) {
            if (waits[s] >= 0 && WIFSIGNALED(waits[s]))
                failShardFrame(
                    s, std::string("child killed by signal ") +
                           std::to_string(WTERMSIG(waits[s])));
            failShardFrame(s, "no result frame (child crashed or "
                              "truncated its output)");
        }
        std::optional<Value> v = obs::json::tryParse(payloads[s]);
        if (!v || !v->isObject())
            failShardFrame(s, "malformed result frame");
        const std::uint64_t want =
            deriveSeed(auth_base, kShardSeedStream, s);
        if (parseU64Field(v->find("token"), s, "token") != want)
            failShardFrame(s, "frame authentication failed");
        if (const Value *err = v->find("error"))
            rethrowChildError(*err);
        out.push_back(std::move(*v));
    }
    return out;
}

} // namespace

std::vector<RunMetrics>
runConfigsSharded(const std::vector<SimJob> &batch, unsigned jobs,
                  unsigned procs)
{
    const std::size_t n = batch.size();
    if (procs <= 1 || n <= 1)
        return runConfigsParallel(batch, jobs);
    const unsigned shards =
        static_cast<unsigned>(std::min<std::size_t>(procs, n));

    // Shard s owns batch indices s, s + shards, ... Each child runs
    // its subset with the ordinary in-process engine; a job's seeds
    // travel inside the job, so the split never perturbs results.
    const std::uint64_t auth = batch.front().cfg.seed;
    const std::vector<Value> frames =
        collectShardFrames(shards, auth, [&](unsigned s) {
            std::vector<SimJob> mine;
            mine.reserve((n - s + shards - 1) / shards);
            for (std::size_t i = s; i < n; i += shards)
                mine.push_back(batch[i]);
            const std::vector<RunMetrics> res =
                runConfigsParallel(mine, jobs);
            Value v = Value::makeObject();
            Value results = Value::makeArray();
            for (const RunMetrics &m : res)
                results.push(metricsToJson(m));
            v["results"] = std::move(results);
            return v;
        });

    std::vector<RunMetrics> out(n);
    for (unsigned s = 0; s < shards; ++s) {
        const Value *rs = frames[s].find("results");
        if (rs == nullptr || !rs->isArray())
            failShardFrame(s, "frame missing results");
        std::size_t k = 0;
        for (std::size_t i = s; i < n; i += shards) {
            if (k >= rs->asArray().size())
                failShardFrame(s, "short results array");
            out[i] = metricsFromJson(rs->asArray()[k++], s);
        }
        if (k != rs->asArray().size())
            failShardFrame(s, "oversized results array");
    }
    return out;
}

std::vector<double>
evaluateGenerationSharded(const SystemPlan &plan,
                          const std::vector<ga::Genome> &children,
                          std::uint64_t generation,
                          const std::vector<double> &alone_rate,
                          Cycle epoch_cycles, unsigned jobs,
                          unsigned procs)
{
    const std::size_t n = children.size();
    if (procs <= 1 || n <= 1)
        return evaluateGenerationParallel(plan, children, generation,
                                          alone_rate, epoch_cycles,
                                          jobs);
    camo_assert(alone_rate.size() == plan.config().numCores,
                "need one alone rate per core");
    camo_assert(epoch_cycles > 0, "epoch must be positive");
    const unsigned shards =
        static_cast<unsigned>(std::min<std::size_t>(procs, n));

    // Child fitness seeds are deriveSeed(seed, generation + 1, child)
    // with the child's *global* index, so the shard layout is
    // invisible to the values.
    const std::uint64_t auth = plan.config().seed;
    const std::vector<Value> frames =
        collectShardFrames(shards, auth, [&](unsigned s) {
            std::vector<std::size_t> mine;
            mine.reserve((n - s + shards - 1) / shards);
            for (std::size_t i = s; i < n; i += shards)
                mine.push_back(i);
            const std::vector<double> fit = parallelMap(
                mine.size(), jobs, [&](std::size_t k) {
                    return evaluateGaChild(plan, children[mine[k]],
                                           generation, mine[k],
                                           alone_rate, epoch_cycles);
                });
            Value v = Value::makeObject();
            v["fitness"] = doubleVecToJson(fit);
            return v;
        });

    std::vector<double> out(n);
    for (unsigned s = 0; s < shards; ++s) {
        const std::vector<double> fit = doubleVecFromJson(
            frames[s].find("fitness"), s, "fitness");
        std::size_t k = 0;
        for (std::size_t i = s; i < n; i += shards) {
            if (k >= fit.size())
                failShardFrame(s, "short fitness array");
            out[i] = fit[k++];
        }
        if (k != fit.size())
            failShardFrame(s, "oversized fitness array");
    }
    return out;
}

} // namespace camo::sim
