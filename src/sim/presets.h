/**
 * @file
 * Canonical configurations: the paper's Table II system and the
 * workload mixes used throughout the evaluation.
 */

#ifndef CAMO_SIM_PRESETS_H
#define CAMO_SIM_PRESETS_H

#include <string>
#include <vector>

#include "src/sim/system.h"

namespace camo::sim {

/**
 * The Table II system: 4 cores, 2.4 GHz 4-wide 128-entry window,
 * 32KB/4-way L1 + 128KB/8-way private L2 (64B lines, 8 MSHRs),
 * 32-entry MC transaction queue, DDR3-1333 with 1 channel, 1 rank,
 * 8 banks, 8KB row buffers.
 */
SystemConfig paperConfig();

/**
 * The paper's w(ADVERSARY, x) mix: the adversary on core 0 and three
 * copies of the protected application on the remaining cores.
 */
std::vector<std::string> adversaryMix(const std::string &adversary,
                                      const std::string &victim,
                                      std::uint32_t num_cores = 4);

/** Human-readable Table II header printed by every bench. */
std::string tableIiBanner();

} // namespace camo::sim

#endif // CAMO_SIM_PRESETS_H
