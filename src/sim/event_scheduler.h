/**
 * @file
 * The discrete-event calendar queue at the heart of the kernel.
 *
 * An EventScheduler tracks, for a fixed set of integer ids (the
 * System uses the component-graph index), the earliest cycle at which
 * each id wants to run. Wakeups land in a calendar of power-of-two
 * buckets keyed by `cycle & (kBuckets - 1)`, so draining one cycle
 * touches one bucket instead of the whole pending set; a per-id
 * authority array (`wakeOf`) makes superseded bucket entries cheap to
 * drop lazily instead of searching for them at reschedule time.
 *
 * Ordering contract: popDue() returns the ids due at a cycle in the
 * order their wakeups were scheduled (FIFO within a cycle, by a
 * monotonic sequence number). The System kernel additionally sorts
 * the due set into topology order before ticking; generic users get
 * the FIFO guarantee directly.
 *
 * scheduleAt() is a min-merge: it only ever moves a wakeup earlier.
 * That makes redundant wake notifications (a wire delivery to a
 * component that is already due sooner) free, and means a stale later
 * entry can never mask an earlier one. reschedule() is the
 * authoritative form used when a caller has recomputed its bound and
 * wants to replace the previous wakeup outright.
 */

#ifndef CAMO_SIM_EVENT_SCHEDULER_H
#define CAMO_SIM_EVENT_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace camo::sim {

class EventScheduler
{
  public:
    /** Calendar width; one bucket per cycle modulo this. */
    static constexpr std::size_t kBuckets = 256;

    explicit EventScheduler(std::size_t ids = 0) { reset(ids); }

    /** Drop every wakeup and resize to `ids` schedulable ids. */
    void reset(std::size_t ids);

    std::size_t ids() const { return wake_.size(); }

    /** Number of ids currently scheduled. */
    std::size_t scheduled() const { return scheduled_; }
    bool empty() const { return scheduled_ == 0; }

    /** The cycle `id` will next run, or kNoCycle if unscheduled. */
    Cycle wakeOf(std::uint32_t id) const { return wake_[id]; }

    /**
     * Wake `id` no later than `at` (min-merge; keeps an earlier
     * pending wakeup). `at == kNoCycle` is a no-op, so callers can
     * feed nextEventCycle() bounds through unconditionally.
     */
    void scheduleAt(std::uint32_t id, Cycle at);

    /** Replace `id`'s wakeup with `at` (kNoCycle cancels). */
    void reschedule(std::uint32_t id, Cycle at);

    /** Remove `id`'s wakeup, if any. */
    void cancel(std::uint32_t id);

    /** Earliest scheduled cycle across all ids (kNoCycle if none). */
    Cycle nextDueCycle() const;

    /**
     * Pop every id due exactly at `cycle` into `out` (cleared first),
     * FIFO by scheduling order. Popped ids become unscheduled.
     */
    void popDue(Cycle cycle, std::vector<std::uint32_t> &out);

  private:
    struct Entry {
        Cycle at;
        std::uint64_t seq;
        std::uint32_t id;
    };

    static std::size_t bucketOf(Cycle at)
    {
        return static_cast<std::size_t>(at) & (kBuckets - 1);
    }

    void insert(std::uint32_t id, Cycle at);
    void markUnscheduled(std::uint32_t id);

    std::vector<std::vector<Entry>> buckets_;
    /** One bit per bucket: may hold entries (possibly all stale). */
    std::vector<std::uint64_t> nonEmpty_;
    std::vector<Cycle> wake_;
    std::vector<Entry> dueScratch_; // popDue working set, reused
    std::uint64_t seq_ = 0;
    std::size_t scheduled_ = 0;

    // nextDueCycle() memo; any mutation that could move the minimum
    // invalidates it (scheduleAt earlier than the memo refreshes it
    // in place, since the minimum can only have become `at`).
    mutable Cycle cachedNext_ = kNoCycle;
    mutable bool cacheValid_ = false;
};

} // namespace camo::sim

#endif // CAMO_SIM_EVENT_SCHEDULER_H
