#include "src/sim/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "src/common/logging.h"
#include "src/ga/mise.h"

namespace camo::sim {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("CAMO_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(std::min<long>(v, 256));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream, std::uint64_t index)
{
    // splitmix64 finalizer over a position-weighted combination; the
    // +1 offsets keep (stream, index) = (0, 0) distinct from base.
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (stream + 1) +
                      0xBF58476D1CE4E5B9ull * (index + 1);
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z != 0 ? z : 0x9E3779B97F4A7C15ull;
}

WorkerPool::WorkerPool(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    // The caller participates in forEachIndex, so jobs_ - 1 threads
    // give jobs_ concurrent workers; jobs_ == 1 stays thread-free.
    threads_.reserve(jobs_ > 0 ? jobs_ - 1 : 0);
    for (unsigned t = 1; t < jobs_; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
WorkerPool::runOne(const std::function<void(std::size_t)> &fn,
                   std::uint64_t epoch)
{
    std::size_t i = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        if (epoch_ != epoch || next_ >= total_)
            return false;
        i = next_++;
    }
    try {
        fn(i);
    } catch (...) {
        std::lock_guard<std::mutex> lk(m_);
        if (!error_)
            error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(m_);
    if (--pending_ == 0)
        done_.notify_all();
    return true;
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::uint64_t epoch = 0;
        {
            std::unique_lock<std::mutex> lk(m_);
            wake_.wait(lk, [&] {
                return stop_ || (task_ != nullptr && next_ < total_);
            });
            if (stop_)
                return;
            fn = task_;
            epoch = epoch_;
        }
        while (runOne(*fn, epoch)) {
        }
    }
}

void
WorkerPool::forEachIndex(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        task_ = &fn;
        next_ = 0;
        total_ = n;
        pending_ = n;
        error_ = nullptr;
        epoch = ++epoch_;
    }
    wake_.notify_all();
    while (runOne(fn, epoch)) {
    }
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(m_);
        done_.wait(lk, [&] { return pending_ == 0; });
        task_ = nullptr;
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

std::vector<RunMetrics>
runConfigsParallel(const std::vector<SimJob> &batch, unsigned jobs,
                   hard::FaultInjector *injector)
{
    // Compile each distinct workload mix once for the whole batch
    // (trace files load and parse exactly once) and build one
    // immutable plan per job up front; workers and retry attempts
    // only instantiate.
    std::map<std::vector<std::string>,
             std::vector<trace::CompiledWorkload>>
        mixes;
    std::vector<SystemPlan> plans;
    plans.reserve(batch.size());
    for (const SimJob &job : batch) {
        auto it = mixes.find(job.workloads);
        if (it == mixes.end()) {
            std::vector<trace::CompiledWorkload> mix;
            mix.reserve(job.workloads.size());
            for (const std::string &name : job.workloads)
                mix.push_back(trace::compileWorkload(name));
            it = mixes.emplace(job.workloads, std::move(mix)).first;
        }
        plans.emplace_back(job.cfg, job.workloads, it->second);
    }
    return parallelMapRetry(
        batch.size(), jobs, kDefaultWorkerAttempts,
        [&](std::size_t i, unsigned attempt) {
            if (injector)
                injector->maybeWorkerFault(i, attempt);
            PlanOverrides ov;
            if (attempt > 0) {
                // A fresh RNG stream per attempt: replaying the exact
                // sequence that faulted would reproduce a genuinely
                // seed-dependent failure instead of recovering.
                ov.seed = deriveSeed(batch[i].cfg.seed,
                                     kRetrySeedStream, attempt);
            }
            const std::unique_ptr<System> system =
                plans[i].instantiate(ov);
            return runAndMeasure(*system, batch[i].cycles,
                                 batch[i].warmup);
        });
}

double
evaluateGaChild(const SystemPlan &plan, const ga::Genome &genome,
                std::uint64_t generation, std::size_t child,
                const std::vector<double> &alone_rate,
                Cycle epoch_cycles)
{
    const SystemConfig &cfg = plan.config();
    PlanOverrides ov;
    ov.seed = deriveSeed(cfg.seed, generation + 1, child);
    ov.reqBinsPerCore.emplace();
    ov.respBinsPerCore.emplace();
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        ov.reqBinsPerCore->push_back(gaReqBinsOf(cfg, genome, c));
        ov.respBinsPerCore->push_back(gaRespBinsOf(cfg, genome, c));
    }
    const std::unique_ptr<System> system = plan.instantiate(ov);
    system->run(epoch_cycles);

    double total = 0.0;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        ga::MiseSample s;
        s.alpha = system->coreAt(c).alpha();
        s.aloneRate = alone_rate[c];
        s.sharedRate = static_cast<double>(system->servedReads(c)) /
                       static_cast<double>(epoch_cycles);
        total += ga::miseSlowdown(s);
    }
    return -total / static_cast<double>(cfg.numCores);
}

std::vector<double>
evaluateGenerationParallel(const SystemPlan &plan,
                           const std::vector<ga::Genome> &children,
                           std::uint64_t generation,
                           const std::vector<double> &alone_rate,
                           Cycle epoch_cycles, unsigned jobs)
{
    camo_assert(alone_rate.size() == plan.config().numCores,
                "need one alone rate per core");
    camo_assert(epoch_cycles > 0, "epoch must be positive");
    return parallelMap(children.size(), jobs, [&](std::size_t child) {
        return evaluateGaChild(plan, children[child], generation, child,
                               alone_rate, epoch_cycles);
    });
}

std::vector<double>
evaluateGenerationParallel(const SystemConfig &cfg,
                           const std::vector<std::string> &workloads,
                           const std::vector<ga::Genome> &children,
                           std::uint64_t generation,
                           const std::vector<double> &alone_rate,
                           Cycle epoch_cycles, unsigned jobs)
{
    const SystemPlan plan(cfg, workloads);
    return evaluateGenerationParallel(plan, children, generation,
                                      alone_rate, epoch_cycles, jobs);
}

} // namespace camo::sim
