/**
 * @file
 * Compiled system plan: the build-once half of System construction.
 *
 * A sweep (or GA generation) instantiates the same machine hundreds
 * of times, varying only the seed and — for the GA — the shaper bin
 * configurations. Before this layer, every instantiation re-parsed
 * workload names, re-validated the configuration, and (for
 * trace-replay workloads) re-read and re-parsed the trace file.
 * SystemPlan hoists all of that: it validates the SystemConfig and
 * compiles every workload name exactly once (trace::CompiledWorkload,
 * which loads trace files eagerly and shares the parsed items
 * immutably), and instantiate() then builds a fresh System per run
 * from the pre-compiled pieces.
 *
 * Plan-built systems are bit-exact with directly-built ones (tests
 * pin this): the per-core seeds and address bases are derived by the
 * same formulas, and CompiledWorkload::instantiate reproduces
 * trace::makeWorkload exactly. Two deliberate differences are
 * invisible to results:
 *  - the tracer ring allocation is deferred until setEnabled(true)
 *    (sweeps never enable tracing; the eager 4 MB zero-init dominated
 *    construction cost);
 *  - hot-path containers draw from the System's arena in both paths
 *    (src/common/arena.h), so allocation counts are identical.
 *
 * A SystemPlan is immutable after construction and safe to share
 * across threads: instantiate() is const and every worker builds its
 * own System from it. See DESIGN.md §16.
 */

#ifndef CAMO_SIM_PLAN_H
#define CAMO_SIM_PLAN_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/camouflage/bin_config.h"
#include "src/sim/system.h"
#include "src/trace/workloads.h"

namespace camo::sim {

/**
 * Per-run knobs of SystemPlan::instantiate(). Everything the sweep
 * and GA loops vary between runs of one plan; unset fields keep the
 * plan's values.
 */
struct PlanOverrides
{
    /** Replaces SystemConfig::seed (sweep repetitions, GA children). */
    std::optional<std::uint64_t> seed;
    /** Replace the per-core shaper configurations (GA candidates).
     *  Size must be numCores or empty. */
    std::optional<std::vector<shaper::BinConfig>> reqBinsPerCore;
    std::optional<std::vector<shaper::BinConfig>> respBinsPerCore;
};

/** The compiled, immutable half of System construction. */
class SystemPlan
{
  public:
    /**
     * Validate `cfg` + `workloads` and compile every workload name.
     * @throws hard::ConfigError exactly where System's legacy ctor
     *         would (same messages), plus trace-load failures that
     *         previously surfaced at first instantiation.
     */
    SystemPlan(const SystemConfig &cfg,
               const std::vector<std::string> &workloads);
    explicit SystemPlan(const TopologyConfig &topo);

    /**
     * Reuse an already-compiled workload mix (runConfigsParallel
     * compiles each distinct mix once per batch and shares it across
     * the jobs that use it). `compiled` must be index-aligned with
     * `workloads`.
     */
    SystemPlan(const SystemConfig &cfg,
               std::vector<std::string> workloads,
               std::vector<trace::CompiledWorkload> compiled);

    const SystemConfig &config() const { return cfg_; }
    const std::vector<std::string> &workloads() const
    {
        return workloads_;
    }
    std::uint32_t numCores() const { return cfg_.numCores; }

    /** The compiled workload for core `i`. */
    const trace::CompiledWorkload &compiled(std::uint32_t i) const;

    /**
     * Build a fresh System from the plan. Every call returns an
     * independent machine; concurrent calls from different threads
     * are safe (the plan is only read).
     * @throws hard::ConfigError when an override is malformed (wrong
     *         per-core vector size).
     */
    std::unique_ptr<System> instantiate() const;
    std::unique_ptr<System>
    instantiate(const PlanOverrides &overrides) const;

  private:
    SystemConfig cfg_;
    std::vector<std::string> workloads_;
    std::vector<trace::CompiledWorkload> compiled_;
};

} // namespace camo::sim

#endif // CAMO_SIM_PLAN_H
