/**
 * @file
 * Multi-process sweep sharding: fork-per-shard execution of
 * independent simulation batches (camosim --shard-procs=N).
 *
 * Threads share one heap and one allocator; past a few workers the
 * sweep stops scaling on allocator and page-cache contention.
 * Sharding sidesteps that the way camosimd's crash isolation (PR 8)
 * does — with processes: the batch is split round-robin over N forked
 * children (shard s owns indices i with i % procs == s), each child
 * runs its subset with the ordinary in-process engine
 * (runConfigsParallel / evaluateGenerationParallel) and writes ONE
 * length-prefixed JSON frame (src/common/frame.h) on its pipe, then
 * _exit(0)s. The parent reassembles results by index.
 *
 * Determinism contract (DESIGN.md §16): a job's seed is a pure
 * function of the job — never of the shard layout — so results are
 * byte-identical across jobs=1 / threads=N / procs=N (tests pin
 * this). Doubles cross the pipe as their IEEE-754 bit patterns
 * (decimal uint64 strings), not as formatted decimals, so the
 * round-trip is exact. Each result frame is authenticated with
 * deriveSeed(base, kShardSeedStream, shard): a truncated, crossed, or
 * foreign frame is rejected instead of silently mis-assigned.
 *
 * Child failures: a child that dies (signal, _exit without a frame)
 * or reports an error surfaces as the matching hard:: error in the
 * parent — one bad shard fails the call, never the process.
 */

#ifndef CAMO_SIM_SHARD_H
#define CAMO_SIM_SHARD_H

#include <cstdint>
#include <vector>

#include "src/ga/genetic.h"
#include "src/sim/parallel.h"
#include "src/sim/plan.h"
#include "src/sim/runner.h"

namespace camo::sim {

/**
 * runConfigsParallel split over `procs` forked shards, `jobs` worker
 * threads inside each (0 = defaultJobs()). procs <= 1 (or a 1-job
 * batch) degrades to the in-process engine — same results either
 * way. Fault injectors do not cross fork boundaries; injector-driven
 * runs use procs == 1.
 */
std::vector<RunMetrics>
runConfigsSharded(const std::vector<SimJob> &batch, unsigned jobs,
                  unsigned procs);

/**
 * evaluateGenerationParallel split over `procs` forked shards (the
 * offline GA's --shard-procs mode). Child fitness values cross the
 * pipe bit-exactly; procs <= 1 degrades to the in-process engine.
 */
std::vector<double> evaluateGenerationSharded(
    const SystemPlan &plan, const std::vector<ga::Genome> &children,
    std::uint64_t generation, const std::vector<double> &alone_rate,
    Cycle epoch_cycles, unsigned jobs, unsigned procs);

} // namespace camo::sim

#endif // CAMO_SIM_SHARD_H
