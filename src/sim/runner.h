/**
 * @file
 * Experiment helpers shared by benches, examples, and tests: run a
 * configured system and summarize it, compute slowdowns between runs,
 * and the paper's online genetic-algorithm loop (Figure 8).
 */

#ifndef CAMO_SIM_RUNNER_H
#define CAMO_SIM_RUNNER_H

#include <string>
#include <vector>

#include "src/camouflage/bin_config.h"
#include "src/ga/genetic.h"
#include "src/obs/json.h"
#include "src/sim/system.h"

namespace camo::sim {

/** Per-core results of one simulation run. */
struct RunMetrics
{
    Cycle cycles = 0;
    std::vector<double> ipc;
    std::vector<std::uint64_t> retired;
    std::vector<std::uint64_t> servedReads;
    std::vector<double> avgReadLatency;
    std::vector<double> alpha;

    double throughput() const; ///< sum of per-core IPC
};

/** Run an already-built system for `cycles` and summarize it. */
RunMetrics runAndMeasure(System &system, Cycle cycles,
                         Cycle warmup = 0);

/** Build a system, run it, summarize it. */
RunMetrics runConfig(const SystemConfig &cfg,
                     const std::vector<std::string> &workloads,
                     Cycle cycles, Cycle warmup = 0);

/**
 * The summary document `camosim --stats-json` writes: run metadata
 * (mitigation, cycle count, seed, workload mix) plus the full
 * registered stats tree, a tracer-counters section when
 * `tracer_section` is set, and the interval series when interval
 * collection is enabled. One serializer shared by the CLI and the
 * golden-file regression tests, so both produce byte-identical
 * output.
 */
obs::json::Value summaryJson(const System &system,
                             const std::vector<std::string> &workloads,
                             bool tracer_section = false);

/**
 * Per-core slowdown of `test` relative to `baseline` (same workloads;
 * > 1 means slower under test). Computed from IPC.
 */
std::vector<double> slowdownVs(const RunMetrics &baseline,
                               const RunMetrics &test);

/** Maximum per-core slowdown: the fairness-sensitive summary. */
double maxSlowdownVs(const RunMetrics &baseline, const RunMetrics &test);

/**
 * Harmonic mean of per-core speedups (1/slowdown): the balanced
 * system-level summary (harmonic weighting punishes starving any
 * single core, unlike the arithmetic mean).
 */
double harmonicSpeedupVs(const RunMetrics &baseline,
                         const RunMetrics &test);

/**
 * Program a BinConfig whose credits reproduce a measured inter-arrival
 * histogram (Figs. 9/10: "the bin configuration is set the same as the
 * response distribution of w(ADVERSARY, astar)").
 *
 * @param monitor the measured stream (its histogram edges become the
 *        config's bin edges)
 * @param observed_cycles how long the monitor watched
 * @param period replenishment period of the new config
 * @param headroom multiplier on the measured rate (>1 adds slack)
 */
shaper::BinConfig binsFromMonitor(const shaper::DistributionMonitor &monitor,
                                  Cycle observed_cycles, Cycle period,
                                  double headroom = 1.0);

/**
 * Record a workload mix's *intrinsic* (unshaped) LLC-miss event
 * stream for core `core`: the X variable of the paper's SIV-B2 MI
 * methodology. Runs the mix with no mitigation and the same seed.
 */
std::vector<shaper::TrafficEvent>
unshapedIntrinsicEvents(const SystemConfig &cfg,
                        const std::vector<std::string> &workloads,
                        std::uint32_t core, Cycle cycles);

/** Result of the online GA configuration phase. */
struct OnlineGaResult
{
    /** Per-core tuned configurations (the paper's GA optimizes all
     *  programs' bins simultaneously). Assign these to
     *  SystemConfig::reqBinsPerCore / respBinsPerCore. */
    std::vector<shaper::BinConfig> reqBinsPerCore;
    std::vector<shaper::BinConfig> respBinsPerCore;
    /** Core 0's configs (convenience). */
    shaper::BinConfig reqBins;
    shaper::BinConfig respBins;
    double bestFitness = 0.0;          ///< -average MISE slowdown
    std::vector<double> generationBest;///< best fitness per generation
    std::uint64_t configPhaseCycles = 0;
    /** Fletcher-style E x log2(R) bound on what the CONFIG_PHASE's
     *  observable reconfigurations could have leaked. */
    double configPhaseLeakBoundBits = 0.0;
};

/**
 * Decode core `core`'s request-bin slice of a GA genome. Genome
 * layout: for each core, its request bins then (BDC only) its
 * response bins. Shared by the online and offline GA paths so a
 * genome means the same configuration in both.
 */
shaper::BinConfig gaReqBinsOf(const SystemConfig &cfg,
                              const ga::Genome &g, std::size_t core);

/** Decode core `core`'s response-bin slice (cfg.respBins verbatim
 *  when the mitigation shapes only requests). */
shaper::BinConfig gaRespBinsOf(const SystemConfig &cfg,
                               const ga::Genome &g, std::size_t core);

/**
 * The paper's Figure 8 online GA (CONFIG_PHASE): per generation,
 * first measure each core's alone service rate in highest-priority
 * mode, then evaluate each child bin-configuration for one epoch and
 * score it by -average MISE slowdown. Returns the best request and
 * response configurations for the RUN_PHASE.
 *
 * @pre cfg.mitigation is BDC, ReqC, or RespC (needs shapers).
 */
OnlineGaResult runOnlineGa(const SystemConfig &cfg,
                           const std::vector<std::string> &workloads,
                           const ga::GaConfig &ga_cfg,
                           Cycle epoch_cycles = 20000);

/**
 * Run the CONFIG_PHASE on an already-running system (used by
 * runOnlineGa and by the adaptive runtime at phase changes). The
 * system is left configured with the tuned per-core bins.
 */
OnlineGaResult tuneOnline(System &system, const SystemConfig &cfg,
                          const ga::GaConfig &ga_cfg,
                          Cycle epoch_cycles);

/**
 * Offline GA configuration search: same genome layout, seeding, and
 * MISE fitness as tuneOnline(), but every child is evaluated in a
 * *fresh* System whose seed derives from (cfg.seed, generation,
 * child index) -- see deriveSeed() in parallel.h. Evaluations are
 * therefore independent and order-free, so they fan across `jobs`
 * worker threads (0 = defaultJobs()) with results identical to
 * jobs == 1. Alone rates are measured once up front (fresh systems
 * have no phase drift to track, unlike the live online loop).
 *
 * The search compiles one SystemPlan for the whole run (workload
 * names parsed and trace files loaded once); every evaluation is a
 * cheap PlanOverrides instantiation. With shard_procs > 1 each
 * generation fans across that many forked processes
 * (src/sim/shard.h, camosim --shard-procs) — child seeds use global
 * child indices, so fitness values are byte-identical across
 * jobs=1 / threads=N / procs=N.
 *
 * configPhaseLeakBoundBits is 0: offline search happens before
 * deployment, so an observer of the running system sees no
 * reconfiguration sequence to learn from.
 *
 * @pre cfg.mitigation is BDC, ReqC, or RespC (needs shapers).
 */
OnlineGaResult runOfflineGa(const SystemConfig &cfg,
                            const std::vector<std::string> &workloads,
                            const ga::GaConfig &ga_cfg,
                            Cycle epoch_cycles = 20000,
                            unsigned jobs = 0,
                            unsigned shard_procs = 1);

/** Configuration of the adaptive RUN_PHASE (paper Figure 8 + SIV-C). */
struct AdaptiveConfig
{
    Cycle epochCycles = 20000;
    ga::GaConfig ga;                 ///< per-reconfiguration search
    double detectorThreshold = 0.5;  ///< relative rate deviation
    /**
     * Leakage budget: maximum reconfigurations allowed. Each one
     * leaks at most log2(population) x (children evaluated) bits via
     * the E x log R bound; the runtime refuses further adaptation
     * once the budget is spent.
     */
    std::uint32_t maxReconfigs = 4;
};

/** Result of an adaptive run. */
struct AdaptiveResult
{
    RunMetrics metrics;
    std::uint64_t reconfigurations = 0;
    std::uint64_t phaseChangesDetected = 0;
    std::vector<Cycle> reconfigAt; ///< cycle of each reconfiguration
    double leakBoundBits = 0.0;    ///< E x log2 R over all reconfigs
};

/**
 * The paper's full online operation: run under Camouflage, watch for
 * program phase changes (EWMA of per-core service rates), and rerun
 * the GA CONFIG_PHASE when one fires — up to a reconfiguration
 * (leakage) budget.
 */
AdaptiveResult runAdaptive(const SystemConfig &cfg,
                           const std::vector<std::string> &workloads,
                           Cycle total_cycles,
                           const AdaptiveConfig &adaptive);

} // namespace camo::sim

#endif // CAMO_SIM_RUNNER_H
