#include "src/sim/event_scheduler.h"

#include <algorithm>
#include <bit>

#include "src/common/logging.h"

namespace camo::sim {

void
EventScheduler::reset(std::size_t ids)
{
    buckets_.assign(kBuckets, {});
    nonEmpty_.assign(kBuckets / 64, 0);
    wake_.assign(ids, kNoCycle);
    dueScratch_.clear();
    seq_ = 0;
    scheduled_ = 0;
    cachedNext_ = kNoCycle;
    cacheValid_ = false;
}

void
EventScheduler::insert(std::uint32_t id, Cycle at)
{
    const std::size_t b = bucketOf(at);
    buckets_[b].push_back(Entry{at, seq_++, id});
    nonEmpty_[b >> 6] |= std::uint64_t{1} << (b & 63);
}

void
EventScheduler::markUnscheduled(std::uint32_t id)
{
    if (wake_[id] != kNoCycle) {
        wake_[id] = kNoCycle;
        --scheduled_;
    }
}

void
EventScheduler::scheduleAt(std::uint32_t id, Cycle at)
{
    if (at == kNoCycle)
        return;
    camo_assert(id < wake_.size(), "scheduleAt: id out of range");
    const Cycle cur = wake_[id];
    if (cur <= at)
        return; // already due no later than `at`
    if (cur == kNoCycle)
        ++scheduled_;
    wake_[id] = at;
    insert(id, at);
    // The global minimum can only move to `at` (it got earlier), so
    // the memo stays exact.
    if (cacheValid_ && at < cachedNext_)
        cachedNext_ = at;
}

void
EventScheduler::reschedule(std::uint32_t id, Cycle at)
{
    if (at == kNoCycle) {
        cancel(id);
        return;
    }
    camo_assert(id < wake_.size(), "reschedule: id out of range");
    const Cycle cur = wake_[id];
    if (cur == at)
        return;
    if (cur == kNoCycle)
        ++scheduled_;
    else if (cacheValid_ && cur == cachedNext_)
        cacheValid_ = false; // the old wake may have been the minimum
    wake_[id] = at;
    insert(id, at); // the old bucket entry goes stale; dropped lazily
    if (cacheValid_ && at < cachedNext_)
        cachedNext_ = at;
}

void
EventScheduler::cancel(std::uint32_t id)
{
    camo_assert(id < wake_.size(), "cancel: id out of range");
    if (wake_[id] == kNoCycle)
        return;
    if (cacheValid_ && wake_[id] == cachedNext_)
        cacheValid_ = false;
    markUnscheduled(id);
}

Cycle
EventScheduler::nextDueCycle() const
{
    if (scheduled_ == 0)
        return kNoCycle;
    if (cacheValid_)
        return cachedNext_;
    // Scan only buckets the bitmap marks as possibly occupied; prune
    // stale entries (superseded by a later reschedule/pop) on the way.
    Cycle best = kNoCycle;
    for (std::size_t w = 0; w < nonEmpty_.size(); ++w) {
        std::uint64_t bits = nonEmpty_[w];
        while (bits != 0) {
            const std::size_t b =
                (w << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            auto &bucket =
                const_cast<std::vector<Entry> &>(buckets_[b]);
            for (std::size_t i = 0; i < bucket.size();) {
                const Entry &e = bucket[i];
                if (wake_[e.id] != e.at) { // stale
                    bucket[i] = bucket.back();
                    bucket.pop_back();
                    continue;
                }
                best = std::min(best, e.at);
                ++i;
            }
            if (bucket.empty())
                const_cast<std::uint64_t &>(nonEmpty_[w]) &=
                    ~(std::uint64_t{1} << (b & 63));
        }
    }
    cachedNext_ = best;
    cacheValid_ = true;
    return best;
}

void
EventScheduler::popDue(Cycle cycle, std::vector<std::uint32_t> &out)
{
    out.clear();
    const std::size_t b = bucketOf(cycle);
    auto &bucket = buckets_[b];
    // Collect live entries due now; drop stale ones; keep the rest
    // (same bucket, different calendar year).
    static_assert(sizeof(Entry) <= 24, "Entry stays pop-cheap");
    std::vector<Entry> &due = dueScratch_;
    due.clear();
    for (std::size_t i = 0; i < bucket.size();) {
        const Entry &e = bucket[i];
        if (wake_[e.id] != e.at) { // stale
            bucket[i] = bucket.back();
            bucket.pop_back();
            continue;
        }
        if (e.at == cycle) {
            due.push_back(e);
            markUnscheduled(e.id);
            bucket[i] = bucket.back();
            bucket.pop_back();
            continue;
        }
        ++i;
    }
    if (bucket.empty())
        nonEmpty_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (cacheValid_ && cachedNext_ == cycle)
        cacheValid_ = false;
    std::sort(due.begin(), due.end(),
              [](const Entry &a, const Entry &b_) {
                  return a.seq < b_.seq;
              });
    out.reserve(due.size());
    for (const Entry &e : due)
        out.push_back(e.id);
}

} // namespace camo::sim
