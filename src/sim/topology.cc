#include "src/sim/topology.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/sim/presets.h"
#include "src/trace/workloads.h"

namespace camo::sim {

namespace {

using obs::json::Value;

[[noreturn]] void
fail(const std::string &key, const std::string &what)
{
    throw hard::ConfigError("topology: '" + key + "' " + what);
}

double
asNumber(const Value &v, const std::string &key)
{
    if (!v.isNumber())
        fail(key, "must be a number");
    return v.asNumber();
}

std::uint64_t
asU64(const Value &v, const std::string &key)
{
    const double d = asNumber(v, key);
    if (d < 0 || d != std::floor(d))
        fail(key, "must be a non-negative integer");
    return static_cast<std::uint64_t>(d);
}

bool
asBool(const Value &v, const std::string &key)
{
    if (!v.isBool())
        fail(key, "must be a boolean");
    return v.asBool();
}

std::string
asString(const Value &v, const std::string &key)
{
    if (!v.isString())
        fail(key, "must be a string");
    return v.asString();
}

/** Parse {edges, credits, replenish_period} into a BinConfig. */
shaper::BinConfig
parseBins(const Value &v, const std::string &key)
{
    if (!v.isObject())
        fail(key, "must be an object");
    shaper::BinConfig bins;
    for (const auto &[k, val] : v.asObject()) {
        const std::string path = key + "." + k;
        if (k == "edges") {
            if (!val.isArray())
                fail(path, "must be an array");
            for (const Value &e : val.asArray())
                bins.edges.push_back(asU64(e, path));
        } else if (k == "credits") {
            if (!val.isArray())
                fail(path, "must be an array");
            for (const Value &c : val.asArray()) {
                bins.credits.push_back(
                    static_cast<std::uint32_t>(asU64(c, path)));
            }
        } else if (k == "replenish_period") {
            bins.replenishPeriod = asU64(val, path);
        } else {
            fail(path, "is not a recognized key");
        }
    }
    bins.validate(shaper::ValidatePolicy::Drainable);
    return bins;
}

/** Parse {enabled, act_threshold, rfm_dram_cycles} into the
 *  RowHammer-defense config (src/dram/rowhammer.h). */
void
parseRowHammer(const Value &v, dram::RowHammerConfig &rh)
{
    if (!v.isObject())
        fail("rowhammer", "must be an object");
    for (const auto &[k, val] : v.asObject()) {
        const std::string path = "rowhammer." + k;
        if (k == "enabled") {
            rh.enabled = asBool(val, path);
        } else if (k == "act_threshold") {
            const std::uint64_t t = asU64(val, path);
            if (t < 1)
                fail(path, "must be >= 1");
            rh.actThreshold = static_cast<std::uint32_t>(t);
        } else if (k == "rfm_dram_cycles") {
            const std::uint64_t c = asU64(val, path);
            if (c < 1)
                fail(path, "must be >= 1");
            rh.rfmDramCycles = c;
        } else {
            fail(path, "is not a recognized key");
        }
    }
}

void
parseNoc(const Value &v, noc::ChannelConfig &noc)
{
    if (!v.isObject())
        fail("noc", "must be an object");
    for (const auto &[k, val] : v.asObject()) {
        const std::string path = "noc." + k;
        if (k == "latency")
            noc.latency = static_cast<std::uint32_t>(asU64(val, path));
        else if (k == "ingress_cap")
            noc.ingressCap = static_cast<std::uint32_t>(asU64(val, path));
        else if (k == "egress_cap")
            noc.egressCap = static_cast<std::uint32_t>(asU64(val, path));
        else
            fail(path, "is not a recognized key");
    }
}

} // namespace

std::optional<Mitigation>
mitigationFromName(const std::string &name)
{
    if (name == "none") return Mitigation::None;
    if (name == "cs") return Mitigation::CS;
    if (name == "reqc") return Mitigation::ReqC;
    if (name == "respc") return Mitigation::RespC;
    if (name == "bdc") return Mitigation::BDC;
    if (name == "tp") return Mitigation::TP;
    if (name == "fs") return Mitigation::FS;
    return std::nullopt;
}

TopologyConfig
topologyFromJson(const Value &doc)
{
    if (!doc.isObject())
        throw hard::ConfigError(
            "topology: document root must be a JSON object");

    TopologyConfig topo;
    topo.system = paperConfig();

    std::optional<std::uint32_t> cores;
    std::optional<std::string> replicated;
    std::vector<std::uint64_t> shape;
    bool haveShape = false;

    for (const auto &[k, v] : doc.asObject()) {
        if (k == "cores") {
            const std::uint64_t n = asU64(v, k);
            if (n < 1)
                fail(k, "must be >= 1");
            cores = static_cast<std::uint32_t>(n);
        } else if (k == "channels") {
            const std::uint64_t n = asU64(v, k);
            if (n < 1)
                fail(k, "must be >= 1");
            topo.system.mc.org.channels =
                static_cast<std::uint32_t>(n);
        } else if (k == "mitigation") {
            const std::string name = asString(v, k);
            const auto m = mitigationFromName(name);
            if (!m) {
                fail(k, "'" + name +
                            "' is unknown (expected none, cs, reqc, "
                            "respc, bdc, tp, or fs)");
            }
            topo.system.mitigation = *m;
        } else if (k == "seed") {
            topo.system.seed = asU64(v, k);
        } else if (k == "workloads") {
            if (!v.isArray())
                fail(k, "must be an array of workload names");
            for (const Value &w : v.asArray())
                topo.workloads.push_back(asString(w, k));
        } else if (k == "workload") {
            replicated = asString(v, k);
        } else if (k == "shape_cores") {
            if (!v.isArray())
                fail(k, "must be an array of core indices");
            haveShape = true;
            for (const Value &c : v.asArray())
                shape.push_back(asU64(c, k));
        } else if (k == "cs_interval") {
            topo.system.csInterval = asU64(v, k);
        } else if (k == "fake_traffic") {
            topo.system.fakeTraffic = asBool(v, k);
        } else if (k == "randomize_timing") {
            topo.system.randomizeTiming = asBool(v, k);
        } else if (k == "fake_sequential") {
            topo.system.fakeSequential = asBool(v, k);
        } else if (k == "fake_write_frac") {
            const double f = asNumber(v, k);
            if (f < 0.0 || f > 1.0)
                fail(k, "must be in [0, 1]");
            topo.system.fakeWriteFrac = f;
        } else if (k == "fast_forward") {
            topo.system.fastForward = asBool(v, k);
        } else if (k == "noc") {
            parseNoc(v, topo.system.noc);
        } else if (k == "rowhammer") {
            parseRowHammer(v, topo.system.mc.rowhammer);
        } else if (k == "req_bins") {
            topo.system.reqBins = parseBins(v, k);
        } else if (k == "resp_bins") {
            topo.system.respBins = parseBins(v, k);
        } else {
            fail(k, "is not a recognized key");
        }
    }

    // Resolve core count and workload placement.
    if (!topo.workloads.empty() && replicated)
        fail("workload", "conflicts with 'workloads'");
    if (topo.workloads.empty()) {
        if (!replicated) {
            throw hard::ConfigError(
                "topology: need 'workloads' (one per core) or "
                "'workload' (one name for all cores)");
        }
        topo.workloads.assign(cores.value_or(1), *replicated);
    }
    if (cores && *cores != topo.workloads.size()) {
        fail("cores",
             "is " + std::to_string(*cores) + " but 'workloads' lists " +
                 std::to_string(topo.workloads.size()));
    }
    topo.system.numCores =
        static_cast<std::uint32_t>(topo.workloads.size());
    for (const auto &w : topo.workloads) {
        if (!trace::isKnownWorkload(w))
            fail("workloads", "names unknown workload '" + w + "'");
    }

    if (haveShape) {
        topo.system.shapeCore.assign(topo.system.numCores, false);
        for (const std::uint64_t c : shape) {
            if (c >= topo.system.numCores) {
                fail("shape_cores",
                     "index " + std::to_string(c) +
                         " is out of range (have " +
                         std::to_string(topo.system.numCores) +
                         " cores)");
            }
            topo.system.shapeCore[static_cast<std::size_t>(c)] = true;
        }
    }
    return topo;
}

TopologyConfig
parseTopology(const std::string &text)
{
    auto doc = obs::json::tryParse(text);
    if (!doc)
        throw hard::ConfigError("topology: malformed JSON");
    return topologyFromJson(*doc);
}

TopologyConfig
loadTopology(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw hard::ConfigError("topology: cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return parseTopology(ss.str());
}

} // namespace camo::sim
