#include "src/sim/plan.h"

#include "src/common/logging.h"

namespace camo::sim {

SystemPlan::SystemPlan(const SystemConfig &cfg,
                       const std::vector<std::string> &workloads)
    : cfg_(cfg), workloads_(workloads)
{
    validateSystemConfig(cfg_, workloads_.size());
    compiled_.reserve(workloads_.size());
    for (const std::string &name : workloads_)
        compiled_.push_back(trace::compileWorkload(name));
}

SystemPlan::SystemPlan(const TopologyConfig &topo)
    : SystemPlan(topo.system, topo.workloads)
{
}

SystemPlan::SystemPlan(const SystemConfig &cfg,
                       std::vector<std::string> workloads,
                       std::vector<trace::CompiledWorkload> compiled)
    : cfg_(cfg), workloads_(std::move(workloads)),
      compiled_(std::move(compiled))
{
    validateSystemConfig(cfg_, workloads_.size());
    camo_assert(compiled_.size() == workloads_.size(),
                "compiled mix must align with workload names");
}

const trace::CompiledWorkload &
SystemPlan::compiled(std::uint32_t i) const
{
    camo_assert(i < compiled_.size(), "core index out of range");
    return compiled_[i];
}

std::unique_ptr<System>
SystemPlan::instantiate() const
{
    return instantiate(PlanOverrides{});
}

std::unique_ptr<System>
SystemPlan::instantiate(const PlanOverrides &overrides) const
{
    return std::make_unique<System>(*this, overrides);
}

} // namespace camo::sim
