/**
 * @file
 * The simulation kernel's component boundary.
 *
 * Every block of the simulated machine — cores, caches, shapers,
 * channels, memory controllers, whole subsystems, and the glue
 * stations the System topology builds from them — implements
 * sim::Component. The System drives one iteration over an ordered
 * ComponentGraph for *all* cross-cutting concerns: per-cycle ticking,
 * the idle fast-forward lower bound, batched idle-cycle accounting,
 * stat registration, and tracer / fault-injector / checker
 * attachment. Adding a component to the topology therefore requires
 * zero edits to any of those plumbing paths.
 */

#ifndef CAMO_SIM_COMPONENT_H
#define CAMO_SIM_COMPONENT_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace camo::obs {
class Tracer;
class StatRegistry;
} // namespace camo::obs

namespace camo::hard {
class FaultInjector;
class CheckerSet;
} // namespace camo::hard

namespace camo::sim {

/**
 * Receives wakeup requests from components (and from wires that have
 * a subscribed consumer). The System's event kernel implements this:
 * it resolves the request against the in-flight cycle (a wake for the
 * cycle currently being processed lands in the due set if the target
 * has not run yet this cycle, or on the next cycle if it has — the
 * same visibility order the topology-ordered tick loop gave) and
 * otherwise forwards to the EventScheduler calendar.
 */
class WakeSink
{
  public:
    virtual ~WakeSink() = default;

    /** Run `id` no later than `at` (min-merge; kNoCycle = no-op). */
    virtual void wakeAt(std::uint32_t id, Cycle at) = 0;

    /** Replace `id`'s pending wakeup with `at` (kNoCycle cancels). */
    virtual void rescheduleAt(std::uint32_t id, Cycle at) = 0;
};

/**
 * One block of the simulated machine.
 *
 * The cycle-advancement contract:
 *  - tick(now) advances the component by one CPU cycle. Within a
 *    processed cycle, components run in topology order.
 *  - nextEventCycle(now, from) returns the earliest cycle >= `from`
 *    at which tick() could do observable work, or kNoCycle if none is
 *    possible without new input. Cycles strictly before the returned
 *    value are provably idle. The default — always `from` — is the
 *    trivially sound bound (never fast-forward past this component).
 *  - skipIdleCycles(n) batch-applies the accounting that `n` tick()
 *    calls in the current (provably idle) state would have produced.
 *    Must be bit-exact with ticking; the default accounts nothing.
 *
 * Self-scheduling: under the event-driven kernel each component is
 * attached to a WakeSink and owns its wakeups. After every tick the
 * kernel re-arms the component from its nextEventCycle() bound; a
 * component (or a wire delivering into it) can pull that wakeup
 * earlier at any time with scheduleAt(). Because scheduling is
 * min-merge and ticking a provably-idle cycle is bit-exact with
 * skipping it, spurious extra wakeups are always safe — only a
 * *missed* wakeup (a bound that overshoots the next observable
 * event) can change behaviour.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component();

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return name_; }

    // ----- self-scheduling (event-driven kernel) -------------------

    /** Attach this component to the scheduler `sink` as `id`;
     *  nullptr detaches. */
    void
    attachWakeSink(WakeSink *sink, std::uint32_t id)
    {
        wakeSink_ = sink;
        wakeId_ = id;
    }

    std::uint32_t wakeId() const { return wakeId_; }

    /** Request a wakeup no later than `at` (min-merge; no-op when
     *  detached or `at` == kNoCycle). */
    void
    scheduleAt(Cycle at)
    {
        if (wakeSink_ != nullptr)
            wakeSink_->wakeAt(wakeId_, at);
    }

    /** Replace any pending wakeup with `at` (kNoCycle cancels). */
    void
    reschedule(Cycle at)
    {
        if (wakeSink_ != nullptr)
            wakeSink_->rescheduleAt(wakeId_, at);
    }

    /** Advance one CPU cycle. */
    virtual void tick(Cycle now) { (void)now; }

    /** Earliest cycle >= `from` with possible observable work (see
     *  class comment). `now` is the current cycle (`from` == now + 1
     *  in the System loop). */
    virtual Cycle
    nextEventCycle(Cycle now, Cycle from) const
    {
        (void)now;
        return from;
    }

    /** Account `n` skipped provably-idle cycles. */
    virtual void skipIdleCycles(Cycle n) { (void)n; }

    /** Flush buffered work at end of run (best effort; optional). */
    virtual void drain(Cycle now) { (void)now; }

    /** Clear epoch counters / return to a just-built observable
     *  state. Structural state (queues, RNG streams) is kept. */
    virtual void reset() {}

    // ----- attachment points (cross-cutting fan-out) ---------------

    /** Observability hook; nullptr detaches. */
    virtual void attachTracer(obs::Tracer *tracer) { (void)tracer; }

    /** Fault-injection hook; nullptr detaches. */
    virtual void
    attachInjector(hard::FaultInjector *injector)
    {
        (void)injector;
    }

    /** Runtime invariant-checker hook; nullptr detaches. */
    virtual void
    attachCheckers(hard::CheckerSet *checkers)
    {
        (void)checkers;
    }

    /** Register stat groups under this component's dotted paths. */
    virtual void
    registerStats(obs::StatRegistry &reg) const
    {
        (void)reg;
    }

  private:
    std::string name_;
    WakeSink *wakeSink_ = nullptr;
    std::uint32_t wakeId_ = 0;
};

/**
 * An ordered component graph: owns its components and fans every
 * kernel concern out across them in one iteration. Attachments are
 * sticky — a component added after attachTracer()/attachInjector()/
 * attachCheckers() receives the current attachment immediately.
 */
class ComponentGraph
{
  public:
    ComponentGraph() = default;

    ComponentGraph(const ComponentGraph &) = delete;
    ComponentGraph &operator=(const ComponentGraph &) = delete;

    /** Append `c` to the tick order; returns the borrowed pointer. */
    Component *add(std::unique_ptr<Component> c);

    /** Append an externally-owned component to the tick order. The
     *  caller guarantees it outlives this graph. */
    Component *add(Component *borrowed);

    /** Construct a component in place at the end of the tick order. */
    template <typename T, typename... Args>
    T *
    emplace(Args &&...args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = owned.get();
        add(std::move(owned));
        return raw;
    }

    /** Components in tick order. */
    const std::vector<Component *> &order() const { return order_; }
    std::size_t size() const { return order_.size(); }

    /** First component with this name, or nullptr. */
    Component *find(const std::string &name) const;

    /** Tick every component in topology order. */
    void
    tick(Cycle now)
    {
        for (Component *c : order_)
            c->tick(now);
    }

    /** Fold of nextEventCycle over the graph (min across
     *  components; early-out at `from`). */
    Cycle nextEventCycle(Cycle now, Cycle from) const;

    void skipIdleCycles(Cycle n);
    void drain(Cycle now);
    void reset();

    void attachTracer(obs::Tracer *tracer);
    void attachInjector(hard::FaultInjector *injector);
    void attachCheckers(hard::CheckerSet *checkers);
    void registerStats(obs::StatRegistry &reg) const;

  private:
    std::vector<std::unique_ptr<Component>> owned_;
    std::vector<Component *> order_;

    // Sticky attachments, replayed onto late-added components.
    obs::Tracer *tracer_ = nullptr;
    hard::FaultInjector *injector_ = nullptr;
    hard::CheckerSet *checkers_ = nullptr;
    bool tracerSet_ = false;
    bool injectorSet_ = false;
    bool checkersSet_ = false;
};

} // namespace camo::sim

#endif // CAMO_SIM_COMPONENT_H
