/**
 * @file
 * The simulation kernel's component boundary.
 *
 * Every block of the simulated machine — cores, caches, shapers,
 * channels, memory controllers, whole subsystems, and the glue
 * stations the System topology builds from them — implements
 * sim::Component. The System drives one iteration over an ordered
 * ComponentGraph for *all* cross-cutting concerns: per-cycle ticking,
 * the idle fast-forward lower bound, batched idle-cycle accounting,
 * stat registration, and tracer / fault-injector / checker
 * attachment. Adding a component to the topology therefore requires
 * zero edits to any of those plumbing paths.
 */

#ifndef CAMO_SIM_COMPONENT_H
#define CAMO_SIM_COMPONENT_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace camo::obs {
class Tracer;
class StatRegistry;
} // namespace camo::obs

namespace camo::hard {
class FaultInjector;
class CheckerSet;
} // namespace camo::hard

namespace camo::sim {

/**
 * One block of the simulated machine.
 *
 * The cycle-advancement contract:
 *  - tick(now) advances the component by one CPU cycle. Components
 *    are ticked in topology order, once per cycle.
 *  - nextEventCycle(now, from) returns the earliest cycle >= `from`
 *    at which tick() could do observable work, or kNoCycle if none is
 *    possible without new input. Cycles strictly before the returned
 *    value are provably idle. The default — always `from` — is the
 *    trivially sound bound (never fast-forward past this component).
 *  - skipIdleCycles(n) batch-applies the accounting that `n` tick()
 *    calls in the current (provably idle) state would have produced.
 *    Must be bit-exact with ticking; the default accounts nothing.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component();

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return name_; }

    /** Advance one CPU cycle. */
    virtual void tick(Cycle now) { (void)now; }

    /** Earliest cycle >= `from` with possible observable work (see
     *  class comment). `now` is the current cycle (`from` == now + 1
     *  in the System loop). */
    virtual Cycle
    nextEventCycle(Cycle now, Cycle from) const
    {
        (void)now;
        return from;
    }

    /** Account `n` skipped provably-idle cycles. */
    virtual void skipIdleCycles(Cycle n) { (void)n; }

    /** Flush buffered work at end of run (best effort; optional). */
    virtual void drain(Cycle now) { (void)now; }

    /** Clear epoch counters / return to a just-built observable
     *  state. Structural state (queues, RNG streams) is kept. */
    virtual void reset() {}

    // ----- attachment points (cross-cutting fan-out) ---------------

    /** Observability hook; nullptr detaches. */
    virtual void attachTracer(obs::Tracer *tracer) { (void)tracer; }

    /** Fault-injection hook; nullptr detaches. */
    virtual void
    attachInjector(hard::FaultInjector *injector)
    {
        (void)injector;
    }

    /** Runtime invariant-checker hook; nullptr detaches. */
    virtual void
    attachCheckers(hard::CheckerSet *checkers)
    {
        (void)checkers;
    }

    /** Register stat groups under this component's dotted paths. */
    virtual void
    registerStats(obs::StatRegistry &reg) const
    {
        (void)reg;
    }

  private:
    std::string name_;
};

/**
 * An ordered component graph: owns its components and fans every
 * kernel concern out across them in one iteration. Attachments are
 * sticky — a component added after attachTracer()/attachInjector()/
 * attachCheckers() receives the current attachment immediately.
 */
class ComponentGraph
{
  public:
    ComponentGraph() = default;

    ComponentGraph(const ComponentGraph &) = delete;
    ComponentGraph &operator=(const ComponentGraph &) = delete;

    /** Append `c` to the tick order; returns the borrowed pointer. */
    Component *add(std::unique_ptr<Component> c);

    /** Append an externally-owned component to the tick order. The
     *  caller guarantees it outlives this graph. */
    Component *add(Component *borrowed);

    /** Construct a component in place at the end of the tick order. */
    template <typename T, typename... Args>
    T *
    emplace(Args &&...args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = owned.get();
        add(std::move(owned));
        return raw;
    }

    /** Components in tick order. */
    const std::vector<Component *> &order() const { return order_; }
    std::size_t size() const { return order_.size(); }

    /** First component with this name, or nullptr. */
    Component *find(const std::string &name) const;

    /** Tick every component in topology order. */
    void
    tick(Cycle now)
    {
        for (Component *c : order_)
            c->tick(now);
    }

    /** Fold of nextEventCycle over the graph (min across
     *  components; early-out at `from`). */
    Cycle nextEventCycle(Cycle now, Cycle from) const;

    void skipIdleCycles(Cycle n);
    void drain(Cycle now);
    void reset();

    void attachTracer(obs::Tracer *tracer);
    void attachInjector(hard::FaultInjector *injector);
    void attachCheckers(hard::CheckerSet *checkers);
    void registerStats(obs::StatRegistry &reg) const;

  private:
    std::vector<std::unique_ptr<Component>> owned_;
    std::vector<Component *> order_;

    // Sticky attachments, replayed onto late-added components.
    obs::Tracer *tracer_ = nullptr;
    hard::FaultInjector *injector_ = nullptr;
    hard::CheckerSet *checkers_ = nullptr;
    bool tracerSet_ = false;
    bool injectorSet_ = false;
    bool checkersSet_ = false;
};

} // namespace camo::sim

#endif // CAMO_SIM_COMPONENT_H
