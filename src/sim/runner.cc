#include "src/sim/runner.h"

#include <algorithm>

#include "src/camouflage/phase_detector.h"

#include "src/common/logging.h"
#include "src/ga/mise.h"
#include "src/hard/error.h"
#include "src/security/leakage_bound.h"
#include "src/sim/parallel.h"
#include "src/sim/plan.h"
#include "src/sim/shard.h"

namespace camo::sim {

namespace {

/**
 * Seed candidates 0/1 with the naive baselines so the GA never
 * regresses below them (elitism keeps them alive): a half-budget
 * uniform spread (fakes fill unused credits, so frugal is usually
 * closer to the optimum than the cap) and a front-loaded (bursty)
 * full-budget ramp.
 */
void
seedBaselineCandidates(ga::GeneticOptimizer &optimizer,
                       std::size_t genome_len, std::size_t bins)
{
    const ga::GaConfig &gc = optimizer.config();
    const auto per_bin = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, gc.maxTotalCredits / (2 * bins)));
    ga::Genome uniform(genome_len, per_bin);
    optimizer.seedCandidate(0, std::move(uniform));
    ga::Genome ramp(genome_len, 0);
    for (std::size_t seg = 0; seg < genome_len / bins; ++seg) {
        std::uint32_t remaining = gc.maxTotalCredits;
        for (std::size_t i = 0; i < bins && remaining > 0; ++i) {
            const auto c =
                std::min(gc.maxGeneValue,
                         std::max<std::uint32_t>(1, remaining / 2));
            ramp[seg * bins + i] = c;
            remaining -= c;
        }
    }
    if (gc.populationSize > 1)
        optimizer.seedCandidate(1, std::move(ramp));
}

} // namespace

double
RunMetrics::throughput() const
{
    double sum = 0.0;
    for (const double v : ipc)
        sum += v;
    return sum;
}

RunMetrics
runAndMeasure(System &system, Cycle cycles, Cycle warmup)
{
    if (warmup > 0) {
        system.run(warmup);
        system.clearEpochCounters();
    }
    system.run(cycles);

    RunMetrics m;
    m.cycles = cycles;
    for (std::uint32_t i = 0; i < system.numCores(); ++i) {
        const auto &core = system.coreAt(i);
        m.ipc.push_back(core.ipc());
        m.retired.push_back(core.retired());
        m.servedReads.push_back(system.servedReads(i));
        m.avgReadLatency.push_back(system.avgReadLatency(i));
        m.alpha.push_back(core.alpha());
    }
    return m;
}

RunMetrics
runConfig(const SystemConfig &cfg,
          const std::vector<std::string> &workloads, Cycle cycles,
          Cycle warmup)
{
    System system(cfg, workloads);
    return runAndMeasure(system, cycles, warmup);
}

std::vector<double>
slowdownVs(const RunMetrics &baseline, const RunMetrics &test)
{
    camo_assert(baseline.ipc.size() == test.ipc.size(),
                "mismatched core counts");
    std::vector<double> slow;
    slow.reserve(baseline.ipc.size());
    for (std::size_t i = 0; i < baseline.ipc.size(); ++i) {
        slow.push_back(test.ipc[i] > 0.0 ? baseline.ipc[i] / test.ipc[i]
                                         : 1.0);
    }
    return slow;
}

double
maxSlowdownVs(const RunMetrics &baseline, const RunMetrics &test)
{
    double worst = 1.0;
    for (const double s : slowdownVs(baseline, test))
        worst = std::max(worst, s);
    return worst;
}

double
harmonicSpeedupVs(const RunMetrics &baseline, const RunMetrics &test)
{
    const auto slow = slowdownVs(baseline, test);
    double denom = 0.0;
    for (const double s : slow)
        denom += s; // 1 / (1/s) summed == sum of slowdowns
    return denom > 0.0 ? static_cast<double>(slow.size()) / denom : 0.0;
}

std::vector<shaper::TrafficEvent>
unshapedIntrinsicEvents(const SystemConfig &cfg,
                        const std::vector<std::string> &workloads,
                        std::uint32_t core, Cycle cycles)
{
    SystemConfig ref = cfg;
    ref.mitigation = Mitigation::None;
    ref.recordTraffic = true;
    System system(ref, workloads);
    system.run(cycles);
    return system.intrinsicMonitor(core).events();
}

shaper::BinConfig
binsFromMonitor(const shaper::DistributionMonitor &monitor,
                Cycle observed_cycles, Cycle period, double headroom)
{
    if (observed_cycles == 0 || period == 0) {
        throw hard::ConfigError(
            detail::fmt("binsFromMonitor needs positive cycle counts "
                        "(observed_cycles=",
                        observed_cycles, ", period=", period, ")"));
    }
    if (headroom <= 0.0) {
        throw hard::ConfigError(detail::fmt(
            "binsFromMonitor headroom must be positive, got ",
            headroom));
    }
    const Histogram &hist = monitor.histogram();

    shaper::BinConfig cfg;
    cfg.replenishPeriod = period;
    for (std::size_t i = 0; i < hist.numBins(); ++i)
        cfg.edges.push_back(hist.lowerEdge(i));

    const double rate = static_cast<double>(hist.totalCount()) /
                        static_cast<double>(observed_cycles);
    const double total = rate * static_cast<double>(period) * headroom;
    std::uint64_t granted = 0;
    for (const double p : hist.pmf()) {
        const auto c = static_cast<std::uint32_t>(p * total + 0.5);
        cfg.credits.push_back(
            std::min(c, shaper::kMaxCreditsPerBin));
        granted += cfg.credits.back();
    }
    if (granted == 0)
        cfg.credits[0] = 1; // stay valid for silent streams
    cfg.validate();
    return cfg;
}

shaper::BinConfig
gaReqBinsOf(const SystemConfig &cfg, const ga::Genome &g,
            std::size_t core)
{
    const std::size_t bins = cfg.reqBins.numBins();
    const std::size_t slices =
        cfg.mitigation == Mitigation::BDC ? 2 : 1;
    return ga::genomeToBinConfig(g, core * slices * bins, cfg.reqBins);
}

shaper::BinConfig
gaRespBinsOf(const SystemConfig &cfg, const ga::Genome &g,
             std::size_t core)
{
    if (cfg.mitigation != Mitigation::BDC)
        return cfg.respBins;
    const std::size_t bins = cfg.reqBins.numBins();
    return ga::genomeToBinConfig(g, core * 2 * bins + bins,
                                 cfg.respBins);
}

OnlineGaResult
runOnlineGa(const SystemConfig &cfg,
            const std::vector<std::string> &workloads,
            const ga::GaConfig &ga_cfg, Cycle epoch_cycles)
{
    System system(cfg, workloads);
    return tuneOnline(system, cfg, ga_cfg, epoch_cycles);
}

OnlineGaResult
tuneOnline(System &system, const SystemConfig &cfg,
           const ga::GaConfig &ga_cfg, Cycle epoch_cycles)
{
    if (cfg.mitigation != Mitigation::BDC &&
        cfg.mitigation != Mitigation::ReqC &&
        cfg.mitigation != Mitigation::RespC) {
        throw hard::ConfigError(
            detail::fmt("online GA needs a Camouflage mitigation "
                        "(ReqC, RespC, or BDC), got ",
                        mitigationName(cfg.mitigation)));
    }
    const bool both = cfg.mitigation == Mitigation::BDC;
    const std::size_t bins = cfg.reqBins.numBins();
    const std::size_t slices = both ? 2 : 1;

    const std::size_t cores = system.numCores();
    // Genome layout: for each core, its request bins then (for BDC)
    // its response bins; each 10-gene slice carries its own budget.
    const std::size_t genome_len = cores * slices * bins;

    ga::GaConfig ga_cfg_seg = ga_cfg;
    ga_cfg_seg.budgetSegmentLen = bins;
    ga::GeneticOptimizer optimizer(ga_cfg_seg, genome_len,
                                   cfg.seed + 17);
    seedBaselineCandidates(optimizer, genome_len, bins);

    // Decode a genome into per-core request/response configurations.
    auto req_of = [&](const ga::Genome &g, std::size_t core) {
        return gaReqBinsOf(cfg, g, core);
    };
    auto resp_of = [&](const ga::Genome &g, std::size_t core) {
        return gaRespBinsOf(cfg, g, core);
    };
    auto apply = [&](const ga::Genome &g) {
        for (std::uint32_t c = 0; c < cores; ++c)
            system.reconfigureShaper(c, req_of(g, c), resp_of(g, c));
    };

    OnlineGaResult result;

    // Wide-open shaper configuration for alone-rate measurement: the
    // MISE "alone" service rate must reflect the unshaped program.
    shaper::BinConfig open = cfg.reqBins;
    for (auto &c : open.credits)
        c = shaper::kMaxCreditsPerBin;

    std::vector<double> alone_rate(cores, 0.0);

    for (std::size_t gen = 0; gen < ga_cfg.generations; ++gen) {
        // Highest-priority-mode epochs: each program's alone rate,
        // with shapers effectively disabled -- including their fake
        // generators, which would otherwise flood the channel when
        // handed a wide-open credit set.
        system.reconfigureShapers(open, open);
        system.setFakeTraffic(false);
        for (std::uint32_t c = 0; c < cores; ++c) {
            system.memory().setHighestPriorityCore(c);
            system.clearEpochCounters();
            system.run(epoch_cycles);
            alone_rate[c] = static_cast<double>(system.servedReads(c)) /
                            static_cast<double>(epoch_cycles);
        }
        system.memory().setHighestPriorityCore(std::nullopt);
        system.setFakeTraffic(cfg.fakeTraffic);

        // Evaluate each child configuration for one epoch.
        double generation_best = -1e300;
        for (std::size_t child = 0;
             child < optimizer.population().size(); ++child) {
            apply(optimizer.population()[child]);
            system.clearEpochCounters();
            system.run(epoch_cycles);

            double total = 0.0;
            for (std::uint32_t c = 0; c < cores; ++c) {
                ga::MiseSample s;
                s.alpha = system.coreAt(c).alpha();
                s.aloneRate = alone_rate[c];
                s.sharedRate =
                    static_cast<double>(system.servedReads(c)) /
                    static_cast<double>(epoch_cycles);
                total += ga::miseSlowdown(s);
            }
            const double fitness =
                -total / static_cast<double>(cores);
            optimizer.setFitness(child, fitness);
            generation_best = std::max(generation_best, fitness);
        }
        result.generationBest.push_back(generation_best);
        if (gen + 1 < ga_cfg.generations)
            optimizer.nextGeneration();
    }

    // Select from the final generation's measurements rather than the
    // historical max: with a noisy fitness the all-time best is
    // biased toward lucky outliers.
    const ga::Genome &best = optimizer.bestOfCurrentGeneration();
    for (std::uint32_t c = 0; c < cores; ++c) {
        result.reqBinsPerCore.push_back(req_of(best, c));
        result.respBinsPerCore.push_back(resp_of(best, c));
    }
    apply(best); // leave the live system on the tuned configuration
    result.reqBins = result.reqBinsPerCore.front();
    result.respBins = result.respBinsPerCore.front();
    result.bestFitness = optimizer.bestFitnessOfCurrentGeneration();
    result.configPhaseCycles = system.now();
    result.configPhaseLeakBoundBits =
        security::gaConfigPhaseLeakBoundBits(ga_cfg.generations,
                                             ga_cfg.populationSize);
    return result;
}

OnlineGaResult
runOfflineGa(const SystemConfig &cfg,
             const std::vector<std::string> &workloads,
             const ga::GaConfig &ga_cfg, Cycle epoch_cycles,
             unsigned jobs, unsigned shard_procs)
{
    if (cfg.mitigation != Mitigation::BDC &&
        cfg.mitigation != Mitigation::ReqC &&
        cfg.mitigation != Mitigation::RespC) {
        throw hard::ConfigError(
            detail::fmt("offline GA needs a Camouflage mitigation "
                        "(ReqC, RespC, or BDC), got ",
                        mitigationName(cfg.mitigation)));
    }
    const std::size_t bins = cfg.reqBins.numBins();
    const bool both = cfg.mitigation == Mitigation::BDC;
    const std::size_t slices = both ? 2 : 1;
    const std::size_t cores = cfg.numCores;
    const std::size_t genome_len = cores * slices * bins;

    ga::GaConfig ga_cfg_seg = ga_cfg;
    ga_cfg_seg.budgetSegmentLen = bins;
    ga::GeneticOptimizer optimizer(ga_cfg_seg, genome_len,
                                   cfg.seed + 17);
    seedBaselineCandidates(optimizer, genome_len, bins);

    // Alone service rates, one fresh highest-priority system per
    // core (stream 0 of the seed space; generations use stream
    // gen + 1). Fresh systems restart from cycle 0 every epoch, so
    // unlike the live online loop there is no phase drift to track
    // and one up-front measurement serves every generation.
    SystemConfig alone_cfg = cfg;
    shaper::BinConfig open = cfg.reqBins;
    for (auto &c : open.credits)
        c = shaper::kMaxCreditsPerBin;
    alone_cfg.reqBins = open;
    alone_cfg.respBins = open;
    alone_cfg.reqBinsPerCore.clear();
    alone_cfg.respBinsPerCore.clear();
    alone_cfg.fakeTraffic = false;
    const SystemPlan alone_plan(alone_cfg, workloads);
    const std::vector<double> alone_rate =
        parallelMap(cores, jobs, [&](std::size_t c) {
            PlanOverrides one;
            one.seed = deriveSeed(cfg.seed, 0, c);
            const std::unique_ptr<System> system =
                alone_plan.instantiate(one);
            system->memory().setHighestPriorityCore(
                static_cast<CoreId>(c));
            system->run(epoch_cycles);
            return static_cast<double>(
                       system->servedReads(
                           static_cast<std::uint32_t>(c))) /
                   static_cast<double>(epoch_cycles);
        });

    // One plan for the whole search: every child evaluation (however
    // it is fanned out) is a PlanOverrides instantiation.
    const SystemPlan plan(cfg, workloads);

    OnlineGaResult result;
    for (std::size_t gen = 0; gen < ga_cfg.generations; ++gen) {
        const std::vector<double> fitness = evaluateGenerationSharded(
            plan, optimizer.population(), gen, alone_rate,
            epoch_cycles, jobs, shard_procs);
        double generation_best = -1e300;
        for (std::size_t child = 0; child < fitness.size(); ++child) {
            optimizer.setFitness(child, fitness[child]);
            generation_best = std::max(generation_best, fitness[child]);
        }
        result.generationBest.push_back(generation_best);
        if (gen + 1 < ga_cfg.generations)
            optimizer.nextGeneration();
    }

    const ga::Genome &best = optimizer.bestOfCurrentGeneration();
    for (std::uint32_t c = 0; c < cores; ++c) {
        result.reqBinsPerCore.push_back(gaReqBinsOf(cfg, best, c));
        result.respBinsPerCore.push_back(gaRespBinsOf(cfg, best, c));
    }
    result.reqBins = result.reqBinsPerCore.front();
    result.respBins = result.respBinsPerCore.front();
    result.bestFitness = optimizer.bestFitnessOfCurrentGeneration();
    // Total cycles *simulated* across every throwaway system (the
    // online field reports the live system's clock instead).
    result.configPhaseCycles =
        static_cast<std::uint64_t>(
            cores + ga_cfg.generations * optimizer.population().size()) *
        epoch_cycles;
    result.configPhaseLeakBoundBits = 0.0; // searched before deployment
    return result;
}

AdaptiveResult
runAdaptive(const SystemConfig &cfg,
            const std::vector<std::string> &workloads,
            Cycle total_cycles, const AdaptiveConfig &adaptive)
{
    AdaptiveResult result;
    System system(cfg, workloads);

    // Initial CONFIG_PHASE.
    tuneOnline(system, cfg, adaptive.ga, adaptive.epochCycles);
    ++result.reconfigurations;
    result.reconfigAt.push_back(system.now());

    std::vector<shaper::PhaseDetector> detectors;
    for (std::uint32_t c = 0; c < system.numCores(); ++c)
        detectors.emplace_back(0.25, adaptive.detectorThreshold);

    const Cycle run_start = system.now();
    system.clearEpochCounters();
    std::vector<std::uint64_t> prev_served(system.numCores(), 0);

    while (system.now() - run_start < total_cycles) {
        system.run(adaptive.epochCycles);

        bool phase_change = false;
        for (std::uint32_t c = 0; c < system.numCores(); ++c) {
            const std::uint64_t served = system.servedReads(c);
            const double rate =
                static_cast<double>(served - prev_served[c]) /
                static_cast<double>(adaptive.epochCycles);
            prev_served[c] = served;
            phase_change = detectors[c].sample(rate) || phase_change;
        }
        if (!phase_change)
            continue;
        ++result.phaseChangesDetected;
        if (result.reconfigurations >= adaptive.maxReconfigs)
            continue; // leakage budget spent: hold the configuration

        tuneOnline(system, cfg, adaptive.ga, adaptive.epochCycles);
        ++result.reconfigurations;
        result.reconfigAt.push_back(system.now());
        // The config phase perturbed the counters the detectors and
        // metrics rely on.
        system.clearEpochCounters();
        std::fill(prev_served.begin(), prev_served.end(), 0);
        for (auto &d : detectors)
            d = shaper::PhaseDetector(0.25, adaptive.detectorThreshold);
    }

    for (std::uint32_t i = 0; i < system.numCores(); ++i) {
        const auto &core = system.coreAt(i);
        result.metrics.ipc.push_back(core.ipc());
        result.metrics.retired.push_back(core.retired());
        result.metrics.servedReads.push_back(system.servedReads(i));
        result.metrics.avgReadLatency.push_back(system.avgReadLatency(i));
        result.metrics.alpha.push_back(core.alpha());
    }
    result.metrics.cycles = system.now() - run_start;
    result.leakBoundBits =
        static_cast<double>(result.reconfigurations) *
        security::gaConfigPhaseLeakBoundBits(adaptive.ga.generations,
                                             adaptive.ga.populationSize);
    return result;
}

obs::json::Value
summaryJson(const System &system,
            const std::vector<std::string> &workloads,
            bool tracer_section)
{
    obs::StatRegistry reg;
    system.registerStats(reg);

    obs::json::Value root = obs::json::Value::makeObject();
    root["mitigation"] =
        obs::json::Value(mitigationName(system.config().mitigation));
    root["cycles"] = obs::json::Value(system.now());
    root["seed"] = obs::json::Value(system.config().seed);
    obs::json::Value wl = obs::json::Value::makeArray();
    for (const auto &w : workloads)
        wl.push(obs::json::Value(w));
    root["workloads"] = std::move(wl);
    root["stats"] = reg.toJson();
    if (tracer_section) {
        obs::json::Value t = obs::json::Value::makeObject();
        t["emitted"] = obs::json::Value(system.tracer().emitted());
        t["dropped"] = obs::json::Value(system.tracer().dropped());
        root["tracer"] = std::move(t);
    }
    if (const obs::IntervalCollector *iv = system.intervalStats())
        root["intervals"] = iv->toJson();
    return root;
}

} // namespace camo::sim
