/**
 * @file
 * Typed links between components.
 *
 * A Wire<T> is a FIFO buffer with optional capacity (0 = unbounded);
 * backpressure is its canAccept(). An OutPort<T>/InPort<T> pair are
 * the producer/consumer endpoints a component exposes; the topology
 * builder binds both ends of each link to a Wire with connect().
 * Components never name their peers — only their ports — so the
 * topology stays data, not code.
 *
 * Event-driven delivery: a wire may subscribe a consumer Component.
 * The cycle-stamped push(v, at) overload then wakes that consumer at
 * the delivery cycle through its WakeSink, so data landing on a wire
 * is itself the scheduling event — no consumer ever polls an empty
 * wire. The plain push(v) stays for paths where the producer's
 * station already runs the consumer in the same call chain.
 */

#ifndef CAMO_SIM_PORT_H
#define CAMO_SIM_PORT_H

#include <cstddef>
#include <deque>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/component.h"

namespace camo::sim {

/** A FIFO link buffer. Capacity 0 means unbounded. */
template <typename T>
class Wire
{
  public:
    explicit Wire(std::size_t capacity = 0) : cap_(capacity) {}

    /** Backpressure: can one more element be pushed? */
    bool canAccept() const { return cap_ == 0 || q_.size() < cap_; }

    /** Wake `consumer` whenever a cycle-stamped push lands here;
     *  nullptr unsubscribes. */
    void subscribe(Component *consumer) { consumer_ = consumer; }
    Component *consumer() const { return consumer_; }

    void
    push(T v)
    {
        camo_assert(canAccept(), "push into a full wire");
        q_.push_back(std::move(v));
    }

    /** Push a delivery that lands at cycle `at`, scheduling the
     *  subscribed consumer (if any) to run at that cycle. */
    void
    push(T v, Cycle at)
    {
        push(std::move(v));
        if (consumer_ != nullptr)
            consumer_->scheduleAt(at);
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return cap_; }

    T &
    front()
    {
        camo_assert(!q_.empty(), "front of an empty wire");
        return q_.front();
    }
    const T &
    front() const
    {
        camo_assert(!q_.empty(), "front of an empty wire");
        return q_.front();
    }

    T
    pop()
    {
        camo_assert(!q_.empty(), "pop of an empty wire");
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    void clear() { q_.clear(); }

  private:
    std::deque<T> q_;
    std::size_t cap_;
    Component *consumer_ = nullptr;
};

/** Producer endpoint of a link. */
template <typename T>
class OutPort
{
  public:
    void bind(Wire<T> &wire) { wire_ = &wire; }
    bool bound() const { return wire_ != nullptr; }

    bool canAccept() const { return wire_ != nullptr && wire_->canAccept(); }

    void
    push(T v)
    {
        camo_assert(wire_ != nullptr, "push through an unbound port");
        wire_->push(std::move(v));
    }

    /** Cycle-stamped push: wakes the wire's subscribed consumer. */
    void
    push(T v, Cycle at)
    {
        camo_assert(wire_ != nullptr, "push through an unbound port");
        wire_->push(std::move(v), at);
    }

  private:
    Wire<T> *wire_ = nullptr;
};

/** Consumer endpoint of a link. */
template <typename T>
class InPort
{
  public:
    void bind(Wire<T> &wire) { wire_ = &wire; }
    bool bound() const { return wire_ != nullptr; }

    bool empty() const { return wire_ == nullptr || wire_->empty(); }
    std::size_t size() const { return wire_ ? wire_->size() : 0; }

    T &
    front()
    {
        camo_assert(wire_ != nullptr, "front of an unbound port");
        return wire_->front();
    }

    T
    pop()
    {
        camo_assert(wire_ != nullptr, "pop through an unbound port");
        return wire_->pop();
    }

  private:
    Wire<T> *wire_ = nullptr;
};

/** Bind both endpoints of a link to `wire`. */
template <typename T>
void
connect(OutPort<T> &out, InPort<T> &in, Wire<T> &wire)
{
    out.bind(wire);
    in.bind(wire);
}

} // namespace camo::sim

#endif // CAMO_SIM_PORT_H
