#include "src/sim/system.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "src/camouflage/config_port.h"
#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/trace/workloads.h"

namespace camo::sim {

const char *
mitigationName(Mitigation m)
{
    switch (m) {
      case Mitigation::None: return "no-shaping";
      case Mitigation::CS: return "CS";
      case Mitigation::ReqC: return "ReqC";
      case Mitigation::RespC: return "RespC";
      case Mitigation::BDC: return "BDC";
      case Mitigation::TP: return "TP";
      case Mitigation::FS: return "FS";
    }
    return "?";
}

/** Everything owned per core. */
struct System::PerCore
{
    std::unique_ptr<trace::TraceSource> trace;
    std::unique_ptr<cache::CacheHierarchy> cache;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<shaper::RequestShaper> reqShaper;
    std::unique_ptr<shaper::ResponseShaper> respShaper;

    /** LLC-miss link between the cache and the shaper/channel. */
    Wire<MemRequest> missBuffer;
    /** MC-egress link in front of the response shaper. */
    Wire<MemRequest> respBuffer;

    shaper::DistributionMonitor intrinsicMon;
    shaper::DistributionMonitor busMon;
    shaper::DistributionMonitor respMon;

    std::vector<security::LatencySample> latencies;
    std::uint64_t servedReads = 0;
    std::uint64_t latencySum = 0;

    /** Real reads on the wire (issued, response not yet delivered).
     *  Always maintained (cheap counter); the watchdog's pending-work
     *  signal. */
    std::uint64_t inflightReads = 0;
    /** Shapers swapped to the fail-secure schedule. */
    bool degraded = false;

    /** Previous-interval snapshots for delta-based interval metrics. */
    std::uint64_t ivRetired = 0;
    std::uint64_t ivCycles = 0;
    std::uint64_t ivBusReal = 0;
    std::uint64_t ivBusFake = 0;

    PerCore(const std::vector<Cycle> &edges)
        : intrinsicMon(edges), busMon(edges), respMon(edges)
    {
    }
};

// ---------------------------------------------------------------------
// Glue stations: each wraps one inter-subsystem hand-off of the
// Figure-5 pipeline as a Component, so the tick loop, fast-forward
// bound, and the attachment fan-outs are all a single iteration over
// the graph. Stations hold no state of their own beyond the System
// backpointer (and a core index); they exist to give the hand-offs a
// place in the tick order.
// ---------------------------------------------------------------------

/** Consults the fault injector at the top of each cycle. */
struct System::FaultApplyStation final : Component
{
    explicit FaultApplyStation(System *sys)
        : Component("station.faults"), sys_(sys)
    {
    }

    void
    tick(Cycle) override
    {
        if (sys_->injector_)
            sys_->applyInjectedFaults();
    }

    /** Scheduled faults must fire at their programmed cycle, not at
     *  whatever tick the fast-forward happens to execute next. */
    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        return sys_->injector_ ? sys_->injector_->nextScheduledCycle(from)
                               : kNoCycle;
    }

    System *sys_;
};

/** Cache outgoing -> miss buffer -> shaper/request channel. */
struct System::CorePipeStation final : Component
{
    CorePipeStation(System *sys, std::uint32_t core)
        : Component("station.reqpipe.core" + std::to_string(core)),
          sys_(sys), core_(core)
    {
    }

    void
    tick(Cycle) override
    {
        PerCore &pc = *sys_->cores_[core_];
        sys_->drainCacheOutgoing(pc);
        sys_->feedRequestPath(pc);
    }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        // Buffered misses move the moment the next stage can take
        // them (every cycle while it can).
        const PerCore &pc = *sys_->cores_[core_];
        if (!pc.missBuffer.empty() &&
            (!pc.reqShaper || pc.reqShaper->canAccept())) {
            return from;
        }
        return kNoCycle;
    }

    /** Epoch service counters live on the pipe, not the core. */
    void
    reset() override
    {
        PerCore &pc = *sys_->cores_[core_];
        pc.servedReads = 0;
        pc.latencySum = 0;
    }

    System *sys_;
    std::uint32_t core_;
};

/** Request-channel egress -> memory controller (1/cycle). */
struct System::ReqLinkStation final : Component
{
    explicit ReqLinkStation(System *sys)
        : Component("station.reqlink"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        noc::SharedChannel &ch = *sys_->reqChannel_;
        if (ch.hasEgress(now) &&
            sys_->mem_->canAccept(ch.egressFront().addr,
                                  ch.egressFront().isWrite)) {
            sys_->mem_->enqueue(ch.popEgress(), now);
        }
    }

    /** The channel's own bound covers pending egress. */
    Cycle nextEventCycle(Cycle, Cycle) const override { return kNoCycle; }

    System *sys_;
};

/** MC responses -> per-core response buffers (+ injected delays). */
struct System::MemRouteStation final : Component
{
    explicit MemRouteStation(System *sys)
        : Component("station.memroute"), sys_(sys)
    {
    }

    void tick(Cycle) override { sys_->routeMcResponses(); }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        Cycle ev = kNoCycle;
        for (const DelayedResponse &d : sys_->delayedResp_)
            ev = std::min(ev, std::max(from, d.releaseAt));
        return ev;
    }

    System *sys_;
};

/** Response buffer -> shaper -> response channel. */
struct System::RespPipeStation final : Component
{
    RespPipeStation(System *sys, std::uint32_t core)
        : Component("station.resppipe.core" + std::to_string(core)),
          sys_(sys), core_(core)
    {
    }

    void
    tick(Cycle) override
    {
        sys_->feedResponsePath(*sys_->cores_[core_]);
    }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        const PerCore &pc = *sys_->cores_[core_];
        if (!pc.respBuffer.empty() &&
            (!pc.respShaper || pc.respShaper->canAccept())) {
            return from;
        }
        // Accumulated priority warnings are forwarded to the
        // scheduler on the next tick.
        if (pc.respShaper && pc.respShaper->hasPendingBoost())
            return from;
        return kNoCycle;
    }

    System *sys_;
    std::uint32_t core_;
};

/** Response-channel egress -> core fill (1/cycle). */
struct System::RespLinkStation final : Component
{
    explicit RespLinkStation(System *sys)
        : Component("station.resplink"), sys_(sys)
    {
    }

    void tick(Cycle) override { sys_->deliverResponses(); }

    Cycle nextEventCycle(Cycle, Cycle) const override { return kNoCycle; }

    System *sys_;
};

/** End-of-cycle shaper credit-state audit (observe-only). */
struct System::CreditCheckStation final : Component
{
    explicit CreditCheckStation(System *sys)
        : Component("station.creditcheck"), sys_(sys)
    {
    }

    void
    tick(Cycle) override
    {
        if (sys_->checkers_ && sys_->checkers_->config().conservation)
            sys_->checkCreditState();
    }

    Cycle nextEventCycle(Cycle, Cycle) const override { return kNoCycle; }

    System *sys_;
};

/**
 * Periodic interval-metrics snapshot. Interval boundaries do NOT
 * bound the fast-forward (nextEventCycle is kNoCycle): rows whose
 * boundary falls inside a skipped idle span are synthesized in
 * skipIdleCycles with the exact values the ticked loop would have
 * produced — during a provably-idle span only core cycle counters
 * advance (uniformly, one per cycle), while queue depths, monitor
 * counts, and shaper credits are all frozen (every shaper's
 * nextEventCycle stops at its next credit replenishment).
 */
struct System::IntervalStation final : Component
{
    explicit IntervalStation(System *sys)
        : Component("station.interval"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        if (sys_->interval_ && sys_->interval_->due(now))
            sys_->sampleInterval();
    }

    Cycle nextEventCycle(Cycle, Cycle) const override
    {
        return kNoCycle;
    }

    void
    skipIdleCycles(Cycle n) override
    {
        if (!sys_->interval_)
            return;
        // Runs before System::now_ advances: the skipped span is
        // (start, start + n]. This station is last in graph order,
        // so the cores' batched accounting has already been applied;
        // a boundary at cycle b sees core cycle counters rewound by
        // (start + n - b).
        const Cycle start = sys_->now_;
        while (sys_->interval_->nextAt() <= start + n) {
            const Cycle b = sys_->interval_->nextAt();
            sys_->sampleIntervalAt(b, start + n - b);
        }
    }

    System *sys_;
};

/**
 * Online leakage-monitor evaluation point. The station's
 * nextEventCycle pins a tick on every check boundary, so window
 * evaluations happen at identical cycles with fast-forward on or
 * off.
 */
struct System::LeakMonStation final : Component
{
    explicit LeakMonStation(System *sys)
        : Component("station.leakmon"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        obs::LeakMonitor *mon = sys_->leakmon_.get();
        if (!mon || now < mon->nextCheckAt())
            return;
        const std::string alert = mon->poll(now);
        if (!alert.empty())
            sys_->onLeakageAlert(alert);
    }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        if (!sys_->leakmon_)
            return kNoCycle;
        return std::max(from, sys_->leakmon_->nextCheckAt());
    }

    void
    registerStats(obs::StatRegistry &reg) const override
    {
        if (sys_->leakmon_)
            reg.add("leakmon", &sys_->leakmon_->stats());
    }

    System *sys_;
};

// ---------------------------------------------------------------------

System::System(const SystemConfig &cfg,
               const std::vector<std::string> &workloads)
    : cfg_(cfg), diagStream_(&std::cerr)
{
    if (cfg_.numCores < 1)
        throw hard::ConfigError("numCores must be >= 1, got 0");
    if (workloads.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("expected ", cfg_.numCores, " workloads, got ",
                        workloads.size()));
    }
    if (!cfg_.shapeCore.empty() &&
        cfg_.shapeCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("shapeCore mask has ", cfg_.shapeCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }
    if (!cfg_.reqBinsPerCore.empty() &&
        cfg_.reqBinsPerCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("reqBinsPerCore has ",
                        cfg_.reqBinsPerCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }
    if (!cfg_.respBinsPerCore.empty() &&
        cfg_.respBinsPerCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("respBinsPerCore has ",
                        cfg_.respBinsPerCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }
    buildTopology(workloads);
}

System::System(const TopologyConfig &topo)
    : System(topo.system, topo.workloads)
{
}

void
System::buildTopology(const std::vector<std::string> &workloads)
{
    // Baseline scheduler selection per mitigation.
    cfg_.mc.numCores = cfg_.numCores;
    switch (cfg_.mitigation) {
      case Mitigation::TP:
        cfg_.mc.scheduler = mem::SchedulerKind::TemporalPartition;
        cfg_.mc.tp.numDomains = cfg_.numCores;
        break;
      case Mitigation::FS:
        cfg_.mc.scheduler = mem::SchedulerKind::FixedService;
        cfg_.mc.fs.numCores = cfg_.numCores;
        cfg_.mc.bankPartitioning = true;
        break;
      default:
        // Keep the configured scheduler (FR-FCFS by default); the
        // substrate ablations swap in plain FCFS this way.
        break;
    }

    tracer_ = std::make_unique<obs::Tracer>();
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mc);
    reqChannel_ = std::make_unique<noc::SharedChannel>(
        cfg_.numCores, cfg_.noc, "noc.req",
        obs::EventType::ReqChannelGrant);
    respChannel_ = std::make_unique<noc::SharedChannel>(
        cfg_.numCores, cfg_.noc, "noc.resp",
        obs::EventType::RespChannelGrant);

    const bool wants_req = cfg_.mitigation == Mitigation::ReqC ||
                           cfg_.mitigation == Mitigation::BDC ||
                           cfg_.mitigation == Mitigation::CS;
    const bool wants_resp = cfg_.mitigation == Mitigation::RespC ||
                            cfg_.mitigation == Mitigation::BDC;

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        auto pc = std::make_unique<PerCore>(cfg_.reqBins.edges);
        // Disjoint 1 TiB address windows keep workloads from aliasing.
        const Addr base = static_cast<Addr>(i) << 40;
        pc->trace = trace::makeWorkload(workloads[i],
                                        cfg_.seed * 7919 + i, base);
        pc->cache = std::make_unique<cache::CacheHierarchy>(i, cfg_.cache);
        pc->core = std::make_unique<core::Core>(i, cfg_.core, *pc->trace,
                                                *pc->cache);

        if (wants_req && coreIsShaped(i)) {
            shaper::RequestShaperConfig rc;
            if (cfg_.mitigation == Mitigation::CS) {
                // Ascend-style constant rate: strictly periodic issue
                // slots, dummies (fakes) filling empty slots.
                rc.bins = shaper::BinConfig::constantRate(
                    cfg_.csInterval, cfg_.csInterval * 10);
                rc.strictSlotInterval = cfg_.csInterval;
            } else {
                rc.bins = cfg_.reqBinsPerCore.empty()
                              ? cfg_.reqBins
                              : cfg_.reqBinsPerCore[i];
            }
            rc.generateFakes = cfg_.fakeTraffic;
            rc.randomizeTiming = cfg_.randomizeTiming;
            rc.fakeSequential = cfg_.fakeSequential;
            rc.fakeWriteFrac = cfg_.fakeWriteFrac;
            rc.fakeAddrBase = base + (1ULL << 39);
            pc->reqShaper = std::make_unique<shaper::RequestShaper>(
                i, rc, cfg_.seed * 104729 + i);
        }
        if (wants_resp && coreIsShaped(i)) {
            shaper::ResponseShaperConfig rc;
            rc.bins = cfg_.respBinsPerCore.empty()
                          ? cfg_.respBins
                          : cfg_.respBinsPerCore[i];
            rc.generateFakes = cfg_.fakeTraffic;
            pc->respShaper =
                std::make_unique<shaper::ResponseShaper>(i, rc);
        }
        if (cfg_.recordTraffic) {
            pc->intrinsicMon.setLogging(true);
            pc->busMon.setLogging(true);
            pc->respMon.setLogging(true);
            if (pc->reqShaper) {
                pc->reqShaper->preMonitor().setLogging(true);
                pc->reqShaper->postMonitor().setLogging(true);
            }
            if (pc->respShaper) {
                pc->respShaper->preMonitor().setLogging(true);
                pc->respShaper->postMonitor().setLogging(true);
            }
        }
        cores_.push_back(std::move(pc));
    }

    // Lay the components into the graph in Figure-5 tick order. The
    // subsystems are borrowed (the PerCore / System unique_ptrs above
    // own them); the stations are graph-owned.
    graph_.emplace<FaultApplyStation>(this);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        PerCore &pc = *cores_[i];
        graph_.add(pc.core.get());
        graph_.add(pc.cache.get());
        if (pc.reqShaper)
            graph_.add(pc.reqShaper.get());
        graph_.emplace<CorePipeStation>(this, i);
    }
    graph_.add(reqChannel_.get());
    graph_.emplace<ReqLinkStation>(this);
    graph_.add(mem_.get());
    graph_.emplace<MemRouteStation>(this);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        if (cores_[i]->respShaper)
            graph_.add(cores_[i]->respShaper.get());
        graph_.emplace<RespPipeStation>(this, i);
    }
    graph_.add(respChannel_.get());
    graph_.emplace<RespLinkStation>(this);
    graph_.emplace<CreditCheckStation>(this);
    graph_.emplace<IntervalStation>(this);

    // One fan-out wires the tracer into every component (sticky:
    // late-added components get it automatically).
    graph_.attachTracer(tracer_.get());
}

System::~System() = default;

Component &
System::addComponent(std::unique_ptr<Component> component)
{
    return *graph_.add(std::move(component));
}

bool
System::coreIsShaped(std::uint32_t i) const
{
    return cfg_.shapeCore.empty() || cfg_.shapeCore[i];
}

const core::Core &
System::coreAt(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

core::Core &
System::coreAt(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

shaper::RequestShaper *
System::requestShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->reqShaper.get();
}

shaper::ResponseShaper *
System::responseShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respShaper.get();
}

const shaper::DistributionMonitor &
System::intrinsicMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->intrinsicMon;
}

const shaper::DistributionMonitor &
System::busMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->busMon;
}

const shaper::DistributionMonitor &
System::responseMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respMon;
}

const std::vector<security::LatencySample> &
System::latencyLog(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->latencies;
}

std::uint64_t
System::servedReads(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->servedReads;
}

double
System::avgReadLatency(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    const PerCore &pc = *cores_[i];
    return pc.servedReads == 0
               ? 0.0
               : static_cast<double>(pc.latencySum) /
                     static_cast<double>(pc.servedReads);
}

void
System::clearEpochCounters()
{
    // Core::reset() clears the core-side epoch counters; the per-core
    // pipe stations clear the service counters.
    graph_.reset();
}

void
System::reconfigureShapers(const shaper::BinConfig &req_bins,
                           const shaper::BinConfig &resp_bins)
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        reconfigureShaper(i, req_bins, resp_bins);
}

void
System::reconfigureShaper(std::uint32_t core,
                          const shaper::BinConfig &req_bins,
                          const shaper::BinConfig &resp_bins)
{
    camo_assert(core < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[core];
    if (pc.reqShaper)
        pc.reqShaper->reconfigure(req_bins);
    if (pc.respShaper)
        pc.respShaper->reconfigure(resp_bins);
}

void
System::setFakeTraffic(bool on)
{
    for (auto &pc : cores_) {
        if (pc->reqShaper)
            pc->reqShaper->setGenerateFakes(on);
        if (pc->respShaper)
            pc->respShaper->setGenerateFakes(on);
    }
}

void
System::drainCacheOutgoing(PerCore &pc)
{
    std::vector<MemRequest> &out = pc.cache->outgoing();
    if (out.empty())
        return;
    for (MemRequest &req : out) {
        pc.intrinsicMon.record(now_);
        pc.missBuffer.push(std::move(req));
    }
    pc.cache->clearOutgoing();
}

void
System::feedRequestPath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (injector_) {
        // Shaper-bypass fault: a real request jumps straight onto the
        // shared channel. Preconditions are checked before consulting
        // the injector so the one-shot only latches when it can fire.
        if (!pc.missBuffer.empty() && reqChannel_->canAccept(port) &&
            injector_->leakRequestDue(port, now_)) {
            MemRequest req = pc.missBuffer.pop();
            req.shaperOut = now_;
            pushToReqChannel(pc, std::move(req), false);
        }
        // Forced fake: a fake issued outside the shaper's schedule.
        if (reqChannel_->canAccept(port) &&
            injector_->forceFakeDue(port, now_)) {
            MemRequest fake;
            fake.id = (static_cast<ReqId>(port) << 48) |
                      (1ULL << 46) | ++forcedFakes_;
            fake.core = port;
            fake.isFake = true;
            fake.addr = (static_cast<Addr>(port) << 40) | (1ULL << 38);
            fake.created = now_;
            fake.shaperOut = now_;
            pushToReqChannel(pc, std::move(fake), false);
        }
    }

    if (pc.reqShaper) {
        if (injector_ && injector_->reqShaperWedged(port, now_))
            return; // the shaper's clock is gated off: nothing moves
        // Miss buffer -> shaper queue.
        while (!pc.missBuffer.empty() && pc.reqShaper->canAccept())
            pc.reqShaper->push(pc.missBuffer.pop(), now_);
        // Shaper -> shared request channel.
        const bool ready = reqChannel_->canAccept(port);
        if (auto released = pc.reqShaper->tick(now_, ready))
            pushToReqChannel(pc, std::move(*released), true);
        return;
    }

    // Unshaped: straight to the channel (one per cycle per port).
    if (!pc.missBuffer.empty() && reqChannel_->canAccept(port)) {
        MemRequest req = pc.missBuffer.pop();
        req.shaperOut = now_;
        pushToReqChannel(pc, std::move(req), false);
    }
}

void
System::routeMcResponses()
{
    // Injected-delay buffer: release entries that have come due.
    if (!delayedResp_.empty()) {
        for (auto it = delayedResp_.begin(); it != delayedResp_.end();) {
            if (it->releaseAt <= now_) {
                const std::uint32_t c = it->resp.core;
                camo_assert(c < cores_.size(),
                            "response for unknown core");
                cores_[c]->respBuffer.push(std::move(it->resp));
                it = delayedResp_.erase(it);
            } else {
                ++it;
            }
        }
    }

    respScratch_.clear();
    mem_->drainResponses(now_, respScratch_);
    for (MemRequest &resp : respScratch_) {
        const std::uint32_t c = resp.core;
        camo_assert(c < cores_.size(), "response for unknown core");
        if (injector_) {
            Cycle delay = 0;
            switch (injector_->onResponse(now_, resp, &delay)) {
              case hard::FaultInjector::RespAction::Drop:
                stats_.inc("hard.resp_dropped");
                continue;
              case hard::FaultInjector::RespAction::Delay:
                stats_.inc("hard.resp_delayed");
                delayedResp_.push_back({now_ + delay, std::move(resp)});
                continue;
              case hard::FaultInjector::RespAction::Duplicate:
                stats_.inc("hard.resp_duplicated");
                cores_[c]->respBuffer.push(resp); // extra copy
                break;
              case hard::FaultInjector::RespAction::Pass:
                break;
            }
        }
        cores_[c]->respBuffer.push(std::move(resp));
    }
}

void
System::feedResponsePath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (pc.respShaper) {
        if (injector_ && injector_->respShaperWedged(port, now_))
            return; // wedged: responses pile up behind it
        while (!pc.respBuffer.empty() && pc.respShaper->canAccept())
            pc.respShaper->push(pc.respBuffer.pop(), now_);
        // Forward accumulated priority warnings to the scheduler.
        if (const std::uint32_t boost =
                pc.respShaper->takePriorityWarning()) {
            mem_->boostPriority(port, boost);
        }
        const bool ready = respChannel_->canAccept(port);
        if (auto released = pc.respShaper->tick(now_, ready))
            pushToRespChannel(pc, std::move(*released), true);
        return;
    }

    if (!pc.respBuffer.empty() && respChannel_->canAccept(port)) {
        MemRequest resp = pc.respBuffer.pop();
        resp.respShaperOut = now_;
        pushToRespChannel(pc, std::move(resp), false);
    }
}

void
System::deliverResponses()
{
    // One delivery per cycle: the return channel's bandwidth.
    if (!respChannel_->hasEgress(now_))
        return;
    MemRequest resp = respChannel_->popEgress();
    const std::uint32_t c = resp.core;
    camo_assert(c < cores_.size(), "response for unknown core");
    PerCore &pc = *cores_[c];
    resp.delivered = now_;
    pc.respMon.record(now_, resp.isFake);

    if (resp.isFake) {
        stats_.inc("responses.fake.dropped");
        CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                         .type = obs::EventType::FakeRespDropped,
                         .core = resp.core, .id = resp.id);
        return; // pure bus activity; no core state waits on it
    }

    // Lifecycle retire runs BEFORE the cache fill: a duplicate
    // response must be reported as such, not as the MSHR-bookkeeping
    // panic it would trigger downstream.
    if (checkers_ && checkers_->config().lifecycle && !resp.isWrite)
        checkers_->lifecycle().onRetire(resp.id, resp.core, now_);
    if (pc.inflightReads > 0)
        --pc.inflightReads;

    CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                     .type = obs::EventType::RespDelivered,
                     .core = resp.core, .id = resp.id,
                     .addr = resp.addr, .arg = resp.totalLatency());
    ++pc.servedReads;
    pc.latencySum += resp.totalLatency();
    if (cfg_.recordLatencies)
        pc.latencies.push_back({now_, resp.totalLatency()});
    const Cycle usable = pc.cache->onFill(resp.addr, now_);
    pc.core->onFill(resp.addr, usable);
    // Fills can displace dirty lines: collect the writebacks.
    drainCacheOutgoing(pc);
}

void
System::registerStats(obs::StatRegistry &reg) const
{
    reg.add("system", &stats_);
    // Every component registers its own groups; the registry's JSON
    // view is key-sorted, so the fan-out order is immaterial.
    graph_.registerStats(reg);
}

void
System::enableIntervalStats(Cycle period)
{
    std::vector<std::string> cols{"mc.readq", "mc.writeq"};
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i);
        cols.push_back(prefix + ".ipc");
        cols.push_back(prefix + ".bus.real");
        cols.push_back(prefix + ".bus.fake");
        cols.push_back(prefix + ".req_credits");
        cols.push_back(prefix + ".resp_credits");
    }
    if (leakmon_) {
        cols.push_back("leakmon.window_mi_bits");
        intervalHasLeakCol_ = true;
    }
    interval_ =
        std::make_unique<obs::IntervalCollector>(period, std::move(cols));
    for (auto &pc : cores_) {
        pc->ivRetired = pc->core->retired();
        pc->ivCycles = pc->core->cycles();
        pc->ivBusReal = pc->busMon.realCount();
        pc->ivBusFake = pc->busMon.fakeCount();
    }
}

void
System::sampleInterval()
{
    sampleIntervalAt(now_, 0);
}

void
System::sampleIntervalAt(Cycle at, Cycle cycle_lag)
{
    // cycle_lag rewinds the per-core cycle counters for rows
    // synthesized inside a skipped idle span: at that point the
    // cores' batched accounting has already advanced them past the
    // boundary `at`, by exactly cycle_lag cycles each (idle cores
    // advance one cycle per cycle and retire nothing). Everything
    // else in the row is frozen during a provably-idle span.
    std::vector<double> row;
    row.reserve(interval_->columns().size());
    row.push_back(static_cast<double>(mem_->readQueueSize()));
    row.push_back(static_cast<double>(mem_->writeQueueSize()));
    for (auto &pc : cores_) {
        const std::uint64_t retired = pc->core->retired();
        const std::uint64_t cycles = pc->core->cycles() - cycle_lag;
        const std::uint64_t dc = cycles - pc->ivCycles;
        row.push_back(dc ? static_cast<double>(retired - pc->ivRetired) /
                               static_cast<double>(dc)
                         : 0.0);
        const std::uint64_t real = pc->busMon.realCount();
        const std::uint64_t fake = pc->busMon.fakeCount();
        row.push_back(static_cast<double>(real - pc->ivBusReal));
        row.push_back(static_cast<double>(fake - pc->ivBusFake));
        row.push_back(pc->reqShaper
                          ? pc->reqShaper->bins().creditsTotal()
                          : 0.0);
        row.push_back(pc->respShaper
                          ? pc->respShaper->bins().creditsTotal()
                          : 0.0);
        pc->ivRetired = retired;
        pc->ivCycles = cycles;
        pc->ivBusReal = real;
        pc->ivBusFake = fake;
    }
    if (intervalHasLeakCol_)
        row.push_back(leakmon_->lastWindowMiBits());
    interval_->addRow(at, std::move(row));
}

hard::ShaperContract
System::contractOf(const shaper::BinConfig &cfg)
{
    hard::ShaperContract c;
    c.edges = cfg.edges;
    c.credits = cfg.credits;
    c.replenishPeriod = cfg.replenishPeriod;
    return c;
}

void
System::enableCheckers(const hard::CheckerConfig &cfg)
{
    checkers_ = std::make_unique<hard::CheckerSet>(cfg);
    if (cfg.protocol) {
        for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
            mem::MemoryController &mc = mem_->channel(c);
            mem_->channel(c).setCommandObserver(
                checkers_->addProtocolChecker(mc.config().org,
                                              mc.config().timing));
        }
    }
    if (cfg.conservation) {
        for (std::uint32_t i = 0; i < cores_.size(); ++i) {
            const PerCore &pc = *cores_[i];
            if (pc.reqShaper) {
                checkers_->reqConservation().setContract(
                    i, contractOf(pc.reqShaper->bins().config()));
            }
            if (pc.respShaper) {
                checkers_->respConservation().setContract(
                    i, contractOf(pc.respShaper->bins().config()));
            }
        }
    }
    graph_.attachCheckers(checkers_.get());
}

void
System::setFaultInjector(hard::FaultInjector *injector)
{
    injector_ = injector;
    graph_.attachInjector(injector);
}

void
System::enableWatchdog(const hard::WatchdogConfig &cfg)
{
    watchdog_ = std::make_unique<hard::Watchdog>(cfg);
}

obs::json::Value
System::diagnosticJson(const std::string &reason) const
{
    auto root = obs::json::Value::makeObject();
    root["reason"] = reason;
    root["cycle"] = static_cast<std::uint64_t>(now_);

    auto queues = obs::json::Value::makeObject();
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        auto q = obs::json::Value::makeObject();
        q["miss_buffer"] = static_cast<std::uint64_t>(
            pc.missBuffer.size());
        q["resp_buffer"] = static_cast<std::uint64_t>(
            pc.respBuffer.size());
        q["req_shaper_queue"] = static_cast<std::uint64_t>(
            pc.reqShaper ? pc.reqShaper->queueDepth() : 0);
        q["resp_shaper_queue"] = static_cast<std::uint64_t>(
            pc.respShaper ? pc.respShaper->queueDepth() : 0);
        q["inflight_reads"] = pc.inflightReads;
        q["req_ingress"] = static_cast<std::uint64_t>(
            reqChannel_->ingressDepth(i));
        q["resp_ingress"] = static_cast<std::uint64_t>(
            respChannel_->ingressDepth(i));
        q["degraded"] = pc.degraded;
        queues["core" + std::to_string(i)] = std::move(q);
    }
    queues["mc_readq"] =
        static_cast<std::uint64_t>(mem_->readQueueSize());
    queues["mc_writeq"] =
        static_cast<std::uint64_t>(mem_->writeQueueSize());
    queues["req_egress"] =
        static_cast<std::uint64_t>(reqChannel_->egressDepth());
    queues["resp_egress"] =
        static_cast<std::uint64_t>(respChannel_->egressDepth());
    queues["delayed_responses"] =
        static_cast<std::uint64_t>(delayedResp_.size());
    root["queues"] = std::move(queues);

    obs::StatRegistry reg;
    registerStats(reg);
    root["stats"] = reg.toJson();

    if (tracer_->enabled()) {
        const std::size_t tail =
            watchdog_ ? watchdog_->config().traceTail : 64;
        const std::vector<obs::Event> events = tracer_->snapshot();
        auto arr = obs::json::Value::makeArray();
        const std::size_t start =
            events.size() > tail ? events.size() - tail : 0;
        for (std::size_t i = start; i < events.size(); ++i) {
            if (auto v = obs::json::tryParse(
                    obs::eventToJson(events[i]))) {
                arr.push(std::move(*v));
            }
        }
        root["trace_tail"] = std::move(arr);
    }
    return root;
}

void
System::degradeShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[i];
    if (pc.degraded)
        return;
    pc.degraded = true;
    stats_.inc("hard.shaper_degraded");
    if (pc.reqShaper) {
        const shaper::BinConfig safe =
            shaper::BinConfig::failSecure(pc.reqShaper->bins().config());
        pc.reqShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->reqConservation().setContract(i, contractOf(safe));
    }
    if (pc.respShaper) {
        const shaper::BinConfig safe = shaper::BinConfig::failSecure(
            pc.respShaper->bins().config());
        pc.respShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->respConservation().setContract(i,
                                                      contractOf(safe));
    }
    // Fake generation is deliberately left untouched: degradation must
    // never reveal more than the schedule it replaces.
    camo_warn("core ", i, " shapers degraded to the fail-secure ",
              "constant-rate schedule at cycle ", now_);
}

bool
System::shaperDegraded(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->degraded;
}

void
System::checkForLeaks() const
{
    if (!checkers_ || !checkers_->config().lifecycle)
        return;
    const std::vector<hard::LeakedRequest> leaks =
        checkers_->lifecycle().leaked(now_,
                                      checkers_->config().leakAge);
    if (leaks.empty())
        return;
    std::ostringstream os;
    os << leaks.size() << " request(s) issued but never retired:";
    const std::size_t shown = std::min<std::size_t>(leaks.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        os << " id=" << leaks[i].id << " core=" << leaks[i].core
           << " issued=" << leaks[i].issuedAt << ";";
    }
    if (leaks.size() > shown)
        os << " ...";
    throw hard::InvariantViolation(
        os.str(), diagnosticJson("request-leak").dump(2));
}

void
System::onShaperViolation(std::uint32_t core, const std::string &msg)
{
    stats_.inc("hard.shaper_violations");
    if (checkers_->config().recoverShaper) {
        camo_warn("shaper invariant violated, degrading core ", core,
                  ": ", msg);
        degradeShaper(core);
        return;
    }
    const std::string dump =
        diagnosticJson("shaper-invariant: " + msg).dump(2);
    if (diagStream_)
        *diagStream_ << dump << "\n";
    throw hard::InvariantViolation(msg, dump);
}

void
System::pushToReqChannel(PerCore &pc, MemRequest req,
                         bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_) {
        const bool tracked = !req.isFake && !req.isWrite;
        if (checkers_->config().conservation &&
            checkers_->reqConservation().hasContract(port)) {
            if (shaper_release)
                checkers_->reqConservation().onShaperRelease(port, now_);
            const bool fakes_on =
                pc.reqShaper && pc.reqShaper->generateFakes();
            const std::string v = checkers_->reqConservation().onBusPush(
                port, now_, req.isFake, fakes_on);
            if (!v.empty())
                onShaperViolation(port, v);
        }
        if (checkers_->config().lifecycle && tracked)
            checkers_->lifecycle().onIssue(req.id, port, now_);
    }
    if (!req.isFake && !req.isWrite)
        ++pc.inflightReads;
    pc.busMon.record(now_, req.isFake);
    reqChannel_->push(port, std::move(req));
}

void
System::pushToRespChannel(PerCore &pc, MemRequest resp,
                          bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_ && checkers_->config().conservation &&
        checkers_->respConservation().hasContract(port)) {
        if (shaper_release)
            checkers_->respConservation().onShaperRelease(port, now_);
        const bool fakes_on =
            pc.respShaper && pc.respShaper->generateFakes();
        const std::string v = checkers_->respConservation().onBusPush(
            port, now_, resp.isFake, fakes_on);
        if (!v.empty())
            onShaperViolation(port, v);
    }
    respChannel_->push(port, std::move(resp));
}

void
System::checkCreditState()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        if (pc.reqShaper &&
            checkers_->reqConservation().hasContract(i)) {
            const std::string v =
                checkers_->reqConservation().onCreditState(
                    i, pc.reqShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
        if (pc.respShaper &&
            checkers_->respConservation().hasContract(i)) {
            const std::string v =
                checkers_->respConservation().onCreditState(
                    i, pc.respShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
    }
}

void
System::applyInjectedFaults()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        PerCore &pc = *cores_[i];
        if (pc.reqShaper || pc.respShaper) {
            if (injector_->corruptCreditsDue(i, now_)) {
                if (pc.reqShaper) {
                    pc.reqShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
                if (pc.respShaper) {
                    pc.respShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
            }
            if (injector_->starveCreditsDue(i, now_)) {
                if (pc.reqShaper)
                    pc.reqShaper->binsMut().injectStarvation();
                if (pc.respShaper)
                    pc.respShaper->binsMut().injectStarvation();
            }
        }
        if (pc.reqShaper && injector_->malformedConfigDue(i, now_)) {
            // Round-trip the live configuration through the hardware
            // ConfigPort with a zeroed register image: the decode-side
            // validation must reject it and the old schedule must
            // survive.
            shaper::RegisterFile regs =
                shaper::encodeConfig(pc.reqShaper->bins().config());
            std::fill(regs.words.begin(), regs.words.end(), 0u);
            try {
                pc.reqShaper->reconfigure(shaper::decodeConfig(regs));
                stats_.inc("hard.config_accepted_malformed");
            } catch (const hard::ConfigError &) {
                stats_.inc("hard.config_rejected");
            }
        }
    }
}

void
System::pollWatchdog(Cycle next_event)
{
    obs::Profiler::Scope scope(prof_, prof_ ? profWatchdogNode_ : 0);
    std::vector<hard::CoreProgress> progress;
    progress.reserve(cores_.size());
    for (const auto &pc : cores_) {
        hard::CoreProgress cp;
        cp.progress = pc->core->retired() + pc->servedReads;
        cp.pending =
            pc->inflightReads > 0 || !pc->missBuffer.empty() ||
            !pc->respBuffer.empty() ||
            (pc->reqShaper && pc->reqShaper->queueDepth() > 0) ||
            (pc->respShaper && pc->respShaper->queueDepth() > 0);
        progress.push_back(cp);
    }
    if (const auto reason =
            watchdog_->poll(now_, progress, next_event)) {
        stats_.inc("hard.watchdog_fired");
        const std::string dump = diagnosticJson(*reason).dump(2);
        if (diagStream_)
            *diagStream_ << dump << "\n";
        throw hard::WatchdogTimeout(*reason, dump);
    }
}

void
System::enableLeakMonitor(const obs::LeakMonitorConfig &cfg)
{
    if (cfg.core >= cores_.size()) {
        throw hard::ConfigError("leakmon core " +
                                std::to_string(cfg.core) +
                                " out of range (have " +
                                std::to_string(cores_.size()) +
                                " cores)");
    }
    if (leakmon_)
        throw hard::ConfigError("leakage monitor already enabled");
    PerCore &pc = *cores_[cfg.core];
    pc.intrinsicMon.setLogging(true);
    pc.busMon.setLogging(true);
    leakmon_ =
        std::make_unique<obs::LeakMonitor>(cfg, pc.intrinsicMon,
                                           pc.busMon);
    graph_.emplace<LeakMonStation>(this);
}

void
System::onLeakageAlert(const std::string &msg)
{
    stats_.inc("leakmon.alerts");
    const std::string dump =
        diagnosticJson("leakage-alert: " + msg).dump(2);
    if (diagStream_)
        *diagStream_ << dump << "\n";
    throw hard::LeakageAlert(msg, dump);
}

void
System::setProfiler(obs::Profiler *prof)
{
    prof_ = prof;
    profTickIds_.clear();
    profSkipIds_.clear();
    if (!prof_)
        return;
    const obs::Profiler::NodeId root = prof_->root();
    profTickNode_ = prof_->child(root, "tick");
    profNextEvNode_ = prof_->child(root, "next_event");
    profSkipNode_ = prof_->child(root, "skip");
    profWatchdogNode_ = prof_->child(root, "watchdog");
    syncProfiler();
}

void
System::syncProfiler()
{
    // Components can be added after setProfiler (stations, late
    // attachments); extend the cached id vectors to match.
    const auto &order = graph_.order();
    for (std::size_t i = profTickIds_.size(); i < order.size(); ++i) {
        profTickIds_.push_back(
            prof_->child(profTickNode_, order[i]->name()));
        profSkipIds_.push_back(
            prof_->child(profSkipNode_, order[i]->name()));
    }
}

void
System::tick()
{
    ++now_;
    if (!prof_) {
        graph_.tick(now_);
        return;
    }
    profiledTick();
}

void
System::profiledTick()
{
    syncProfiler();
    obs::Profiler::Timer all;
    const auto &order = graph_.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
        obs::Profiler::Timer t;
        order[i]->tick(now_);
        prof_->add(profTickIds_[i], t.elapsedNs());
    }
    prof_->add(profTickNode_, all.elapsedNs());
}

Cycle
System::nextEventCycle() const
{
    if (!prof_)
        return graph_.nextEventCycle(now_, now_ + 1);
    obs::Profiler::Timer t;
    const Cycle ev = graph_.nextEventCycle(now_, now_ + 1);
    prof_->add(profNextEvNode_, t.elapsedNs());
    return ev;
}

void
System::skipIdleCycles(Cycle n)
{
    if (!prof_) {
        graph_.skipIdleCycles(n);
        now_ += n;
        return;
    }
    syncProfiler();
    obs::Profiler::Timer all;
    const auto &order = graph_.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
        obs::Profiler::Timer t;
        order[i]->skipIdleCycles(n);
        prof_->add(profSkipIds_[i], t.elapsedNs());
    }
    prof_->add(profSkipNode_, all.elapsedNs());
    now_ += n;
}

void
System::run(Cycle cycles)
{
    if (!prof_) {
        runLoop(cycles);
        return;
    }
    obs::Profiler::Scope scope(prof_, prof_->root());
    runLoop(cycles);
}

void
System::runLoop(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!cfg_.fastForward) {
        while (now_ < end) {
            tick();
            // The plain loop computes nextEventCycle() only when a
            // poll is due (it is the expensive part of the poll).
            if (watchdog_ && watchdog_->due(now_))
                pollWatchdog(nextEventCycle());
        }
        return;
    }
    while (now_ < end) {
        tick();
        Cycle ev = kNoCycle;
        bool haveEv = false;
        if (watchdog_) {
            ev = nextEventCycle();
            haveEv = true;
            // Poll on schedule, and immediately when no component
            // reports a future event — a hard deadlock the
            // fast-forward below would otherwise silently skip to
            // end-of-run, turning a hang into a wrong result.
            if (watchdog_->due(now_) || ev == kNoCycle)
                pollWatchdog(ev);
        }
        if (now_ >= end)
            break;
        // Probe backoff: when recent probes found no skippable gap
        // (gap <= 1 cycle), the nextEventCycle fold itself dominates
        // the loop — in the no-shaping configuration it made
        // fast-forward a net slowdown. Defer the next probe for an
        // exponentially growing number of cycles and just tick;
        // ticking is always bit-exact, so only host time changes. A
        // successful skip re-arms eager probing.
        if (!haveEv && now_ < ffProbeAt_)
            continue;
        if (!haveEv)
            ev = nextEventCycle();
        const Cycle clamped = std::min(ev, end);
        if (clamped > now_ + 1) {
            skipIdleCycles(clamped - now_ - 1);
            ffBackoff_ = 1;
            ffProbeAt_ = 0;
        } else {
            ffProbeAt_ = now_ + ffBackoff_;
            ffBackoff_ = std::min<Cycle>(ffBackoff_ * 2, kFfMaxBackoff);
        }
    }
}

} // namespace camo::sim
