#include "src/sim/system.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "src/camouflage/config_port.h"
#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/trace/workloads.h"

namespace camo::sim {

const char *
mitigationName(Mitigation m)
{
    switch (m) {
      case Mitigation::None: return "no-shaping";
      case Mitigation::CS: return "CS";
      case Mitigation::ReqC: return "ReqC";
      case Mitigation::RespC: return "RespC";
      case Mitigation::BDC: return "BDC";
      case Mitigation::TP: return "TP";
      case Mitigation::FS: return "FS";
    }
    return "?";
}

/** Everything owned per core. */
struct System::PerCore
{
    std::unique_ptr<trace::TraceSource> trace;
    std::unique_ptr<cache::CacheHierarchy> cache;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<shaper::RequestShaper> reqShaper;
    std::unique_ptr<shaper::ResponseShaper> respShaper;

    /** LLC-miss buffer between the cache and the shaper/channel. */
    std::deque<MemRequest> missBuffer;
    /** MC-egress buffer in front of the response shaper. */
    std::deque<MemRequest> respBuffer;

    shaper::DistributionMonitor intrinsicMon;
    shaper::DistributionMonitor busMon;
    shaper::DistributionMonitor respMon;

    std::vector<security::LatencySample> latencies;
    std::uint64_t servedReads = 0;
    std::uint64_t latencySum = 0;

    /** Real reads on the wire (issued, response not yet delivered).
     *  Always maintained (cheap counter); the watchdog's pending-work
     *  signal. */
    std::uint64_t inflightReads = 0;
    /** Shapers swapped to the fail-secure schedule. */
    bool degraded = false;

    /** Previous-interval snapshots for delta-based interval metrics. */
    std::uint64_t ivRetired = 0;
    std::uint64_t ivCycles = 0;
    std::uint64_t ivBusReal = 0;
    std::uint64_t ivBusFake = 0;

    PerCore(const std::vector<Cycle> &edges)
        : intrinsicMon(edges), busMon(edges), respMon(edges)
    {
    }
};

System::System(const SystemConfig &cfg,
               const std::vector<std::string> &workloads)
    : cfg_(cfg), diagStream_(&std::cerr)
{
    if (cfg_.numCores < 1)
        throw hard::ConfigError("numCores must be >= 1, got 0");
    if (workloads.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("expected ", cfg_.numCores, " workloads, got ",
                        workloads.size()));
    }
    if (!cfg_.shapeCore.empty() &&
        cfg_.shapeCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("shapeCore mask has ", cfg_.shapeCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }
    if (!cfg_.reqBinsPerCore.empty() &&
        cfg_.reqBinsPerCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("reqBinsPerCore has ",
                        cfg_.reqBinsPerCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }
    if (!cfg_.respBinsPerCore.empty() &&
        cfg_.respBinsPerCore.size() != cfg_.numCores) {
        throw hard::ConfigError(
            detail::fmt("respBinsPerCore has ",
                        cfg_.respBinsPerCore.size(),
                        " entries but numCores is ", cfg_.numCores));
    }

    // Baseline scheduler selection per mitigation.
    cfg_.mc.numCores = cfg_.numCores;
    switch (cfg_.mitigation) {
      case Mitigation::TP:
        cfg_.mc.scheduler = mem::SchedulerKind::TemporalPartition;
        cfg_.mc.tp.numDomains = cfg_.numCores;
        break;
      case Mitigation::FS:
        cfg_.mc.scheduler = mem::SchedulerKind::FixedService;
        cfg_.mc.fs.numCores = cfg_.numCores;
        cfg_.mc.bankPartitioning = true;
        break;
      default:
        // Keep the configured scheduler (FR-FCFS by default); the
        // substrate ablations swap in plain FCFS this way.
        break;
    }

    tracer_ = std::make_unique<obs::Tracer>();
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mc);
    mem_->setTracer(tracer_.get());
    reqChannel_ =
        std::make_unique<noc::SharedChannel>(cfg_.numCores, cfg_.noc);
    reqChannel_->setTracer(tracer_.get(),
                           obs::EventType::ReqChannelGrant);
    respChannel_ =
        std::make_unique<noc::SharedChannel>(cfg_.numCores, cfg_.noc);
    respChannel_->setTracer(tracer_.get(),
                            obs::EventType::RespChannelGrant);

    const bool wants_req = cfg_.mitigation == Mitigation::ReqC ||
                           cfg_.mitigation == Mitigation::BDC ||
                           cfg_.mitigation == Mitigation::CS;
    const bool wants_resp = cfg_.mitigation == Mitigation::RespC ||
                            cfg_.mitigation == Mitigation::BDC;

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        auto pc = std::make_unique<PerCore>(cfg_.reqBins.edges);
        // Disjoint 1 TiB address windows keep workloads from aliasing.
        const Addr base = static_cast<Addr>(i) << 40;
        pc->trace = trace::makeWorkload(workloads[i],
                                        cfg_.seed * 7919 + i, base);
        pc->cache = std::make_unique<cache::CacheHierarchy>(i, cfg_.cache);
        pc->cache->setTracer(tracer_.get());
        pc->core = std::make_unique<core::Core>(i, cfg_.core, *pc->trace,
                                                *pc->cache);
        pc->core->setTracer(tracer_.get());

        if (wants_req && coreIsShaped(i)) {
            shaper::RequestShaperConfig rc;
            if (cfg_.mitigation == Mitigation::CS) {
                // Ascend-style constant rate: strictly periodic issue
                // slots, dummies (fakes) filling empty slots.
                rc.bins = shaper::BinConfig::constantRate(
                    cfg_.csInterval, cfg_.csInterval * 10);
                rc.strictSlotInterval = cfg_.csInterval;
            } else {
                rc.bins = cfg_.reqBinsPerCore.empty()
                              ? cfg_.reqBins
                              : cfg_.reqBinsPerCore[i];
            }
            rc.generateFakes = cfg_.fakeTraffic;
            rc.randomizeTiming = cfg_.randomizeTiming;
            rc.fakeSequential = cfg_.fakeSequential;
            rc.fakeWriteFrac = cfg_.fakeWriteFrac;
            rc.fakeAddrBase = base + (1ULL << 39);
            pc->reqShaper = std::make_unique<shaper::RequestShaper>(
                i, rc, cfg_.seed * 104729 + i);
            pc->reqShaper->setTracer(tracer_.get());
        }
        if (wants_resp && coreIsShaped(i)) {
            shaper::ResponseShaperConfig rc;
            rc.bins = cfg_.respBinsPerCore.empty()
                          ? cfg_.respBins
                          : cfg_.respBinsPerCore[i];
            rc.generateFakes = cfg_.fakeTraffic;
            pc->respShaper =
                std::make_unique<shaper::ResponseShaper>(i, rc);
            pc->respShaper->setTracer(tracer_.get());
        }
        if (cfg_.recordTraffic) {
            pc->intrinsicMon.setLogging(true);
            pc->busMon.setLogging(true);
            pc->respMon.setLogging(true);
            if (pc->reqShaper) {
                pc->reqShaper->preMonitor().setLogging(true);
                pc->reqShaper->postMonitor().setLogging(true);
            }
            if (pc->respShaper) {
                pc->respShaper->preMonitor().setLogging(true);
                pc->respShaper->postMonitor().setLogging(true);
            }
        }
        cores_.push_back(std::move(pc));
    }
}

System::~System() = default;

bool
System::coreIsShaped(std::uint32_t i) const
{
    return cfg_.shapeCore.empty() || cfg_.shapeCore[i];
}

const core::Core &
System::coreAt(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

core::Core &
System::coreAt(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

shaper::RequestShaper *
System::requestShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->reqShaper.get();
}

shaper::ResponseShaper *
System::responseShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respShaper.get();
}

const shaper::DistributionMonitor &
System::intrinsicMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->intrinsicMon;
}

const shaper::DistributionMonitor &
System::busMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->busMon;
}

const shaper::DistributionMonitor &
System::responseMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respMon;
}

const std::vector<security::LatencySample> &
System::latencyLog(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->latencies;
}

std::uint64_t
System::servedReads(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->servedReads;
}

double
System::avgReadLatency(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    const PerCore &pc = *cores_[i];
    return pc.servedReads == 0
               ? 0.0
               : static_cast<double>(pc.latencySum) /
                     static_cast<double>(pc.servedReads);
}

void
System::clearEpochCounters()
{
    for (auto &pc : cores_) {
        pc->core->clearEpochCounters();
        pc->servedReads = 0;
        pc->latencySum = 0;
    }
}

void
System::reconfigureShapers(const shaper::BinConfig &req_bins,
                           const shaper::BinConfig &resp_bins)
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        reconfigureShaper(i, req_bins, resp_bins);
}

void
System::reconfigureShaper(std::uint32_t core,
                          const shaper::BinConfig &req_bins,
                          const shaper::BinConfig &resp_bins)
{
    camo_assert(core < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[core];
    if (pc.reqShaper)
        pc.reqShaper->reconfigure(req_bins);
    if (pc.respShaper)
        pc.respShaper->reconfigure(resp_bins);
}

void
System::setFakeTraffic(bool on)
{
    for (auto &pc : cores_) {
        if (pc->reqShaper)
            pc->reqShaper->setGenerateFakes(on);
        if (pc->respShaper)
            pc->respShaper->setGenerateFakes(on);
    }
}

void
System::drainCacheOutgoing(PerCore &pc)
{
    std::vector<MemRequest> &out = pc.cache->outgoing();
    if (out.empty())
        return;
    for (MemRequest &req : out) {
        pc.intrinsicMon.record(now_);
        pc.missBuffer.push_back(std::move(req));
    }
    pc.cache->clearOutgoing();
}

void
System::feedRequestPath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (injector_) {
        // Shaper-bypass fault: a real request jumps straight onto the
        // shared channel. Preconditions are checked before consulting
        // the injector so the one-shot only latches when it can fire.
        if (!pc.missBuffer.empty() && reqChannel_->canAccept(port) &&
            injector_->leakRequestDue(port, now_)) {
            MemRequest req = std::move(pc.missBuffer.front());
            pc.missBuffer.pop_front();
            req.shaperOut = now_;
            pushToReqChannel(pc, std::move(req), false);
        }
        // Forced fake: a fake issued outside the shaper's schedule.
        if (reqChannel_->canAccept(port) &&
            injector_->forceFakeDue(port, now_)) {
            MemRequest fake;
            fake.id = (static_cast<ReqId>(port) << 48) |
                      (1ULL << 46) | ++forcedFakes_;
            fake.core = port;
            fake.isFake = true;
            fake.addr = (static_cast<Addr>(port) << 40) | (1ULL << 38);
            fake.created = now_;
            fake.shaperOut = now_;
            pushToReqChannel(pc, std::move(fake), false);
        }
    }

    if (pc.reqShaper) {
        if (injector_ && injector_->reqShaperWedged(port, now_))
            return; // the shaper's clock is gated off: nothing moves
        // Miss buffer -> shaper queue.
        while (!pc.missBuffer.empty() && pc.reqShaper->canAccept()) {
            pc.reqShaper->push(std::move(pc.missBuffer.front()), now_);
            pc.missBuffer.pop_front();
        }
        // Shaper -> shared request channel.
        const bool ready = reqChannel_->canAccept(port);
        if (auto released = pc.reqShaper->tick(now_, ready))
            pushToReqChannel(pc, std::move(*released), true);
        return;
    }

    // Unshaped: straight to the channel (one per cycle per port).
    if (!pc.missBuffer.empty() && reqChannel_->canAccept(port)) {
        MemRequest req = std::move(pc.missBuffer.front());
        pc.missBuffer.pop_front();
        req.shaperOut = now_;
        pushToReqChannel(pc, std::move(req), false);
    }
}

void
System::routeMcResponses()
{
    // Injected-delay buffer: release entries that have come due.
    if (!delayedResp_.empty()) {
        for (auto it = delayedResp_.begin(); it != delayedResp_.end();) {
            if (it->releaseAt <= now_) {
                const std::uint32_t c = it->resp.core;
                camo_assert(c < cores_.size(),
                            "response for unknown core");
                cores_[c]->respBuffer.push_back(std::move(it->resp));
                it = delayedResp_.erase(it);
            } else {
                ++it;
            }
        }
    }

    respScratch_.clear();
    mem_->drainResponses(now_, respScratch_);
    for (MemRequest &resp : respScratch_) {
        const std::uint32_t c = resp.core;
        camo_assert(c < cores_.size(), "response for unknown core");
        if (injector_) {
            Cycle delay = 0;
            switch (injector_->onResponse(now_, resp, &delay)) {
              case hard::FaultInjector::RespAction::Drop:
                stats_.inc("hard.resp_dropped");
                continue;
              case hard::FaultInjector::RespAction::Delay:
                stats_.inc("hard.resp_delayed");
                delayedResp_.push_back({now_ + delay, std::move(resp)});
                continue;
              case hard::FaultInjector::RespAction::Duplicate:
                stats_.inc("hard.resp_duplicated");
                cores_[c]->respBuffer.push_back(resp); // extra copy
                break;
              case hard::FaultInjector::RespAction::Pass:
                break;
            }
        }
        cores_[c]->respBuffer.push_back(std::move(resp));
    }
}

void
System::feedResponsePath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (pc.respShaper) {
        if (injector_ && injector_->respShaperWedged(port, now_))
            return; // wedged: responses pile up behind it
        while (!pc.respBuffer.empty() && pc.respShaper->canAccept()) {
            pc.respShaper->push(std::move(pc.respBuffer.front()), now_);
            pc.respBuffer.pop_front();
        }
        // Forward accumulated priority warnings to the scheduler.
        if (const std::uint32_t boost =
                pc.respShaper->takePriorityWarning()) {
            mem_->boostPriority(port, boost);
        }
        const bool ready = respChannel_->canAccept(port);
        if (auto released = pc.respShaper->tick(now_, ready))
            pushToRespChannel(pc, std::move(*released), true);
        return;
    }

    if (!pc.respBuffer.empty() && respChannel_->canAccept(port)) {
        MemRequest resp = std::move(pc.respBuffer.front());
        pc.respBuffer.pop_front();
        resp.respShaperOut = now_;
        pushToRespChannel(pc, std::move(resp), false);
    }
}

void
System::deliverResponses()
{
    // One delivery per cycle: the return channel's bandwidth.
    if (!respChannel_->hasEgress(now_))
        return;
    MemRequest resp = respChannel_->popEgress();
    const std::uint32_t c = resp.core;
    camo_assert(c < cores_.size(), "response for unknown core");
    PerCore &pc = *cores_[c];
    resp.delivered = now_;
    pc.respMon.record(now_, resp.isFake);

    if (resp.isFake) {
        stats_.inc("responses.fake.dropped");
        CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                         .type = obs::EventType::FakeRespDropped,
                         .core = resp.core, .id = resp.id);
        return; // pure bus activity; no core state waits on it
    }

    // Lifecycle retire runs BEFORE the cache fill: a duplicate
    // response must be reported as such, not as the MSHR-bookkeeping
    // panic it would trigger downstream.
    if (checkers_ && checkers_->config().lifecycle && !resp.isWrite)
        checkers_->lifecycle().onRetire(resp.id, resp.core, now_);
    if (pc.inflightReads > 0)
        --pc.inflightReads;

    CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                     .type = obs::EventType::RespDelivered,
                     .core = resp.core, .id = resp.id,
                     .addr = resp.addr, .arg = resp.totalLatency());
    ++pc.servedReads;
    pc.latencySum += resp.totalLatency();
    if (cfg_.recordLatencies)
        pc.latencies.push_back({now_, resp.totalLatency()});
    const Cycle usable = pc.cache->onFill(resp.addr, now_);
    pc.core->onFill(resp.addr, usable);
    // Fills can displace dirty lines: collect the writebacks.
    drainCacheOutgoing(pc);
}

void
System::registerStats(obs::StatRegistry &reg) const
{
    reg.add("system", &stats_);
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        const std::string prefix = "core" + std::to_string(i);
        reg.add(prefix, &pc.core->stats());
        reg.add(prefix + ".cache", &pc.cache->stats());
        if (pc.reqShaper) {
            reg.add("shaper.req." + prefix, &pc.reqShaper->stats());
            reg.add("shaper.req." + prefix + ".bins",
                    &pc.reqShaper->bins().stats());
        }
        if (pc.respShaper) {
            reg.add("shaper.resp." + prefix, &pc.respShaper->stats());
            reg.add("shaper.resp." + prefix + ".bins",
                    &pc.respShaper->bins().stats());
        }
    }
    reg.add("noc.req", &reqChannel_->stats());
    reg.add("noc.resp", &respChannel_->stats());
    for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
        const std::string prefix = "mc.ch" + std::to_string(c);
        reg.add(prefix, &mem_->channel(c).stats());
        reg.add(prefix + ".dram", &mem_->channel(c).device().stats());
    }
}

void
System::enableIntervalStats(Cycle period)
{
    std::vector<std::string> cols{"mc.readq", "mc.writeq"};
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i);
        cols.push_back(prefix + ".ipc");
        cols.push_back(prefix + ".bus.real");
        cols.push_back(prefix + ".bus.fake");
        cols.push_back(prefix + ".req_credits");
        cols.push_back(prefix + ".resp_credits");
    }
    interval_ =
        std::make_unique<obs::IntervalCollector>(period, std::move(cols));
    for (auto &pc : cores_) {
        pc->ivRetired = pc->core->retired();
        pc->ivCycles = pc->core->cycles();
        pc->ivBusReal = pc->busMon.realCount();
        pc->ivBusFake = pc->busMon.fakeCount();
    }
}

void
System::sampleInterval()
{
    std::vector<double> row;
    row.reserve(interval_->columns().size());
    row.push_back(static_cast<double>(mem_->readQueueSize()));
    row.push_back(static_cast<double>(mem_->writeQueueSize()));
    for (auto &pc : cores_) {
        const std::uint64_t retired = pc->core->retired();
        const std::uint64_t cycles = pc->core->cycles();
        const std::uint64_t dc = cycles - pc->ivCycles;
        row.push_back(dc ? static_cast<double>(retired - pc->ivRetired) /
                               static_cast<double>(dc)
                         : 0.0);
        const std::uint64_t real = pc->busMon.realCount();
        const std::uint64_t fake = pc->busMon.fakeCount();
        row.push_back(static_cast<double>(real - pc->ivBusReal));
        row.push_back(static_cast<double>(fake - pc->ivBusFake));
        row.push_back(pc->reqShaper
                          ? pc->reqShaper->bins().creditsTotal()
                          : 0.0);
        row.push_back(pc->respShaper
                          ? pc->respShaper->bins().creditsTotal()
                          : 0.0);
        pc->ivRetired = retired;
        pc->ivCycles = cycles;
        pc->ivBusReal = real;
        pc->ivBusFake = fake;
    }
    interval_->addRow(now_, std::move(row));
}

hard::ShaperContract
System::contractOf(const shaper::BinConfig &cfg)
{
    hard::ShaperContract c;
    c.edges = cfg.edges;
    c.credits = cfg.credits;
    c.replenishPeriod = cfg.replenishPeriod;
    return c;
}

void
System::enableCheckers(const hard::CheckerConfig &cfg)
{
    checkers_ = std::make_unique<hard::CheckerSet>(cfg);
    if (cfg.protocol) {
        for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
            mem::MemoryController &mc = mem_->channel(c);
            mem_->channel(c).setCommandObserver(
                checkers_->addProtocolChecker(mc.config().org,
                                              mc.config().timing));
        }
    }
    if (cfg.conservation) {
        for (std::uint32_t i = 0; i < cores_.size(); ++i) {
            const PerCore &pc = *cores_[i];
            if (pc.reqShaper) {
                checkers_->reqConservation().setContract(
                    i, contractOf(pc.reqShaper->bins().config()));
            }
            if (pc.respShaper) {
                checkers_->respConservation().setContract(
                    i, contractOf(pc.respShaper->bins().config()));
            }
        }
    }
}

void
System::enableWatchdog(const hard::WatchdogConfig &cfg)
{
    watchdog_ = std::make_unique<hard::Watchdog>(cfg);
}

obs::json::Value
System::diagnosticJson(const std::string &reason) const
{
    auto root = obs::json::Value::makeObject();
    root["reason"] = reason;
    root["cycle"] = static_cast<std::uint64_t>(now_);

    auto queues = obs::json::Value::makeObject();
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        auto q = obs::json::Value::makeObject();
        q["miss_buffer"] = static_cast<std::uint64_t>(
            pc.missBuffer.size());
        q["resp_buffer"] = static_cast<std::uint64_t>(
            pc.respBuffer.size());
        q["req_shaper_queue"] = static_cast<std::uint64_t>(
            pc.reqShaper ? pc.reqShaper->queueDepth() : 0);
        q["resp_shaper_queue"] = static_cast<std::uint64_t>(
            pc.respShaper ? pc.respShaper->queueDepth() : 0);
        q["inflight_reads"] = pc.inflightReads;
        q["req_ingress"] = static_cast<std::uint64_t>(
            reqChannel_->ingressDepth(i));
        q["resp_ingress"] = static_cast<std::uint64_t>(
            respChannel_->ingressDepth(i));
        q["degraded"] = pc.degraded;
        queues["core" + std::to_string(i)] = std::move(q);
    }
    queues["mc_readq"] =
        static_cast<std::uint64_t>(mem_->readQueueSize());
    queues["mc_writeq"] =
        static_cast<std::uint64_t>(mem_->writeQueueSize());
    queues["req_egress"] =
        static_cast<std::uint64_t>(reqChannel_->egressDepth());
    queues["resp_egress"] =
        static_cast<std::uint64_t>(respChannel_->egressDepth());
    queues["delayed_responses"] =
        static_cast<std::uint64_t>(delayedResp_.size());
    root["queues"] = std::move(queues);

    obs::StatRegistry reg;
    registerStats(reg);
    root["stats"] = reg.toJson();

    if (tracer_->enabled()) {
        const std::size_t tail =
            watchdog_ ? watchdog_->config().traceTail : 64;
        const std::vector<obs::Event> events = tracer_->snapshot();
        auto arr = obs::json::Value::makeArray();
        const std::size_t start =
            events.size() > tail ? events.size() - tail : 0;
        for (std::size_t i = start; i < events.size(); ++i) {
            if (auto v = obs::json::tryParse(
                    obs::eventToJson(events[i]))) {
                arr.push(std::move(*v));
            }
        }
        root["trace_tail"] = std::move(arr);
    }
    return root;
}

void
System::degradeShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[i];
    if (pc.degraded)
        return;
    pc.degraded = true;
    stats_.inc("hard.shaper_degraded");
    if (pc.reqShaper) {
        const shaper::BinConfig safe =
            shaper::BinConfig::failSecure(pc.reqShaper->bins().config());
        pc.reqShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->reqConservation().setContract(i, contractOf(safe));
    }
    if (pc.respShaper) {
        const shaper::BinConfig safe = shaper::BinConfig::failSecure(
            pc.respShaper->bins().config());
        pc.respShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->respConservation().setContract(i,
                                                      contractOf(safe));
    }
    // Fake generation is deliberately left untouched: degradation must
    // never reveal more than the schedule it replaces.
    camo_warn("core ", i, " shapers degraded to the fail-secure ",
              "constant-rate schedule at cycle ", now_);
}

bool
System::shaperDegraded(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->degraded;
}

void
System::checkForLeaks() const
{
    if (!checkers_ || !checkers_->config().lifecycle)
        return;
    const std::vector<hard::LeakedRequest> leaks =
        checkers_->lifecycle().leaked(now_,
                                      checkers_->config().leakAge);
    if (leaks.empty())
        return;
    std::ostringstream os;
    os << leaks.size() << " request(s) issued but never retired:";
    const std::size_t shown = std::min<std::size_t>(leaks.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        os << " id=" << leaks[i].id << " core=" << leaks[i].core
           << " issued=" << leaks[i].issuedAt << ";";
    }
    if (leaks.size() > shown)
        os << " ...";
    throw hard::InvariantViolation(
        os.str(), diagnosticJson("request-leak").dump(2));
}

void
System::onShaperViolation(std::uint32_t core, const std::string &msg)
{
    stats_.inc("hard.shaper_violations");
    if (checkers_->config().recoverShaper) {
        camo_warn("shaper invariant violated, degrading core ", core,
                  ": ", msg);
        degradeShaper(core);
        return;
    }
    const std::string dump =
        diagnosticJson("shaper-invariant: " + msg).dump(2);
    if (diagStream_)
        *diagStream_ << dump << "\n";
    throw hard::InvariantViolation(msg, dump);
}

void
System::pushToReqChannel(PerCore &pc, MemRequest req,
                         bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_) {
        const bool tracked = !req.isFake && !req.isWrite;
        if (checkers_->config().conservation &&
            checkers_->reqConservation().hasContract(port)) {
            if (shaper_release)
                checkers_->reqConservation().onShaperRelease(port, now_);
            const bool fakes_on =
                pc.reqShaper && pc.reqShaper->generateFakes();
            const std::string v = checkers_->reqConservation().onBusPush(
                port, now_, req.isFake, fakes_on);
            if (!v.empty())
                onShaperViolation(port, v);
        }
        if (checkers_->config().lifecycle && tracked)
            checkers_->lifecycle().onIssue(req.id, port, now_);
    }
    if (!req.isFake && !req.isWrite)
        ++pc.inflightReads;
    pc.busMon.record(now_, req.isFake);
    reqChannel_->push(port, std::move(req));
}

void
System::pushToRespChannel(PerCore &pc, MemRequest resp,
                          bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_ && checkers_->config().conservation &&
        checkers_->respConservation().hasContract(port)) {
        if (shaper_release)
            checkers_->respConservation().onShaperRelease(port, now_);
        const bool fakes_on =
            pc.respShaper && pc.respShaper->generateFakes();
        const std::string v = checkers_->respConservation().onBusPush(
            port, now_, resp.isFake, fakes_on);
        if (!v.empty())
            onShaperViolation(port, v);
    }
    respChannel_->push(port, std::move(resp));
}

void
System::checkCreditState()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        if (pc.reqShaper &&
            checkers_->reqConservation().hasContract(i)) {
            const std::string v =
                checkers_->reqConservation().onCreditState(
                    i, pc.reqShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
        if (pc.respShaper &&
            checkers_->respConservation().hasContract(i)) {
            const std::string v =
                checkers_->respConservation().onCreditState(
                    i, pc.respShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
    }
}

void
System::applyInjectedFaults()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        PerCore &pc = *cores_[i];
        if (pc.reqShaper || pc.respShaper) {
            if (injector_->corruptCreditsDue(i, now_)) {
                if (pc.reqShaper) {
                    pc.reqShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
                if (pc.respShaper) {
                    pc.respShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
            }
            if (injector_->starveCreditsDue(i, now_)) {
                if (pc.reqShaper)
                    pc.reqShaper->binsMut().injectStarvation();
                if (pc.respShaper)
                    pc.respShaper->binsMut().injectStarvation();
            }
        }
        if (pc.reqShaper && injector_->malformedConfigDue(i, now_)) {
            // Round-trip the live configuration through the hardware
            // ConfigPort with a zeroed register image: the decode-side
            // validation must reject it and the old schedule must
            // survive.
            shaper::RegisterFile regs =
                shaper::encodeConfig(pc.reqShaper->bins().config());
            std::fill(regs.words.begin(), regs.words.end(), 0u);
            try {
                pc.reqShaper->reconfigure(shaper::decodeConfig(regs));
                stats_.inc("hard.config_accepted_malformed");
            } catch (const hard::ConfigError &) {
                stats_.inc("hard.config_rejected");
            }
        }
    }
}

void
System::pollWatchdog(Cycle next_event)
{
    std::vector<hard::CoreProgress> progress;
    progress.reserve(cores_.size());
    for (const auto &pc : cores_) {
        hard::CoreProgress cp;
        cp.progress = pc->core->retired() + pc->servedReads;
        cp.pending =
            pc->inflightReads > 0 || !pc->missBuffer.empty() ||
            !pc->respBuffer.empty() ||
            (pc->reqShaper && pc->reqShaper->queueDepth() > 0) ||
            (pc->respShaper && pc->respShaper->queueDepth() > 0);
        progress.push_back(cp);
    }
    if (const auto reason =
            watchdog_->poll(now_, progress, next_event)) {
        stats_.inc("hard.watchdog_fired");
        const std::string dump = diagnosticJson(*reason).dump(2);
        if (diagStream_)
            *diagStream_ << dump << "\n";
        throw hard::WatchdogTimeout(*reason, dump);
    }
}

void
System::tick()
{
    ++now_;

    if (injector_)
        applyInjectedFaults();

    for (auto &pc : cores_) {
        pc->core->tick(now_);
        drainCacheOutgoing(*pc);
        feedRequestPath(*pc);
    }

    reqChannel_->tick(now_);

    // Channel egress -> controller (one transaction per cycle).
    if (reqChannel_->hasEgress(now_) &&
        mem_->canAccept(reqChannel_->egressFront().addr,
                        reqChannel_->egressFront().isWrite)) {
        mem_->enqueue(reqChannel_->popEgress(), now_);
    }

    mem_->tick(now_);
    routeMcResponses();

    for (auto &pc : cores_)
        feedResponsePath(*pc);

    respChannel_->tick(now_);
    deliverResponses();

    if (checkers_ && checkers_->config().conservation)
        checkCreditState();

    if (interval_ && interval_->due(now_))
        sampleInterval();
}

Cycle
System::nextEventCycle() const
{
    const Cycle from = now_ + 1;
    Cycle ev = kNoCycle;

    for (const auto &pc : cores_) {
        ev = std::min(ev, pc->core->nextEventCycle(from));
        // Buffered misses/responses move the moment the next stage
        // can take them (every cycle while it can).
        if (!pc->missBuffer.empty() &&
            (!pc->reqShaper || pc->reqShaper->canAccept())) {
            return from;
        }
        if (!pc->respBuffer.empty() &&
            (!pc->respShaper || pc->respShaper->canAccept())) {
            return from;
        }
        if (pc->reqShaper)
            ev = std::min(ev, pc->reqShaper->nextEventCycle(from));
        if (pc->respShaper) {
            // Accumulated priority warnings are forwarded to the
            // scheduler on the next tick.
            if (pc->respShaper->hasPendingBoost())
                return from;
            ev = std::min(ev, pc->respShaper->nextEventCycle(from));
        }
        if (ev <= from)
            return from;
    }

    ev = std::min(ev, reqChannel_->nextEventCycle(from));
    ev = std::min(ev, respChannel_->nextEventCycle(from));
    ev = std::min(ev, mem_->nextEventCycle(now_, from));
    if (interval_)
        ev = std::min(ev, std::max(from, interval_->nextAt()));
    for (const DelayedResponse &d : delayedResp_)
        ev = std::min(ev, std::max(from, d.releaseAt));
    if (injector_) {
        // Scheduled faults must fire at their programmed cycle, not at
        // whatever tick the fast-forward happens to execute next.
        ev = std::min(ev, injector_->nextScheduledCycle(from));
    }
    return ev;
}

void
System::skipIdleCycles(Cycle n)
{
    for (auto &pc : cores_) {
        pc->core->skipIdleCycles(n);
        if (pc->reqShaper)
            pc->reqShaper->skipIdleCycles(n);
        if (pc->respShaper)
            pc->respShaper->skipIdleCycles(n);
    }
    mem_->skipIdleCycles(n);
    now_ += n;
}

void
System::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!cfg_.fastForward) {
        while (now_ < end) {
            tick();
            // The plain loop computes nextEventCycle() only when a
            // poll is due (it is the expensive part of the poll).
            if (watchdog_ && watchdog_->due(now_))
                pollWatchdog(nextEventCycle());
        }
        return;
    }
    while (now_ < end) {
        tick();
        Cycle ev = kNoCycle;
        bool haveEv = false;
        if (watchdog_) {
            ev = nextEventCycle();
            haveEv = true;
            // Poll on schedule, and immediately when no component
            // reports a future event — a hard deadlock the
            // fast-forward below would otherwise silently skip to
            // end-of-run, turning a hang into a wrong result.
            if (watchdog_->due(now_) || ev == kNoCycle)
                pollWatchdog(ev);
        }
        if (now_ >= end)
            break;
        // Everything before the next event is provably idle: jump
        // there, batch-applying the skipped ticks' accounting, and
        // execute the event tick on the next loop iteration.
        if (!haveEv)
            ev = nextEventCycle();
        const Cycle clamped = std::min(ev, end);
        if (clamped > now_ + 1)
            skipIdleCycles(clamped - now_ - 1);
    }
}

} // namespace camo::sim
