#include "src/sim/system.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/trace/workloads.h"

namespace camo::sim {

const char *
mitigationName(Mitigation m)
{
    switch (m) {
      case Mitigation::None: return "no-shaping";
      case Mitigation::CS: return "CS";
      case Mitigation::ReqC: return "ReqC";
      case Mitigation::RespC: return "RespC";
      case Mitigation::BDC: return "BDC";
      case Mitigation::TP: return "TP";
      case Mitigation::FS: return "FS";
    }
    return "?";
}

/** Everything owned per core. */
struct System::PerCore
{
    std::unique_ptr<trace::TraceSource> trace;
    std::unique_ptr<cache::CacheHierarchy> cache;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<shaper::RequestShaper> reqShaper;
    std::unique_ptr<shaper::ResponseShaper> respShaper;

    /** LLC-miss buffer between the cache and the shaper/channel. */
    std::deque<MemRequest> missBuffer;
    /** MC-egress buffer in front of the response shaper. */
    std::deque<MemRequest> respBuffer;

    shaper::DistributionMonitor intrinsicMon;
    shaper::DistributionMonitor busMon;
    shaper::DistributionMonitor respMon;

    std::vector<security::LatencySample> latencies;
    std::uint64_t servedReads = 0;
    std::uint64_t latencySum = 0;

    /** Previous-interval snapshots for delta-based interval metrics. */
    std::uint64_t ivRetired = 0;
    std::uint64_t ivCycles = 0;
    std::uint64_t ivBusReal = 0;
    std::uint64_t ivBusFake = 0;

    PerCore(const std::vector<Cycle> &edges)
        : intrinsicMon(edges), busMon(edges), respMon(edges)
    {
    }
};

System::System(const SystemConfig &cfg,
               const std::vector<std::string> &workloads)
    : cfg_(cfg)
{
    camo_assert(cfg_.numCores >= 1, "need at least one core");
    if (workloads.size() != cfg_.numCores)
        camo_fatal("expected ", cfg_.numCores, " workloads, got ",
                   workloads.size());
    if (!cfg_.shapeCore.empty() && cfg_.shapeCore.size() != cfg_.numCores)
        camo_fatal("shapeCore mask must match numCores");
    if (!cfg_.reqBinsPerCore.empty() &&
        cfg_.reqBinsPerCore.size() != cfg_.numCores) {
        camo_fatal("reqBinsPerCore must match numCores");
    }
    if (!cfg_.respBinsPerCore.empty() &&
        cfg_.respBinsPerCore.size() != cfg_.numCores) {
        camo_fatal("respBinsPerCore must match numCores");
    }

    // Baseline scheduler selection per mitigation.
    cfg_.mc.numCores = cfg_.numCores;
    switch (cfg_.mitigation) {
      case Mitigation::TP:
        cfg_.mc.scheduler = mem::SchedulerKind::TemporalPartition;
        cfg_.mc.tp.numDomains = cfg_.numCores;
        break;
      case Mitigation::FS:
        cfg_.mc.scheduler = mem::SchedulerKind::FixedService;
        cfg_.mc.fs.numCores = cfg_.numCores;
        cfg_.mc.bankPartitioning = true;
        break;
      default:
        // Keep the configured scheduler (FR-FCFS by default); the
        // substrate ablations swap in plain FCFS this way.
        break;
    }

    tracer_ = std::make_unique<obs::Tracer>();
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mc);
    mem_->setTracer(tracer_.get());
    reqChannel_ =
        std::make_unique<noc::SharedChannel>(cfg_.numCores, cfg_.noc);
    reqChannel_->setTracer(tracer_.get(),
                           obs::EventType::ReqChannelGrant);
    respChannel_ =
        std::make_unique<noc::SharedChannel>(cfg_.numCores, cfg_.noc);
    respChannel_->setTracer(tracer_.get(),
                            obs::EventType::RespChannelGrant);

    const bool wants_req = cfg_.mitigation == Mitigation::ReqC ||
                           cfg_.mitigation == Mitigation::BDC ||
                           cfg_.mitigation == Mitigation::CS;
    const bool wants_resp = cfg_.mitigation == Mitigation::RespC ||
                            cfg_.mitigation == Mitigation::BDC;

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        auto pc = std::make_unique<PerCore>(cfg_.reqBins.edges);
        // Disjoint 1 TiB address windows keep workloads from aliasing.
        const Addr base = static_cast<Addr>(i) << 40;
        pc->trace = trace::makeWorkload(workloads[i],
                                        cfg_.seed * 7919 + i, base);
        pc->cache = std::make_unique<cache::CacheHierarchy>(i, cfg_.cache);
        pc->cache->setTracer(tracer_.get());
        pc->core = std::make_unique<core::Core>(i, cfg_.core, *pc->trace,
                                                *pc->cache);
        pc->core->setTracer(tracer_.get());

        if (wants_req && coreIsShaped(i)) {
            shaper::RequestShaperConfig rc;
            if (cfg_.mitigation == Mitigation::CS) {
                // Ascend-style constant rate: strictly periodic issue
                // slots, dummies (fakes) filling empty slots.
                rc.bins = shaper::BinConfig::constantRate(
                    cfg_.csInterval, cfg_.csInterval * 10);
                rc.strictSlotInterval = cfg_.csInterval;
            } else {
                rc.bins = cfg_.reqBinsPerCore.empty()
                              ? cfg_.reqBins
                              : cfg_.reqBinsPerCore[i];
            }
            rc.generateFakes = cfg_.fakeTraffic;
            rc.randomizeTiming = cfg_.randomizeTiming;
            rc.fakeSequential = cfg_.fakeSequential;
            rc.fakeWriteFrac = cfg_.fakeWriteFrac;
            rc.fakeAddrBase = base + (1ULL << 39);
            pc->reqShaper = std::make_unique<shaper::RequestShaper>(
                i, rc, cfg_.seed * 104729 + i);
            pc->reqShaper->setTracer(tracer_.get());
        }
        if (wants_resp && coreIsShaped(i)) {
            shaper::ResponseShaperConfig rc;
            rc.bins = cfg_.respBinsPerCore.empty()
                          ? cfg_.respBins
                          : cfg_.respBinsPerCore[i];
            rc.generateFakes = cfg_.fakeTraffic;
            pc->respShaper =
                std::make_unique<shaper::ResponseShaper>(i, rc);
            pc->respShaper->setTracer(tracer_.get());
        }
        if (cfg_.recordTraffic) {
            pc->intrinsicMon.setLogging(true);
            pc->busMon.setLogging(true);
            pc->respMon.setLogging(true);
            if (pc->reqShaper) {
                pc->reqShaper->preMonitor().setLogging(true);
                pc->reqShaper->postMonitor().setLogging(true);
            }
            if (pc->respShaper) {
                pc->respShaper->preMonitor().setLogging(true);
                pc->respShaper->postMonitor().setLogging(true);
            }
        }
        cores_.push_back(std::move(pc));
    }
}

System::~System() = default;

bool
System::coreIsShaped(std::uint32_t i) const
{
    return cfg_.shapeCore.empty() || cfg_.shapeCore[i];
}

const core::Core &
System::coreAt(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

core::Core &
System::coreAt(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

shaper::RequestShaper *
System::requestShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->reqShaper.get();
}

shaper::ResponseShaper *
System::responseShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respShaper.get();
}

const shaper::DistributionMonitor &
System::intrinsicMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->intrinsicMon;
}

const shaper::DistributionMonitor &
System::busMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->busMon;
}

const shaper::DistributionMonitor &
System::responseMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respMon;
}

const std::vector<security::LatencySample> &
System::latencyLog(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->latencies;
}

std::uint64_t
System::servedReads(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->servedReads;
}

double
System::avgReadLatency(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    const PerCore &pc = *cores_[i];
    return pc.servedReads == 0
               ? 0.0
               : static_cast<double>(pc.latencySum) /
                     static_cast<double>(pc.servedReads);
}

void
System::clearEpochCounters()
{
    for (auto &pc : cores_) {
        pc->core->clearEpochCounters();
        pc->servedReads = 0;
        pc->latencySum = 0;
    }
}

void
System::reconfigureShapers(const shaper::BinConfig &req_bins,
                           const shaper::BinConfig &resp_bins)
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        reconfigureShaper(i, req_bins, resp_bins);
}

void
System::reconfigureShaper(std::uint32_t core,
                          const shaper::BinConfig &req_bins,
                          const shaper::BinConfig &resp_bins)
{
    camo_assert(core < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[core];
    if (pc.reqShaper)
        pc.reqShaper->reconfigure(req_bins);
    if (pc.respShaper)
        pc.respShaper->reconfigure(resp_bins);
}

void
System::setFakeTraffic(bool on)
{
    for (auto &pc : cores_) {
        if (pc->reqShaper)
            pc->reqShaper->setGenerateFakes(on);
        if (pc->respShaper)
            pc->respShaper->setGenerateFakes(on);
    }
}

void
System::drainCacheOutgoing(PerCore &pc)
{
    std::vector<MemRequest> &out = pc.cache->outgoing();
    if (out.empty())
        return;
    for (MemRequest &req : out) {
        pc.intrinsicMon.record(now_);
        pc.missBuffer.push_back(std::move(req));
    }
    pc.cache->clearOutgoing();
}

void
System::feedRequestPath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (pc.reqShaper) {
        // Miss buffer -> shaper queue.
        while (!pc.missBuffer.empty() && pc.reqShaper->canAccept()) {
            pc.reqShaper->push(std::move(pc.missBuffer.front()), now_);
            pc.missBuffer.pop_front();
        }
        // Shaper -> shared request channel.
        const bool ready = reqChannel_->canAccept(port);
        if (auto released = pc.reqShaper->tick(now_, ready)) {
            pc.busMon.record(now_, released->isFake);
            reqChannel_->push(port, std::move(*released));
        }
        return;
    }

    // Unshaped: straight to the channel (one per cycle per port).
    if (!pc.missBuffer.empty() && reqChannel_->canAccept(port)) {
        MemRequest req = std::move(pc.missBuffer.front());
        pc.missBuffer.pop_front();
        req.shaperOut = now_;
        pc.busMon.record(now_, req.isFake);
        reqChannel_->push(port, std::move(req));
    }
}

void
System::routeMcResponses()
{
    respScratch_.clear();
    mem_->drainResponses(now_, respScratch_);
    for (MemRequest &resp : respScratch_) {
        const std::uint32_t c = resp.core;
        camo_assert(c < cores_.size(), "response for unknown core");
        cores_[c]->respBuffer.push_back(std::move(resp));
    }
}

void
System::feedResponsePath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (pc.respShaper) {
        while (!pc.respBuffer.empty() && pc.respShaper->canAccept()) {
            pc.respShaper->push(std::move(pc.respBuffer.front()), now_);
            pc.respBuffer.pop_front();
        }
        // Forward accumulated priority warnings to the scheduler.
        if (const std::uint32_t boost =
                pc.respShaper->takePriorityWarning()) {
            mem_->boostPriority(port, boost);
        }
        const bool ready = respChannel_->canAccept(port);
        if (auto released = pc.respShaper->tick(now_, ready))
            respChannel_->push(port, std::move(*released));
        return;
    }

    if (!pc.respBuffer.empty() && respChannel_->canAccept(port)) {
        MemRequest resp = std::move(pc.respBuffer.front());
        pc.respBuffer.pop_front();
        resp.respShaperOut = now_;
        respChannel_->push(port, std::move(resp));
    }
}

void
System::deliverResponses()
{
    // One delivery per cycle: the return channel's bandwidth.
    if (!respChannel_->hasEgress(now_))
        return;
    MemRequest resp = respChannel_->popEgress();
    const std::uint32_t c = resp.core;
    camo_assert(c < cores_.size(), "response for unknown core");
    PerCore &pc = *cores_[c];
    resp.delivered = now_;
    pc.respMon.record(now_, resp.isFake);

    if (resp.isFake) {
        stats_.inc("responses.fake.dropped");
        CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                         .type = obs::EventType::FakeRespDropped,
                         .core = resp.core, .id = resp.id);
        return; // pure bus activity; no core state waits on it
    }

    CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                     .type = obs::EventType::RespDelivered,
                     .core = resp.core, .id = resp.id,
                     .addr = resp.addr, .arg = resp.totalLatency());
    ++pc.servedReads;
    pc.latencySum += resp.totalLatency();
    if (cfg_.recordLatencies)
        pc.latencies.push_back({now_, resp.totalLatency()});
    const Cycle usable = pc.cache->onFill(resp.addr, now_);
    pc.core->onFill(resp.addr, usable);
    // Fills can displace dirty lines: collect the writebacks.
    drainCacheOutgoing(pc);
}

void
System::registerStats(obs::StatRegistry &reg) const
{
    reg.add("system", &stats_);
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        const std::string prefix = "core" + std::to_string(i);
        reg.add(prefix, &pc.core->stats());
        reg.add(prefix + ".cache", &pc.cache->stats());
        if (pc.reqShaper) {
            reg.add("shaper.req." + prefix, &pc.reqShaper->stats());
            reg.add("shaper.req." + prefix + ".bins",
                    &pc.reqShaper->bins().stats());
        }
        if (pc.respShaper) {
            reg.add("shaper.resp." + prefix, &pc.respShaper->stats());
            reg.add("shaper.resp." + prefix + ".bins",
                    &pc.respShaper->bins().stats());
        }
    }
    reg.add("noc.req", &reqChannel_->stats());
    reg.add("noc.resp", &respChannel_->stats());
    for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
        const std::string prefix = "mc.ch" + std::to_string(c);
        reg.add(prefix, &mem_->channel(c).stats());
        reg.add(prefix + ".dram", &mem_->channel(c).device().stats());
    }
}

void
System::enableIntervalStats(Cycle period)
{
    std::vector<std::string> cols{"mc.readq", "mc.writeq"};
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i);
        cols.push_back(prefix + ".ipc");
        cols.push_back(prefix + ".bus.real");
        cols.push_back(prefix + ".bus.fake");
        cols.push_back(prefix + ".req_credits");
        cols.push_back(prefix + ".resp_credits");
    }
    interval_ =
        std::make_unique<obs::IntervalCollector>(period, std::move(cols));
    for (auto &pc : cores_) {
        pc->ivRetired = pc->core->retired();
        pc->ivCycles = pc->core->cycles();
        pc->ivBusReal = pc->busMon.realCount();
        pc->ivBusFake = pc->busMon.fakeCount();
    }
}

void
System::sampleInterval()
{
    std::vector<double> row;
    row.reserve(interval_->columns().size());
    row.push_back(static_cast<double>(mem_->readQueueSize()));
    row.push_back(static_cast<double>(mem_->writeQueueSize()));
    for (auto &pc : cores_) {
        const std::uint64_t retired = pc->core->retired();
        const std::uint64_t cycles = pc->core->cycles();
        const std::uint64_t dc = cycles - pc->ivCycles;
        row.push_back(dc ? static_cast<double>(retired - pc->ivRetired) /
                               static_cast<double>(dc)
                         : 0.0);
        const std::uint64_t real = pc->busMon.realCount();
        const std::uint64_t fake = pc->busMon.fakeCount();
        row.push_back(static_cast<double>(real - pc->ivBusReal));
        row.push_back(static_cast<double>(fake - pc->ivBusFake));
        row.push_back(pc->reqShaper
                          ? pc->reqShaper->bins().creditsTotal()
                          : 0.0);
        row.push_back(pc->respShaper
                          ? pc->respShaper->bins().creditsTotal()
                          : 0.0);
        pc->ivRetired = retired;
        pc->ivCycles = cycles;
        pc->ivBusReal = real;
        pc->ivBusFake = fake;
    }
    interval_->addRow(now_, std::move(row));
}

void
System::tick()
{
    ++now_;

    for (auto &pc : cores_) {
        pc->core->tick(now_);
        drainCacheOutgoing(*pc);
        feedRequestPath(*pc);
    }

    reqChannel_->tick(now_);

    // Channel egress -> controller (one transaction per cycle).
    if (reqChannel_->hasEgress(now_) &&
        mem_->canAccept(reqChannel_->egressFront().addr,
                        reqChannel_->egressFront().isWrite)) {
        mem_->enqueue(reqChannel_->popEgress(), now_);
    }

    mem_->tick(now_);
    routeMcResponses();

    for (auto &pc : cores_)
        feedResponsePath(*pc);

    respChannel_->tick(now_);
    deliverResponses();

    if (interval_ && interval_->due(now_))
        sampleInterval();
}

Cycle
System::nextEventCycle() const
{
    const Cycle from = now_ + 1;
    Cycle ev = kNoCycle;

    for (const auto &pc : cores_) {
        ev = std::min(ev, pc->core->nextEventCycle(from));
        // Buffered misses/responses move the moment the next stage
        // can take them (every cycle while it can).
        if (!pc->missBuffer.empty() &&
            (!pc->reqShaper || pc->reqShaper->canAccept())) {
            return from;
        }
        if (!pc->respBuffer.empty() &&
            (!pc->respShaper || pc->respShaper->canAccept())) {
            return from;
        }
        if (pc->reqShaper)
            ev = std::min(ev, pc->reqShaper->nextEventCycle(from));
        if (pc->respShaper) {
            // Accumulated priority warnings are forwarded to the
            // scheduler on the next tick.
            if (pc->respShaper->hasPendingBoost())
                return from;
            ev = std::min(ev, pc->respShaper->nextEventCycle(from));
        }
        if (ev <= from)
            return from;
    }

    ev = std::min(ev, reqChannel_->nextEventCycle(from));
    ev = std::min(ev, respChannel_->nextEventCycle(from));
    ev = std::min(ev, mem_->nextEventCycle(now_, from));
    if (interval_)
        ev = std::min(ev, std::max(from, interval_->nextAt()));
    return ev;
}

void
System::skipIdleCycles(Cycle n)
{
    for (auto &pc : cores_) {
        pc->core->skipIdleCycles(n);
        if (pc->reqShaper)
            pc->reqShaper->skipIdleCycles(n);
        if (pc->respShaper)
            pc->respShaper->skipIdleCycles(n);
    }
    mem_->skipIdleCycles(n);
    now_ += n;
}

void
System::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!cfg_.fastForward) {
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        tick();
        if (now_ >= end)
            break;
        // Everything before the next event is provably idle: jump
        // there, batch-applying the skipped ticks' accounting, and
        // execute the event tick on the next loop iteration.
        const Cycle ev = std::min(nextEventCycle(), end);
        if (ev > now_ + 1)
            skipIdleCycles(ev - now_ - 1);
    }
}

} // namespace camo::sim
