#include "src/sim/system.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <iostream>
#include <sstream>

#include <unistd.h>

#include "src/camouflage/config_port.h"
#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/sim/plan.h"
#include "src/trace/workloads.h"

namespace camo::sim {

const char *
mitigationName(Mitigation m)
{
    switch (m) {
      case Mitigation::None: return "no-shaping";
      case Mitigation::CS: return "CS";
      case Mitigation::ReqC: return "ReqC";
      case Mitigation::RespC: return "RespC";
      case Mitigation::BDC: return "BDC";
      case Mitigation::TP: return "TP";
      case Mitigation::FS: return "FS";
    }
    return "?";
}

/** Everything owned per core. */
struct System::PerCore
{
    std::unique_ptr<trace::TraceSource> trace;
    std::unique_ptr<cache::CacheHierarchy> cache;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<shaper::RequestShaper> reqShaper;
    std::unique_ptr<shaper::ResponseShaper> respShaper;

    /** LLC-miss link between the cache and the shaper/channel. */
    Wire<MemRequest> missBuffer;
    /** MC-egress link in front of the response shaper. */
    Wire<MemRequest> respBuffer;

    shaper::DistributionMonitor intrinsicMon;
    shaper::DistributionMonitor busMon;
    shaper::DistributionMonitor respMon;

    std::vector<security::LatencySample> latencies;
    std::uint64_t servedReads = 0;
    std::uint64_t latencySum = 0;

    /** Real reads on the wire (issued, response not yet delivered).
     *  Always maintained (cheap counter); the watchdog's pending-work
     *  signal. */
    std::uint64_t inflightReads = 0;
    /** Shapers swapped to the fail-secure schedule. */
    bool degraded = false;

    /** Previous-interval snapshots for delta-based interval metrics. */
    std::uint64_t ivRetired = 0;
    std::uint64_t ivCycles = 0;
    std::uint64_t ivBusReal = 0;
    std::uint64_t ivBusFake = 0;

    /** Graph indices the event kernel's glue needs (set by
     *  buildTopology; kNoIndex = absent). */
    static constexpr std::size_t kNoIndex = SIZE_MAX;
    std::size_t coreIdx = kNoIndex;
    std::size_t corePipeIdx = kNoIndex;
    std::size_t respPipeIdx = kNoIndex;
    std::size_t reqShaperIdx = kNoIndex;
    std::size_t respShaperIdx = kNoIndex;

    PerCore(const std::vector<Cycle> &edges)
        : intrinsicMon(edges), busMon(edges), respMon(edges)
    {
    }
};

// ---------------------------------------------------------------------
// Glue stations: each wraps one inter-subsystem hand-off of the
// Figure-5 pipeline as a Component, so the tick loop, fast-forward
// bound, and the attachment fan-outs are all a single iteration over
// the graph. Stations hold no state of their own beyond the System
// backpointer (and a core index); they exist to give the hand-offs a
// place in the tick order.
// ---------------------------------------------------------------------

/** Consults the fault injector at the top of each cycle. */
struct System::FaultApplyStation final : Component
{
    explicit FaultApplyStation(System *sys)
        : Component("station.faults"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        if (!sys_->injector_)
            return;
        sys_->applyInjectedFaults();
        // Injected state (corrupted credits, armed one-shots, wedges)
        // is observed by the pipe stations and the credit checker:
        // wake them so detection lands on the injection cycle itself.
        sys_->wakeFaultTargets(now);
    }

    /** Scheduled faults must fire at their programmed cycle, not at
     *  whatever tick the event kernel happens to execute next. */
    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        return sys_->injector_ ? sys_->injector_->nextScheduledCycle(from)
                               : kNoCycle;
    }

    System *sys_;
};

/** Cache outgoing -> miss buffer -> shaper/request channel. */
struct System::CorePipeStation final : Component
{
    CorePipeStation(System *sys, std::uint32_t core)
        : Component("station.reqpipe.core" + std::to_string(core)),
          sys_(sys), core_(core)
    {
    }

    void
    tick(Cycle) override
    {
        PerCore &pc = *sys_->cores_[core_];
        sys_->drainCacheOutgoing(pc);
        sys_->feedRequestPath(pc);
    }

    Cycle
    nextEventCycle(Cycle now, Cycle from) const override
    {
        // Buffered misses move the moment the next stage can take
        // them (every cycle while it can).
        const PerCore &pc = *sys_->cores_[core_];
        if (!pc.missBuffer.empty() &&
            (!pc.reqShaper || pc.reqShaper->canAccept())) {
            return from;
        }
        if (pc.reqShaper) {
            // A wedged shaper is ticked (and wedge-early-returns)
            // every cycle: none of those cycles is provably idle.
            if (sys_->injector_ &&
                sys_->injector_->reqShaperWedged(core_, now)) {
                return from;
            }
            // With this port's ingress queue full the shaper ticks
            // ready=false, which skips its stall accounting — those
            // cycles must stay real ticks. (Only this station pushes
            // to the port, so not-full cannot regress while asleep.)
            if (!sys_->reqChannel_->canAccept(core_))
                return from;
            // The shaper drives its own schedule (replenishments,
            // eligibility, stall events) through the station.
            return pc.reqShaper->nextEventCycle(from);
        }
        return kNoCycle;
    }

    /** The paired shaper is driven by this station: its batched idle
     *  accounting rides the station's. */
    void
    skipIdleCycles(Cycle n) override
    {
        PerCore &pc = *sys_->cores_[core_];
        if (pc.reqShaper)
            pc.reqShaper->skipIdleCycles(n);
    }

    /** Epoch service counters live on the pipe, not the core. */
    void
    reset() override
    {
        PerCore &pc = *sys_->cores_[core_];
        pc.servedReads = 0;
        pc.latencySum = 0;
    }

    System *sys_;
    std::uint32_t core_;
};

/** Request-channel egress -> memory controller (1/cycle). */
struct System::ReqLinkStation final : Component
{
    explicit ReqLinkStation(System *sys)
        : Component("station.reqlink"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        noc::SharedChannel &ch = *sys_->reqChannel_;
        if (ch.hasEgress(now) &&
            sys_->mem_->canAccept(ch.egressFront().addr,
                                  ch.egressFront().isWrite)) {
            // enqueue() stamps the transaction with the controller's
            // clock-divider state; bring the controller to the state
            // it has at this point of the per-cycle loop (its own
            // tick this cycle has not yet run) before mutating it.
            sys_->catchUp(sys_->memIdx_, now - 1);
            sys_->mem_->enqueue(ch.popEgress(now), now);
            // The controller must arbitrate the new arrival this
            // cycle, exactly as the tick loop had it.
            sys_->mem_->scheduleAt(now);
        }
    }

    /** Pending egress drains one flit per cycle while the MC has
     *  queue space for the head flit. When the MC queue is full the
     *  station sleeps: canAccept only transitions back to true inside
     *  an MC tick, and the post-mem wake glue re-wakes us then. New
     *  egress arrivals wake us through the channel's egress
     *  subscription. */
    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        const noc::SharedChannel &ch = *sys_->reqChannel_;
        if (ch.egressDepth() == 0)
            return kNoCycle;
        return sys_->mem_->canAccept(ch.egressFront().addr,
                                     ch.egressFront().isWrite)
                   ? from
                   : kNoCycle;
    }

    System *sys_;
};

/** MC responses -> per-core response buffers (+ injected delays). */
struct System::MemRouteStation final : Component
{
    explicit MemRouteStation(System *sys)
        : Component("station.memroute"), sys_(sys)
    {
    }

    void tick(Cycle) override { sys_->routeMcResponses(); }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        Cycle ev = kNoCycle;
        for (const DelayedResponse &d : sys_->delayedResp_)
            ev = std::min(ev, std::max(from, d.releaseAt));
        // Completed DRAM reads route back the cycle they become
        // ready (the post-mem wake glue covers responses minted
        // after this bound was taken).
        ev = std::min(ev,
                      std::max(from, sys_->mem_->nextResponseReady()));
        return ev;
    }

    System *sys_;
};

/** Response buffer -> shaper -> response channel. */
struct System::RespPipeStation final : Component
{
    RespPipeStation(System *sys, std::uint32_t core)
        : Component("station.resppipe.core" + std::to_string(core)),
          sys_(sys), core_(core)
    {
    }

    void
    tick(Cycle) override
    {
        sys_->feedResponsePath(*sys_->cores_[core_]);
    }

    Cycle
    nextEventCycle(Cycle now, Cycle from) const override
    {
        const PerCore &pc = *sys_->cores_[core_];
        if (!pc.respBuffer.empty() &&
            (!pc.respShaper || pc.respShaper->canAccept())) {
            return from;
        }
        if (pc.respShaper) {
            // Accumulated priority warnings are forwarded to the
            // scheduler on the next tick.
            if (pc.respShaper->hasPendingBoost())
                return from;
            if (sys_->injector_ &&
                sys_->injector_->respShaperWedged(core_, now)) {
                return from;
            }
            // ready=false ticks (full ingress) bypass the shaper's
            // stall accounting; see CorePipeStation.
            if (!sys_->respChannel_->canAccept(core_))
                return from;
            return pc.respShaper->nextEventCycle(from);
        }
        return kNoCycle;
    }

    void
    skipIdleCycles(Cycle n) override
    {
        PerCore &pc = *sys_->cores_[core_];
        if (pc.respShaper)
            pc.respShaper->skipIdleCycles(n);
    }

    System *sys_;
    std::uint32_t core_;
};

/** Response-channel egress -> core fill (1/cycle). */
struct System::RespLinkStation final : Component
{
    explicit RespLinkStation(System *sys)
        : Component("station.resplink"), sys_(sys)
    {
    }

    void tick(Cycle) override { sys_->deliverResponses(); }

    /** One delivery per cycle while the egress queue holds flits. */
    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        return sys_->respChannel_->egressDepth() > 0 ? from : kNoCycle;
    }

    System *sys_;
};

/** End-of-cycle shaper credit-state audit (observe-only). */
struct System::CreditCheckStation final : Component
{
    explicit CreditCheckStation(System *sys)
        : Component("station.creditcheck"), sys_(sys)
    {
    }

    void
    tick(Cycle) override
    {
        if (sys_->checkers_ && sys_->checkers_->config().conservation)
            sys_->checkCreditState();
    }

    Cycle nextEventCycle(Cycle, Cycle) const override { return kNoCycle; }

    System *sys_;
};

/**
 * Periodic interval-metrics snapshot. The station schedules itself at
 * each boundary (nextEventCycle pins interval_->nextAt()); before
 * sampling it catches every earlier component up through the
 * boundary, so rows read the exact state the per-cycle loop would
 * have shown there.
 */
struct System::IntervalStation final : Component
{
    explicit IntervalStation(System *sys)
        : Component("station.interval"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        if (sys_->interval_ && sys_->interval_->due(now))
            sys_->sampleIntervalAt(now);
    }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        if (!sys_->interval_)
            return kNoCycle;
        return std::max(from, sys_->interval_->nextAt());
    }

    System *sys_;
};

/**
 * Online leakage-monitor evaluation point. The station's
 * nextEventCycle pins a tick on every check boundary, so window
 * evaluations happen at identical cycles with fast-forward on or
 * off.
 */
struct System::LeakMonStation final : Component
{
    explicit LeakMonStation(System *sys)
        : Component("station.leakmon"), sys_(sys)
    {
    }

    void
    tick(Cycle now) override
    {
        obs::LeakMonitor *mon = sys_->leakmon_.get();
        if (!mon || now < mon->nextCheckAt())
            return;
        const std::string alert = mon->poll(now);
        if (!alert.empty())
            sys_->onLeakageAlert(alert);
    }

    Cycle
    nextEventCycle(Cycle, Cycle from) const override
    {
        if (!sys_->leakmon_)
            return kNoCycle;
        return std::max(from, sys_->leakmon_->nextCheckAt());
    }

    void
    registerStats(obs::StatRegistry &reg) const override
    {
        if (sys_->leakmon_)
            reg.add("leakmon", &sys_->leakmon_->stats());
    }

    System *sys_;
};

// ---------------------------------------------------------------------

namespace {

/** Process-unique System instance id for diagnostic dump names. */
std::uint64_t
nextDiagInstance()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

void
validateSystemConfig(const SystemConfig &cfg,
                     std::size_t num_workloads)
{
    if (cfg.numCores < 1)
        throw hard::ConfigError("numCores must be >= 1, got 0");
    if (num_workloads != cfg.numCores) {
        throw hard::ConfigError(
            detail::fmt("expected ", cfg.numCores, " workloads, got ",
                        num_workloads));
    }
    if (!cfg.shapeCore.empty() &&
        cfg.shapeCore.size() != cfg.numCores) {
        throw hard::ConfigError(
            detail::fmt("shapeCore mask has ", cfg.shapeCore.size(),
                        " entries but numCores is ", cfg.numCores));
    }
    if (!cfg.reqBinsPerCore.empty() &&
        cfg.reqBinsPerCore.size() != cfg.numCores) {
        throw hard::ConfigError(
            detail::fmt("reqBinsPerCore has ",
                        cfg.reqBinsPerCore.size(),
                        " entries but numCores is ", cfg.numCores));
    }
    if (!cfg.respBinsPerCore.empty() &&
        cfg.respBinsPerCore.size() != cfg.numCores) {
        throw hard::ConfigError(
            detail::fmt("respBinsPerCore has ",
                        cfg.respBinsPerCore.size(),
                        " entries but numCores is ", cfg.numCores));
    }
}

System::System(const SystemConfig &cfg,
               const std::vector<std::string> &workloads)
    : cfg_(cfg), diagStream_(&std::cerr),
      diagInstance_(nextDiagInstance())
{
    validateSystemConfig(cfg_, workloads.size());
    buildTopology(workloads, nullptr);
}

System::System(const TopologyConfig &topo)
    : System(topo.system, topo.workloads)
{
}

System::System(const SystemPlan &plan, const PlanOverrides &overrides)
    : cfg_(plan.config()), diagStream_(&std::cerr),
      diagInstance_(nextDiagInstance())
{
    // The plan validated the base configuration; only the overrides
    // can introduce new inconsistencies.
    if (overrides.seed)
        cfg_.seed = *overrides.seed;
    if (overrides.reqBinsPerCore) {
        if (!overrides.reqBinsPerCore->empty() &&
            overrides.reqBinsPerCore->size() != cfg_.numCores) {
            throw hard::ConfigError(
                detail::fmt("reqBinsPerCore has ",
                            overrides.reqBinsPerCore->size(),
                            " entries but numCores is ",
                            cfg_.numCores));
        }
        cfg_.reqBinsPerCore = *overrides.reqBinsPerCore;
    }
    if (overrides.respBinsPerCore) {
        if (!overrides.respBinsPerCore->empty() &&
            overrides.respBinsPerCore->size() != cfg_.numCores) {
            throw hard::ConfigError(
                detail::fmt("respBinsPerCore has ",
                            overrides.respBinsPerCore->size(),
                            " entries but numCores is ",
                            cfg_.numCores));
        }
        cfg_.respBinsPerCore = *overrides.respBinsPerCore;
    }
    buildTopology(plan.workloads(), &plan);
}

void
System::buildTopology(const std::vector<std::string> &workloads,
                      const SystemPlan *plan)
{
    // Baseline scheduler selection per mitigation.
    cfg_.mc.numCores = cfg_.numCores;
    switch (cfg_.mitigation) {
      case Mitigation::TP:
        cfg_.mc.scheduler = mem::SchedulerKind::TemporalPartition;
        cfg_.mc.tp.numDomains = cfg_.numCores;
        break;
      case Mitigation::FS:
        cfg_.mc.scheduler = mem::SchedulerKind::FixedService;
        cfg_.mc.fs.numCores = cfg_.numCores;
        cfg_.mc.bankPartitioning = true;
        break;
      default:
        // Keep the configured scheduler (FR-FCFS by default); the
        // substrate ablations swap in plain FCFS this way.
        break;
    }

    // Plan instantiation defers the tracer ring (a ~4 MB zero-init
    // that dominated construction; sweeps never enable tracing); the
    // legacy path keeps the eager ring for identical first-enable
    // latency. Both rings behave identically once enabled.
    tracer_ = plan != nullptr
                  ? std::make_unique<obs::Tracer>(obs::Tracer::DeferRing{})
                  : std::make_unique<obs::Tracer>();
    arena_ = std::make_unique<Arena>();
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mc, arena_.get());
    reqChannel_ = std::make_unique<noc::SharedChannel>(
        cfg_.numCores, cfg_.noc, "noc.req",
        obs::EventType::ReqChannelGrant);
    respChannel_ = std::make_unique<noc::SharedChannel>(
        cfg_.numCores, cfg_.noc, "noc.resp",
        obs::EventType::RespChannelGrant);

    const bool wants_req = cfg_.mitigation == Mitigation::ReqC ||
                           cfg_.mitigation == Mitigation::BDC ||
                           cfg_.mitigation == Mitigation::CS;
    const bool wants_resp = cfg_.mitigation == Mitigation::RespC ||
                            cfg_.mitigation == Mitigation::BDC;

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        auto pc = std::make_unique<PerCore>(cfg_.reqBins.edges);
        // Disjoint 1 TiB address windows keep workloads from aliasing.
        const Addr base = static_cast<Addr>(i) << 40;
        pc->trace = plan != nullptr
                        ? plan->compiled(i).instantiate(
                              cfg_.seed * 7919 + i, base)
                        : trace::makeWorkload(workloads[i],
                                              cfg_.seed * 7919 + i,
                                              base);
        pc->cache = std::make_unique<cache::CacheHierarchy>(
            i, cfg_.cache, arena_.get());
        pc->core = std::make_unique<core::Core>(i, cfg_.core, *pc->trace,
                                                *pc->cache,
                                                arena_.get());

        if (wants_req && coreIsShaped(i)) {
            shaper::RequestShaperConfig rc;
            if (cfg_.mitigation == Mitigation::CS) {
                // Ascend-style constant rate: strictly periodic issue
                // slots, dummies (fakes) filling empty slots.
                rc.bins = shaper::BinConfig::constantRate(
                    cfg_.csInterval, cfg_.csInterval * 10);
                rc.strictSlotInterval = cfg_.csInterval;
            } else {
                rc.bins = cfg_.reqBinsPerCore.empty()
                              ? cfg_.reqBins
                              : cfg_.reqBinsPerCore[i];
            }
            rc.generateFakes = cfg_.fakeTraffic;
            rc.randomizeTiming = cfg_.randomizeTiming;
            rc.fakeSequential = cfg_.fakeSequential;
            rc.fakeWriteFrac = cfg_.fakeWriteFrac;
            rc.fakeAddrBase = base + (1ULL << 39);
            pc->reqShaper = std::make_unique<shaper::RequestShaper>(
                i, rc, cfg_.seed * 104729 + i, arena_.get());
        }
        if (wants_resp && coreIsShaped(i)) {
            shaper::ResponseShaperConfig rc;
            rc.bins = cfg_.respBinsPerCore.empty()
                          ? cfg_.respBins
                          : cfg_.respBinsPerCore[i];
            rc.generateFakes = cfg_.fakeTraffic;
            pc->respShaper = std::make_unique<shaper::ResponseShaper>(
                i, rc, arena_.get());
        }
        if (cfg_.recordTraffic) {
            pc->intrinsicMon.setLogging(true);
            pc->busMon.setLogging(true);
            pc->respMon.setLogging(true);
            if (pc->reqShaper) {
                pc->reqShaper->preMonitor().setLogging(true);
                pc->reqShaper->postMonitor().setLogging(true);
            }
            if (pc->respShaper) {
                pc->respShaper->preMonitor().setLogging(true);
                pc->respShaper->postMonitor().setLogging(true);
            }
        }
        cores_.push_back(std::move(pc));
    }

    // Lay the components into the graph in Figure-5 tick order. The
    // subsystems are borrowed (the PerCore / System unique_ptrs above
    // own them); the stations are graph-owned. Graph indices and wire
    // subscriptions recorded here are the event kernel's wiring: a
    // delivery onto a subscribed wire wakes the consuming station at
    // the delivery cycle.
    graph_.emplace<FaultApplyStation>(this);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        PerCore &pc = *cores_[i];
        graph_.add(pc.core.get());
        pc.coreIdx = graph_.size() - 1;
        graph_.add(pc.cache.get());
        if (pc.reqShaper) {
            graph_.add(pc.reqShaper.get());
            pc.reqShaperIdx = graph_.size() - 1;
        }
        CorePipeStation *cp = graph_.emplace<CorePipeStation>(this, i);
        pc.corePipeIdx = graph_.size() - 1;
        pc.missBuffer.subscribe(cp);
        faultWakeIds_.push_back(
            static_cast<std::uint32_t>(pc.corePipeIdx));
    }
    graph_.add(reqChannel_.get());
    ReqLinkStation *rl = graph_.emplace<ReqLinkStation>(this);
    reqLinkIdx_ = graph_.size() - 1;
    reqChannel_->subscribeEgress(rl);
    graph_.add(mem_.get());
    memIdx_ = graph_.size() - 1;
    graph_.emplace<MemRouteStation>(this);
    memRouteIdx_ = graph_.size() - 1;
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        PerCore &pc = *cores_[i];
        if (pc.respShaper) {
            graph_.add(pc.respShaper.get());
            pc.respShaperIdx = graph_.size() - 1;
        }
        RespPipeStation *rp = graph_.emplace<RespPipeStation>(this, i);
        pc.respPipeIdx = graph_.size() - 1;
        pc.respBuffer.subscribe(rp);
        faultWakeIds_.push_back(
            static_cast<std::uint32_t>(pc.respPipeIdx));
    }
    graph_.add(respChannel_.get());
    RespLinkStation *rsl = graph_.emplace<RespLinkStation>(this);
    respChannel_->subscribeEgress(rsl);
    graph_.emplace<CreditCheckStation>(this);
    faultWakeIds_.push_back(static_cast<std::uint32_t>(graph_.size() - 1));
    graph_.emplace<IntervalStation>(this);

    // One fan-out wires the tracer into every component (sticky:
    // late-added components get it automatically).
    graph_.attachTracer(tracer_.get());
}

System::~System() = default;

Component &
System::addComponent(std::unique_ptr<Component> component)
{
    return *graph_.add(std::move(component));
}

bool
System::coreIsShaped(std::uint32_t i) const
{
    return cfg_.shapeCore.empty() || cfg_.shapeCore[i];
}

const core::Core &
System::coreAt(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

core::Core &
System::coreAt(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return *cores_[i]->core;
}

shaper::RequestShaper *
System::requestShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->reqShaper.get();
}

shaper::ResponseShaper *
System::responseShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respShaper.get();
}

const shaper::DistributionMonitor &
System::intrinsicMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->intrinsicMon;
}

const shaper::DistributionMonitor &
System::busMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->busMon;
}

const shaper::DistributionMonitor &
System::responseMonitor(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->respMon;
}

const std::vector<security::LatencySample> &
System::latencyLog(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->latencies;
}

std::uint64_t
System::servedReads(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->servedReads;
}

double
System::avgReadLatency(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    const PerCore &pc = *cores_[i];
    return pc.servedReads == 0
               ? 0.0
               : static_cast<double>(pc.latencySum) /
                     static_cast<double>(pc.servedReads);
}

void
System::clearEpochCounters()
{
    // Core::reset() clears the core-side epoch counters; the per-core
    // pipe stations clear the service counters.
    graph_.reset();
}

void
System::reconfigureShapers(const shaper::BinConfig &req_bins,
                           const shaper::BinConfig &resp_bins)
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        reconfigureShaper(i, req_bins, resp_bins);
}

void
System::reconfigureShaper(std::uint32_t core,
                          const shaper::BinConfig &req_bins,
                          const shaper::BinConfig &resp_bins)
{
    camo_assert(core < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[core];
    if (pc.reqShaper)
        pc.reqShaper->reconfigure(req_bins);
    if (pc.respShaper)
        pc.respShaper->reconfigure(resp_bins);
}

void
System::setFakeTraffic(bool on)
{
    for (auto &pc : cores_) {
        if (pc->reqShaper)
            pc->reqShaper->setGenerateFakes(on);
        if (pc->respShaper)
            pc->respShaper->setGenerateFakes(on);
    }
}

void
System::drainCacheOutgoing(PerCore &pc)
{
    std::vector<MemRequest> &out = pc.cache->outgoing();
    if (out.empty())
        return;
    for (MemRequest &req : out) {
        pc.intrinsicMon.record(now_);
        pc.missBuffer.push(std::move(req), now_);
    }
    pc.cache->clearOutgoing();
}

void
System::feedRequestPath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (injector_) {
        // Shaper-bypass fault: a real request jumps straight onto the
        // shared channel. Preconditions are checked before consulting
        // the injector so the one-shot only latches when it can fire.
        if (!pc.missBuffer.empty() && reqChannel_->canAccept(port) &&
            injector_->leakRequestDue(port, now_)) {
            MemRequest req = pc.missBuffer.pop();
            req.shaperOut = now_;
            pushToReqChannel(pc, std::move(req), false);
        }
        // Forced fake: a fake issued outside the shaper's schedule.
        if (reqChannel_->canAccept(port) &&
            injector_->forceFakeDue(port, now_)) {
            MemRequest fake;
            fake.id = (static_cast<ReqId>(port) << 48) |
                      (1ULL << 46) | ++forcedFakes_;
            fake.core = port;
            fake.isFake = true;
            fake.addr = (static_cast<Addr>(port) << 40) | (1ULL << 38);
            fake.created = now_;
            fake.shaperOut = now_;
            pushToReqChannel(pc, std::move(fake), false);
        }
    }

    if (pc.reqShaper) {
        if (injector_ && injector_->reqShaperWedged(port, now_))
            return; // the shaper's clock is gated off: nothing moves
        // Miss buffer -> shaper queue.
        while (!pc.missBuffer.empty() && pc.reqShaper->canAccept())
            pc.reqShaper->push(pc.missBuffer.pop(), now_);
        // Shaper -> shared request channel.
        const bool ready = reqChannel_->canAccept(port);
        if (auto released = pc.reqShaper->tick(now_, ready))
            pushToReqChannel(pc, std::move(*released), true);
        return;
    }

    // Unshaped: straight to the channel (one per cycle per port).
    if (!pc.missBuffer.empty() && reqChannel_->canAccept(port)) {
        MemRequest req = pc.missBuffer.pop();
        req.shaperOut = now_;
        pushToReqChannel(pc, std::move(req), false);
    }
}

void
System::routeMcResponses()
{
    // Injected-delay buffer: release entries that have come due.
    if (!delayedResp_.empty()) {
        for (auto it = delayedResp_.begin(); it != delayedResp_.end();) {
            if (it->releaseAt <= now_) {
                const std::uint32_t c = it->resp.core;
                camo_assert(c < cores_.size(),
                            "response for unknown core");
                cores_[c]->respBuffer.push(std::move(it->resp), now_);
                it = delayedResp_.erase(it);
            } else {
                ++it;
            }
        }
    }

    respScratch_.clear();
    mem_->drainResponses(now_, respScratch_);
    for (MemRequest &resp : respScratch_) {
        const std::uint32_t c = resp.core;
        camo_assert(c < cores_.size(), "response for unknown core");
        if (injector_) {
            Cycle delay = 0;
            switch (injector_->onResponse(now_, resp, &delay)) {
              case hard::FaultInjector::RespAction::Drop:
                stats_.inc("hard.resp_dropped");
                continue;
              case hard::FaultInjector::RespAction::Delay:
                stats_.inc("hard.resp_delayed");
                delayedResp_.push_back({now_ + delay, std::move(resp)});
                continue;
              case hard::FaultInjector::RespAction::Duplicate:
                stats_.inc("hard.resp_duplicated");
                cores_[c]->respBuffer.push(resp, now_); // extra copy
                break;
              case hard::FaultInjector::RespAction::Pass:
                break;
            }
        }
        cores_[c]->respBuffer.push(std::move(resp), now_);
    }
}

void
System::feedResponsePath(PerCore &pc)
{
    const std::uint32_t port = pc.core->id();

    if (pc.respShaper) {
        if (injector_ && injector_->respShaperWedged(port, now_))
            return; // wedged: responses pile up behind it
        while (!pc.respBuffer.empty() && pc.respShaper->canAccept())
            pc.respShaper->push(pc.respBuffer.pop(), now_);
        // Forward accumulated priority warnings to the scheduler.
        if (const std::uint32_t boost =
                pc.respShaper->takePriorityWarning()) {
            mem_->boostPriority(port, boost);
            // Boost tokens re-segment the controller's candidate
            // pool, which can advance its earliest-pick bound (the
            // FCFS-family head changes); re-derive it this cycle.
            mem_->scheduleAt(now_);
        }
        const bool ready = respChannel_->canAccept(port);
        if (auto released = pc.respShaper->tick(now_, ready))
            pushToRespChannel(pc, std::move(*released), true);
        return;
    }

    if (!pc.respBuffer.empty() && respChannel_->canAccept(port)) {
        MemRequest resp = pc.respBuffer.pop();
        resp.respShaperOut = now_;
        pushToRespChannel(pc, std::move(resp), false);
    }
}

void
System::deliverResponses()
{
    // One delivery per cycle: the return channel's bandwidth.
    if (!respChannel_->hasEgress(now_))
        return;
    MemRequest resp = respChannel_->popEgress(now_);
    const std::uint32_t c = resp.core;
    camo_assert(c < cores_.size(), "response for unknown core");
    PerCore &pc = *cores_[c];
    resp.delivered = now_;
    pc.respMon.record(now_, resp.isFake);

    if (resp.isFake) {
        stats_.inc("responses.fake.dropped");
        CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                         .type = obs::EventType::FakeRespDropped,
                         .core = resp.core, .id = resp.id);
        return; // pure bus activity; no core state waits on it
    }

    // Lifecycle retire runs BEFORE the cache fill: a duplicate
    // response must be reported as such, not as the MSHR-bookkeeping
    // panic it would trigger downstream.
    if (checkers_ && checkers_->config().lifecycle && !resp.isWrite)
        checkers_->lifecycle().onRetire(resp.id, resp.core, now_);
    if (pc.inflightReads > 0)
        --pc.inflightReads;

    CAMO_TRACE_EVENT(tracer_.get(), .at = now_,
                     .type = obs::EventType::RespDelivered,
                     .core = resp.core, .id = resp.id,
                     .addr = resp.addr, .arg = resp.totalLatency());
    ++pc.servedReads;
    pc.latencySum += resp.totalLatency();
    if (cfg_.recordLatencies)
        pc.latencies.push_back({now_, resp.totalLatency()});
    // The fill mutates the core from a later graph position: settle
    // the core's batched idle accounting first (its pre-fill stall
    // state is what those cycles looked like), then apply the fill;
    // the wake lands next cycle — exactly when the tick loop's core
    // would have seen it.
    catchUp(pc.coreIdx, now_);
    const Cycle usable = pc.cache->onFill(resp.addr, now_);
    pc.core->onFill(resp.addr, usable);
    pc.core->scheduleAt(now_);
    // Fills can displace dirty lines: collect the writebacks.
    drainCacheOutgoing(pc);
}

void
System::registerStats(obs::StatRegistry &reg) const
{
    reg.add("system", &stats_);
    // The registry borrows groups, so refresh the arena mirror from
    // the live counters at registration time (both summaryJson and
    // diagnosticJson build a fresh registry right before export).
    arenaStats_.clear();
    arenaStats_.inc("alloc_calls", arena_->allocCalls());
    arenaStats_.inc("free_calls", arena_->freeCalls());
    arenaStats_.inc("free_list_hits", arena_->freeListHits());
    arenaStats_.inc("bytes_requested", arena_->bytesRequested());
    arenaStats_.inc("bytes_reserved", arena_->bytesReserved());
    arenaStats_.inc("heap_fallbacks", arena_->heapFallbacks());
    arenaStats_.inc("chunks", arena_->chunkCount());
    reg.add("system.arena", &arenaStats_);
    // Every component registers its own groups; the registry's JSON
    // view is key-sorted, so the fan-out order is immaterial.
    graph_.registerStats(reg);
}

void
System::enableIntervalStats(Cycle period)
{
    std::vector<std::string> cols{"mc.readq", "mc.writeq"};
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i);
        cols.push_back(prefix + ".ipc");
        cols.push_back(prefix + ".bus.real");
        cols.push_back(prefix + ".bus.fake");
        cols.push_back(prefix + ".req_credits");
        cols.push_back(prefix + ".resp_credits");
    }
    if (leakmon_) {
        cols.push_back("leakmon.window_mi_bits");
        intervalHasLeakCol_ = true;
    }
    interval_ =
        std::make_unique<obs::IntervalCollector>(period, std::move(cols));
    for (auto &pc : cores_) {
        pc->ivRetired = pc->core->retired();
        pc->ivCycles = pc->core->cycles();
        pc->ivBusReal = pc->busMon.realCount();
        pc->ivBusFake = pc->busMon.fakeCount();
    }
}

void
System::sampleIntervalAt(Cycle at)
{
    // Under the event kernel the interval station runs near the end
    // of the graph: every component due this cycle has already
    // ticked, and catching the rest up through the boundary settles
    // their batched idle accounting, so the row reads exactly what
    // the per-cycle loop would have shown at `at`.
    if (kernelActive_ && inCycle_)
        syncAllThrough(at, procIdx_);
    std::vector<double> row;
    row.reserve(interval_->columns().size());
    row.push_back(static_cast<double>(mem_->readQueueSize()));
    row.push_back(static_cast<double>(mem_->writeQueueSize()));
    for (auto &pc : cores_) {
        const std::uint64_t retired = pc->core->retired();
        const std::uint64_t cycles = pc->core->cycles();
        const std::uint64_t dc = cycles - pc->ivCycles;
        row.push_back(dc ? static_cast<double>(retired - pc->ivRetired) /
                               static_cast<double>(dc)
                         : 0.0);
        const std::uint64_t real = pc->busMon.realCount();
        const std::uint64_t fake = pc->busMon.fakeCount();
        row.push_back(static_cast<double>(real - pc->ivBusReal));
        row.push_back(static_cast<double>(fake - pc->ivBusFake));
        row.push_back(pc->reqShaper
                          ? pc->reqShaper->bins().creditsTotal()
                          : 0.0);
        row.push_back(pc->respShaper
                          ? pc->respShaper->bins().creditsTotal()
                          : 0.0);
        pc->ivRetired = retired;
        pc->ivCycles = cycles;
        pc->ivBusReal = real;
        pc->ivBusFake = fake;
    }
    if (intervalHasLeakCol_)
        row.push_back(leakmon_->lastWindowMiBits());
    interval_->addRow(at, std::move(row));
}

hard::ShaperContract
System::contractOf(const shaper::BinConfig &cfg)
{
    hard::ShaperContract c;
    c.edges = cfg.edges;
    c.credits = cfg.credits;
    c.replenishPeriod = cfg.replenishPeriod;
    return c;
}

void
System::enableCheckers(const hard::CheckerConfig &cfg)
{
    checkers_ = std::make_unique<hard::CheckerSet>(cfg);
    if (cfg.protocol) {
        for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
            mem::MemoryController &mc = mem_->channel(c);
            mem_->channel(c).setCommandObserver(
                checkers_->addProtocolChecker(mc.config().org,
                                              mc.config().timing));
        }
    }
    if (cfg.conservation) {
        for (std::uint32_t i = 0; i < cores_.size(); ++i) {
            const PerCore &pc = *cores_[i];
            if (pc.reqShaper) {
                checkers_->reqConservation().setContract(
                    i, contractOf(pc.reqShaper->bins().config()));
            }
            if (pc.respShaper) {
                checkers_->respConservation().setContract(
                    i, contractOf(pc.respShaper->bins().config()));
            }
        }
    }
    graph_.attachCheckers(checkers_.get());
}

void
System::setFaultInjector(hard::FaultInjector *injector)
{
    injector_ = injector;
    graph_.attachInjector(injector);
}

void
System::enableWatchdog(const hard::WatchdogConfig &cfg)
{
    watchdog_ = std::make_unique<hard::Watchdog>(cfg);
}

void
System::setDiagnosticDir(const std::string &dir)
{
    diagDir_ = dir;
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // A failure here is not fatal: emitDiagnostic falls back to the
    // diagnostic stream when the dump file cannot be opened.
}

std::string
System::emitDiagnostic(const std::string &tag,
                       const std::string &dump) const
{
    if (diagDir_.empty()) {
        if (diagStream_)
            *diagStream_ << dump << "\n";
        return {};
    }
    // Sanitize the tag into a filename fragment (reasons carry
    // spaces/colons); uniqueness comes from (pid, instance, seq).
    std::string safe;
    for (const char c : tag) {
        if (safe.size() >= 40)
            break;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        safe.push_back(ok ? c : '-');
    }
    std::ostringstream name;
    name << diagDir_ << "/camo-diag-p" << ::getpid() << "-i"
         << diagInstance_ << "-" << diagSeq_++ << "-" << safe
         << ".json";
    std::ofstream os(name.str());
    if (!os) {
        // Never mask the error being raised: fall back to the stream.
        if (diagStream_)
            *diagStream_ << dump << "\n";
        return {};
    }
    os << dump << "\n";
    return name.str();
}

obs::json::Value
System::diagnosticJson(const std::string &reason) const
{
    auto root = obs::json::Value::makeObject();
    root["reason"] = reason;
    root["cycle"] = static_cast<std::uint64_t>(now_);

    auto queues = obs::json::Value::makeObject();
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        auto q = obs::json::Value::makeObject();
        q["miss_buffer"] = static_cast<std::uint64_t>(
            pc.missBuffer.size());
        q["resp_buffer"] = static_cast<std::uint64_t>(
            pc.respBuffer.size());
        q["req_shaper_queue"] = static_cast<std::uint64_t>(
            pc.reqShaper ? pc.reqShaper->queueDepth() : 0);
        q["resp_shaper_queue"] = static_cast<std::uint64_t>(
            pc.respShaper ? pc.respShaper->queueDepth() : 0);
        q["inflight_reads"] = pc.inflightReads;
        q["req_ingress"] = static_cast<std::uint64_t>(
            reqChannel_->ingressDepth(i));
        q["resp_ingress"] = static_cast<std::uint64_t>(
            respChannel_->ingressDepth(i));
        q["degraded"] = pc.degraded;
        queues["core" + std::to_string(i)] = std::move(q);
    }
    queues["mc_readq"] =
        static_cast<std::uint64_t>(mem_->readQueueSize());
    queues["mc_writeq"] =
        static_cast<std::uint64_t>(mem_->writeQueueSize());
    queues["req_egress"] =
        static_cast<std::uint64_t>(reqChannel_->egressDepth());
    queues["resp_egress"] =
        static_cast<std::uint64_t>(respChannel_->egressDepth());
    queues["delayed_responses"] =
        static_cast<std::uint64_t>(delayedResp_.size());
    root["queues"] = std::move(queues);

    obs::StatRegistry reg;
    registerStats(reg);
    root["stats"] = reg.toJson();

    if (tracer_->enabled()) {
        const std::size_t tail =
            watchdog_ ? watchdog_->config().traceTail : 64;
        const std::vector<obs::Event> events = tracer_->snapshot();
        auto arr = obs::json::Value::makeArray();
        const std::size_t start =
            events.size() > tail ? events.size() - tail : 0;
        for (std::size_t i = start; i < events.size(); ++i) {
            if (auto v = obs::json::tryParse(
                    obs::eventToJson(events[i]))) {
                arr.push(std::move(*v));
            }
        }
        root["trace_tail"] = std::move(arr);
    }
    return root;
}

void
System::degradeShaper(std::uint32_t i)
{
    camo_assert(i < cores_.size(), "core index out of range");
    PerCore &pc = *cores_[i];
    if (pc.degraded)
        return;
    pc.degraded = true;
    stats_.inc("hard.shaper_degraded");
    if (pc.reqShaper) {
        const shaper::BinConfig safe =
            shaper::BinConfig::failSecure(pc.reqShaper->bins().config());
        pc.reqShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->reqConservation().setContract(i, contractOf(safe));
    }
    if (pc.respShaper) {
        const shaper::BinConfig safe = shaper::BinConfig::failSecure(
            pc.respShaper->bins().config());
        pc.respShaper->reconfigure(safe);
        if (checkers_ && checkers_->config().conservation)
            checkers_->respConservation().setContract(i,
                                                      contractOf(safe));
    }
    // A mid-run degradation swaps the shapers' schedules out from
    // under the driving stations: force both to requery their bounds.
    if (kernelActive_) {
        wakeAt(static_cast<std::uint32_t>(pc.corePipeIdx), now_ + 1);
        wakeAt(static_cast<std::uint32_t>(pc.respPipeIdx), now_ + 1);
    }
    // Fake generation is deliberately left untouched: degradation must
    // never reveal more than the schedule it replaces.
    camo_warn("core ", i, " shapers degraded to the fail-secure ",
              "constant-rate schedule at cycle ", now_);
}

bool
System::shaperDegraded(std::uint32_t i) const
{
    camo_assert(i < cores_.size(), "core index out of range");
    return cores_[i]->degraded;
}

void
System::checkForLeaks() const
{
    if (!checkers_ || !checkers_->config().lifecycle)
        return;
    const std::vector<hard::LeakedRequest> leaks =
        checkers_->lifecycle().leaked(now_,
                                      checkers_->config().leakAge);
    if (leaks.empty())
        return;
    std::ostringstream os;
    os << leaks.size() << " request(s) issued but never retired:";
    const std::size_t shown = std::min<std::size_t>(leaks.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        os << " id=" << leaks[i].id << " core=" << leaks[i].core
           << " issued=" << leaks[i].issuedAt << ";";
    }
    if (leaks.size() > shown)
        os << " ...";
    const std::string dump = diagnosticJson("request-leak").dump(2);
    const std::string path = emitDiagnostic("request-leak", dump);
    throw hard::InvariantViolation(os.str(), dump, path);
}

void
System::onShaperViolation(std::uint32_t core, const std::string &msg)
{
    stats_.inc("hard.shaper_violations");
    if (checkers_->config().recoverShaper) {
        camo_warn("shaper invariant violated, degrading core ", core,
                  ": ", msg);
        degradeShaper(core);
        return;
    }
    syncForDiagnostic();
    const std::string dump =
        diagnosticJson("shaper-invariant: " + msg).dump(2);
    const std::string path = emitDiagnostic("shaper-invariant", dump);
    throw hard::InvariantViolation(msg, dump, path);
}

void
System::pushToReqChannel(PerCore &pc, MemRequest req,
                         bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_) {
        const bool tracked = !req.isFake && !req.isWrite;
        if (checkers_->config().conservation &&
            checkers_->reqConservation().hasContract(port)) {
            if (shaper_release)
                checkers_->reqConservation().onShaperRelease(port, now_);
            const bool fakes_on =
                pc.reqShaper && pc.reqShaper->generateFakes();
            const std::string v = checkers_->reqConservation().onBusPush(
                port, now_, req.isFake, fakes_on);
            if (!v.empty())
                onShaperViolation(port, v);
        }
        if (checkers_->config().lifecycle && tracked)
            checkers_->lifecycle().onIssue(req.id, port, now_);
    }
    if (!req.isFake && !req.isWrite)
        ++pc.inflightReads;
    pc.busMon.record(now_, req.isFake);
    reqChannel_->push(port, std::move(req), now_);
}

void
System::pushToRespChannel(PerCore &pc, MemRequest resp,
                          bool shaper_release)
{
    const std::uint32_t port = pc.core->id();
    if (checkers_ && checkers_->config().conservation &&
        checkers_->respConservation().hasContract(port)) {
        if (shaper_release)
            checkers_->respConservation().onShaperRelease(port, now_);
        const bool fakes_on =
            pc.respShaper && pc.respShaper->generateFakes();
        const std::string v = checkers_->respConservation().onBusPush(
            port, now_, resp.isFake, fakes_on);
        if (!v.empty())
            onShaperViolation(port, v);
    }
    respChannel_->push(port, std::move(resp), now_);
}

void
System::checkCreditState()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const PerCore &pc = *cores_[i];
        if (pc.reqShaper &&
            checkers_->reqConservation().hasContract(i)) {
            const std::string v =
                checkers_->reqConservation().onCreditState(
                    i, pc.reqShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
        if (pc.respShaper &&
            checkers_->respConservation().hasContract(i)) {
            const std::string v =
                checkers_->respConservation().onCreditState(
                    i, pc.respShaper->bins().credits());
            if (!v.empty())
                onShaperViolation(i, v);
        }
    }
}

void
System::applyInjectedFaults()
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        PerCore &pc = *cores_[i];
        if (pc.reqShaper || pc.respShaper) {
            if (injector_->corruptCreditsDue(i, now_)) {
                if (pc.reqShaper) {
                    pc.reqShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
                if (pc.respShaper) {
                    pc.respShaper->binsMut().injectLiveCredits(
                        2 * shaper::kMaxCreditsPerBin);
                }
            }
            if (injector_->starveCreditsDue(i, now_)) {
                if (pc.reqShaper)
                    pc.reqShaper->binsMut().injectStarvation();
                if (pc.respShaper)
                    pc.respShaper->binsMut().injectStarvation();
            }
        }
        if (pc.reqShaper && injector_->malformedConfigDue(i, now_)) {
            // Round-trip the live configuration through the hardware
            // ConfigPort with a zeroed register image: the decode-side
            // validation must reject it and the old schedule must
            // survive.
            shaper::RegisterFile regs =
                shaper::encodeConfig(pc.reqShaper->bins().config());
            std::fill(regs.words.begin(), regs.words.end(), 0u);
            try {
                pc.reqShaper->reconfigure(shaper::decodeConfig(regs));
                stats_.inc("hard.config_accepted_malformed");
            } catch (const hard::ConfigError &) {
                stats_.inc("hard.config_rejected");
            }
        }
    }
}

void
System::pollWatchdog(Cycle next_event)
{
    obs::Profiler::Scope scope(prof_, prof_ ? profWatchdogNode_ : 0);
    std::vector<hard::CoreProgress> progress;
    progress.reserve(cores_.size());
    for (const auto &pc : cores_) {
        hard::CoreProgress cp;
        cp.progress = pc->core->retired() + pc->servedReads;
        cp.pending =
            pc->inflightReads > 0 || !pc->missBuffer.empty() ||
            !pc->respBuffer.empty() ||
            (pc->reqShaper && pc->reqShaper->queueDepth() > 0) ||
            (pc->respShaper && pc->respShaper->queueDepth() > 0);
        progress.push_back(cp);
    }
    if (const auto reason =
            watchdog_->poll(now_, progress, next_event)) {
        stats_.inc("hard.watchdog_fired");
        syncForDiagnostic();
        const std::string dump = diagnosticJson(*reason).dump(2);
        const std::string path = emitDiagnostic("watchdog", dump);
        throw hard::WatchdogTimeout(*reason, dump, path);
    }
}

void
System::enableLeakMonitor(const obs::LeakMonitorConfig &cfg)
{
    if (cfg.core >= cores_.size()) {
        throw hard::ConfigError("leakmon core " +
                                std::to_string(cfg.core) +
                                " out of range (have " +
                                std::to_string(cores_.size()) +
                                " cores)");
    }
    if (leakmon_)
        throw hard::ConfigError("leakage monitor already enabled");
    PerCore &pc = *cores_[cfg.core];
    pc.intrinsicMon.setLogging(true);
    pc.busMon.setLogging(true);
    leakmon_ =
        std::make_unique<obs::LeakMonitor>(cfg, pc.intrinsicMon,
                                           pc.busMon);
    graph_.emplace<LeakMonStation>(this);
}

void
System::onLeakageAlert(const std::string &msg)
{
    stats_.inc("leakmon.alerts");
    syncForDiagnostic();
    const std::string dump =
        diagnosticJson("leakage-alert: " + msg).dump(2);
    const std::string path = emitDiagnostic("leakage-alert", dump);
    throw hard::LeakageAlert(msg, dump, path);
}

void
System::setProfiler(obs::Profiler *prof)
{
    prof_ = prof;
    profTickIds_.clear();
    profSkipIds_.clear();
    if (!prof_)
        return;
    const obs::Profiler::NodeId root = prof_->root();
    profTickNode_ = prof_->child(root, "tick");
    profNextEvNode_ = prof_->child(root, "next_event");
    profSkipNode_ = prof_->child(root, "skip");
    profWatchdogNode_ = prof_->child(root, "watchdog");
    syncProfiler();
}

void
System::syncProfiler()
{
    // Components can be added after setProfiler (stations, late
    // attachments); extend the cached id vectors to match.
    const auto &order = graph_.order();
    for (std::size_t i = profTickIds_.size(); i < order.size(); ++i) {
        profTickIds_.push_back(
            prof_->child(profTickNode_, order[i]->name()));
        profSkipIds_.push_back(
            prof_->child(profSkipNode_, order[i]->name()));
    }
}

void
System::tick()
{
    ++now_;
    if (!prof_) {
        graph_.tick(now_);
        return;
    }
    profiledTick();
}

void
System::profiledTick()
{
    syncProfiler();
    obs::Profiler::Timer all;
    const auto &order = graph_.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
        obs::Profiler::Timer t;
        order[i]->tick(now_);
        prof_->add(profTickIds_[i], t.elapsedNs());
    }
    prof_->add(profTickNode_, all.elapsedNs());
}

Cycle
System::nextEventCycle() const
{
    if (!prof_)
        return graph_.nextEventCycle(now_, now_ + 1);
    obs::Profiler::Timer t;
    const Cycle ev = graph_.nextEventCycle(now_, now_ + 1);
    prof_->add(profNextEvNode_, t.elapsedNs());
    return ev;
}

void
System::run(Cycle cycles)
{
    if (!prof_) {
        runLoop(cycles);
        return;
    }
    obs::Profiler::Scope scope(prof_, prof_->root());
    runLoop(cycles);
}

void
System::runLoop(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!cfg_.fastForward) {
        while (now_ < end) {
            tick();
            // The plain loop computes nextEventCycle() only when a
            // poll is due (it is the expensive part of the poll).
            if (watchdog_ && watchdog_->due(now_))
                pollWatchdog(nextEventCycle());
        }
        return;
    }
    // Event-driven kernel: pop due cycles off the calendar queue and
    // jump the clock between them. No per-cycle polling, no probe
    // backoff — components self-schedule and every wake source is a
    // sound lower bound, so spurious wakes cost host time only while
    // missed wakes cannot happen.
    rebuildWakes();
    struct KernelGuard
    {
        System *s;
        ~KernelGuard()
        {
            s->kernelActive_ = false;
            s->inCycle_ = false;
        }
    } guard{this};
    while (now_ < end) {
        const Cycle next = sched_.nextDueCycle();
        if (next == kNoCycle) {
            // No component reports any future event. With pending work
            // this is a hard deadlock the clock jump would otherwise
            // silently skip to end-of-run — let the watchdog decide.
            if (watchdog_)
                pollWatchdog(kNoCycle);
            break;
        }
        if (next > end)
            break;
        processCycle(next);
        if (watchdog_ && watchdog_->due(now_))
            pollWatchdog(sched_.nextDueCycle());
    }
    // Settle every component's idle accounting at end-of-run so stats
    // match the per-cycle reference loop bit for bit.
    syncAllThrough(end, graph_.order().size());
    now_ = end;
}

void
System::wakeAt(std::uint32_t id, Cycle at)
{
    if (!kernelActive_ || at == kNoCycle || driven_[id])
        return;
    if (inCycle_ && at <= procCycle_) {
        // Visibility rule reproducing topology-order semantics of the
        // per-cycle loop: later components in the graph still tick
        // this cycle; earlier ones already ticked, so the state they
        // would have seen materialises next cycle; the in-flight
        // component re-queries its own bound right after its tick.
        if (id > procIdx_) {
            dueBits_[id >> 6] |= 1ULL << (id & 63);
            return;
        }
        if (id == procIdx_)
            return;
        sched_.scheduleAt(id, procCycle_ + 1);
        return;
    }
    const Cycle floor = inCycle_ ? procCycle_ + 1 : now_ + 1;
    sched_.scheduleAt(id, std::max(at, floor));
}

void
System::rescheduleAt(std::uint32_t id, Cycle at)
{
    if (!kernelActive_ || driven_[id])
        return;
    const Cycle floor = inCycle_ ? procCycle_ + 1 : now_ + 1;
    sched_.reschedule(id, at == kNoCycle ? kNoCycle : std::max(at, floor));
}

void
System::catchUp(std::size_t i, Cycle through)
{
    if (!kernelActive_)
        return;
    const Cycle synced = lastSync_[i];
    if (synced >= through)
        return;
    Component *c = graph_.order()[i];
    lastSync_[i] = through;
    if (!prof_) {
        c->skipIdleCycles(through - synced);
        return;
    }
    obs::Profiler::Timer t;
    c->skipIdleCycles(through - synced);
    const std::uint64_t ns = t.elapsedNs();
    prof_->add(profSkipNode_, ns);
    prof_->add(profSkipIds_[i], ns);
}

void
System::syncAllThrough(Cycle through, std::size_t limit)
{
    for (std::size_t i = 0; i < limit; ++i) {
        if (!driven_[i])
            catchUp(i, through);
    }
}

void
System::syncForDiagnostic()
{
    // Bring every component to the state the per-cycle loop would
    // show at this point of cycle procCycle_: components at or before
    // procIdx_ have ticked it, later ones have only finished the
    // previous cycle.
    if (!kernelActive_)
        return;
    const std::size_t n = graph_.order().size();
    for (std::size_t i = 0; i < n && i < lastSync_.size(); ++i) {
        if (driven_[i])
            continue;
        const Cycle through =
            inCycle_ ? (i <= procIdx_ ? procCycle_ : procCycle_ - 1)
                     : now_;
        catchUp(i, through);
    }
}

void
System::wakeFaultTargets(Cycle at)
{
    for (const std::uint32_t id : faultWakeIds_)
        wakeAt(id, at);
}

void
System::rebuildWakes()
{
    const auto &order = graph_.order();
    const std::size_t n = order.size();
    // Shapers are "driven": only their owning pipe station ticks,
    // skips, and bounds them, so the kernel never schedules them.
    driven_.assign(n, 0);
    for (const auto &pc : cores_) {
        if (pc->reqShaperIdx != PerCore::kNoIndex)
            driven_[pc->reqShaperIdx] = 1;
        if (pc->respShaperIdx != PerCore::kNoIndex)
            driven_[pc->respShaperIdx] = 1;
    }
    // A core tick can mint an LLC miss into the cache's outgoing
    // buffer (a plain vector nobody subscribes to) and a mem tick can
    // retire a response; wake the draining station in both cases.
    wakeAfterTick_.assign(n, kNoTarget);
    for (const auto &pc : cores_)
        wakeAfterTick_[pc->coreIdx] =
            static_cast<std::uint32_t>(pc->corePipeIdx);
    wakeAfterTick_[memIdx_] = static_cast<std::uint32_t>(memRouteIdx_);
    lastSync_.assign(n, now_);
    dueBits_.assign((n + 63) / 64, 0);
    sched_.reset(n);
    kernelActive_ = true;
    inCycle_ = false;
    for (std::size_t i = 0; i < n; ++i) {
        order[i]->attachWakeSink(this, static_cast<std::uint32_t>(i));
        if (driven_[i])
            continue;
        const Cycle b = order[i]->nextEventCycle(now_, now_ + 1);
        if (b != kNoCycle)
            sched_.scheduleAt(static_cast<std::uint32_t>(i),
                              std::max(b, now_ + 1));
    }
    if (prof_)
        syncProfiler();
}

void
System::processCycle(Cycle cycle)
{
    now_ = cycle;
    procCycle_ = cycle;
    inCycle_ = true;
    sched_.popDue(cycle, dueScratch_);
    for (const std::uint32_t id : dueScratch_)
        dueBits_[id >> 6] |= 1ULL << (id & 63);
    const auto &order = graph_.order();
    // Scan the due bitmask in index order = topology order; same-cycle
    // wakes of later components land in the mask and still run this
    // cycle, exactly as the per-cycle loop would tick them.
    for (std::size_t w = 0; w < dueBits_.size(); ++w) {
        while (dueBits_[w] != 0) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(dueBits_[w]));
            dueBits_[w] &= dueBits_[w] - 1;
            const std::size_t i = (w << 6) | b;
            procIdx_ = i;
            Component *c = order[i];
            catchUp(i, cycle - 1);
            if (prof_) {
                obs::Profiler::Timer t;
                c->tick(cycle);
                const std::uint64_t ns = t.elapsedNs();
                prof_->add(profTickNode_, ns);
                prof_->add(profTickIds_[i], ns);
            } else {
                c->tick(cycle);
            }
            lastSync_[i] = cycle;
            // Re-arm with a min-merge (NOT reschedule): a future
            // self-wake issued during the tick must survive. The
            // clamp to cycle+1 guards now-based bound arithmetic.
            const Cycle nb = c->nextEventCycle(cycle, cycle + 1);
            if (nb != kNoCycle)
                sched_.scheduleAt(static_cast<std::uint32_t>(i),
                                  std::max(nb, cycle + 1));
            const std::uint32_t tgt = wakeAfterTick_[i];
            if (tgt != kNoTarget) {
                if (i == memIdx_) {
                    // The route station only has work when a response
                    // is (or becomes) ready; waking it on every
                    // controller tick would reintroduce per-cycle
                    // polling on the DRAM-busy path.
                    const Cycle ready = mem_->nextResponseReady();
                    if (ready != kNoCycle)
                        wakeAt(tgt, std::max(cycle, ready));
                    // A reqlink blocked on a full MC queue sleeps
                    // (its bound is kNoCycle); canAccept only flips
                    // back inside an MC tick, so re-wake it here. The
                    // station's index precedes memIdx_, so the wake
                    // lands on cycle+1 — the per-cycle loop likewise
                    // used the freed slot one cycle later.
                    if (reqChannel_->egressDepth() > 0 &&
                        mem_->canAccept(reqChannel_->egressFront().addr,
                                        reqChannel_->egressFront().isWrite))
                        wakeAt(static_cast<std::uint32_t>(reqLinkIdx_),
                               cycle);
                } else {
                    wakeAt(tgt, cycle);
                }
            }
        }
    }
    inCycle_ = false;
}

} // namespace camo::sim
