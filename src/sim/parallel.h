/**
 * @file
 * Parallel experiment engine: a fixed-size worker pool plus batch
 * wrappers that fan *independent* simulations across threads.
 *
 * Determinism contract: every job owns its System (PR 1 made a System
 * self-contained: its own RNGs, tracer, stats), and every RNG seed is
 * derived from the job's *index* via deriveSeed() -- never from a
 * shared RNG or from thread scheduling. Results land in a pre-sized
 * vector at the job's submission index. Together these make parallel
 * output byte-identical to sequential: runConfigsParallel(jobs=N)
 * equals runConfigsParallel(jobs=1) equals a plain runConfig() loop.
 */

#ifndef CAMO_SIM_PARALLEL_H
#define CAMO_SIM_PARALLEL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/ga/genetic.h"
#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/hard/retry.h"
#include "src/sim/plan.h"
#include "src/sim/runner.h"
#include "src/sim/system.h"

namespace camo::sim {

/** Attempts per job before a TransientFault becomes permanent. */
inline constexpr unsigned kDefaultWorkerAttempts = 3;

/** Seed stream id for per-attempt seed re-derivation (see
 *  parallelMapRetry): retried attempts must not replay the RNG
 *  sequence that just faulted. */
inline constexpr std::uint64_t kRetrySeedStream = 0xFA117;

/**
 * Seed stream id for the multi-process shard protocol
 * (src/sim/shard.h): each forked shard authenticates its result
 * frame with deriveSeed(base, kShardSeedStream, shard). Never feeds a
 * simulation RNG — job seeds are byte-identical with and without
 * sharding — but it draws from the same deriveSeed space as the
 * sweep (stream 0), GA (generation + 1), and retry streams, so it
 * must stay disjoint from them (tests pin this).
 */
inline constexpr std::uint64_t kShardSeedStream = 0xD15C0;

/**
 * Worker count used when a caller passes jobs == 0: the CAMO_JOBS
 * environment variable if set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/**
 * Derive an independent RNG seed from (base, stream, index) with a
 * splitmix64-style mix. Pure function of its arguments, so a job's
 * seed depends only on *which* job it is -- not on evaluation order,
 * thread count, or any shared RNG state. Never returns 0.
 *
 * @param base   experiment master seed (SystemConfig::seed)
 * @param stream independent sequence id (e.g. GA generation + 1)
 * @param index  job index within the stream (e.g. GA child index)
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream,
                         std::uint64_t index);

/**
 * Fixed-size pool of worker threads executing indexed jobs.
 *
 * The pool holds jobs-1 threads; the calling thread participates in
 * forEachIndex(), so `jobs` simulations run concurrently. With
 * jobs <= 1 no threads are spawned and everything runs inline on the
 * caller (identical results -- see the determinism contract above).
 */
class WorkerPool
{
  public:
    /** @param jobs concurrent workers (0 = defaultJobs()). */
    explicit WorkerPool(unsigned jobs = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until all n calls
     * return. Indices are claimed dynamically, so `fn` must not
     * depend on which thread runs which index (jobs built per the
     * determinism contract never do). The first exception thrown by
     * any call is rethrown here after the batch drains.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    /** Claim + run one index of batch `epoch`; false when none left
     *  (or the batch changed under a stale worker). */
    bool runOne(const std::function<void(std::size_t)> &fn,
                std::uint64_t epoch);

    unsigned jobs_;
    std::vector<std::thread> threads_;

    std::mutex m_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::uint64_t epoch_ = 0; ///< batch id, guards stale claims
    std::size_t next_ = 0;    ///< next unclaimed index
    std::size_t total_ = 0;   ///< batch size
    std::size_t pending_ = 0; ///< claimed-or-unclaimed not yet finished
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Map fn over [0, n) with `jobs` concurrent workers; out[i] = fn(i)
 * in submission order regardless of completion order.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, unsigned jobs, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    WorkerPool pool(jobs);
    pool.forEachIndex(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * parallelMap with structured recovery: fn(i, attempt) is retried on
 * hard::TransientFault up to policy.attempts times per job (attempt =
 * 0, 1, ...), waiting policy.delayUsFor(i, attempt) before each retry
 * so a transient-fault storm backs off instead of busy-respawning.
 * Every other exception — ConfigError, InvariantViolation,
 * WatchdogTimeout, std::exception — propagates immediately through
 * forEachIndex's first-exception path; only faults declared transient
 * are worth re-running. The attempt number is passed to fn so it can
 * re-derive seeds (deriveSeed(seed, kRetrySeedStream, attempt)):
 * retrying a genuinely nondeterministic fault with the exact same RNG
 * sequence would just replay it. Deterministic: the retry decision
 * depends only on what fn(i, attempt) throws, and the backoff delay
 * only on (policy, i, attempt) — never on thread timing — so results
 * stay byte-identical across jobs=1 / jobs=N.
 */
template <typename Fn>
auto
parallelMapRetry(std::size_t n, unsigned jobs,
                 const hard::RetryPolicy &policy, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}, unsigned{0}))>
{
    std::vector<decltype(fn(std::size_t{0}, unsigned{0}))> out(n);
    WorkerPool pool(jobs);
    const unsigned tries = policy.attempts == 0 ? 1 : policy.attempts;
    pool.forEachIndex(n, [&](std::size_t i) {
        for (unsigned attempt = 0;; ++attempt) {
            if (attempt > 0)
                hard::backoffSleep(policy.delayUsFor(i, attempt));
            try {
                out[i] = fn(i, attempt);
                return;
            } catch (const hard::TransientFault &) {
                if (attempt + 1 >= tries)
                    throw;
            }
        }
    });
    return out;
}

/** parallelMapRetry with just an attempt budget: the default backoff
 *  schedule (RetryPolicy{}) with `attempts` substituted. */
template <typename Fn>
auto
parallelMapRetry(std::size_t n, unsigned jobs, unsigned attempts,
                 Fn &&fn) -> std::vector<decltype(fn(std::size_t{0},
                                                     unsigned{0}))>
{
    hard::RetryPolicy policy;
    policy.attempts = attempts;
    return parallelMapRetry(n, jobs, policy, std::forward<Fn>(fn));
}

/** One independent simulation of a batch. */
struct SimJob
{
    SystemConfig cfg;
    std::vector<std::string> workloads;
    Cycle cycles = 0;
    Cycle warmup = 0;
};

/**
 * runConfig() for every job, fanned across `jobs` threads (0 =
 * defaultJobs()). results[i] is job i's metrics; byte-identical to
 * calling runConfig sequentially in job order.
 *
 * With `injector` attached, every attempt first consults
 * FaultInjector::maybeWorkerFault(i, attempt); a TransientFault
 * retries the job (up to kDefaultWorkerAttempts) with its seed
 * re-derived per attempt, so a transient worker death costs one job
 * re-run instead of the whole batch.
 */
std::vector<RunMetrics>
runConfigsParallel(const std::vector<SimJob> &batch, unsigned jobs = 0,
                   hard::FaultInjector *injector = nullptr);

/**
 * Evaluate one GA generation offline: each child genome runs in a
 * fresh System seeded deriveSeed(cfg.seed, generation + 1, child),
 * with the genome decoded into per-core bin configurations exactly as
 * tuneOnline() does. Fitness is -average MISE slowdown against the
 * supplied per-core alone service rates.
 *
 * @param alone_rate per-core alone (highest-priority) service rate
 * @return fitness per child, index-aligned with `children`
 */
std::vector<double> evaluateGenerationParallel(
    const SystemConfig &cfg, const std::vector<std::string> &workloads,
    const std::vector<ga::Genome> &children, std::uint64_t generation,
    const std::vector<double> &alone_rate, Cycle epoch_cycles,
    unsigned jobs = 0);

/**
 * evaluateGenerationParallel over a pre-compiled plan: the offline GA
 * builds one SystemPlan for the whole search and every child is a
 * cheap PlanOverrides instantiation. Bit-exact with the config-based
 * overload (which delegates here).
 */
std::vector<double> evaluateGenerationParallel(
    const SystemPlan &plan, const std::vector<ga::Genome> &children,
    std::uint64_t generation, const std::vector<double> &alone_rate,
    Cycle epoch_cycles, unsigned jobs = 0);

/**
 * Fitness of one offline-GA child: decode its genome into per-core
 * bins, instantiate the plan with seed deriveSeed(seed, generation+1,
 * child), run one epoch, score -average MISE slowdown. The single
 * evaluation path shared by the threaded and sharded evaluators, so
 * their results are byte-identical.
 */
double evaluateGaChild(const SystemPlan &plan, const ga::Genome &genome,
                       std::uint64_t generation, std::size_t child,
                       const std::vector<double> &alone_rate,
                       Cycle epoch_cycles);

} // namespace camo::sim

#endif // CAMO_SIM_PARALLEL_H
