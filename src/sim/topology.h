/**
 * @file
 * Data-driven topology descriptions: build a TopologyConfig (machine
 * shape + workload placement) from a JSON document, so an N-core x
 * M-channel system is an input file rather than code
 * (camosim --config=FILE).
 *
 * Schema (every key optional unless noted; unknown keys are
 * ConfigErrors so typos fail loudly):
 *
 *   {
 *     "cores": 8,                 // default: number of workloads
 *     "channels": 4,              // DRAM channels (default 1)
 *     "mitigation": "bdc",        // none|cs|reqc|respc|bdc|tp|fs
 *     "seed": 3,
 *     "workloads": ["mcf", ...],  // one per core, REQUIRED (or
 *     "workload": "astar",        //  one name replicated to all)
 *     "shape_cores": [0, 1],      // shape only these (default all)
 *     "cs_interval": 90,
 *     "fake_traffic": true,
 *     "randomize_timing": false,
 *     "fake_sequential": false,
 *     "fake_write_frac": 0.0,
 *     "fast_forward": true,
 *     "noc": { "latency": 6, "ingress_cap": 16, "egress_cap": 32 },
 *     "rowhammer": { "enabled": true, "act_threshold": 16,
 *                    "rfm_dram_cycles": 180 },  // TRR/PRAC defense
 *     "req_bins":  { "edges": [0, ...], "credits": [10, ...],
 *                    "replenish_period": 10000 },
 *     "resp_bins": { ... }        // same shape as req_bins
 *   }
 *
 * Everything unspecified keeps the Table II paper configuration
 * (sim::paperConfig()).
 */

#ifndef CAMO_SIM_TOPOLOGY_H
#define CAMO_SIM_TOPOLOGY_H

#include <optional>
#include <string>

#include "src/obs/json.h"
#include "src/sim/system.h"

namespace camo::sim {

/** Mitigation from its CLI/JSON name; nullopt if unknown. */
std::optional<Mitigation> mitigationFromName(const std::string &name);

/** Build a TopologyConfig from a parsed JSON document.
 *  Throws hard::ConfigError naming the offending key on any problem. */
TopologyConfig topologyFromJson(const obs::json::Value &doc);

/** Parse JSON text into a TopologyConfig (ConfigError on bad JSON). */
TopologyConfig parseTopology(const std::string &text);

/** Read and parse a JSON topology file. */
TopologyConfig loadTopology(const std::string &path);

} // namespace camo::sim

#endif // CAMO_SIM_TOPOLOGY_H
