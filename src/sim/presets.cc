#include "src/sim/presets.h"

#include <sstream>

namespace camo::sim {

SystemConfig
paperConfig()
{
    SystemConfig cfg;
    cfg.numCores = 4;

    cfg.core.width = 4;
    cfg.core.windowSize = 128;

    cfg.cache.l1 = {32 * 1024, 4, 64, 4};
    cfg.cache.l2 = {128 * 1024, 8, 64, 12};
    cfg.cache.mshrs = 8;

    cfg.mc.org.channels = 1;
    cfg.mc.org.ranksPerChannel = 1;
    cfg.mc.org.banksPerRank = 8;
    cfg.mc.org.rowBufferBytes = 8192;
    cfg.mc.org.lineBytes = 64;
    cfg.mc.readQueueDepth = 32;
    cfg.mc.writeQueueDepth = 32;
    // 2.4 GHz CPU / 666.67 MHz DDR3-1333 command clock = 18/5.
    cfg.mc.cpuPerDramNum = 18;
    cfg.mc.cpuPerDramDen = 5;

    cfg.noc.latency = 6;

    return cfg;
}

std::vector<std::string>
adversaryMix(const std::string &adversary, const std::string &victim,
             std::uint32_t num_cores)
{
    std::vector<std::string> mix;
    mix.push_back(adversary);
    for (std::uint32_t i = 1; i < num_cores; ++i)
        mix.push_back(victim);
    return mix;
}

std::string
tableIiBanner()
{
    std::ostringstream os;
    os << "# System (paper Table II): 4 cores, 2.4GHz, 4-wide, "
          "128-entry window\n"
       << "# L1 32KB/4-way, L2 128KB/8-way private, 64B lines, 8 MSHRs\n"
       << "# MC: 32-entry transaction queue; DDR3-1333, 1 channel, "
          "1 rank, 8 banks, 8KB rows\n";
    return os.str();
}

} // namespace camo::sim
