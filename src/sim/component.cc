#include "src/sim/component.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::sim {

Component::~Component() = default;

Component *
ComponentGraph::add(std::unique_ptr<Component> c)
{
    camo_assert(c != nullptr, "cannot add a null component");
    owned_.push_back(std::move(c));
    return add(owned_.back().get());
}

Component *
ComponentGraph::add(Component *borrowed)
{
    camo_assert(borrowed != nullptr, "cannot add a null component");
    order_.push_back(borrowed);
    // Replay sticky attachments so late additions need no extra
    // wiring (the synthetic-component contract).
    if (tracerSet_)
        borrowed->attachTracer(tracer_);
    if (injectorSet_)
        borrowed->attachInjector(injector_);
    if (checkersSet_)
        borrowed->attachCheckers(checkers_);
    return borrowed;
}

Component *
ComponentGraph::find(const std::string &name) const
{
    for (Component *c : order_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

Cycle
ComponentGraph::nextEventCycle(Cycle now, Cycle from) const
{
    Cycle ev = kNoCycle;
    for (const Component *c : order_) {
        ev = std::min(ev, c->nextEventCycle(now, from));
        if (ev <= from)
            return from;
    }
    return ev;
}

void
ComponentGraph::skipIdleCycles(Cycle n)
{
    for (Component *c : order_)
        c->skipIdleCycles(n);
}

void
ComponentGraph::drain(Cycle now)
{
    for (Component *c : order_)
        c->drain(now);
}

void
ComponentGraph::reset()
{
    for (Component *c : order_)
        c->reset();
}

void
ComponentGraph::attachTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    tracerSet_ = true;
    for (Component *c : order_)
        c->attachTracer(tracer);
}

void
ComponentGraph::attachInjector(hard::FaultInjector *injector)
{
    injector_ = injector;
    injectorSet_ = true;
    for (Component *c : order_)
        c->attachInjector(injector);
}

void
ComponentGraph::attachCheckers(hard::CheckerSet *checkers)
{
    checkers_ = checkers;
    checkersSet_ = true;
    for (Component *c : order_)
        c->attachCheckers(checkers);
}

void
ComponentGraph::registerStats(obs::StatRegistry &reg) const
{
    for (const Component *c : order_)
        c->registerStats(reg);
}

} // namespace camo::sim
