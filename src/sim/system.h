/**
 * @file
 * Full-system assembly: cores + caches + Camouflage shapers + shared
 * channels + memory system + DRAM, in the paper's Figure 5 topology.
 *
 * The System is a declarative topology builder over the simulation
 * kernel (src/sim/component.h): construction instantiates N cores x M
 * memory channels from a SystemConfig/TopologyConfig and lays the
 * subsystems plus thin glue "stations" into one ordered
 * ComponentGraph. Execution is event-driven: run() seeds an
 * EventScheduler calendar from every component's nextEventCycle()
 * bound, then pops due batches and jumps the clock straight to the
 * next scheduled cycle — components self-schedule their wakeups
 * (wire deliveries wake consumers; ticked components are re-armed
 * from their bounds), and per-component lazy catch-up replays the
 * skipped idle accounting bit-exactly. Stat registration and tracer /
 * fault-injector / checker fan-out remain single iterations over the
 * graph — adding a component (see addComponent()) requires no edits
 * to any of those paths. See README.md for the architecture diagram,
 * DESIGN.md §11 for the component contract, and DESIGN.md §13 for
 * the event kernel.
 */

#ifndef CAMO_SIM_SYSTEM_H
#define CAMO_SIM_SYSTEM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/camouflage/bin_config.h"
#include "src/common/arena.h"
#include "src/camouflage/monitor.h"
#include "src/camouflage/request_shaper.h"
#include "src/camouflage/response_shaper.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/core/core.h"
#include "src/hard/checkers.h"
#include "src/hard/fault_injection.h"
#include "src/hard/watchdog.h"
#include "src/mem/memory_system.h"
#include "src/noc/channel.h"
#include "src/obs/interval.h"
#include "src/obs/json.h"
#include "src/obs/leakmon.h"
#include "src/obs/prof.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/security/covert_receiver.h"
#include "src/sim/component.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/port.h"
#include "src/trace/trace.h"

namespace camo::sim {

/** The protection scheme deployed on the system. */
enum class Mitigation
{
    None,  ///< unprotected FR-FCFS baseline
    CS,    ///< constant-rate request shaping (Ascend / Fletcher'14)
    ReqC,  ///< Request Camouflage
    RespC, ///< Response Camouflage
    BDC,   ///< Bi-directional Camouflage
    TP,    ///< Temporal Partitioning [Wang'14]
    FS,    ///< Fixed Service + bank partitioning [Shafiee'15]
};

const char *mitigationName(Mitigation m);

/** Whole-system configuration. Defaults reproduce Table II. */
struct SystemConfig
{
    std::uint32_t numCores = 4;
    core::CoreConfig core;
    cache::HierarchyConfig cache;
    mem::ControllerConfig mc;
    noc::ChannelConfig noc;

    Mitigation mitigation = Mitigation::None;
    shaper::BinConfig reqBins = shaper::BinConfig::desired();
    shaper::BinConfig respBins = shaper::BinConfig::desired();
    /** Per-core overrides (empty = every core uses reqBins/respBins).
     *  The online GA produces per-core configurations. */
    std::vector<shaper::BinConfig> reqBinsPerCore;
    std::vector<shaper::BinConfig> respBinsPerCore;
    /** CS baseline: one request per this many cycles. */
    Cycle csInterval = 90;
    bool fakeTraffic = true;
    /** SIV-B4 hardening: random slack within each credit interval. */
    bool randomizeTiming = false;
    /** Extension: sequential fake addresses (row-hit-like fakes). */
    bool fakeSequential = false;
    /** Extension: fraction of fakes issued as posted writes. */
    double fakeWriteFrac = 0.0;
    /**
     * Which cores get shapers under ReqC/RespC/BDC/CS (empty = all).
     * Fig. 10 shapes only the ADVERSARY's responses, for example.
     */
    std::vector<bool> shapeCore;

    std::uint64_t seed = 1;
    bool recordLatencies = false; ///< per-core latency logs
    bool recordTraffic = false;   ///< full traffic event logs

    /**
     * Event-driven execution in run(): the calendar-queue kernel pops
     * scheduled component wakeups and jumps the clock directly,
     * batch-applying the per-cycle accounting the skipped ticks would
     * have produced. Bit-exact with the per-cycle reference loop
     * (tests pin this); disable to force the plain validation loop
     * when debugging.
     */
    bool fastForward = true;
};

/**
 * A complete machine description: the one artifact a run needs.
 * Loadable from JSON (src/sim/topology.h, camosim --config=FILE).
 */
struct TopologyConfig
{
    SystemConfig system;
    /** One workload name per core (see trace::makeWorkload). */
    std::vector<std::string> workloads;
};

class SystemPlan;
struct PlanOverrides;

/** Shared by System's ctors and SystemPlan: the structural checks
 *  (core count, per-core vector sizes). @throws hard::ConfigError */
void validateSystemConfig(const SystemConfig &cfg,
                          std::size_t num_workloads);

/** The simulated machine. */
class System : public WakeSink
{
  public:
    /**
     * @param workloads one workload name per core (see
     *        trace::makeWorkload for accepted names).
     */
    System(const SystemConfig &cfg,
           const std::vector<std::string> &workloads);
    /** Build the machine a TopologyConfig describes. */
    explicit System(const TopologyConfig &topo);
    /**
     * Instantiate a compiled plan (src/sim/plan.h): skips workload
     * parsing / trace loading / config validation (done once at plan
     * build) and defers the tracer ring allocation. Bit-exact with
     * the legacy ctors. Usually reached via SystemPlan::instantiate.
     */
    System(const SystemPlan &plan, const PlanOverrides &overrides);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Advance one CPU cycle (one full iteration over the graph —
     *  the per-cycle reference semantics run() is bit-exact with). */
    void tick();
    /** Advance `cycles` CPU cycles on the event-driven kernel (or,
     *  with cfg.fastForward off, the plain per-cycle reference
     *  loop). */
    void run(Cycle cycles);

    // ----- WakeSink (the event kernel's scheduling funnel) ---------

    /**
     * Schedule component `id` (graph index) to run no later than
     * `at`. Called by components and subscribed wires; resolves
     * in-flight cycles with the same visibility order the
     * topology-ordered tick loop had: a wake at the cycle currently
     * being processed lands in this cycle's due set when the target
     * has not run yet, and on the next cycle when it has. No-op
     * outside an event-driven run.
     */
    void wakeAt(std::uint32_t id, Cycle at) override;
    /** Authoritative re-arm (used by the kernel after each tick). */
    void rescheduleAt(std::uint32_t id, Cycle at) override;

    /**
     * Earliest cycle > now() at which any component could do
     * observable work (kNoCycle if none can without new input).
     * Cycles strictly before it are provably idle.
     */
    Cycle nextEventCycle() const;

    Cycle now() const { return now_; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    /**
     * The ordered component graph the tick loop iterates. Exposed so
     * callers can inspect the topology or append components via
     * addComponent().
     */
    const ComponentGraph &graph() const { return graph_; }

    /**
     * Register an extra component at the end of the tick order. It
     * immediately participates in ticking, fast-forward bounds,
     * idle-cycle batching, stat registration, and tracer / injector /
     * checker attachment — no other wiring required.
     */
    Component &addComponent(std::unique_ptr<Component> component);

    const core::Core &coreAt(std::uint32_t i) const;
    core::Core &coreAt(std::uint32_t i);
    /** The (possibly multi-channel) memory system. */
    mem::MemorySystem &memory() { return *mem_; }
    const mem::MemorySystem &memory() const { return *mem_; }

    /** nullptr when the mitigation gives this core no such shaper. */
    shaper::RequestShaper *requestShaper(std::uint32_t i);
    shaper::ResponseShaper *responseShaper(std::uint32_t i);

    /** Intrinsic LLC-miss traffic monitor (always present). */
    const shaper::DistributionMonitor &
    intrinsicMonitor(std::uint32_t i) const;
    /** What actually went onto the shared request channel. */
    const shaper::DistributionMonitor &busMonitor(std::uint32_t i) const;
    /** Responses as delivered to the core (post everything). */
    const shaper::DistributionMonitor &
    responseMonitor(std::uint32_t i) const;

    /** Per-core latency log (needs cfg.recordLatencies). */
    const std::vector<security::LatencySample> &
    latencyLog(std::uint32_t i) const;

    /** Real read responses delivered to core `i` since epoch start. */
    std::uint64_t servedReads(std::uint32_t i) const;
    /** Mean end-to-end read latency since epoch start. */
    double avgReadLatency(std::uint32_t i) const;
    /** Zero per-epoch counters on cores and service counters. */
    void clearEpochCounters();

    /** GA hook: swap every core's shaper configuration at run time. */
    void reconfigureShapers(const shaper::BinConfig &req_bins,
                            const shaper::BinConfig &resp_bins);

    /** GA hook: per-core reconfiguration (the paper's GA "optimizes
     *  all bins from all programs simultaneously", SIV-C). */
    void reconfigureShaper(std::uint32_t core,
                           const shaper::BinConfig &req_bins,
                           const shaper::BinConfig &resp_bins);

    /** GA hook: toggle fake generation on every shaper at run time. */
    void setFakeTraffic(bool on);

    const SystemConfig &config() const { return cfg_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * The bump/pool allocator backing every component's hot-path
     * containers (src/common/arena.h). Owned by the System; its
     * counters are exported under "system.arena".
     */
    Arena &arena() { return *arena_; }
    const Arena &arena() const { return *arena_; }

    /**
     * The system-wide event tracer. Constructed disabled (near-zero
     * cost); callers enable it and attach a sink to record:
     *   sys.tracer().setSink(...); sys.tracer().setEnabled(true);
     */
    obs::Tracer &tracer() { return *tracer_; }
    const obs::Tracer &tracer() const { return *tracer_; }

    /**
     * Register every component's stat group under a dotted path:
     * core{i}, core{i}.cache, shaper.req.core{i} (+.bins),
     * shaper.resp.core{i} (+.bins), noc.req, noc.resp, mc.ch{c},
     * mc.ch{c}.dram, system. The registry borrows the groups; it must
     * not outlive this System.
     */
    void registerStats(obs::StatRegistry &reg) const;

    /**
     * Attach a host-time profiler (borrowed; nullptr detaches; must
     * outlive the runs it observes). The loop hooks then time every
     * kernel phase into its node tree: per-component tick, the
     * fast-forward probe (next_event), per-component idle-skip, and
     * watchdog polls. Profiled runs stay bit-exact with unprofiled
     * ones; the cost when detached is a single pointer test per
     * phase.
     */
    void setProfiler(obs::Profiler *prof);
    obs::Profiler *profiler() { return prof_; }

    /**
     * Arm the online leakage monitor over cfg.core's intrinsic and
     * request-channel streams (turns on event logging for both). A
     * LeakMonStation joins the graph and re-evaluates the sliding MI
     * window every cfg.checkPeriod cycles; on a sustained threshold
     * breach the run throws hard::LeakageAlert with a JSON
     * diagnostic (camosim exit code 6). Enable *before*
     * enableIntervalStats() to get the "leakmon.window_mi_bits"
     * interval column.
     */
    void enableLeakMonitor(const obs::LeakMonitorConfig &cfg);
    /** nullptr until enableLeakMonitor() is called. */
    obs::LeakMonitor *leakMonitor() { return leakmon_.get(); }
    const obs::LeakMonitor *leakMonitor() const
    {
        return leakmon_.get();
    }

    /** Start interval metrics: one snapshot row every `period`
     *  cycles (queue depths, per-core IPC, real/fake bus traffic,
     *  shaper credit occupancy). */
    void enableIntervalStats(Cycle period);
    /** nullptr until enableIntervalStats() is called. */
    const obs::IntervalCollector *intervalStats() const
    {
        return interval_.get();
    }

    // ----- Hardening layer (fail-secure operation) -----------------

    /**
     * Arm the runtime invariant checkers. Observe-only on the happy
     * path: with injection disabled, a run with checkers enabled is
     * bit-exact with one without (tests pin this). Protocol checkers
     * attach to every DRAM channel; shaper contracts are captured
     * from the shapers' current configurations (and re-captured on
     * degradeShaper()).
     */
    void enableCheckers(const hard::CheckerConfig &cfg);
    /** nullptr until enableCheckers() is called. */
    hard::CheckerSet *checkers() { return checkers_.get(); }
    const hard::CheckerSet *checkers() const { return checkers_.get(); }

    /** Attach a fault injector (borrowed; may be nullptr to detach).
     *  The System consults it at its hook points every tick. */
    void setFaultInjector(hard::FaultInjector *injector);

    /** Arm the forward-progress watchdog; run() polls it and throws
     *  WatchdogTimeout (with a diagnostic dump) when it fires. */
    void enableWatchdog(const hard::WatchdogConfig &cfg);

    /** Stream receiving diagnostic dumps when a checker or the
     *  watchdog fires (default stderr; nullptr silences them). */
    void setDiagnosticStream(std::ostream *os) { diagStream_ = os; }

    /**
     * Directory receiving diagnostic dump *files*. When set, each
     * firing writes its JSON dump to a uniquely-named file
     * (camo-diag-p<pid>-i<instance>-<seq>-<tag>.json; the instance id
     * is process-unique per System, so concurrent Systems in one
     * process never overwrite each other's dumps) instead of the
     * diagnostic stream, and the thrown error's dumpPath() names the
     * file. Empty (the default) keeps the stream behaviour. The
     * directory is created if missing; if it cannot be created,
     * dumps fall back to the stream.
     */
    void setDiagnosticDir(const std::string &dir);
    const std::string &diagnosticDir() const { return diagDir_; }

    /**
     * Structured diagnostic snapshot: reason, cycle, per-queue
     * occupancy, the full stats tree, and the trace tail (when the
     * tracer is enabled).
     */
    obs::json::Value diagnosticJson(const std::string &reason) const;

    /**
     * Fail-secure degradation: swap core `i`'s shapers to the
     * most-conservative constant-rate schedule derived from their
     * current configuration (BinConfig::failSecure). Stall-only —
     * fake generation is never suppressed, so degradation can only
     * reduce what the schedule reveals, never widen it. Idempotent.
     */
    void degradeShaper(std::uint32_t i);
    bool shaperDegraded(std::uint32_t i) const;

    /**
     * End-of-run lifecycle audit: throws InvariantViolation listing
     * the leaked (issued, never retired) requests older than
     * CheckerConfig::leakAge. No-op when the lifecycle checker is
     * off.
     */
    void checkForLeaks() const;

  private:
    struct PerCore;

    // Glue stations: thin Components wrapping the inter-subsystem
    // hand-offs the Figure-5 pipeline needs each cycle. Declared here
    // (defined in system.cc) so they can touch System internals.
    struct FaultApplyStation;
    struct CorePipeStation;
    struct ReqLinkStation;
    struct MemRouteStation;
    struct RespPipeStation;
    struct RespLinkStation;
    struct CreditCheckStation;
    struct IntervalStation;
    struct LeakMonStation;

    /** A response held back by an injected delay fault. */
    struct DelayedResponse
    {
        Cycle releaseAt = 0;
        MemRequest resp;
    };

    /** `plan` non-null = instantiate pre-compiled workloads and defer
     *  the tracer ring; null = the legacy parse-and-build path. */
    void buildTopology(const std::vector<std::string> &workloads,
                       const SystemPlan *plan);
    void drainCacheOutgoing(PerCore &pc);
    void feedRequestPath(PerCore &pc);
    void routeMcResponses();
    void feedResponsePath(PerCore &pc);
    void deliverResponses();
    /** Interval row at cycle `at` (every component synced first). */
    void sampleIntervalAt(Cycle at);
    bool coreIsShaped(std::uint32_t i) const;
    /** run() body (run() adds the profiler's root scope). */
    void runLoop(Cycle cycles);
    /** tick() with per-component timing (profiler attached). */
    void profiledTick();
    /** Extend the cached per-component profiler node ids. */
    void syncProfiler();
    void onLeakageAlert(const std::string &msg);

    // ----- event kernel internals ----------------------------------

    /** (Re)attach every component to the calendar and seed it from
     *  the components' nextEventCycle() bounds. Called at every
     *  event-driven run() entry, so inter-run mutation (direct
     *  tick(), GA reconfiguration, added components) needs no
     *  incremental bookkeeping. */
    void rebuildWakes();
    /** Process every component due at `cycle` in topology order. */
    void processCycle(Cycle cycle);
    /** Batch-account component `i`'s provably-idle cycles up to and
     *  including `through` (no-op when already synced). */
    void catchUp(std::size_t i, Cycle through);
    /** catchUp every non-driven component with index < `limit`. */
    void syncAllThrough(Cycle through, std::size_t limit);
    /** Bring the machine to the exact state the per-cycle loop would
     *  show at the current point (used before diagnostic dumps). */
    void syncForDiagnostic();
    /** Wake the per-core pipe stations + the credit checker at `at`
     *  (fault-application glue). */
    void wakeFaultTargets(Cycle at);

    // Hardening internals.
    void applyInjectedFaults();
    /** Single funnel onto the shared request channel: lifecycle +
     *  conservation accounting happen here so no push can skip them.
     *  `shaper_release` marks pushes the shaper legitimately
     *  released this cycle. */
    void pushToReqChannel(PerCore &pc, MemRequest req,
                          bool shaper_release);
    void pushToRespChannel(PerCore &pc, MemRequest resp,
                           bool shaper_release);
    void checkCreditState();
    void onShaperViolation(std::uint32_t core, const std::string &msg);
    void pollWatchdog(Cycle next_event);
    static hard::ShaperContract contractOf(const shaper::BinConfig &cfg);

    SystemConfig cfg_;
    /** Hot-path allocator; declared before every component owner so
     *  it outlives the containers drawing from it. */
    std::unique_ptr<Arena> arena_;
    Cycle now_ = 0;
    /** Reused each tick by routeMcResponses (allocation-free drain). */
    std::vector<MemRequest> respScratch_;

    std::vector<std::unique_ptr<PerCore>> cores_;
    std::unique_ptr<noc::SharedChannel> reqChannel_;
    std::unique_ptr<noc::SharedChannel> respChannel_;
    std::unique_ptr<mem::MemorySystem> mem_;
    /** Tick-ordered graph over the subsystems + stations above. */
    ComponentGraph graph_;
    StatGroup stats_;
    /** Refreshed from arena_'s counters inside registerStats() (the
     *  registry borrows groups; the arena counters are plain ints). */
    mutable StatGroup arenaStats_;
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::IntervalCollector> interval_;
    /** Interval rows carry the windowed-MI column (leak monitor was
     *  armed before enableIntervalStats). */
    bool intervalHasLeakCol_ = false;
    std::unique_ptr<obs::LeakMonitor> leakmon_;

    // Host-time profiler (borrowed) + cached node ids, one per
    // graph component, extended lazily as the graph grows.
    obs::Profiler *prof_ = nullptr;
    obs::Profiler::NodeId profTickNode_ = obs::Profiler::kNoNode;
    obs::Profiler::NodeId profSkipNode_ = obs::Profiler::kNoNode;
    obs::Profiler::NodeId profNextEvNode_ = obs::Profiler::kNoNode;
    obs::Profiler::NodeId profWatchdogNode_ = obs::Profiler::kNoNode;
    std::vector<obs::Profiler::NodeId> profTickIds_;
    std::vector<obs::Profiler::NodeId> profSkipIds_;

    // ----- event kernel state --------------------------------------
    // Valid between rebuildWakes() (run() entry) and run() exit; the
    // public tick() bypasses it entirely and the next run() rebuilds.

    EventScheduler sched_;
    /** Cycle through which component i is fully accounted (ticked or
     *  idle-skipped). Lazy: non-due components fall behind and are
     *  caught up in one skipIdleCycles() batch on demand. */
    std::vector<Cycle> lastSync_;
    /** Components ticked by a station rather than the kernel (the
     *  shapers): never scheduled or caught up independently. */
    std::vector<std::uint8_t> driven_;
    /** After ticking index i, wake wakeAfterTick_[i] at the same
     *  cycle (kNoTarget = none): cores wake their request pipe (a
     *  tick may mint cache misses), the memory system wakes the
     *  response router. */
    std::vector<std::uint32_t> wakeAfterTick_;
    static constexpr std::uint32_t kNoTarget = 0xffffffffu;
    /** Due set for the cycle in flight (bitmask over graph indices,
     *  scanned in ascending order = topology order). */
    std::vector<std::uint64_t> dueBits_;
    std::vector<std::uint32_t> dueScratch_; ///< popDue working set
    bool kernelActive_ = false; ///< inside an event-driven run()
    bool inCycle_ = false;      ///< inside processCycle()
    Cycle procCycle_ = 0;       ///< cycle being processed
    std::size_t procIdx_ = 0;   ///< graph index being ticked
    /** Graph indices the kernel glue needs by role. */
    std::size_t memIdx_ = 0;
    std::size_t memRouteIdx_ = 0;
    std::size_t reqLinkIdx_ = 0;
    std::vector<std::uint32_t> faultWakeIds_; ///< pipes + creditcheck

    /**
     * Write the diagnostic dump for `tag` and return where it went:
     * a uniquely-named file under diagDir_ (its path is returned for
     * the error's dumpPath()) or the diagnostic stream (empty
     * return). Never throws — a failing dump must not mask the error
     * being raised.
     */
    std::string emitDiagnostic(const std::string &tag,
                               const std::string &dump) const;

    std::unique_ptr<hard::CheckerSet> checkers_;
    std::unique_ptr<hard::Watchdog> watchdog_;
    hard::FaultInjector *injector_ = nullptr;
    std::ostream *diagStream_; ///< defaults to &std::cerr (ctor)
    std::string diagDir_;      ///< empty = dump to diagStream_
    const std::uint64_t diagInstance_; ///< process-unique System id
    mutable std::uint64_t diagSeq_ = 0; ///< per-instance dump counter
    std::vector<DelayedResponse> delayedResp_;
    std::uint64_t forcedFakes_ = 0; ///< ids for injected fakes
};

} // namespace camo::sim

#endif // CAMO_SIM_SYSTEM_H
