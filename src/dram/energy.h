/**
 * @file
 * Per-command DRAM energy accounting (DRAMSim2 ships the Micron
 * power model; this is the equivalent for our device).
 *
 * Constants default to a DDR3-1333 2Gb x8 part computed from the
 * Micron IDD method (order-of-magnitude values; the interesting
 * outputs are *relative* — e.g. the energy overhead of Camouflage's
 * fake traffic).
 */

#ifndef CAMO_DRAM_ENERGY_H
#define CAMO_DRAM_ENERGY_H

#include <cstdint>

namespace camo::dram {

/** Energy cost per DRAM event, picojoules. */
struct EnergyModel
{
    double actPrePj = 3200.0;     ///< one ACT/PRE pair
    double readBurstPj = 2100.0;  ///< one RD burst (BL8)
    double writeBurstPj = 2300.0; ///< one WR burst (BL8)
    double refreshPj = 27000.0;   ///< one all-bank REF
    /** Background (standby) power per rank per DRAM cycle. */
    double backgroundPjPerCycle = 75.0;
};

/** Accumulated energy, queryable mid-run. */
class EnergyCounter
{
  public:
    explicit EnergyCounter(const EnergyModel &model = EnergyModel{})
        : model_(model)
    {
    }

    void onActivate() { actPairs_ += 1; }
    void onRead() { reads_ += 1; }
    void onWrite() { writes_ += 1; }
    void onRefresh() { refreshes_ += 1; }

    std::uint64_t actPairs() const { return actPairs_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t refreshes() const { return refreshes_; }

    /** Dynamic (command) energy so far, picojoules. */
    double
    dynamicPj() const
    {
        return static_cast<double>(actPairs_) * model_.actPrePj +
               static_cast<double>(reads_) * model_.readBurstPj +
               static_cast<double>(writes_) * model_.writeBurstPj +
               static_cast<double>(refreshes_) * model_.refreshPj;
    }

    /** Background energy for `dram_cycles` of `ranks` ranks. */
    double
    backgroundPj(std::uint64_t dram_cycles, std::uint32_t ranks) const
    {
        return model_.backgroundPjPerCycle *
               static_cast<double>(dram_cycles) *
               static_cast<double>(ranks);
    }

    double
    totalPj(std::uint64_t dram_cycles, std::uint32_t ranks) const
    {
        return dynamicPj() + backgroundPj(dram_cycles, ranks);
    }

    const EnergyModel &model() const { return model_; }

  private:
    EnergyModel model_;
    std::uint64_t actPairs_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t refreshes_ = 0;
};

} // namespace camo::dram

#endif // CAMO_DRAM_ENERGY_H
