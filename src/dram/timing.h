/**
 * @file
 * DDR3 device timing and organization parameters.
 *
 * All timing values are in DRAM command-clock cycles (tCK). Defaults
 * model DDR3-1333 (tCK = 1.5 ns), the part in the paper's Table II,
 * with JEDEC-typical values for a 2Gb x8 device.
 */

#ifndef CAMO_DRAM_TIMING_H
#define CAMO_DRAM_TIMING_H

#include <cstdint>

namespace camo::dram {

/** DRAM timing constraints, in DRAM clock cycles. */
struct DramTiming
{
    std::uint32_t burstLength = 8;  ///< BL: beats per column access
    std::uint32_t tCL = 9;          ///< CAS (read) latency
    std::uint32_t tCWL = 7;         ///< CAS write latency
    std::uint32_t tRCD = 9;         ///< ACT to RD/WR
    std::uint32_t tRP = 9;          ///< PRE to ACT
    std::uint32_t tRAS = 24;        ///< ACT to PRE (same bank)
    std::uint32_t tRC = 33;         ///< ACT to ACT (same bank)
    std::uint32_t tCCD = 4;         ///< CAS to CAS (same rank)
    std::uint32_t tRRD = 4;         ///< ACT to ACT (different banks)
    std::uint32_t tFAW = 20;        ///< window for any four ACTs per rank
    std::uint32_t tWTR = 5;         ///< write data end to read command
    std::uint32_t tWR = 10;         ///< write recovery (data end to PRE)
    std::uint32_t tRTP = 5;         ///< read to precharge
    std::uint32_t tRTW = 7;         ///< read cmd to write cmd (same rank)
    std::uint32_t tRFC = 107;       ///< refresh cycle time
    std::uint32_t tREFI = 5200;     ///< average refresh interval
    std::uint32_t tRTRS = 2;        ///< rank-to-rank data-bus switch

    /** Data-bus occupancy of one burst, in DRAM cycles (BL/2, DDR). */
    std::uint32_t dataCycles() const { return burstLength / 2; }
};

/** Memory system organization (Table II defaults). */
struct DramOrganization
{
    std::uint32_t channels = 1;
    std::uint32_t ranksPerChannel = 1;
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowsPerBank = 32768;
    std::uint32_t rowBufferBytes = 8192; ///< 8 KB row buffer
    std::uint32_t lineBytes = 64;        ///< cache-line / column granularity

    std::uint32_t
    columnsPerRow() const
    {
        return rowBufferBytes / lineBytes;
    }

    std::uint64_t
    totalBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank * rowBufferBytes;
    }
};

} // namespace camo::dram

#endif // CAMO_DRAM_TIMING_H
