/**
 * @file
 * TRR/PRAC-style RowHammer mitigation with activation-count-dependent
 * refresh-management (RFM) stalls.
 *
 * The defense keeps a per-(rank,bank) activation counter. When a
 * bank's counter reaches `actThreshold`, the device performs a
 * refresh-management operation (victim-row refresh) that occupies the
 * channel for `rfmDramCycles` DRAM cycles: the controller may not
 * schedule any command while the operation is in flight. Counters
 * reset on the bank's RFM and on every regular REF to the rank (the
 * TRR sampling window).
 *
 * This is the timing-channel surface studied by "Understanding and
 * Mitigating Covert and Side Channel Vulnerabilities Introduced by
 * RowHammer Defenses" (arXiv 2503.17891): the stall rate is
 * proportional to the activation rate, so one core's row-conflict
 * storm modulates every other core's latency. The scenario subsystem
 * (src/scenario) measures that channel open and under shaping.
 */

#ifndef CAMO_DRAM_ROWHAMMER_H
#define CAMO_DRAM_ROWHAMMER_H

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/dram/address.h"
#include "src/dram/timing.h"

namespace camo::dram {

/** RowHammer-defense knobs (off by default). */
struct RowHammerConfig
{
    bool enabled = false;
    /** Bank activations per sampling window before an RFM fires. */
    std::uint32_t actThreshold = 16;
    /** DRAM cycles one refresh-management operation blocks the
     *  channel (order of a victim-row refresh pair). */
    std::uint64_t rfmDramCycles = 180;
};

/**
 * The mitigation state machine. Pure bookkeeping over DRAM-cycle
 * timestamps: deterministic, and safe for the event kernel (an idle
 * skip never crosses a stall with queued work, because the
 * controller's scheduling bound is clamped to busyUntil()).
 */
class RowHammerDefense
{
  public:
    RowHammerDefense(const RowHammerConfig &cfg,
                     const DramOrganization &org);

    /** Account an ACT to `da`'s bank; may start an RFM stall. */
    void onActivate(const DramAddress &da, std::uint64_t dram_now);

    /** A regular REF to `rank` restarts its sampling window. */
    void onRefresh(std::uint32_t rank);

    /** Is the channel blocked by an in-flight RFM operation? */
    bool
    busy(std::uint64_t dram_now) const
    {
        return dram_now < busyUntil_;
    }

    /** First DRAM cycle the channel is free again (0 = never
     *  stalled). Scheduling bounds clamp to this. */
    std::uint64_t busyUntil() const { return busyUntil_; }

    std::uint32_t activationCount(std::uint32_t rank,
                                  std::uint32_t bank) const;

    const StatGroup &stats() const { return stats_; }

  private:
    RowHammerConfig cfg_;
    std::uint32_t banksPerRank_;
    std::vector<std::uint32_t> counts_; ///< rank-major per-bank ACTs
    std::uint64_t busyUntil_ = 0;
    StatGroup stats_;
};

} // namespace camo::dram

#endif // CAMO_DRAM_ROWHAMMER_H
