#include "src/dram/device.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::dram {

const char *
cmdName(Cmd cmd)
{
    switch (cmd) {
      case Cmd::ACT: return "ACT";
      case Cmd::PRE: return "PRE";
      case Cmd::RD:  return "RD";
      case Cmd::WR:  return "WR";
      case Cmd::REF: return "REF";
    }
    return "?";
}

DramDevice::DramDevice(const DramOrganization &org, const DramTiming &timing)
    : sim::Component("dram"), org_(org), timing_(timing)
{
    ranks_.resize(org.ranksPerChannel);
    for (auto &rank : ranks_)
        rank.banks.resize(org.banksPerRank);
}

const BankState &
DramDevice::bank(std::uint32_t rank, std::uint32_t b) const
{
    camo_assert(rank < ranks_.size() && b < ranks_[rank].banks.size(),
                "bank index out of range: rank=", rank, " bank=", b);
    return ranks_[rank].banks[b];
}

BankState &
DramDevice::bankMut(std::uint32_t rank, std::uint32_t b)
{
    return const_cast<BankState &>(bank(rank, b));
}

bool
DramDevice::isRowHit(const DramAddress &da) const
{
    const BankState &bs = bank(da.rank, da.bank);
    return bs.open && bs.openRow == da.row;
}

bool
DramDevice::isRowOpen(const DramAddress &da) const
{
    return bank(da.rank, da.bank).open;
}

bool
DramDevice::allBanksClosed(const RankState &rs) const
{
    return std::none_of(rs.banks.begin(), rs.banks.end(),
                        [](const BankState &b) { return b.open; });
}

bool
DramDevice::refreshDue(std::uint32_t rank, std::uint64_t now) const
{
    return refreshDebt(rank, now) > 0;
}

std::uint64_t
DramDevice::refreshDebt(std::uint32_t rank, std::uint64_t now) const
{
    camo_assert(rank < ranks_.size(), "rank out of range");
    const std::uint64_t owed = now / timing_.tREFI;
    const std::uint64_t done = ranks_[rank].refreshesDone;
    return owed > done ? owed - done : 0;
}

std::uint64_t
DramDevice::dataBusFreeFor(std::uint32_t rank) const
{
    return rank == lastDataRank_ ? dataBusFreeAt_
                                 : dataBusFreeAt_ + timing_.tRTRS;
}

bool
DramDevice::canIssue(Cmd cmd, const DramAddress &da, std::uint64_t now) const
{
    if (now < cmdBusFreeAt_)
        return false;
    camo_assert(da.rank < ranks_.size(), "rank out of range");
    const RankState &rs = ranks_[da.rank];
    const BankState &bs = bank(da.rank, da.bank);

    switch (cmd) {
      case Cmd::ACT: {
        if (bs.open || now < bs.nextAct)
            return false;
        // tFAW: at most 4 ACTs per rank in any tFAW window.
        if (rs.actWindow.size() >= 4 &&
            now < rs.actWindow.front() + timing_.tFAW) {
            return false;
        }
        // tRRD against the most recent ACT on this rank.
        if (!rs.actWindow.empty() &&
            now < rs.actWindow.back() + timing_.tRRD) {
            return false;
        }
        return true;
      }
      case Cmd::PRE:
        return bs.open && now >= bs.nextPre;
      case Cmd::RD:
        if (!isRowHit(da) || now < bs.nextRead || now < rs.nextRead)
            return false;
        // Data burst must not overlap the previous one on the bus
        // (plus tRTRS when switching ranks).
        return now + timing_.tCL >= dataBusFreeFor(da.rank);
      case Cmd::WR:
        if (!isRowHit(da) || now < bs.nextWrite || now < rs.nextWrite)
            return false;
        return now + timing_.tCWL >= dataBusFreeFor(da.rank);
      case Cmd::REF:
        // All banks precharged and past their tRP before REF.
        if (!allBanksClosed(rs))
            return false;
        for (const BankState &b : rs.banks) {
            if (now < b.nextAct)
                return false;
        }
        return true;
    }
    return false;
}

std::uint64_t
DramDevice::earliestIssue(Cmd cmd, const DramAddress &da) const
{
    // Mirrors canIssue exactly: every check there is a monotone
    // threshold test `now >= X` (or a state predicate independent of
    // `now`), so the earliest legal cycle is the max of the
    // thresholds -- and canIssue(cmd, da, earliestIssue(cmd, da)) is
    // true whenever the result is not kNever.
    camo_assert(da.rank < ranks_.size(), "rank out of range");
    const RankState &rs = ranks_[da.rank];
    const BankState &bs = bank(da.rank, da.bank);
    std::uint64_t at = cmdBusFreeAt_;

    switch (cmd) {
      case Cmd::ACT: {
        if (bs.open)
            return kNever;
        at = std::max(at, bs.nextAct);
        if (rs.actWindow.size() >= 4)
            at = std::max(at, rs.actWindow.front() + timing_.tFAW);
        if (!rs.actWindow.empty())
            at = std::max(at, rs.actWindow.back() + timing_.tRRD);
        return at;
      }
      case Cmd::PRE:
        return bs.open ? std::max(at, bs.nextPre) : kNever;
      case Cmd::RD: {
        if (!isRowHit(da))
            return kNever;
        at = std::max({at, bs.nextRead, rs.nextRead});
        const std::uint64_t bus = dataBusFreeFor(da.rank);
        if (bus > timing_.tCL)
            at = std::max(at, bus - timing_.tCL);
        return at;
      }
      case Cmd::WR: {
        if (!isRowHit(da))
            return kNever;
        at = std::max({at, bs.nextWrite, rs.nextWrite});
        const std::uint64_t bus = dataBusFreeFor(da.rank);
        if (bus > timing_.tCWL)
            at = std::max(at, bus - timing_.tCWL);
        return at;
      }
      case Cmd::REF: {
        if (!allBanksClosed(rs))
            return kNever;
        for (const BankState &b : rs.banks)
            at = std::max(at, b.nextAct);
        return at;
      }
    }
    return kNever;
}

IssueResult
DramDevice::issue(Cmd cmd, const DramAddress &da, std::uint64_t now)
{
    camo_assert(canIssue(cmd, da, now), "illegal ", cmdName(cmd),
                " to ", da.toString(), " at DRAM cycle ", now);
    if (observer_)
        observer_->onCommand(cmd, da, now);
    RankState &rs = ranks_[da.rank];
    BankState &bs = bankMut(da.rank, da.bank);
    IssueResult result;
    cmdBusFreeAt_ = now + 1;
    stats_.inc(std::string("cmd.") + cmdName(cmd));

#ifndef CAMO_OBS_NO_TRACING
    if (tracer_ && tracer_->enabled()) {
        obs::EventType type = obs::EventType::DramActivate;
        switch (cmd) {
          case Cmd::ACT: type = obs::EventType::DramActivate; break;
          case Cmd::PRE: type = obs::EventType::DramPrecharge; break;
          case Cmd::RD: type = obs::EventType::DramRead; break;
          case Cmd::WR: type = obs::EventType::DramWrite; break;
          case Cmd::REF: type = obs::EventType::DramRefresh; break;
        }
        CAMO_TRACE_EVENT(tracer_, .at = cpuNow_, .type = type,
                         .addr = da.row,
                         .arg = (static_cast<std::uint64_t>(da.rank)
                                 << 16) |
                                da.bank);
    }
#endif

    switch (cmd) {
      case Cmd::ACT: {
        energy_.onActivate();
        bs.open = true;
        bs.openRow = da.row;
        bs.nextRead = now + timing_.tRCD;
        bs.nextWrite = now + timing_.tRCD;
        bs.nextPre = std::max<std::uint64_t>(bs.nextPre, now + timing_.tRAS);
        bs.nextAct = now + timing_.tRC;
        rs.actWindow.push_back(now);
        while (rs.actWindow.size() > 4)
            rs.actWindow.pop_front();
        break;
      }
      case Cmd::PRE: {
        bs.open = false;
        bs.nextAct = std::max<std::uint64_t>(bs.nextAct, now + timing_.tRP);
        break;
      }
      case Cmd::RD: {
        energy_.onRead();
        result.rowHit = true;
        const std::uint64_t data_start = now + timing_.tCL;
        const std::uint64_t data_end = data_start + timing_.dataCycles();
        dataBusFreeAt_ = data_end;
        lastDataRank_ = da.rank;
        result.dataDoneCycle = data_end;
        bs.nextPre = std::max<std::uint64_t>(bs.nextPre,
                                             now + timing_.tRTP);
        rs.nextRead = std::max<std::uint64_t>(rs.nextRead,
                                              now + timing_.tCCD);
        rs.nextWrite = std::max<std::uint64_t>(rs.nextWrite,
                                               now + timing_.tRTW);
        break;
      }
      case Cmd::WR: {
        energy_.onWrite();
        result.rowHit = true;
        const std::uint64_t data_start = now + timing_.tCWL;
        const std::uint64_t data_end = data_start + timing_.dataCycles();
        dataBusFreeAt_ = data_end;
        lastDataRank_ = da.rank;
        result.dataDoneCycle = data_end;
        bs.nextPre = std::max<std::uint64_t>(bs.nextPre,
                                             data_end + timing_.tWR);
        rs.nextWrite = std::max<std::uint64_t>(rs.nextWrite,
                                               now + timing_.tCCD);
        rs.nextRead = std::max<std::uint64_t>(rs.nextRead,
                                              data_end + timing_.tWTR);
        break;
      }
      case Cmd::REF: {
        energy_.onRefresh();
        for (BankState &b : rs.banks) {
            b.nextAct = std::max<std::uint64_t>(b.nextAct,
                                                now + timing_.tRFC);
        }
        ++rs.refreshesDone;
        break;
      }
    }
    return result;
}

} // namespace camo::dram
