#include "src/dram/rowhammer.h"

#include "src/common/logging.h"

namespace camo::dram {

RowHammerDefense::RowHammerDefense(const RowHammerConfig &cfg,
                                   const DramOrganization &org)
    : cfg_(cfg),
      banksPerRank_(org.banksPerRank),
      counts_(static_cast<std::size_t>(org.ranksPerChannel) *
                  org.banksPerRank,
              0)
{
    camo_assert(cfg_.actThreshold > 0,
                "RowHammer activation threshold must be positive");
}

void
RowHammerDefense::onActivate(const DramAddress &da,
                             std::uint64_t dram_now)
{
    std::uint32_t &count =
        counts_[static_cast<std::size_t>(da.rank) * banksPerRank_ +
                da.bank];
    ++count;
    stats_.inc("activations");
    if (count < cfg_.actThreshold)
        return;
    // Threshold reached: refresh the bank's victim rows. The
    // operation occupies the channel; the controller defers all
    // scheduling until busyUntil().
    count = 0;
    busyUntil_ = dram_now + cfg_.rfmDramCycles;
    stats_.inc("rfm.issued");
    stats_.inc("rfm.stall_dram_cycles", cfg_.rfmDramCycles);
}

void
RowHammerDefense::onRefresh(std::uint32_t rank)
{
    const std::size_t base =
        static_cast<std::size_t>(rank) * banksPerRank_;
    for (std::size_t b = 0; b < banksPerRank_; ++b)
        counts_[base + b] = 0;
}

std::uint32_t
RowHammerDefense::activationCount(std::uint32_t rank,
                                  std::uint32_t bank) const
{
    return counts_[static_cast<std::size_t>(rank) * banksPerRank_ +
                   bank];
}

} // namespace camo::dram
