/**
 * @file
 * Physical address to DRAM coordinate decoding.
 */

#ifndef CAMO_DRAM_ADDRESS_H
#define CAMO_DRAM_ADDRESS_H

#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/dram/timing.h"

namespace camo::dram {

/** Decoded DRAM coordinates of a physical address. */
struct DramAddress
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;

    bool
    operator==(const DramAddress &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && column == o.column;
    }

    std::string toString() const;
};

/** Bit-field order used to decode addresses. */
enum class MappingScheme
{
    /**
     * row : rank : bank : column : line-offset.
     * Consecutive lines stay in one row (maximizes row hits for
     * streaming); banks interleave at row granularity.
     */
    RowRankBankCol,
    /**
     * row : column : rank : bank : line-offset.
     * Consecutive lines hit different banks (maximizes bank-level
     * parallelism; DRAMSim2 "scheme 2" flavour).
     */
    RowColRankBank,
};

/** Stateless address decoder for a given organization and scheme. */
class AddressMapper
{
  public:
    AddressMapper(const DramOrganization &org, MappingScheme scheme);

    /** Decode a physical byte address into DRAM coordinates. */
    DramAddress decode(Addr addr) const;

    /**
     * Re-encode coordinates into a physical address (inverse of
     * decode; used by tests and by bank partitioning).
     */
    Addr encode(const DramAddress &da) const;

    /** Channel a physical address maps to. */
    std::uint32_t channelOf(Addr addr) const;

    /**
     * Remove the channel bits from an address, producing the
     * channel-local address a per-channel controller decodes (its
     * organization has channels == 1).
     */
    Addr stripChannel(Addr addr) const;

    MappingScheme scheme() const { return scheme_; }
    const DramOrganization &organization() const { return org_; }

  private:
    DramOrganization org_;
    MappingScheme scheme_;
    std::uint32_t lineBits_;
    std::uint32_t colBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
    std::uint32_t rowBits_;
};

} // namespace camo::dram

#endif // CAMO_DRAM_ADDRESS_H
