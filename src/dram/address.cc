#include "src/dram/address.h"

#include <bit>
#include <sstream>

#include "src/common/logging.h"

namespace camo::dram {

namespace {

std::uint32_t
log2Exact(std::uint32_t v, const char *what)
{
    camo_assert(v > 0 && std::has_single_bit(v),
                what, " must be a power of two, got ", v);
    return static_cast<std::uint32_t>(std::countr_zero(v));
}

} // namespace

std::uint32_t
AddressMapper::channelOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineBits_) %
                                      org_.channels);
}

Addr
AddressMapper::stripChannel(Addr addr) const
{
    const Addr offset = addr & ((1ULL << lineBits_) - 1);
    const Addr upper = (addr >> lineBits_) / org_.channels;
    return (upper << lineBits_) | offset;
}

std::string
DramAddress::toString() const
{
    std::ostringstream os;
    os << "ch" << channel << ".ra" << rank << ".ba" << bank << ".ro" << row
       << ".co" << column;
    return os.str();
}

AddressMapper::AddressMapper(const DramOrganization &org,
                             MappingScheme scheme)
    : org_(org), scheme_(scheme)
{
    lineBits_ = log2Exact(org.lineBytes, "line size");
    colBits_ = log2Exact(org.columnsPerRow(), "columns per row");
    bankBits_ = log2Exact(org.banksPerRank, "banks per rank");
    rankBits_ = log2Exact(org.ranksPerChannel, "ranks per channel");
    rowBits_ = log2Exact(org.rowsPerBank, "rows per bank");
    // Channels interleave by uniform div/mod and so may be any count
    // >= 1 (div/mod degenerates to mask/shift for powers of two).
    camo_assert(org.channels >= 1, "need at least one channel");
}

DramAddress
AddressMapper::decode(Addr addr) const
{
    DramAddress da;
    std::uint64_t a = addr >> lineBits_;
    auto take = [&a](std::uint32_t bits) {
        const std::uint64_t v = a & ((1ULL << bits) - 1);
        a >>= bits;
        return static_cast<std::uint32_t>(v);
    };

    // Channels interleave at line granularity in both schemes
    // (div/mod so channel counts need not be powers of two).
    da.channel = static_cast<std::uint32_t>(a % org_.channels);
    a /= org_.channels;
    switch (scheme_) {
      case MappingScheme::RowRankBankCol:
        da.column = take(colBits_);
        da.bank = take(bankBits_);
        da.rank = take(rankBits_);
        da.row = take(rowBits_);
        break;
      case MappingScheme::RowColRankBank:
        da.bank = take(bankBits_);
        da.rank = take(rankBits_);
        da.column = take(colBits_);
        da.row = take(rowBits_);
        break;
    }
    da.row %= org_.rowsPerBank; // wrap addresses beyond capacity
    return da;
}

Addr
AddressMapper::encode(const DramAddress &da) const
{
    std::uint64_t a = 0;
    std::uint32_t shift = 0;
    auto put = [&a, &shift](std::uint32_t v, std::uint32_t bits) {
        a |= static_cast<std::uint64_t>(v) << shift;
        shift += bits;
    };

    switch (scheme_) {
      case MappingScheme::RowRankBankCol:
        put(da.column, colBits_);
        put(da.bank, bankBits_);
        put(da.rank, rankBits_);
        put(da.row, rowBits_);
        break;
      case MappingScheme::RowColRankBank:
        put(da.bank, bankBits_);
        put(da.rank, rankBits_);
        put(da.column, colBits_);
        put(da.row, rowBits_);
        break;
    }
    // Inverse of decode's div/mod channel interleave.
    return ((a * org_.channels + da.channel) << lineBits_);
}

} // namespace camo::dram
