/**
 * @file
 * Command-level DDR3 device model.
 *
 * The device accepts DRAM commands (ACT / PRE / RD / WR / REF) one per
 * DRAM cycle per channel and enforces every timing constraint in
 * DramTiming: bank state, tRCD/tRP/tRAS/tRC, CAS-to-CAS (tCCD),
 * ACT-to-ACT (tRRD, tFAW), bus-turnaround (tRTW/tWTR), write recovery
 * (tWR), read-to-precharge (tRTP), refresh (tRFC/tREFI), and shared
 * data-bus occupancy (BL/2 per burst).
 *
 * Scheduling policy lives in the memory controller; the device only
 * answers "can this command issue now?" and executes it. This is the
 * same split DRAMSim2 uses between its command queue and its device
 * timing checker.
 */

#ifndef CAMO_DRAM_DEVICE_H
#define CAMO_DRAM_DEVICE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dram/address.h"
#include "src/dram/energy.h"
#include "src/dram/timing.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"

namespace camo::dram {

/** DRAM command opcodes. */
enum class Cmd
{
    ACT, ///< activate a row into the bank's row buffer
    PRE, ///< precharge (close) a bank
    RD,  ///< column read burst
    WR,  ///< column write burst
    REF, ///< all-bank refresh (rank granularity)
};

const char *cmdName(Cmd cmd);

/** Per-bank row-buffer and timing state. */
struct BankState
{
    bool open = false;          ///< row buffer holds a row
    std::uint32_t openRow = 0;  ///< valid iff open
    std::uint64_t nextAct = 0;  ///< earliest ACT (tRC / tRP / tRFC)
    std::uint64_t nextRead = 0; ///< earliest RD (tRCD)
    std::uint64_t nextWrite = 0;///< earliest WR (tRCD)
    std::uint64_t nextPre = 0;  ///< earliest PRE (tRAS / tWR / tRTP)
};

/**
 * Observer notified of every command the device executes, in issue
 * order. The hardening layer's protocol checker taps this to
 * re-derive the timing rules independently of the device's own
 * bookkeeping (an observer may throw; the command has not yet been
 * applied when it is notified).
 */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;
    virtual void onCommand(Cmd cmd, const DramAddress &da,
                           std::uint64_t now) = 0;
};

/** Result of issuing a column command. */
struct IssueResult
{
    /** DRAM cycle at which the read data has fully returned (RD) or
     *  the write burst has been absorbed (WR). */
    std::uint64_t dataDoneCycle = 0;
    bool rowHit = false; ///< the access hit an already-open row
};

/** One DRAM channel: ranks x banks behind one command/data bus.
 *
 * A command-driven sim::Component: the owning controller issues every
 * command and owns the clock crossing, so tick() is a no-op and the
 * device never constrains fast-forward (the controller's
 * nextEventCycle covers it). */
class DramDevice final : public sim::Component
{
  public:
    DramDevice(const DramOrganization &org, const DramTiming &timing);

    /**
     * May `cmd` legally issue at DRAM cycle `now`?
     * Checks the command bus (one command per cycle), bank/rank timing
     * registers, the tFAW window, refresh state, and (for column
     * commands) data-bus availability.
     */
    bool canIssue(Cmd cmd, const DramAddress &da, std::uint64_t now) const;

    /** Sentinel for earliestIssue: no cycle can satisfy the command
     *  in the device's current state (e.g. ACT into an open bank). */
    static constexpr std::uint64_t kNever = ~std::uint64_t(0);

    /**
     * Earliest DRAM cycle at which `cmd` could legally issue given the
     * device's current state and no intervening commands, i.e. the
     * smallest `t` with canIssue(cmd, da, t). kNever when a
     * state-dependent precondition fails (closed row for RD/WR, open
     * bank for ACT, banks still open for REF): those only become
     * issuable after another command changes the state, and that
     * command's own issue re-derives the bound.
     */
    std::uint64_t earliestIssue(Cmd cmd, const DramAddress &da) const;

    /**
     * Issue `cmd` at cycle `now`.
     * @pre canIssue(cmd, da, now).
     * @return meaningful only for RD/WR.
     */
    IssueResult issue(Cmd cmd, const DramAddress &da, std::uint64_t now);

    /** True if bank `da.bank` of `da.rank` has row `da.row` open. */
    bool isRowHit(const DramAddress &da) const;

    /** True if that bank has any row open. */
    bool isRowOpen(const DramAddress &da) const;

    /** Rank needs a REF: tREFI elapsed since its last refresh. */
    bool refreshDue(std::uint32_t rank, std::uint64_t now) const;

    /**
     * Refresh urgency: refreshes owed minus refreshes done. The
     * controller must not let this exceed the JEDEC pull-in limit (8).
     */
    std::uint64_t refreshDebt(std::uint32_t rank, std::uint64_t now) const;

    /** First DRAM cycle at which refreshDue(rank, cycle) turns true
     *  (given no further REF issues). */
    std::uint64_t
    nextRefreshDue(std::uint32_t rank) const
    {
        return (ranks_[rank].refreshesDone + 1) * timing_.tREFI;
    }

    /** Any bank in any rank holding a row open? */
    bool
    anyRowOpen() const
    {
        for (const RankState &rs : ranks_) {
            for (const BankState &b : rs.banks) {
                if (b.open)
                    return true;
            }
        }
        return false;
    }

    const BankState &bank(std::uint32_t rank, std::uint32_t b) const;
    const DramTiming &timing() const { return timing_; }
    const DramOrganization &organization() const { return org_; }
    const StatGroup &stats() const { return stats_; }
    /** Energy accumulated by the commands issued so far. */
    const EnergyCounter &energy() const { return energy_; }

    /** Observability hook (nullptr disables emission). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Hardening hook: observer called on every issued command
     *  (nullptr disables). */
    void setCommandObserver(CommandObserver *observer)
    {
        observer_ = observer;
    }

    /** CPU-cycle timestamp used for emitted events. The controller
     *  refreshes this each DRAM tick so the trace timeline stays in
     *  one (CPU) clock domain. */
    void setCpuTime(Cycle cpu_now) { cpuNow_ = cpu_now; }

    // ----- sim::Component adaptation -------------------------------
    Cycle
    nextEventCycle(Cycle /*now*/, Cycle /*from*/) const override
    {
        return kNoCycle; // command-driven: the controller schedules
    }
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }

  private:
    struct RankState
    {
        std::vector<BankState> banks;
        std::deque<std::uint64_t> actWindow; ///< last ACT times (tFAW)
        std::uint64_t nextRead = 0;          ///< rank CAS constraints
        std::uint64_t nextWrite = 0;
        std::uint64_t refreshesDone = 0;
    };

    BankState &bankMut(std::uint32_t rank, std::uint32_t b);
    bool allBanksClosed(const RankState &rs) const;

    /** Data-bus availability for a burst from `rank` (adds tRTRS when
     *  the previous burst came from another rank). */
    std::uint64_t dataBusFreeFor(std::uint32_t rank) const;

    DramOrganization org_;
    DramTiming timing_;
    std::vector<RankState> ranks_;
    std::uint64_t cmdBusFreeAt_ = 0;  ///< next cycle command bus is free
    std::uint64_t dataBusFreeAt_ = 0; ///< next cycle data bus is free
    std::uint32_t lastDataRank_ = 0;  ///< rank of the last data burst
    EnergyCounter energy_;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
    CommandObserver *observer_ = nullptr;
    Cycle cpuNow_ = 0;
};

} // namespace camo::dram

#endif // CAMO_DRAM_DEVICE_H
