/**
 * @file
 * MISE-style slowdown estimation (Subramanian et al., HPCA'13), used
 * by the paper's online GA as its fitness signal (§IV-C).
 *
 * slowdown = (1 - alpha) + alpha * (alone-rate / shared-rate)
 *
 * where alpha is the fraction of cycles the core stalls on memory and
 * the rates are memory request service rates measured with the core
 * in highest-priority mode (alone) vs normally scheduled (shared).
 */

#ifndef CAMO_GA_MISE_H
#define CAMO_GA_MISE_H

#include <cstdint>

namespace camo::ga {

/** One epoch's measurements for one core. */
struct MiseSample
{
    double alpha = 0.0;       ///< memory-stall cycle fraction [0,1]
    double aloneRate = 0.0;   ///< requests/cycle at highest priority
    double sharedRate = 0.0;  ///< requests/cycle under sharing
};

/** Estimated slowdown (>= 1 when sharing hurts; 1 == no slowdown). */
double miseSlowdown(const MiseSample &sample);

/** Average slowdown across cores: the GA's objective (minimized). */
double averageSlowdown(const MiseSample *samples, std::size_t count);

} // namespace camo::ga

#endif // CAMO_GA_MISE_H
