#include "src/ga/genetic.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace camo::ga {

GeneticOptimizer::GeneticOptimizer(const GaConfig &cfg,
                                   std::size_t genome_len,
                                   std::uint64_t seed)
    : cfg_(cfg),
      genomeLen_(genome_len),
      rng_(seed),
      bestFitness_(-std::numeric_limits<double>::infinity())
{
    camo_assert(genomeLen_ >= 1, "empty genome");
    camo_assert(cfg_.populationSize >= 2, "population too small");
    camo_assert(cfg_.eliteCount < cfg_.populationSize,
                "elite count must leave room for offspring");
    camo_assert(cfg_.tournamentSize >= 1, "tournament needs entrants");
    population_.reserve(cfg_.populationSize);
    for (std::size_t i = 0; i < cfg_.populationSize; ++i)
        population_.push_back(randomGenome());
    fitness_.assign(cfg_.populationSize, 0.0);
    evaluated_.assign(cfg_.populationSize, false);
    best_ = population_.front();
}

Genome
GeneticOptimizer::randomGenome()
{
    Genome g(genomeLen_);
    for (auto &gene : g)
        gene = static_cast<std::uint32_t>(
            rng_.below(cfg_.maxGeneValue + 1));
    repair(g);
    return g;
}

void
GeneticOptimizer::repair(Genome &g)
{
    const std::size_t seg_len =
        cfg_.budgetSegmentLen == 0 ? g.size() : cfg_.budgetSegmentLen;
    camo_assert(g.size() % seg_len == 0,
                "genome length must be a multiple of the segment");

    for (std::size_t base = 0; base < g.size(); base += seg_len) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < seg_len; ++i)
            total += g[base + i];
        // Feasibility floor: the candidate must carry some traffic.
        while (total < cfg_.minTotalCredits) {
            auto &gene = g[base + rng_.below(seg_len)];
            if (gene < cfg_.maxGeneValue) {
                ++gene;
                ++total;
            }
        }
        // Security budget: never exceed the allotted bandwidth.
        while (total > cfg_.maxTotalCredits) {
            auto &gene = g[base + rng_.below(seg_len)];
            if (gene > 0) {
                --gene;
                --total;
            }
        }
    }
}

void
GeneticOptimizer::seedCandidate(std::size_t idx, Genome genome)
{
    camo_assert(idx < population_.size(), "seed index out of range");
    camo_assert(!evaluated_[idx],
                "cannot seed an already-evaluated candidate");
    camo_assert(genome.size() == genomeLen_, "seed genome length");
    repair(genome);
    population_[idx] = std::move(genome);
}

void
GeneticOptimizer::setFitness(std::size_t idx, double fitness)
{
    camo_assert(idx < population_.size(), "candidate out of range");
    fitness_[idx] = fitness;
    evaluated_[idx] = true;
    if (fitness > bestFitness_) {
        bestFitness_ = fitness;
        best_ = population_[idx];
    }
}

const Genome &
GeneticOptimizer::bestOfCurrentGeneration() const
{
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < population_.size(); ++i) {
        camo_assert(evaluated_[i], "candidate ", i, " not evaluated");
        if (fitness_[i] > fitness_[best_idx])
            best_idx = i;
    }
    return population_[best_idx];
}

double
GeneticOptimizer::bestFitnessOfCurrentGeneration() const
{
    double best = fitness_.empty() ? 0.0 : fitness_[0];
    for (std::size_t i = 0; i < population_.size(); ++i) {
        camo_assert(evaluated_[i], "candidate ", i, " not evaluated");
        best = std::max(best, fitness_[i]);
    }
    return best;
}

const Genome &
GeneticOptimizer::tournamentPick() const
{
    std::size_t winner = rng_.below(population_.size());
    for (std::size_t i = 1; i < cfg_.tournamentSize; ++i) {
        const std::size_t challenger = rng_.below(population_.size());
        if (fitness_[challenger] > fitness_[winner])
            winner = challenger;
    }
    return population_[winner];
}

void
GeneticOptimizer::nextGeneration()
{
    for (std::size_t i = 0; i < evaluated_.size(); ++i) {
        camo_assert(evaluated_[i],
                    "candidate ", i, " was never evaluated");
    }

    // Elitism: carry the best genomes over unchanged.
    std::vector<std::size_t> order(population_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a,
                                                 std::size_t b) {
        return fitness_[a] > fitness_[b];
    });

    std::vector<Genome> next;
    next.reserve(cfg_.populationSize);
    for (std::size_t i = 0; i < cfg_.eliteCount; ++i)
        next.push_back(population_[order[i]]);

    while (next.size() < cfg_.populationSize) {
        Genome child = tournamentPick();
        if (rng_.chance(cfg_.crossoverRate)) {
            const Genome &other = tournamentPick();
            for (std::size_t i = 0; i < genomeLen_; ++i) {
                if (rng_.chance(0.5))
                    child[i] = other[i];
            }
        }
        for (auto &gene : child) {
            if (rng_.chance(cfg_.mutationRate)) {
                gene = static_cast<std::uint32_t>(
                    rng_.below(cfg_.maxGeneValue + 1));
            }
        }
        repair(child);
        next.push_back(std::move(child));
    }

    population_ = std::move(next);
    std::fill(evaluated_.begin(), evaluated_.end(), false);
    ++generation_;
}

const Genome &
GeneticOptimizer::optimize(
    const std::function<double(const Genome &)> &fitness)
{
    for (std::size_t gen = 0; gen < cfg_.generations; ++gen) {
        for (std::size_t i = 0; i < population_.size(); ++i)
            setFitness(i, fitness(population_[i]));
        if (gen + 1 < cfg_.generations)
            nextGeneration();
    }
    return best_;
}

shaper::BinConfig
genomeToBinConfig(const Genome &genome, std::size_t offset,
                  const shaper::BinConfig &templ)
{
    camo_assert(offset + templ.numBins() <= genome.size(),
                "genome slice out of range");
    shaper::BinConfig cfg = templ;
    bool any = false;
    for (std::size_t i = 0; i < templ.numBins(); ++i) {
        cfg.credits[i] = genome[offset + i];
        any = any || cfg.credits[i] > 0;
    }
    if (!any)
        cfg.credits.back() = 1; // keep the config valid
    cfg.validate();
    return cfg;
}

} // namespace camo::ga
