/**
 * @file
 * Online genetic algorithm for bin-configuration search (paper §IV-C).
 *
 * A genome is one credit count per hardware bin (10 genes for a
 * one-sided shaper, 20 for BDC: requests then responses). The search
 * space is MAX_CREDITS^20 and non-convex, which is why the paper uses
 * a GA. The optimizer exposes a generation-stepped API so the caller
 * can evaluate children online (each child runs for an epoch in the
 * live system) exactly as in the paper's Figure 8.
 */

#ifndef CAMO_GA_GENETIC_H
#define CAMO_GA_GENETIC_H

#include <cstdint>
#include <functional>
#include <vector>

#include "src/camouflage/bin_config.h"
#include "src/common/rng.h"

namespace camo::ga {

/** One candidate bin configuration (credit count per bin). */
using Genome = std::vector<std::uint32_t>;

/** GA hyper-parameters (paper: 20-30 children, 20-30 generations). */
struct GaConfig
{
    std::size_t populationSize = 24;
    std::size_t generations = 20;
    std::size_t tournamentSize = 3;
    std::size_t eliteCount = 2;
    double crossoverRate = 0.8;
    double mutationRate = 0.08;
    std::uint32_t maxGeneValue = 64;
    /** Feasibility floor: minimum total credits per segment, so every
     *  candidate sustains some bandwidth (repair bumps genes). */
    std::uint32_t minTotalCredits = 8;
    /**
     * Security budget: maximum total credits per segment. The GA
     * searches how to *distribute* a bandwidth budget across bins —
     * an unconstrained search would simply remove shaping. Repair
     * decrements random genes until the budget holds. Because unused
     * credits become fake traffic that occupies real DRAM bandwidth,
     * the cap should stay near the per-core fair share of the
     * channel (DDR3-1333 peak / 4 cores ~ 170 credits per 10k-cycle
     * window; 96 leaves headroom for responses and writebacks).
     */
    std::uint32_t maxTotalCredits = 96;
    /**
     * Genes per budget segment (e.g. 10 for one shaper; a BDC genome
     * has two segments: request bins then response bins). 0 treats
     * the whole genome as one segment.
     */
    std::size_t budgetSegmentLen = 0;
};

/** Generation-stepped genetic optimizer (fitness: higher is better). */
class GeneticOptimizer
{
  public:
    GeneticOptimizer(const GaConfig &cfg, std::size_t genome_len,
                     std::uint64_t seed);

    /** Current generation's candidates ("children" in the paper). */
    const std::vector<Genome> &population() const { return population_; }

    /**
     * Replace candidate `idx` with a known-good genome (after repair),
     * e.g. a hand-written baseline: the GA then never does worse than
     * its seeds thanks to elitism. Only valid before evaluation.
     */
    void seedCandidate(std::size_t idx, Genome genome);

    /** Record the measured fitness of candidate `idx`. */
    void setFitness(std::size_t idx, double fitness);

    /**
     * Breed the next generation from the recorded fitnesses
     * (elitism + tournament selection + uniform crossover +
     * per-gene mutation + feasibility repair).
     * @pre every candidate's fitness was set.
     */
    void nextGeneration();

    /** Historical best (max over every measurement ever made). With a
     *  noisy fitness this can be a lucky outlier; prefer
     *  bestOfCurrentGeneration() for final selection. */
    const Genome &best() const { return best_; }
    double bestFitness() const { return bestFitness_; }

    /** Best candidate of the most recently evaluated generation.
     *  @pre every candidate of the current generation was evaluated. */
    const Genome &bestOfCurrentGeneration() const;
    double bestFitnessOfCurrentGeneration() const;

    std::size_t generation() const { return generation_; }

    /**
     * Convenience offline driver: evaluate all candidates with
     * `fitness` for cfg.generations generations; returns best().
     */
    const Genome &optimize(const std::function<double(const Genome &)> &fitness);

    const GaConfig &config() const { return cfg_; }

  private:
    Genome randomGenome();
    void repair(Genome &g);
    const Genome &tournamentPick() const;

    GaConfig cfg_;
    std::size_t genomeLen_;
    mutable Rng rng_;
    std::vector<Genome> population_;
    std::vector<double> fitness_;
    std::vector<bool> evaluated_;
    Genome best_;
    double bestFitness_;
    std::size_t generation_ = 0;
};

/**
 * Build a BinConfig from a genome slice using `templ`'s edges and
 * period. @pre genome[offset..offset+bins) exists.
 */
shaper::BinConfig genomeToBinConfig(const Genome &genome,
                                    std::size_t offset,
                                    const shaper::BinConfig &templ);

} // namespace camo::ga

#endif // CAMO_GA_GENETIC_H
