#include "src/ga/mise.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::ga {

double
miseSlowdown(const MiseSample &sample)
{
    camo_assert(sample.alpha >= 0.0 && sample.alpha <= 1.0,
                "alpha out of range: ", sample.alpha);
    if (sample.sharedRate <= 0.0 || sample.aloneRate <= 0.0)
        return 1.0; // no memory activity: no memory slowdown
    const double ratio =
        std::max(1.0, sample.aloneRate / sample.sharedRate);
    return (1.0 - sample.alpha) + sample.alpha * ratio;
}

double
averageSlowdown(const MiseSample *samples, std::size_t count)
{
    camo_assert(count > 0, "no samples");
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        sum += miseSlowdown(samples[i]);
    return sum / static_cast<double>(count);
}

} // namespace camo::ga
