#include "src/scenario/scenario.h"

#include <cstdio>
#include <sstream>

#include "src/hard/error.h"
#include "src/security/covert_receiver.h"
#include "src/security/mutual_information.h"
#include "src/sim/runner.h"
#include "src/sim/system.h"
#include "src/trace/covert.h"

namespace camo::scenario {

namespace {

/**
 * Embedded topology texts. These are the byte-for-byte contents of
 * the files under examples/topologies/ (tests pin the equality), so
 * the CLI/daemon can resolve scenarios with no filesystem
 * dependency while the shipped files stay canonical.
 */
const char kRowHammerOpen[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"none\",\n"
    "  \"workloads\": [\"hammer:2AAAAAAA\", \"probe\", \"sjeng\", "
    "\"sjeng\"],\n"
    "  \"rowhammer\": { \"enabled\": true, \"act_threshold\": 16, "
    "\"rfm_dram_cycles\": 180 }\n"
    "}\n";

const char kRowHammerShaped[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"reqc\",\n"
    "  \"randomize_timing\": true,\n"
    "  \"shape_cores\": [0],\n"
    "  \"workloads\": [\"hammer:2AAAAAAA\", \"probe\", \"sjeng\", "
    "\"sjeng\"],\n"
    "  \"rowhammer\": { \"enabled\": true, \"act_threshold\": 16, "
    "\"rfm_dram_cycles\": 180 }\n"
    "}\n";

const char kPimOpen[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"none\",\n"
    "  \"workloads\": [\"pim:2AAAAAAA:5000\", \"probe:100\", \"sjeng\", "
    "\"sjeng\"]\n"
    "}\n";

const char kPimShaped[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"reqc\",\n"
    "  \"shape_cores\": [0],\n"
    "  \"workloads\": [\"pim:2AAAAAAA:5000\", \"probe:100\", \"sjeng\", "
    "\"sjeng\"]\n"
    "}\n";

const char kTraceOpen[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"none\",\n"
    "  \"workloads\": [\"dramsim2:@sample\", \"probe\", "
    "\"champsim:@sample\", \"apache\"]\n"
    "}\n";

const char kTraceShaped[] =
    "{\n"
    "  \"seed\": 9,\n"
    "  \"mitigation\": \"reqc\",\n"
    "  \"randomize_timing\": true,\n"
    "  \"shape_cores\": [0, 2],\n"
    "  \"workloads\": [\"dramsim2:@sample\", \"probe\", "
    "\"champsim:@sample\", \"apache\"]\n"
    "}\n";

std::vector<ScenarioSpec>
buildScenarios()
{
    std::vector<ScenarioSpec> out;

    {
        ScenarioSpec s;
        s.name = "rowhammer-trr";
        s.title = "TRR/PRAC RowHammer defense as a timing channel";
        s.description =
            "A refresh-management mitigation in the DRAM model stalls "
            "the channel every 16 activations of a bank; a hammer "
            "sender's row-conflict storms modulate the stall rate, so "
            "the probe core reads the key out of its own latencies "
            "(arXiv 2503.17891). Shaped variant: ReqC on the sender.";
        s.openTopologyJson = kRowHammerOpen;
        s.shapedTopologyJson = kRowHammerShaped;
        s.senderCore = 0;
        s.probeCore = 1;
        s.victimCore = 0;
        s.slowdownCores = {2, 3};
        s.key = 0x2AAAAAAAu;
        s.keyLength = 32;
        s.pulseCycles = 20000;
        s.runCycles = 20000 * 128;
        out.push_back(std::move(s));
    }
    {
        ScenarioSpec s;
        s.name = "pim-covert";
        s.title = "PIM-command covert channel (amplified capacity)";
        s.description =
            "A processing-in-memory offload engine moves a full DRAM "
            "row per command at a few host instructions' cost, so "
            "modulating the command rate swings memory occupancy 4x "
            "faster than Algorithm 1's load/store loop: 5000-cycle "
            "pulses decode where the paper needed 20000 (arXiv "
            "2404.11284). Shaped variant: ReqC on the sender.";
        s.openTopologyJson = kPimOpen;
        s.shapedTopologyJson = kPimShaped;
        s.senderCore = 0;
        s.probeCore = 1;
        s.victimCore = 0;
        s.slowdownCores = {2, 3};
        s.key = 0x2AAAAAAAu;
        s.keyLength = 32;
        s.pulseCycles = 5000;
        s.runCycles = 5000 * 256;
        out.push_back(std::move(s));
    }
    {
        ScenarioSpec s;
        s.name = "trace-replay";
        s.title = "Real-trace ingestion (DRAMSim2 + ChampSim)";
        s.description =
            "Cores replay real-format memory traces "
            "(src/trace/file_trace.h) instead of synthetic models; the "
            "probe measures what the DRAMSim2-driven core's phase "
            "structure leaks through the shared memory system (no "
            "covert key — windowed MI only). Shaped variant: ReqC on "
            "both trace-driven cores.";
        s.openTopologyJson = kTraceOpen;
        s.shapedTopologyJson = kTraceShaped;
        s.senderCore = ScenarioSpec::kNoCore;
        s.probeCore = 1;
        s.victimCore = 0;
        s.slowdownCores = {0, 2, 3};
        s.pulseCycles = 20000;
        s.runCycles = 2000000;
        out.push_back(std::move(s));
    }
    return out;
}

/** What one topology run leaves behind for the reductions. */
struct RunCapture
{
    sim::RunMetrics metrics;
    std::vector<security::LatencySample> probeLatencies;
    std::vector<shaper::TrafficEvent> victimIntrinsic;
};

/** Run one topology and measure its channel (windowed MI is computed
 *  by the caller: the shaped run's X must come from the *open* run —
 *  under shaping the in-run intrinsic stream is already perturbed by
 *  shaper back-pressure, see bench/mi_measurement.cc). */
ChannelMeasurement
measureOne(const ScenarioSpec &spec, const std::string &topology_json,
           Cycle cycles, RunCapture &cap)
{
    sim::TopologyConfig topo = sim::parseTopology(topology_json);
    topo.system.recordLatencies = true; // the probe's observations
    topo.system.recordTraffic = true;   // the victim's intrinsic events
    sim::System sys(topo);
    cap.metrics = sim::runAndMeasure(sys, cycles);
    cap.probeLatencies = sys.latencyLog(spec.probeCore);
    cap.victimIntrinsic = sys.intrinsicMonitor(spec.victimCore).events();

    ChannelMeasurement m;
    m.throughput = cap.metrics.throughput();
    for (std::uint32_t c = 0; c < sys.memory().numChannels(); ++c) {
        if (const dram::RowHammerDefense *rh =
                sys.memory().channel(c).rowhammer()) {
            m.rfmStalls += rh->stats().counter("rfm.issued");
        }
    }

    if (spec.senderCore != ScenarioSpec::kNoCore) {
        security::CovertDecoderConfig dcfg;
        dcfg.windowCycles = spec.pulseCycles;
        const std::size_t num_bits = cycles / spec.pulseCycles;
        const security::DecodeResult decoded = security::decodeCovert(
            cap.probeLatencies, dcfg, num_bits);
        m.ber = security::bitErrorRate(
            decoded.bits, trace::keyBits(spec.key, spec.keyLength));
        m.channelCapacityBits =
            security::binaryChannelCapacityBits(m.ber);
    }
    return m;
}

} // namespace

const std::vector<ScenarioSpec> &
scenarios()
{
    static const std::vector<ScenarioSpec> all = buildScenarios();
    return all;
}

const ScenarioSpec *
findScenario(const std::string &name)
{
    for (const ScenarioSpec &s : scenarios()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const std::string &
scenarioTopologyJson(const std::string &ref)
{
    std::string name = ref;
    bool shaped = false;
    const std::size_t colon = ref.find(':');
    if (colon != std::string::npos) {
        name = ref.substr(0, colon);
        const std::string variant = ref.substr(colon + 1);
        if (variant != "shaped" && variant != "open") {
            throw hard::ConfigError(
                "scenario '" + name + "': unknown variant token '" +
                variant + "' at byte " + std::to_string(colon + 1) +
                " (expected 'open' or 'shaped')");
        }
        shaped = variant == "shaped";
    }
    const ScenarioSpec *spec = findScenario(name);
    if (!spec) {
        std::string known;
        for (const ScenarioSpec &s : scenarios())
            known += (known.empty() ? "" : ", ") + s.name;
        throw hard::ConfigError("unknown scenario token '" + name +
                                "' at byte 0 (known: " + known + ")");
    }
    return shaped ? spec->shapedTopologyJson : spec->openTopologyJson;
}

ScenarioResult
evaluateScenario(const ScenarioSpec &spec, Cycle cycles)
{
    if (cycles == 0)
        cycles = spec.runCycles;
    ScenarioResult result;
    RunCapture open_cap;
    RunCapture shaped_cap;
    result.open =
        measureOne(spec, spec.openTopologyJson, cycles, open_cap);
    result.shaped =
        measureOne(spec, spec.shapedTopologyJson, cycles, shaped_cap);
    // Windowed MI: X is always the victim's *unshaped* intrinsic
    // timing (the open run); Y is what the probe saw in each run. The
    // k-th window is the same wall-clock window in both runs (same
    // seed, same length), mirroring the reference-run methodology of
    // bench/mi_measurement.cc.
    result.open.windowMiBits =
        security::computeWindowedCrossMi(open_cap.victimIntrinsic,
                                         open_cap.probeLatencies,
                                         spec.pulseCycles, 4)
            .miBits;
    result.shaped.windowMiBits =
        security::computeWindowedCrossMi(open_cap.victimIntrinsic,
                                         shaped_cap.probeLatencies,
                                         spec.pulseCycles, 4)
            .miBits;
    const std::vector<double> slow =
        sim::slowdownVs(open_cap.metrics, shaped_cap.metrics);
    double worst = 1.0;
    for (const std::uint32_t c : spec.slowdownCores) {
        if (c < slow.size() && slow[c] > worst)
            worst = slow[c];
    }
    result.slowdown = worst;
    return result;
}

std::string
listScenariosText()
{
    std::ostringstream os;
    os << "Registered attack scenarios (camosim --scenario=NAME, "
          "NAME:shaped for the mitigated variant):\n";
    for (const ScenarioSpec &s : scenarios()) {
        os << "\n  " << s.name << " — " << s.title << "\n";
        os << "      " << s.description << "\n";
        char line[160];
        if (s.senderCore != ScenarioSpec::kNoCore) {
            std::snprintf(line, sizeof line,
                          "      sender core %u, probe core %u, "
                          "pulse %llu cycles, key 0x%08X (%u bits)\n",
                          s.senderCore, s.probeCore,
                          static_cast<unsigned long long>(s.pulseCycles),
                          s.key, s.keyLength);
        } else {
            std::snprintf(line, sizeof line,
                          "      victim core %u, probe core %u, "
                          "MI window %llu cycles (no covert key)\n",
                          s.victimCore, s.probeCore,
                          static_cast<unsigned long long>(s.pulseCycles));
        }
        os << line;
    }
    return os.str();
}

} // namespace camo::scenario
