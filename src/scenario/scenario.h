/**
 * @file
 * The attack-scenario registry: named, self-contained timing-channel
 * experiments beyond the Camouflage paper's own evaluation.
 *
 * A scenario bundles everything one experiment needs: an *open*
 * topology (the channel demonstrably present), a *shaped* topology
 * (the same machine under one of the paper's mitigations), and the
 * measurement recipe (which core transmits, which core probes, the
 * pulse length and key). evaluateScenario() runs both topologies and
 * reduces them to the numbers the catalog reports:
 *
 *  - BER: the covert decoder's bit-error rate on the probe core's
 *    latency log (0.5 = dead channel), plus the implied binary-channel
 *    capacity 1 - H2(BER) in bits per pulse;
 *  - windowed MI between the victim core's intrinsic traffic and the
 *    probe's latencies (the Figure 2 attack-surface leakage, also
 *    defined for key-less trace scenarios);
 *  - slowdown: max slowdown of the benign cores under shaping
 *    (the price of closing the channel).
 *
 * Shipped scenarios (see scenarios()):
 *  - "rowhammer-trr": a TRR/PRAC RowHammer defense in the DRAM model
 *    (src/dram/rowhammer.h) whose refresh-management stalls are
 *    activation-count-dependent; a row-conflict hammer sender
 *    modulates the stall rate (arXiv 2503.17891).
 *  - "pim-covert": a PIM-command source (src/trace/pim.h) whose
 *    row-sized ops buy far more occupancy per host instruction,
 *    supporting pulses 4x shorter than Algorithm 1 (arXiv 2404.11284).
 *  - "trace-replay": real-trace ingestion (src/trace/file_trace.h);
 *    DRAMSim2- and ChampSim-format traces drive cores while a probe
 *    measures what their phase structure leaks.
 *
 * Topologies are embedded JSON (and shipped verbatim under
 * examples/topologies/), so `camosim --scenario=NAME` and the daemon's
 * JobSpec scenario field work from any directory.
 */

#ifndef CAMO_SCENARIO_SCENARIO_H
#define CAMO_SCENARIO_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/topology.h"

namespace camo::scenario {

/** One registered attack scenario. */
struct ScenarioSpec
{
    /** No covert sender (key-less scenarios). */
    static constexpr std::uint32_t kNoCore = 0xffffffffu;

    std::string name;        ///< registry key ("rowhammer-trr")
    std::string title;       ///< one-line catalog headline
    std::string description; ///< what the channel is and why it opens

    std::string openTopologyJson;   ///< channel open (no shaping)
    std::string shapedTopologyJson; ///< same machine, shaped

    /** Core transmitting the covert key (kNoCore = none). */
    std::uint32_t senderCore = kNoCore;
    /** Core whose latency log the decoder reads. */
    std::uint32_t probeCore = 1;
    /** Core whose intrinsic traffic is the windowed-MI victim. */
    std::uint32_t victimCore = 0;
    /** Cores whose slowdown under shaping is reported (the benign
     *  ones; the sender's own slowdown is the point, not a cost). */
    std::vector<std::uint32_t> slowdownCores;

    std::uint32_t key = 0;        ///< transmitted key (sender set)
    std::uint32_t keyLength = 32; ///< bits of `key` transmitted
    Cycle pulseCycles = 20000;    ///< sender pulse / decoder window
    Cycle runCycles = 0;          ///< default evaluation length
};

/** All registered scenarios, in catalog order. */
const std::vector<ScenarioSpec> &scenarios();

/** Look up by name; nullptr if unknown. */
const ScenarioSpec *findScenario(const std::string &name);

/**
 * Resolve "NAME" or "NAME:shaped" to the scenario's embedded topology
 * JSON text.
 * @throws hard::ConfigError naming the offending token for unknown
 *         names or variants.
 */
const std::string &scenarioTopologyJson(const std::string &ref);

/** One measured channel (one run of one topology). */
struct ChannelMeasurement
{
    double ber = 0.5;              ///< covert decoder bit-error rate
    double channelCapacityBits = 0; ///< 1 - H2(ber), bits per pulse
    double windowMiBits = 0;       ///< victim-vs-probe windowed MI
    double throughput = 0;         ///< sum of per-core IPC
    std::uint64_t rfmStalls = 0;   ///< RowHammer RFM ops (0 if off)
};

/** evaluateScenario() output: open vs shaped plus the cost. */
struct ScenarioResult
{
    ChannelMeasurement open;
    ChannelMeasurement shaped;
    /** Max benign-core slowdown, shaped relative to open. */
    double slowdown = 1.0;
};

/**
 * Run the scenario's open and shaped topologies for `cycles` CPU
 * cycles (0 = the spec's default) and measure both channels.
 * @throws hard::ConfigError if an embedded topology fails to parse
 *         (a registry bug caught by tests).
 */
ScenarioResult evaluateScenario(const ScenarioSpec &spec,
                                Cycle cycles = 0);

/** The `camosim --list-scenarios` catalog text. */
std::string listScenariosText();

} // namespace camo::scenario

#endif // CAMO_SCENARIO_SCENARIO_H
