/**
 * @file
 * The memory transaction type that flows core → shaper → NoC →
 * memory controller → DRAM and back.
 */

#ifndef CAMO_MEM_REQUEST_H
#define CAMO_MEM_REQUEST_H

#include "src/common/types.h"

namespace camo {

/** A single cache-line memory transaction and its timing breadcrumbs. */
struct MemRequest
{
    ReqId id = 0;
    CoreId core = kNoCore;
    Addr addr = kNoAddr;
    bool isWrite = false;

    /**
     * Fake traffic injected by Camouflage (non-cached, random address).
     * Fake requests occupy real bandwidth everywhere downstream but
     * carry no data any core waits for.
     */
    bool isFake = false;

    /** Cycle the transaction was created (LLC miss, or fake-gen). */
    Cycle created = 0;
    /** Cycle the request shaper released it (== created if unshaped). */
    Cycle shaperOut = kNoCycle;
    /** Cycle it entered the memory controller queue. */
    Cycle mcArrive = kNoCycle;
    /** Cycle the response left the memory controller (reads only). */
    Cycle mcDone = kNoCycle;
    /** Cycle the response shaper released the response. */
    Cycle respShaperOut = kNoCycle;
    /** Cycle the core received the response. */
    Cycle delivered = kNoCycle;

    /** End-to-end latency visible to the core (reads). */
    Cycle
    totalLatency() const
    {
        return delivered == kNoCycle ? kNoCycle : delivered - created;
    }
};

} // namespace camo

#endif // CAMO_MEM_REQUEST_H
