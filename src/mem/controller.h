/**
 * @file
 * The memory controller: transaction queues, write-drain policy,
 * refresh management, scheduler dispatch, and the CPU/DRAM clock
 * crossing.
 *
 * The controller lives in the CPU clock domain (requests arrive and
 * responses depart in CPU cycles) and drives the DRAM device through a
 * rational clock divider (Table II: 2.4 GHz core, DDR3-1333 => 18/5
 * CPU cycles per DRAM cycle).
 */

#ifndef CAMO_MEM_CONTROLLER_H
#define CAMO_MEM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dram/address.h"
#include "src/dram/device.h"
#include "src/dram/rowhammer.h"
#include "src/dram/timing.h"
#include "src/mem/request.h"
#include "src/mem/schedulers.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"

namespace camo::mem {

/** Which scheduling policy the controller runs. */
enum class SchedulerKind
{
    FrFcfs,            ///< baseline (and Camouflage's substrate)
    Fcfs,              ///< plain in-order reference
    TemporalPartition, ///< TP baseline [Wang et al. HPCA'14]
    FixedService,      ///< FS baseline [Shafiee et al. MICRO'15]
};

/** Row-buffer management policy. */
enum class PagePolicy
{
    /** Leave rows open after a CAS (bets on row-buffer locality). */
    Open,
    /**
     * Close idle rows eagerly: when the command bus is otherwise
     * idle, precharge banks whose open row no pending transaction
     * wants. Trades row hits for lower conflict latency — and
     * removes the row-buffer residency timing channel.
     */
    Closed,
};

const char *schedulerKindName(SchedulerKind kind);

/** Controller configuration (Table II defaults). */
struct ControllerConfig
{
    dram::DramOrganization org;
    dram::DramTiming timing;
    dram::MappingScheme mapping = dram::MappingScheme::RowColRankBank;

    std::uint32_t readQueueDepth = 32;  ///< "32-entry transaction queue"
    std::uint32_t writeQueueDepth = 32;
    std::uint32_t writeDrainHigh = 24;  ///< start draining writes
    std::uint32_t writeDrainLow = 8;    ///< stop draining writes

    /** CPU cycles per DRAM cycle as a ratio (18/5 = 3.6). */
    std::uint64_t cpuPerDramNum = 18;
    std::uint64_t cpuPerDramDen = 5;

    SchedulerKind scheduler = SchedulerKind::FrFcfs;
    PagePolicy pagePolicy = PagePolicy::Open;
    TpConfig tp;
    FsConfig fs;

    /**
     * Bank partitioning (used by the FS baseline): core `c` may only
     * touch banks owned by its partition; the controller remaps the
     * decoded bank into the core's partition.
     */
    bool bankPartitioning = false;
    /**
     * Rank partitioning (the FS variant the paper could not evaluate
     * with one rank, SIV-F): each core's traffic is confined to the
     * rank core % ranksPerChannel.
     */
    bool rankPartitioning = false;
    std::uint32_t numCores = 4;

    /**
     * Performance extension, OFF by default and NOT secure: schedule
     * Camouflage fake traffic at strictly lowest priority and drop it
     * under queue pressure. A real memory controller cannot tell fake
     * from real traffic (there is no such wire on the bus), and the
     * covert-channel bench shows that an MC which does distinguish
     * them re-opens the very side channel fake traffic exists to
     * close: the victim's real traffic competes at full priority
     * while fakes are cheap, so the adversary's latency again tracks
     * the victim's activity. Use only when fakes are trusted inputs.
     */
    bool demoteFakeTraffic = false;

    /**
     * TRR/PRAC-style RowHammer mitigation (src/dram/rowhammer.h),
     * off by default. When enabled, refresh-management stalls defer
     * all command scheduling — the activation-count-dependent timing
     * channel the scenario subsystem measures.
     */
    dram::RowHammerConfig rowhammer;
};

/** One DRAM channel's controller. */
class MemoryController final : public sim::Component
{
  public:
    /** `arena` (optional) backs the transaction queues; see
     *  src/common/arena.h. */
    explicit MemoryController(const ControllerConfig &cfg,
                              std::string name = "mc",
                              Arena *arena = nullptr);
    ~MemoryController() override;

    /** Is there queue space for another transaction of this type? */
    bool canAccept(bool is_write) const;

    /**
     * Enqueue a transaction at CPU cycle `now`.
     * @pre canAccept(req.isWrite).
     * Writes are posted (no response); reads produce a response
     * retrievable via popResponses().
     * @param decode_addr address to decode DRAM coordinates from
     *        (kNoAddr = use req.addr); MemorySystem passes the
     *        channel-local address here while the request keeps its
     *        original address for the return path.
     */
    void enqueue(MemRequest req, Cycle now, Addr decode_addr = kNoAddr);

    /** Advance one CPU cycle; internally ticks the DRAM domain. */
    void tick(Cycle now) override;

    /** Read responses that completed at or before CPU cycle `now`. */
    std::vector<MemRequest> popResponses(Cycle now);

    /** Append completed responses to `out` (allocation-free variant
     *  of popResponses; same selection and ordering). */
    void drainResponses(Cycle now, std::vector<MemRequest> &out);

    /**
     * Earliest CPU cycle >= `from` at which the controller could do
     * observable work: the DRAM tick at which the scheduler could
     * first issue a command for a queued transaction (a sound lower
     * bound from Scheduler::earliestPick over the device's timing
     * registers -- DRAM ticks before it are provably no-ops), the
     * earliest closed-page precharge opportunity, the earliest pending
     * response completion, and the next refresh falling due. kNoCycle
     * when fully quiescent. `now` is the current CPU cycle (`from` ==
     * now + 1 in the System tick loop).
     */
    Cycle nextEventCycle(Cycle now, Cycle from) const override;

    /** Earliest CPU cycle at which a completed response becomes
     *  visible to popResponses()/drainResponses(), or kNoCycle if no
     *  response is pending. The event kernel uses this to wake the
     *  response-routing station exactly when data is ready. */
    Cycle nextResponseReady() const;

    /** Account `n` skipped idle CPU cycles: advance the DRAM clock
     *  crossing exactly as `n` tick() calls on an idle controller
     *  would (idle DRAM ticks mutate nothing else). */
    void skipIdleCycles(Cycle n) override { divider_.skip(n); }

    /**
     * RespC acceleration hook: grant `tokens` high-priority CAS slots
     * to `core` (paper: priority proportional to unused credits).
     */
    void boostPriority(CoreId core, std::uint32_t tokens);

    /**
     * MISE alpha-measurement mode: while set, `core`'s transactions
     * preempt everything (paper §IV-C "Highest Priority Mode").
     */
    void setHighestPriorityCore(std::optional<CoreId> core);

    std::uint32_t priorityTokens(CoreId core) const;
    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }
    std::uint64_t dramCycle() const { return divider_.derivedTicks(); }

    const ControllerConfig &config() const { return cfg_; }
    const dram::DramDevice &device() const { return device_; }
    /** The RowHammer defense, or nullptr when not enabled. */
    const dram::RowHammerDefense *rowhammer() const
    {
        return rowhammer_.get();
    }
    const Scheduler &scheduler() const { return *sched_; }
    const StatGroup &stats() const { return stats_; }

    /** Decode with bank partitioning applied (exposed for tests). */
    dram::DramAddress decode(Addr addr, CoreId core) const;

    /** Observability hook; propagates to the DRAM device. */
    void setTracer(obs::Tracer *tracer);

    // ----- sim::Component adaptation -------------------------------
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    /** Registers this channel's stats under its component name plus
     *  the device's under "<name>.dram". */
    void registerStats(obs::StatRegistry &reg) const override;

    /** Hardening hook: observer for every DRAM command this
     *  channel's device issues (the protocol checker). */
    void setCommandObserver(dram::CommandObserver *observer)
    {
        device_.setCommandObserver(observer);
    }

  private:
    struct PendingResponse
    {
        MemRequest req;
        Cycle readyCpu; ///< CPU cycle the response is available
    };

    void dramTick(Cycle cpu_now);
    bool manageRefresh(std::uint64_t dram_now);
    bool closeIdleRows(std::uint64_t dram_now);
    using TxnQueue = ArenaDeque<Transaction>;

    void buildPool(const TxnQueue &queue, SchedView &view,
                   std::vector<std::size_t> &index_map) const;
    /** Earliest DRAM cycle the scheduler could act on `queue`
     *  (Scheduler::earliestPick over the same pool dramTick offers). */
    std::uint64_t earliestQueueAction(const TxnQueue &queue,
                                      bool is_write,
                                      std::uint64_t dram_now) const;
    void execute(const Decision &d, TxnQueue &queue,
                 const std::vector<std::size_t> &index_map, Cycle cpu_now,
                 std::uint64_t dram_now);
    Cycle dramDelayToCpu(std::uint64_t dram_cycles) const;

    ControllerConfig cfg_;
    dram::AddressMapper mapper_;
    dram::DramDevice device_;
    ClockDivider divider_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<dram::RowHammerDefense> rowhammer_;

    TxnQueue readQ_;
    TxnQueue writeQ_;
    bool drainingWrites_ = false;
    std::vector<PendingResponse> responses_;
    /** Scratch buffers reused across dramTick calls (buildPool runs
     *  every DRAM cycle; rebuilding these from scratch dominated the
     *  busy-path profile). Mutable: buildPool is const so the event
     *  kernel's bound derivation (nextEventCycle) can reuse it. */
    mutable std::vector<std::size_t> poolBoosted_;
    mutable std::vector<std::size_t> poolNormal_;
    mutable std::vector<std::size_t> poolFake_;
    std::vector<std::size_t> indexMapScratch_;
    std::vector<const Transaction *> poolScratch_;
    /** Scratch for earliestQueueAction (kept separate from the
     *  dramTick loaners so a bound derivation mid-tick cannot clobber
     *  a live pool). */
    mutable std::vector<const Transaction *> boundPool_;
    mutable std::vector<std::size_t> boundIndex_;
    std::map<CoreId, std::uint32_t> priorityTokens_;
    std::optional<CoreId> highestPriorityCore_;
    StatGroup stats_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace camo::mem

#endif // CAMO_MEM_CONTROLLER_H
