/**
 * @file
 * Multi-channel memory system: one MemoryController per channel
 * behind a line-interleaved channel decoder. With channels == 1 this
 * is a thin wrapper over a single controller (the paper's Table II
 * configuration).
 */

#ifndef CAMO_MEM_MEMORY_SYSTEM_H
#define CAMO_MEM_MEMORY_SYSTEM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/dram/address.h"
#include "src/mem/controller.h"
#include "src/mem/request.h"
#include "src/sim/component.h"

namespace camo::mem {

/** N per-channel controllers + channel routing. */
class MemorySystem final : public sim::Component
{
  public:
    /**
     * @param cfg controller configuration; cfg.org.channels selects
     *        how many controllers to instantiate (each controller
     *        sees a channels==1 organization and channel-local
     *        addresses).
     * @param arena optional backing for every channel's transaction
     *        queues (src/common/arena.h).
     */
    explicit MemorySystem(const ControllerConfig &cfg,
                          Arena *arena = nullptr);

    /** Channel a request address routes to. */
    std::uint32_t channelOf(Addr addr) const;

    bool canAccept(Addr addr, bool is_write) const;
    void enqueue(MemRequest req, Cycle now);
    void tick(Cycle now) override;
    std::vector<MemRequest> popResponses(Cycle now);

    /** Append completed responses from every channel to `out`
     *  (allocation-free popResponses; same merged ordering). */
    void drainResponses(Cycle now, std::vector<MemRequest> &out);

    /** Earliest CPU cycle >= `from` any channel could act at (see
     *  MemoryController::nextEventCycle). */
    Cycle nextEventCycle(Cycle now, Cycle from) const override;

    /** Earliest CPU cycle any channel has a completed response ready
     *  for drainResponses(), or kNoCycle (see
     *  MemoryController::nextResponseReady). */
    Cycle nextResponseReady() const;

    /** Account `n` skipped idle CPU cycles on every channel. */
    void
    skipIdleCycles(Cycle n) override
    {
        for (auto &mc : channels_)
            mc->skipIdleCycles(n);
    }

    void boostPriority(CoreId core, std::uint32_t tokens);
    void setHighestPriorityCore(std::optional<CoreId> core);

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    MemoryController &channel(std::uint32_t i);
    const MemoryController &channel(std::uint32_t i) const;

    /** Aggregate queue depths across channels. */
    std::size_t readQueueSize() const;
    std::size_t writeQueueSize() const;

    /** Observability hook; fans out to every channel controller. */
    void
    setTracer(obs::Tracer *tracer)
    {
        for (auto &mc : channels_)
            mc->setTracer(tracer);
    }

    // ----- sim::Component adaptation -------------------------------
    void attachTracer(obs::Tracer *tracer) override { setTracer(tracer); }
    /** Fans out to the per-channel controllers ("mc.ch{c}" paths). */
    void
    registerStats(obs::StatRegistry &reg) const override
    {
        for (const auto &mc : channels_)
            mc->registerStats(reg);
    }

  private:
    dram::AddressMapper mapper_; ///< top-level (channel) decode only
    std::vector<std::unique_ptr<MemoryController>> channels_;
};

} // namespace camo::mem

#endif // CAMO_MEM_MEMORY_SYSTEM_H
