#include "src/mem/controller.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/registry.h"

namespace camo::mem {

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::FrFcfs: return "FR-FCFS";
      case SchedulerKind::Fcfs: return "FCFS";
      case SchedulerKind::TemporalPartition: return "TP";
      case SchedulerKind::FixedService: return "FS";
    }
    return "?";
}

namespace {

std::unique_ptr<Scheduler>
makeScheduler(const ControllerConfig &cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::TemporalPartition:
        return std::make_unique<TemporalPartitionScheduler>(cfg.tp);
      case SchedulerKind::FixedService:
        return std::make_unique<FixedServiceScheduler>(cfg.fs);
    }
    camo_panic("unknown scheduler kind");
}

} // namespace

MemoryController::MemoryController(const ControllerConfig &cfg,
                                   std::string name, Arena *arena)
    : sim::Component(std::move(name)),
      cfg_(cfg),
      mapper_(cfg.org, cfg.mapping),
      device_(cfg.org, cfg.timing),
      divider_(cfg.cpuPerDramNum, cfg.cpuPerDramDen),
      sched_(makeScheduler(cfg)),
      readQ_(ArenaAllocator<Transaction>(arena)),
      writeQ_(ArenaAllocator<Transaction>(arena))
{
    if (cfg_.rowhammer.enabled) {
        rowhammer_ = std::make_unique<dram::RowHammerDefense>(
            cfg_.rowhammer, cfg_.org);
    }
    camo_assert(cfg_.writeDrainLow < cfg_.writeDrainHigh &&
                    cfg_.writeDrainHigh <= cfg_.writeQueueDepth,
                "bad write drain watermarks");
    const std::size_t cap = cfg_.readQueueDepth + cfg_.writeQueueDepth;
    poolBoosted_.reserve(cap);
    poolNormal_.reserve(cap);
    poolFake_.reserve(cap);
    indexMapScratch_.reserve(cap);
    poolScratch_.reserve(cap);
}

MemoryController::~MemoryController() = default;

void
MemoryController::registerStats(obs::StatRegistry &reg) const
{
    reg.add(name(), &stats_);
    reg.add(name() + ".dram", &device_.stats());
    if (rowhammer_)
        reg.add(name() + ".rowhammer", &rowhammer_->stats());
}

void
MemoryController::setTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    device_.setTracer(tracer);
}

dram::DramAddress
MemoryController::decode(Addr addr, CoreId core) const
{
    dram::DramAddress da = mapper_.decode(addr);
    if (cfg_.rankPartitioning && core != kNoCore &&
        cfg_.org.ranksPerChannel > 1) {
        da.rank = core % cfg_.org.ranksPerChannel;
    }
    if (cfg_.bankPartitioning && core != kNoCore) {
        // Core c owns banks [c*K, (c+1)*K) where K = banks / cores.
        const std::uint32_t banks = cfg_.org.banksPerRank;
        const std::uint32_t cores = std::max(1u, cfg_.numCores);
        const std::uint32_t per_core = std::max(1u, banks / cores);
        da.bank = (core % cores) * per_core + (da.bank % per_core);
        da.bank %= banks;
    }
    return da;
}

bool
MemoryController::canAccept(bool is_write) const
{
    return is_write ? writeQ_.size() < cfg_.writeQueueDepth
                    : readQ_.size() < cfg_.readQueueDepth;
}

void
MemoryController::enqueue(MemRequest req, Cycle now, Addr decode_addr)
{
    camo_assert(canAccept(req.isWrite), "enqueue into a full queue");
    // Optional (insecure) extension: drop fake traffic under queue
    // pressure instead of letting it crowd out real requests.
    if (cfg_.demoteFakeTraffic && req.isFake) {
        const std::size_t depth =
            req.isWrite ? writeQ_.size() : readQ_.size();
        const std::size_t cap = req.isWrite ? cfg_.writeQueueDepth
                                            : cfg_.readQueueDepth;
        if (depth >= cap / 2) {
            stats_.inc("fake.dropped");
            CAMO_TRACE_EVENT(tracer_, .at = now,
                             .type = obs::EventType::McFakeDropped,
                             .core = req.core, .id = req.id,
                             .addr = req.addr, .arg = depth);
            return;
        }
    }
    req.mcArrive = now;
    Transaction txn;
    txn.da = decode(decode_addr == kNoAddr ? req.addr : decode_addr,
                    req.core);
    txn.req = req;
    txn.enqueuedDram = divider_.derivedTicks();
    stats_.inc(req.isWrite ? "writes.enqueued" : "reads.enqueued");
    if (req.isFake)
        stats_.inc("fake.enqueued");
    TxnQueue &q = req.isWrite ? writeQ_ : readQ_;
    CAMO_TRACE_EVENT(tracer_, .at = now,
                     .type = obs::EventType::McEnqueue,
                     .core = req.core, .id = req.id, .addr = req.addr,
                     .arg = q.size());
    q.push_back(std::move(txn));
}

void
MemoryController::tick(Cycle now)
{
    if (divider_.tick())
        dramTick(now);
}

Cycle
MemoryController::dramDelayToCpu(std::uint64_t dram_cycles) const
{
    // ceil(dram_cycles * num / den)
    return (dram_cycles * cfg_.cpuPerDramNum + cfg_.cpuPerDramDen - 1) /
           cfg_.cpuPerDramDen;
}

bool
MemoryController::manageRefresh(std::uint64_t dram_now)
{
    // Refresh management preempts normal scheduling once a refresh is
    // owed: precharge any open bank, then issue REF.
    for (std::uint32_t rank = 0; rank < cfg_.org.ranksPerChannel; ++rank) {
        if (!device_.refreshDue(rank, dram_now))
            continue;
        if (device_.canIssue(dram::Cmd::REF, {0, rank, 0, 0, 0},
                             dram_now)) {
            device_.issue(dram::Cmd::REF, {0, rank, 0, 0, 0}, dram_now);
            stats_.inc("refresh.issued");
            if (rowhammer_)
                rowhammer_->onRefresh(rank);
            return true;
        }
        for (std::uint32_t b = 0; b < cfg_.org.banksPerRank; ++b) {
            dram::DramAddress da{0, rank, b, 0, 0};
            if (device_.isRowOpen(da) &&
                device_.canIssue(dram::Cmd::PRE, da, dram_now)) {
                device_.issue(dram::Cmd::PRE, da, dram_now);
                stats_.inc("refresh.precharges");
                return true;
            }
        }
        // Banks are draining their tRAS/tWR; hold the command bus.
        return true;
    }
    return false;
}

void
MemoryController::buildPool(const TxnQueue &queue,
                            SchedView &view,
                            std::vector<std::size_t> &index_map) const
{
    // Order: highest-priority-mode core first, then token-boosted
    // cores, then normal traffic, then Camouflage fakes (strictly
    // lowest priority); stable (age order) within each class.
    std::vector<std::size_t> &boosted = poolBoosted_;
    std::vector<std::size_t> &normal = poolNormal_;
    std::vector<std::size_t> &fake = poolFake_;
    boosted.clear();
    normal.clear();
    fake.clear();
    const bool any_tokens = !priorityTokens_.empty();
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Transaction &txn = queue[i];
        const CoreId core = txn.req.core;
        const bool hpm =
            highestPriorityCore_ && core == *highestPriorityCore_;
        const bool tokens = any_tokens && priorityTokens(core) > 0;
        if (cfg_.demoteFakeTraffic && txn.req.isFake)
            fake.push_back(i);
        else if (hpm || tokens)
            boosted.push_back(i);
        else
            normal.push_back(i);
    }
    for (std::size_t i : boosted) {
        view.pool.push_back(&queue[i]);
        index_map.push_back(i);
    }
    view.boostedCount = view.pool.size();
    for (std::size_t i : normal) {
        view.pool.push_back(&queue[i]);
        index_map.push_back(i);
    }
    view.fakeStart = view.pool.size();
    for (std::size_t i : fake) {
        view.pool.push_back(&queue[i]);
        index_map.push_back(i);
    }
}

void
MemoryController::execute(const Decision &d, TxnQueue &queue,
                          const std::vector<std::size_t> &index_map,
                          Cycle cpu_now, std::uint64_t dram_now)
{
    const std::size_t qi = index_map.at(d.txnIndex);
    Transaction &txn = queue.at(qi);

    switch (d.kind) {
      case Decision::Kind::Act:
        device_.issue(dram::Cmd::ACT, txn.da, dram_now);
        if (rowhammer_)
            rowhammer_->onActivate(txn.da, dram_now);
        return;
      case Decision::Kind::Pre:
        device_.issue(dram::Cmd::PRE, txn.da, dram_now);
        return;
      case Decision::Kind::Cas:
        break;
    }

    const auto cmd = txn.req.isWrite ? dram::Cmd::WR : dram::Cmd::RD;
    const auto result = device_.issue(cmd, txn.da, dram_now);
    sched_->onCasIssued(txn.req.core, dram_now);

    // Consume one priority token per served CAS (proportional boost).
    auto it = priorityTokens_.find(txn.req.core);
    if (it != priorityTokens_.end() && it->second > 0)
        --it->second;

    stats_.inc(txn.req.isWrite ? "writes.served" : "reads.served");
    stats_.sample("queue.latency.dram",
                  static_cast<double>(dram_now - txn.enqueuedDram));
    CAMO_TRACE_EVENT(tracer_, .at = cpu_now,
                     .type = obs::EventType::McServe,
                     .core = txn.req.core, .id = txn.req.id,
                     .addr = txn.req.addr,
                     .arg = dram_now - txn.enqueuedDram);

    if (!txn.req.isWrite) {
        PendingResponse resp;
        resp.req = txn.req;
        const std::uint64_t delay = result.dataDoneCycle - dram_now;
        resp.readyCpu = cpu_now + dramDelayToCpu(delay);
        resp.req.mcDone = resp.readyCpu;
        responses_.push_back(std::move(resp));
    }
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
}

void
MemoryController::dramTick(Cycle cpu_now)
{
    const std::uint64_t dram_now = divider_.derivedTicks();
    device_.setCpuTime(cpu_now);

    if (manageRefresh(dram_now))
        return;

    // An in-flight RowHammer refresh-management operation blocks the
    // channel: no scheduling, no hysteresis flip, no closed-page
    // precharges until it completes. The early return mutates
    // nothing, so stalled ticks behave identically in the per-cycle
    // loop and under event execution (whose scheduling bound is
    // clamped to busyUntil() in nextEventCycle).
    if (rowhammer_ && rowhammer_->busy(dram_now))
        return;

    // Write-drain hysteresis: serve reads normally; switch to writes
    // when the write queue passes the high watermark (or reads are
    // absent), back to reads at the low watermark.
    if (drainingWrites_) {
        if (writeQ_.size() <= cfg_.writeDrainLow)
            drainingWrites_ = false;
    } else {
        if (writeQ_.size() >= cfg_.writeDrainHigh ||
            (readQ_.empty() && !writeQ_.empty())) {
            drainingWrites_ = true;
        }
    }

    auto try_schedule = [&](TxnQueue &queue,
                            bool is_write) -> bool {
        if (queue.empty())
            return false;
        SchedView view;
        view.now = dram_now;
        view.device = &device_;
        view.isWritePool = is_write;
        // Loan the member scratch to the view so the pool keeps its
        // capacity across DRAM ticks instead of reallocating.
        poolScratch_.clear();
        view.pool = std::move(poolScratch_);
        indexMapScratch_.clear();
        buildPool(queue, view, indexMapScratch_);
        Decision d;
        const bool picked = sched_->pick(view, d);
        if (picked)
            execute(d, queue, indexMapScratch_, cpu_now, dram_now);
        poolScratch_ = std::move(view.pool);
        return picked;
    };

    bool issued;
    if (drainingWrites_)
        issued = try_schedule(writeQ_, true) ||
                 try_schedule(readQ_, false);
    else
        issued = try_schedule(readQ_, false) ||
                 try_schedule(writeQ_, true);

    // Closed-page policy: spend otherwise-idle command cycles
    // precharging rows no pending transaction wants.
    if (!issued && cfg_.pagePolicy == PagePolicy::Closed)
        closeIdleRows(dram_now);
}

bool
MemoryController::closeIdleRows(std::uint64_t dram_now)
{
    for (std::uint32_t rank = 0; rank < cfg_.org.ranksPerChannel;
         ++rank) {
        for (std::uint32_t b = 0; b < cfg_.org.banksPerRank; ++b) {
            const dram::DramAddress da{0, rank, b, 0, 0};
            if (!device_.isRowOpen(da))
                continue;
            const std::uint32_t open_row = device_.bank(rank, b).openRow;
            auto wants_row = [&](const TxnQueue &q) {
                for (const Transaction &txn : q) {
                    if (txn.da.rank == rank && txn.da.bank == b &&
                        txn.da.row == open_row) {
                        return true;
                    }
                }
                return false;
            };
            if (wants_row(readQ_) || wants_row(writeQ_))
                continue;
            dram::DramAddress pre = da;
            pre.row = open_row;
            if (device_.canIssue(dram::Cmd::PRE, pre, dram_now)) {
                device_.issue(dram::Cmd::PRE, pre, dram_now);
                stats_.inc("pagepolicy.closes");
                return true;
            }
        }
    }
    return false;
}

void
MemoryController::drainResponses(Cycle now, std::vector<MemRequest> &out)
{
    const std::size_t start = out.size();
    auto it = responses_.begin();
    while (it != responses_.end()) {
        if (it->readyCpu <= now) {
            out.push_back(std::move(it->req));
            it = responses_.erase(it);
        } else {
            ++it;
        }
    }
    // Deterministic delivery order: by readiness then id.
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
              [](const MemRequest &a, const MemRequest &b) {
                  return a.mcDone != b.mcDone ? a.mcDone < b.mcDone
                                              : a.id < b.id;
              });
}

std::vector<MemRequest>
MemoryController::popResponses(Cycle now)
{
    std::vector<MemRequest> done;
    drainResponses(now, done);
    return done;
}

std::uint64_t
MemoryController::earliestQueueAction(const TxnQueue &queue,
                                      bool is_write,
                                      std::uint64_t dram_now) const
{
    SchedView view;
    view.now = dram_now;
    view.device = &device_;
    view.isWritePool = is_write;
    boundPool_.clear();
    view.pool = std::move(boundPool_);
    boundIndex_.clear();
    buildPool(queue, view, boundIndex_);
    const std::uint64_t at = sched_->earliestPick(view);
    boundPool_ = std::move(view.pool);
    return at;
}

Cycle
MemoryController::nextEventCycle(Cycle now, Cycle from) const
{
    Cycle ev = kNoCycle;
    const std::uint64_t dram_now = divider_.derivedTicks();

    // Earliest future DRAM cycle with controller work. DRAM ticks the
    // kernel skips under this bound are provably no-ops: no command
    // can issue (Scheduler::earliestPick lower-bounds every queue, the
    // loop below lower-bounds closed-page precharges, and the refresh
    // term at the bottom keeps ticks dense whenever a refresh is owed
    // and preempting), so skipping them degenerates to the divider
    // advance skipIdleCycles performs.
    std::uint64_t act = dram::DramDevice::kNever;
    if (!readQ_.empty())
        act = std::min(act, earliestQueueAction(readQ_, false, dram_now));
    if (!writeQ_.empty() && act > dram_now + 1)
        act = std::min(act, earliestQueueAction(writeQ_, true, dram_now));
    // Write-drain hysteresis: the per-cycle loop evaluates the flip
    // predicate at every DRAM tick, so when it currently holds, the
    // flag flips on the very next tick -- that tick must stay dense
    // or an enqueue landing inside the skipped span can move the
    // flip (the flag has memory; it is not a pure function of the
    // queue sizes at the next processed tick). When the predicate
    // does not hold, it can only become true at a state change
    // (enqueue or a processed tick), both of which re-evaluate this
    // bound, so no extra ticks are needed then.
    const bool drain_would_flip =
        drainingWrites_
            ? writeQ_.size() <= cfg_.writeDrainLow
            : (writeQ_.size() >= cfg_.writeDrainHigh ||
               (readQ_.empty() && !writeQ_.empty()));
    if (drain_would_flip)
        act = std::min<std::uint64_t>(act, dram_now + 1);
    // Closed-page management spends idle command cycles precharging
    // open rows no queued transaction wants. (Skipped once the bound
    // already hits the next DRAM tick -- nothing can be earlier.)
    if (cfg_.pagePolicy == PagePolicy::Closed && act > dram_now + 1) {
        for (std::uint32_t rank = 0; rank < cfg_.org.ranksPerChannel;
             ++rank) {
            for (std::uint32_t b = 0; b < cfg_.org.banksPerRank; ++b) {
                dram::DramAddress da{0, rank, b, 0, 0};
                if (!device_.isRowOpen(da))
                    continue;
                const std::uint32_t open_row =
                    device_.bank(rank, b).openRow;
                auto wants_row =
                    [&](const TxnQueue &q) {
                        for (const Transaction &txn : q) {
                            if (txn.da.rank == rank &&
                                txn.da.bank == b &&
                                txn.da.row == open_row) {
                                return true;
                            }
                        }
                        return false;
                    };
                if (wants_row(readQ_) || wants_row(writeQ_))
                    continue;
                da.row = open_row;
                act = std::min(act,
                               device_.earliestIssue(dram::Cmd::PRE, da));
            }
        }
    }
    // A RowHammer RFM stall defers every scheduling action above
    // (dramTick returns before the hysteresis flip, try_schedule and
    // closed-page management while busy), so the first cycle any of
    // them can execute is the stall's end. Raising the bound there is
    // exact: the per-cycle loop's stalled ticks are no-ops too, and
    // refresh/response terms below stay unclamped (they still fire
    // mid-stall).
    if (rowhammer_ && act != dram::DramDevice::kNever)
        act = std::max(act, rowhammer_->busyUntil());
    if (act != dram::DramDevice::kNever) {
        const std::uint64_t k = act > dram_now ? act - dram_now : 1;
        ev = std::min(ev, now + divider_.ticksUntilFire(k));
    }

    for (const PendingResponse &r : responses_)
        ev = std::min(ev, std::max(from, r.readyCpu));

    // Refresh: the DRAM tick at which the next refresh falls due.
    // (Already-owed refreshes give k = 1, keeping ticks dense through
    // the whole refresh-preemption window.) Dominated by the busy
    // term whenever that already lands on the next DRAM tick.
    if (act == dram::DramDevice::kNever || act > dram_now + 1) {
        for (std::uint32_t rank = 0; rank < cfg_.org.ranksPerChannel;
             ++rank) {
            const std::uint64_t due = device_.nextRefreshDue(rank);
            const std::uint64_t k = due > dram_now ? due - dram_now : 1;
            ev = std::min(ev, now + divider_.ticksUntilFire(k));
        }
    }
    return ev;
}

Cycle
MemoryController::nextResponseReady() const
{
    Cycle ev = kNoCycle;
    for (const PendingResponse &r : responses_)
        ev = std::min(ev, r.readyCpu);
    return ev;
}

void
MemoryController::boostPriority(CoreId core, std::uint32_t tokens)
{
    if (tokens == 0)
        return;
    priorityTokens_[core] += tokens;
    stats_.inc("priority.boosts");
    stats_.inc("priority.tokens.granted", tokens);
}

void
MemoryController::setHighestPriorityCore(std::optional<CoreId> core)
{
    highestPriorityCore_ = core;
}

std::uint32_t
MemoryController::priorityTokens(CoreId core) const
{
    auto it = priorityTokens_.find(core);
    return it == priorityTokens_.end() ? 0 : it->second;
}

} // namespace camo::mem
