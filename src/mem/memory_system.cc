#include "src/mem/memory_system.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::mem {

MemorySystem::MemorySystem(const ControllerConfig &cfg, Arena *arena)
    : sim::Component("mem"), mapper_(cfg.org, cfg.mapping)
{
    camo_assert(cfg.org.channels >= 1, "need at least one channel");
    ControllerConfig per_channel = cfg;
    per_channel.org.channels = 1;
    for (std::uint32_t c = 0; c < cfg.org.channels; ++c) {
        channels_.push_back(std::make_unique<MemoryController>(
            per_channel, "mc.ch" + std::to_string(c), arena));
    }
}

std::uint32_t
MemorySystem::channelOf(Addr addr) const
{
    return mapper_.channelOf(addr);
}

bool
MemorySystem::canAccept(Addr addr, bool is_write) const
{
    return channels_[channelOf(addr)]->canAccept(is_write);
}

void
MemorySystem::enqueue(MemRequest req, Cycle now)
{
    const std::uint32_t c = channelOf(req.addr);
    // Controllers decode channel-local addresses; the request itself
    // keeps the original address so responses route back to the
    // caches untouched.
    const Addr local = mapper_.stripChannel(req.addr);
    channels_[c]->enqueue(std::move(req), now, local);
}

void
MemorySystem::tick(Cycle now)
{
    for (auto &mc : channels_)
        mc->tick(now);
}

void
MemorySystem::drainResponses(Cycle now, std::vector<MemRequest> &out)
{
    const std::size_t start = out.size();
    for (auto &mc : channels_)
        mc->drainResponses(now, out);
    if (channels_.size() > 1) {
        // Re-sort the merged range (each channel's slice is already
        // ordered; cross-channel order must match too).
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(start),
                  out.end(),
                  [](const MemRequest &a, const MemRequest &b) {
                      return a.mcDone != b.mcDone ? a.mcDone < b.mcDone
                                                  : a.id < b.id;
                  });
    }
}

std::vector<MemRequest>
MemorySystem::popResponses(Cycle now)
{
    std::vector<MemRequest> all;
    drainResponses(now, all);
    return all;
}

Cycle
MemorySystem::nextEventCycle(Cycle now, Cycle from) const
{
    Cycle ev = kNoCycle;
    for (const auto &mc : channels_)
        ev = std::min(ev, mc->nextEventCycle(now, from));
    return ev;
}

Cycle
MemorySystem::nextResponseReady() const
{
    Cycle ev = kNoCycle;
    for (const auto &mc : channels_)
        ev = std::min(ev, mc->nextResponseReady());
    return ev;
}

void
MemorySystem::boostPriority(CoreId core, std::uint32_t tokens)
{
    for (auto &mc : channels_)
        mc->boostPriority(core, tokens);
}

void
MemorySystem::setHighestPriorityCore(std::optional<CoreId> core)
{
    for (auto &mc : channels_)
        mc->setHighestPriorityCore(core);
}

MemoryController &
MemorySystem::channel(std::uint32_t i)
{
    camo_assert(i < channels_.size(), "channel out of range");
    return *channels_[i];
}

const MemoryController &
MemorySystem::channel(std::uint32_t i) const
{
    camo_assert(i < channels_.size(), "channel out of range");
    return *channels_[i];
}

std::size_t
MemorySystem::readQueueSize() const
{
    std::size_t total = 0;
    for (const auto &mc : channels_)
        total += mc->readQueueSize();
    return total;
}

std::size_t
MemorySystem::writeQueueSize() const
{
    std::size_t total = 0;
    for (const auto &mc : channels_)
        total += mc->writeQueueSize();
    return total;
}

} // namespace camo::mem
