/**
 * @file
 * Memory-controller scheduling policies.
 *
 * FR-FCFS is the baseline high-performance policy (with Camouflage's
 * priority-boost extension for RespC acceleration). Temporal
 * Partitioning (Wang et al., HPCA'14) and Fixed Service (Shafiee et
 * al., MICRO'15) are the secure baselines the paper compares against.
 */

#ifndef CAMO_MEM_SCHEDULERS_H
#define CAMO_MEM_SCHEDULERS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/dram/address.h"
#include "src/dram/device.h"
#include "src/mem/request.h"

namespace camo::mem {

/** A request waiting in (or being worked on by) the controller. */
struct Transaction
{
    MemRequest req;
    dram::DramAddress da;
    std::uint64_t enqueuedDram = 0; ///< DRAM cycle of arrival
};

/** What a scheduler wants to do this DRAM cycle. */
struct Decision
{
    enum class Kind { Cas, Act, Pre };
    Kind kind = Kind::Cas;
    std::size_t txnIndex = 0; ///< index into the offered pool
};

/** Read-only view a scheduler gets each DRAM cycle. */
struct SchedView
{
    std::uint64_t now = 0;               ///< current DRAM cycle
    const dram::DramDevice *device = nullptr;
    /** Candidate transactions, oldest-first within each segment. */
    std::vector<const Transaction *> pool;
    /**
     * pool[0 .. boostedCount) belong to cores holding RespC priority
     * tokens and should be served preferentially.
     */
    std::size_t boostedCount = 0;
    /**
     * pool[fakeStart ..) are Camouflage fake transactions: they are
     * served only when no real transaction can make progress (the
     * paper gives fake traffic strictly lower priority than intrinsic
     * requests). Defaults to "no fakes".
     */
    std::size_t fakeStart = static_cast<std::size_t>(-1);
    bool isWritePool = false; ///< pool drawn from the write queue
};

/** Scheduling-policy interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;
    virtual const char *name() const = 0;

    /**
     * Pick at most one command for this DRAM cycle.
     * Must only return decisions whose command canIssue() right now.
     * @retval true and fills `out` if a command should issue.
     */
    virtual bool pick(const SchedView &view, Decision &out) = 0;

    /**
     * Earliest DRAM cycle at which pick() could return true for this
     * view, assuming no intervening commands alter the device state
     * and no transactions arrive or leave. A sound lower bound: the
     * policy may still decline at the returned cycle (spurious wakes
     * are safe; late bounds are not). dram::DramDevice::kNever when no
     * candidate exists. The default ticks densely (`now + 1`), which
     * is always sound.
     */
    virtual std::uint64_t earliestPick(const SchedView &view) const;

    /** Notification that a CAS was executed for `core` at `now`. */
    virtual void onCasIssued(CoreId core, std::uint64_t now);
};

/**
 * First-Ready First-Come-First-Serve with optional priority segments.
 * Row-hit CAS commands first (oldest first), then ACT/PRE to unblock
 * the oldest remaining transaction; boosted segment fully preempts.
 */
class FrFcfsScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FR-FCFS"; }
    bool pick(const SchedView &view, Decision &out) override;
    std::uint64_t earliestPick(const SchedView &view) const override;
};

/**
 * Plain in-order FCFS: always works on the oldest transaction of the
 * highest-priority segment, ignoring row-buffer state. The paper's
 * motivation section contrasts FR-FCFS against leakage-aware static
 * policies; plain FCFS is the canonical low-performance reference.
 */
class FcfsScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FCFS"; }
    bool pick(const SchedView &view, Decision &out) override;
    std::uint64_t earliestPick(const SchedView &view) const override;
};

/** Configuration for temporal partitioning. */
struct TpConfig
{
    std::uint64_t turnLength = 96; ///< DRAM cycles per security turn
    /**
     * Dead time at the end of each turn during which no new command
     * issues, so in-flight activity cannot spill into the next
     * domain's turn (tRCD + tCL + burst is a safe bound).
     */
    std::uint64_t deadTime = 24;
    std::uint32_t numDomains = 4;
};

/**
 * Temporal Partitioning: time is divided into fixed turns; only the
 * domain owning the current turn may issue commands. Within a turn the
 * policy is FR-FCFS.
 */
class TemporalPartitionScheduler : public Scheduler
{
  public:
    explicit TemporalPartitionScheduler(const TpConfig &cfg);
    const char *name() const override { return "TP"; }
    bool pick(const SchedView &view, Decision &out) override;
    std::uint64_t earliestPick(const SchedView &view) const override;

    /** Domain that owns DRAM cycle `now`. */
    std::uint32_t domainAt(std::uint64_t now) const;
    /** Cycles remaining in the current turn at `now` (before dead time). */
    std::uint64_t usableRemaining(std::uint64_t now) const;

    const TpConfig &config() const { return cfg_; }

  private:
    TpConfig cfg_;
    FrFcfsScheduler inner_;
};

/** Configuration for the Fixed Service policy. */
struct FsConfig
{
    /**
     * One CAS per core at most every `servicePeriod` DRAM cycles; the
     * constant per-thread rate is the policy's security argument.
     */
    std::uint64_t servicePeriod = 48;
    std::uint32_t numCores = 4;
};

/**
 * Fixed Service: every thread is served at a constant rate regardless
 * of demand. Usually paired with bank partitioning (configured in the
 * controller's address decode).
 */
class FixedServiceScheduler : public Scheduler
{
  public:
    explicit FixedServiceScheduler(const FsConfig &cfg);
    const char *name() const override { return "FS"; }
    bool pick(const SchedView &view, Decision &out) override;
    std::uint64_t earliestPick(const SchedView &view) const override;
    void onCasIssued(CoreId core, std::uint64_t now) override;

    std::uint64_t nextSlot(CoreId core) const;
    const FsConfig &config() const { return cfg_; }

  private:
    bool coreDue(CoreId core, std::uint64_t now) const;

    FsConfig cfg_;
    std::vector<std::uint64_t> nextService_;
    FrFcfsScheduler inner_;
};

} // namespace camo::mem

#endif // CAMO_MEM_SCHEDULERS_H
