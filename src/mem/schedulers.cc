#include "src/mem/schedulers.h"

#include <algorithm>

#include "src/common/logging.h"

namespace camo::mem {

void
Scheduler::onCasIssued(CoreId core, std::uint64_t now)
{
    (void)core;
    (void)now;
}

std::uint64_t
Scheduler::earliestPick(const SchedView &view) const
{
    // Dense ticking: always a sound (if useless) lower bound.
    return view.now + 1;
}

namespace {

dram::Cmd
casCmdFor(const Transaction &txn)
{
    return txn.req.isWrite ? dram::Cmd::WR : dram::Cmd::RD;
}

/**
 * FR-FCFS over pool[begin, end): first an issuable row-hit CAS
 * (oldest first), then ACT/PRE to unblock the oldest transaction whose
 * bank allows progress.
 */
bool
frFcfsSegment(const SchedView &view, std::size_t begin, std::size_t end,
              Decision &out)
{
    const auto &dev = *view.device;

    // Pass 1: first-ready — oldest issuable row-hit column command.
    for (std::size_t i = begin; i < end; ++i) {
        const Transaction &txn = *view.pool[i];
        if (dev.isRowHit(txn.da) &&
            dev.canIssue(casCmdFor(txn), txn.da, view.now)) {
            out = {Decision::Kind::Cas, i};
            return true;
        }
    }

    // Pass 2: structural progress for the oldest blocked transactions.
    // Track banks already claimed by an older transaction so a younger
    // request to the same bank cannot close its row (row-hit respect).
    std::vector<std::uint64_t> claimed;
    auto bank_key = [](const dram::DramAddress &da) {
        return (static_cast<std::uint64_t>(da.rank) << 32) | da.bank;
    };
    for (std::size_t i = begin; i < end; ++i) {
        const Transaction &txn = *view.pool[i];
        const auto key = bank_key(txn.da);
        if (std::find(claimed.begin(), claimed.end(), key) != claimed.end())
            continue;
        claimed.push_back(key);
        if (dev.isRowHit(txn.da))
            continue; // CAS constrained (tCCD etc.); just wait
        if (dev.isRowOpen(txn.da)) {
            if (dev.canIssue(dram::Cmd::PRE, txn.da, view.now)) {
                out = {Decision::Kind::Pre, i};
                return true;
            }
        } else if (dev.canIssue(dram::Cmd::ACT, txn.da, view.now)) {
            out = {Decision::Kind::Act, i};
            return true;
        }
    }
    return false;
}

/**
 * The command frFcfsSegment / FcfsScheduler would try to move `txn`
 * forward: CAS when its row is open, PRE when another row occupies the
 * bank, ACT when the bank is closed. The branch condition always
 * satisfies the command's state precondition, so earliestIssue never
 * returns kNever through this mapping.
 */
std::uint64_t
earliestProgress(const dram::DramDevice &dev, const Transaction &txn)
{
    if (dev.isRowHit(txn.da))
        return dev.earliestIssue(casCmdFor(txn), txn.da);
    if (dev.isRowOpen(txn.da))
        return dev.earliestIssue(dram::Cmd::PRE, txn.da);
    return dev.earliestIssue(dram::Cmd::ACT, txn.da);
}

} // namespace

bool
FrFcfsScheduler::pick(const SchedView &view, Decision &out)
{
    const std::size_t fake_start =
        std::min(view.fakeStart, view.pool.size());
    // Boosted reals preempt normal reals, which preempt fakes.
    if (view.boostedCount > 0 &&
        frFcfsSegment(view, 0, view.boostedCount, out)) {
        return true;
    }
    if (frFcfsSegment(view, view.boostedCount, fake_start, out))
        return true;
    return frFcfsSegment(view, fake_start, view.pool.size(), out);
}

std::uint64_t
FrFcfsScheduler::earliestPick(const SchedView &view) const
{
    // Min over every transaction's progress command. This candidate
    // set is a superset of what pick() actually tries (segmentation
    // and claimed-bank filtering only *remove* candidates), so the
    // minimum can only be early -- a spurious wake, never a missed
    // one. Priority boosts reorder segments but do not change the set.
    std::uint64_t at = dram::DramDevice::kNever;
    for (const Transaction *txn : view.pool) {
        at = std::min(at, earliestProgress(*view.device, *txn));
        if (at <= view.now + 1)
            break; // cannot get earlier than the next DRAM tick
    }
    return at;
}

bool
FcfsScheduler::pick(const SchedView &view, Decision &out)
{
    const std::size_t fake_start =
        std::min(view.fakeStart, view.pool.size());
    // Work on the single oldest transaction of the foremost
    // non-empty segment; issue whatever command moves it forward.
    const std::size_t segments[3][2] = {
        {0, view.boostedCount},
        {view.boostedCount, fake_start},
        {fake_start, view.pool.size()},
    };
    for (const auto &seg : segments) {
        if (seg[0] >= seg[1])
            continue;
        const std::size_t i = seg[0];
        const Transaction &txn = *view.pool[i];
        const auto &dev = *view.device;
        const auto cas =
            txn.req.isWrite ? dram::Cmd::WR : dram::Cmd::RD;
        if (dev.isRowHit(txn.da)) {
            if (dev.canIssue(cas, txn.da, view.now)) {
                out = {Decision::Kind::Cas, i};
                return true;
            }
        } else if (dev.isRowOpen(txn.da)) {
            if (dev.canIssue(dram::Cmd::PRE, txn.da, view.now)) {
                out = {Decision::Kind::Pre, i};
                return true;
            }
        } else if (dev.canIssue(dram::Cmd::ACT, txn.da, view.now)) {
            out = {Decision::Kind::Act, i};
            return true;
        }
        return false; // strictly in order: wait for the head
    }
    return false;
}

std::uint64_t
FcfsScheduler::earliestPick(const SchedView &view) const
{
    // Only the head of the foremost non-empty segment can ever issue;
    // its progress command's threshold is exact for this policy. The
    // head identity depends on boost segmentation, so any boost change
    // must re-derive this bound (the system wakes the controller when
    // it grants or drains priority tokens).
    const std::size_t fake_start =
        std::min(view.fakeStart, view.pool.size());
    const std::size_t segments[3][2] = {
        {0, view.boostedCount},
        {view.boostedCount, fake_start},
        {fake_start, view.pool.size()},
    };
    for (const auto &seg : segments) {
        if (seg[0] >= seg[1])
            continue;
        return earliestProgress(*view.device, *view.pool[seg[0]]);
    }
    return dram::DramDevice::kNever;
}

TemporalPartitionScheduler::TemporalPartitionScheduler(const TpConfig &cfg)
    : cfg_(cfg)
{
    camo_assert(cfg_.numDomains >= 1, "TP needs at least one domain");
    camo_assert(cfg_.deadTime < cfg_.turnLength,
                "TP dead time must leave usable turn cycles");
}

std::uint32_t
TemporalPartitionScheduler::domainAt(std::uint64_t now) const
{
    return static_cast<std::uint32_t>((now / cfg_.turnLength) %
                                      cfg_.numDomains);
}

std::uint64_t
TemporalPartitionScheduler::usableRemaining(std::uint64_t now) const
{
    const std::uint64_t into_turn = now % cfg_.turnLength;
    const std::uint64_t usable = cfg_.turnLength - cfg_.deadTime;
    return into_turn >= usable ? 0 : usable - into_turn;
}

bool
TemporalPartitionScheduler::pick(const SchedView &view, Decision &out)
{
    if (usableRemaining(view.now) == 0)
        return false; // dead time: let in-flight activity drain

    const std::uint32_t domain = domainAt(view.now);

    // Restrict the pool to the security domain owning this turn.
    // Domain assignment is core id modulo domain count.
    SchedView turn_view;
    turn_view.now = view.now;
    turn_view.device = view.device;
    turn_view.isWritePool = view.isWritePool;
    std::vector<std::size_t> original_index;
    for (std::size_t i = 0; i < view.pool.size(); ++i) {
        const Transaction &txn = *view.pool[i];
        const CoreId core = txn.req.core;
        const std::uint32_t d =
            core == kNoCore ? 0 : core % cfg_.numDomains;
        if (d == domain) {
            turn_view.pool.push_back(view.pool[i]);
            original_index.push_back(i);
        }
    }
    turn_view.boostedCount = 0; // TP admits no cross-domain priorities

    Decision inner_out;
    if (!inner_.pick(turn_view, inner_out))
        return false;
    out = {inner_out.kind, original_index[inner_out.txnIndex]};
    return true;
}

std::uint64_t
TemporalPartitionScheduler::earliestPick(const SchedView &view) const
{
    // The turn boundary always re-derives the bound: a new domain's
    // candidates become eligible there, and the dead-time gate lifts.
    const std::uint64_t next_turn =
        (view.now / cfg_.turnLength + 1) * cfg_.turnLength;
    if (usableRemaining(view.now) == 0)
        return next_turn;

    SchedView turn_view;
    turn_view.now = view.now;
    turn_view.device = view.device;
    turn_view.isWritePool = view.isWritePool;
    const std::uint32_t domain = domainAt(view.now);
    for (const Transaction *txn : view.pool) {
        const CoreId core = txn->req.core;
        const std::uint32_t d =
            core == kNoCore ? 0 : core % cfg_.numDomains;
        if (d == domain)
            turn_view.pool.push_back(txn);
    }
    if (turn_view.pool.empty())
        return next_turn;
    // An inner bound landing in this turn's dead time wakes the
    // controller to a pick() that declines; the re-derived bound then
    // lands on the turn boundary. Spurious, not missed.
    return std::min(inner_.earliestPick(turn_view), next_turn);
}

FixedServiceScheduler::FixedServiceScheduler(const FsConfig &cfg)
    : cfg_(cfg), nextService_(cfg.numCores, 0)
{
    camo_assert(cfg_.servicePeriod >= 1, "FS period must be >= 1");
    camo_assert(cfg_.numCores >= 1, "FS needs at least one core");
}

std::uint64_t
FixedServiceScheduler::nextSlot(CoreId core) const
{
    camo_assert(core < nextService_.size(), "FS core out of range");
    return nextService_[core];
}

bool
FixedServiceScheduler::coreDue(CoreId core, std::uint64_t now) const
{
    if (core == kNoCore)
        return true; // coreless traffic is unregulated (e.g. scrub)
    camo_assert(core < nextService_.size(), "FS core out of range");
    return now >= nextService_[core];
}

bool
FixedServiceScheduler::pick(const SchedView &view, Decision &out)
{
    // Only cores whose constant-rate slot has arrived may be served.
    SchedView due_view;
    due_view.now = view.now;
    due_view.device = view.device;
    due_view.isWritePool = view.isWritePool;
    std::vector<std::size_t> original_index;
    for (std::size_t i = 0; i < view.pool.size(); ++i) {
        if (coreDue(view.pool[i]->req.core, view.now)) {
            due_view.pool.push_back(view.pool[i]);
            original_index.push_back(i);
        }
    }
    due_view.boostedCount = 0; // FS has no priority classes

    Decision inner_out;
    if (!inner_.pick(due_view, inner_out))
        return false;
    out = {inner_out.kind, original_index[inner_out.txnIndex]};
    return true;
}

std::uint64_t
FixedServiceScheduler::earliestPick(const SchedView &view) const
{
    // Cores already due stay due (nextService_ only advances when a
    // CAS issues, which re-derives the bound); cores not yet due
    // become candidates exactly at their constant-rate slot.
    SchedView due_view;
    due_view.now = view.now;
    due_view.device = view.device;
    due_view.isWritePool = view.isWritePool;
    std::uint64_t at = dram::DramDevice::kNever;
    for (const Transaction *txn : view.pool) {
        const CoreId core = txn->req.core;
        if (coreDue(core, view.now))
            due_view.pool.push_back(txn);
        else
            at = std::min(at, nextService_[core]);
    }
    if (!due_view.pool.empty())
        at = std::min(at, inner_.earliestPick(due_view));
    return at;
}

void
FixedServiceScheduler::onCasIssued(CoreId core, std::uint64_t now)
{
    if (core == kNoCore || core >= nextService_.size())
        return;
    // The next slot is one full period after the *scheduled* slot so a
    // backlogged core still gets exactly 1/servicePeriod rate.
    const std::uint64_t slot = std::max(nextService_[core], now);
    nextService_[core] = slot + cfg_.servicePeriod;
}

} // namespace camo::mem
