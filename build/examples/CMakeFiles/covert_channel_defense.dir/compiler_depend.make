# Empty compiler generated dependencies file for covert_channel_defense.
# This may be replaced when dependencies are built.
