file(REMOVE_RECURSE
  "CMakeFiles/covert_channel_defense.dir/covert_channel_defense.cpp.o"
  "CMakeFiles/covert_channel_defense.dir/covert_channel_defense.cpp.o.d"
  "covert_channel_defense"
  "covert_channel_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_channel_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
