# Empty dependencies file for cloud_colocation.
# This may be replaced when dependencies are built.
