file(REMOVE_RECURSE
  "CMakeFiles/cloud_colocation.dir/cloud_colocation.cpp.o"
  "CMakeFiles/cloud_colocation.dir/cloud_colocation.cpp.o.d"
  "cloud_colocation"
  "cloud_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
