# Empty compiler generated dependencies file for camosim.
# This may be replaced when dependencies are built.
