file(REMOVE_RECURSE
  "CMakeFiles/camosim.dir/camosim.cc.o"
  "CMakeFiles/camosim.dir/camosim.cc.o.d"
  "camosim"
  "camosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
