# Empty compiler generated dependencies file for test_paper_regression.
# This may be replaced when dependencies are built.
