file(REMOVE_RECURSE
  "CMakeFiles/test_paper_regression.dir/paper_regression_test.cc.o"
  "CMakeFiles/test_paper_regression.dir/paper_regression_test.cc.o.d"
  "test_paper_regression"
  "test_paper_regression.pdb"
  "test_paper_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
