# Empty dependencies file for test_system_property.
# This may be replaced when dependencies are built.
