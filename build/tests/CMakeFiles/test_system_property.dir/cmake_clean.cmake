file(REMOVE_RECURSE
  "CMakeFiles/test_system_property.dir/system_property_test.cc.o"
  "CMakeFiles/test_system_property.dir/system_property_test.cc.o.d"
  "test_system_property"
  "test_system_property.pdb"
  "test_system_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
