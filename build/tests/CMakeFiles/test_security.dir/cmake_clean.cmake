file(REMOVE_RECURSE
  "CMakeFiles/test_security.dir/security_test.cc.o"
  "CMakeFiles/test_security.dir/security_test.cc.o.d"
  "test_security"
  "test_security.pdb"
  "test_security[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
