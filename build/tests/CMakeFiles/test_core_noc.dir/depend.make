# Empty dependencies file for test_core_noc.
# This may be replaced when dependencies are built.
