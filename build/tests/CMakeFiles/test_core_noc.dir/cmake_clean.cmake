file(REMOVE_RECURSE
  "CMakeFiles/test_core_noc.dir/core_noc_test.cc.o"
  "CMakeFiles/test_core_noc.dir/core_noc_test.cc.o.d"
  "test_core_noc"
  "test_core_noc.pdb"
  "test_core_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
