# Empty compiler generated dependencies file for test_replay_prefetch.
# This may be replaced when dependencies are built.
