file(REMOVE_RECURSE
  "CMakeFiles/test_replay_prefetch.dir/replay_prefetch_test.cc.o"
  "CMakeFiles/test_replay_prefetch.dir/replay_prefetch_test.cc.o.d"
  "test_replay_prefetch"
  "test_replay_prefetch.pdb"
  "test_replay_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
