# Empty compiler generated dependencies file for test_config_divergence.
# This may be replaced when dependencies are built.
