file(REMOVE_RECURSE
  "CMakeFiles/test_config_divergence.dir/config_divergence_test.cc.o"
  "CMakeFiles/test_config_divergence.dir/config_divergence_test.cc.o.d"
  "test_config_divergence"
  "test_config_divergence.pdb"
  "test_config_divergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
