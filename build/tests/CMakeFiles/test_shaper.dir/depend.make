# Empty dependencies file for test_shaper.
# This may be replaced when dependencies are built.
