file(REMOVE_RECURSE
  "CMakeFiles/test_shaper.dir/shaper_test.cc.o"
  "CMakeFiles/test_shaper.dir/shaper_test.cc.o.d"
  "test_shaper"
  "test_shaper.pdb"
  "test_shaper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shaper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
