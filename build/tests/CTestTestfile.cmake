# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core_noc[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_shaper[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_replay_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_system_property[1]_include.cmake")
include("/root/repo/build/tests/test_config_divergence[1]_include.cmake")
include("/root/repo/build/tests/test_paper_regression[1]_include.cmake")
