file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_return_time.dir/fig9_return_time.cc.o"
  "CMakeFiles/bench_fig9_return_time.dir/fig9_return_time.cc.o.d"
  "bench_fig9_return_time"
  "bench_fig9_return_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_return_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
