# Empty compiler generated dependencies file for bench_fig9_return_time.
# This may be replaced when dependencies are built.
