file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_respc.dir/fig10_respc.cc.o"
  "CMakeFiles/bench_fig10_respc.dir/fig10_respc.cc.o.d"
  "bench_fig10_respc"
  "bench_fig10_respc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_respc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
