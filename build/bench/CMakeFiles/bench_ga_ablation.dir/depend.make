# Empty dependencies file for bench_ga_ablation.
# This may be replaced when dependencies are built.
