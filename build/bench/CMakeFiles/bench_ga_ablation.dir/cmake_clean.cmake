file(REMOVE_RECURSE
  "CMakeFiles/bench_ga_ablation.dir/ga_ablation.cc.o"
  "CMakeFiles/bench_ga_ablation.dir/ga_ablation.cc.o.d"
  "bench_ga_ablation"
  "bench_ga_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ga_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
