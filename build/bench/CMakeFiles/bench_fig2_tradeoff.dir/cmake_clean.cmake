file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tradeoff.dir/fig2_tradeoff.cc.o"
  "CMakeFiles/bench_fig2_tradeoff.dir/fig2_tradeoff.cc.o.d"
  "bench_fig2_tradeoff"
  "bench_fig2_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
