
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_substrate.cc" "bench/CMakeFiles/bench_ablation_substrate.dir/ablation_substrate.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_substrate.dir/ablation_substrate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/camo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/camo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/camo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/camo_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/camo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/camo_security.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/camo_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/camouflage/CMakeFiles/camo_shaper.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/camo_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
