# Empty dependencies file for bench_ablation_substrate.
# This may be replaced when dependencies are built.
