file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_substrate.dir/ablation_substrate.cc.o"
  "CMakeFiles/bench_ablation_substrate.dir/ablation_substrate.cc.o.d"
  "bench_ablation_substrate"
  "bench_ablation_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
