file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_covert.dir/fig14_15_covert.cc.o"
  "CMakeFiles/bench_fig14_15_covert.dir/fig14_15_covert.cc.o.d"
  "bench_fig14_15_covert"
  "bench_fig14_15_covert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_covert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
