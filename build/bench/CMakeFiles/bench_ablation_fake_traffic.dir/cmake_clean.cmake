file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fake_traffic.dir/ablation_fake_traffic.cc.o"
  "CMakeFiles/bench_ablation_fake_traffic.dir/ablation_fake_traffic.cc.o.d"
  "bench_ablation_fake_traffic"
  "bench_ablation_fake_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fake_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
