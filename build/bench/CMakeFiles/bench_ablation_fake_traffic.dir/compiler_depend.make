# Empty compiler generated dependencies file for bench_ablation_fake_traffic.
# This may be replaced when dependencies are built.
