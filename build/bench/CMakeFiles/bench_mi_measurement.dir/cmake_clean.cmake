file(REMOVE_RECURSE
  "CMakeFiles/bench_mi_measurement.dir/mi_measurement.cc.o"
  "CMakeFiles/bench_mi_measurement.dir/mi_measurement.cc.o.d"
  "bench_mi_measurement"
  "bench_mi_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mi_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
