# Empty dependencies file for bench_mi_measurement.
# This may be replaced when dependencies are built.
