file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bins.dir/ablation_bins.cc.o"
  "CMakeFiles/bench_ablation_bins.dir/ablation_bins.cc.o.d"
  "bench_ablation_bins"
  "bench_ablation_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
