# Empty compiler generated dependencies file for bench_fig11_shaping_accuracy.
# This may be replaced when dependencies are built.
