file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_shaping_accuracy.dir/fig11_shaping_accuracy.cc.o"
  "CMakeFiles/bench_fig11_shaping_accuracy.dir/fig11_shaping_accuracy.cc.o.d"
  "bench_fig11_shaping_accuracy"
  "bench_fig11_shaping_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_shaping_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
