file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_runtime.dir/adaptive_runtime.cc.o"
  "CMakeFiles/bench_adaptive_runtime.dir/adaptive_runtime.cc.o.d"
  "bench_adaptive_runtime"
  "bench_adaptive_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
