file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_bdc.dir/fig13_bdc.cc.o"
  "CMakeFiles/bench_fig13_bdc.dir/fig13_bdc.cc.o.d"
  "bench_fig13_bdc"
  "bench_fig13_bdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_bdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
