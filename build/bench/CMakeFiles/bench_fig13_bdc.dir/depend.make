# Empty dependencies file for bench_fig13_bdc.
# This may be replaced when dependencies are built.
