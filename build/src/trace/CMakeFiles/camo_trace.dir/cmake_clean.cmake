file(REMOVE_RECURSE
  "CMakeFiles/camo_trace.dir/covert.cc.o"
  "CMakeFiles/camo_trace.dir/covert.cc.o.d"
  "CMakeFiles/camo_trace.dir/replay.cc.o"
  "CMakeFiles/camo_trace.dir/replay.cc.o.d"
  "CMakeFiles/camo_trace.dir/synthetic.cc.o"
  "CMakeFiles/camo_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/camo_trace.dir/workloads.cc.o"
  "CMakeFiles/camo_trace.dir/workloads.cc.o.d"
  "libcamo_trace.a"
  "libcamo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
