file(REMOVE_RECURSE
  "libcamo_trace.a"
)
