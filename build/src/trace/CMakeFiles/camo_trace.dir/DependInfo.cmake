
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/covert.cc" "src/trace/CMakeFiles/camo_trace.dir/covert.cc.o" "gcc" "src/trace/CMakeFiles/camo_trace.dir/covert.cc.o.d"
  "/root/repo/src/trace/replay.cc" "src/trace/CMakeFiles/camo_trace.dir/replay.cc.o" "gcc" "src/trace/CMakeFiles/camo_trace.dir/replay.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/trace/CMakeFiles/camo_trace.dir/synthetic.cc.o" "gcc" "src/trace/CMakeFiles/camo_trace.dir/synthetic.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/camo_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/camo_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
