# Empty compiler generated dependencies file for camo_trace.
# This may be replaced when dependencies are built.
