# Empty dependencies file for camo_trace.
# This may be replaced when dependencies are built.
