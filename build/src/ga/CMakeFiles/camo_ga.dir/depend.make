# Empty dependencies file for camo_ga.
# This may be replaced when dependencies are built.
