file(REMOVE_RECURSE
  "CMakeFiles/camo_ga.dir/genetic.cc.o"
  "CMakeFiles/camo_ga.dir/genetic.cc.o.d"
  "CMakeFiles/camo_ga.dir/mise.cc.o"
  "CMakeFiles/camo_ga.dir/mise.cc.o.d"
  "libcamo_ga.a"
  "libcamo_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
