
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/genetic.cc" "src/ga/CMakeFiles/camo_ga.dir/genetic.cc.o" "gcc" "src/ga/CMakeFiles/camo_ga.dir/genetic.cc.o.d"
  "/root/repo/src/ga/mise.cc" "src/ga/CMakeFiles/camo_ga.dir/mise.cc.o" "gcc" "src/ga/CMakeFiles/camo_ga.dir/mise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/camouflage/CMakeFiles/camo_shaper.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/camo_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
