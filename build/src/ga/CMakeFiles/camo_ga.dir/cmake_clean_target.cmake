file(REMOVE_RECURSE
  "libcamo_ga.a"
)
