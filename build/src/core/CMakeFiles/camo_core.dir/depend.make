# Empty dependencies file for camo_core.
# This may be replaced when dependencies are built.
