# Empty compiler generated dependencies file for camo_core.
# This may be replaced when dependencies are built.
