file(REMOVE_RECURSE
  "libcamo_core.a"
)
