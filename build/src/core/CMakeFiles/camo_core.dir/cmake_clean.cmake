file(REMOVE_RECURSE
  "CMakeFiles/camo_core.dir/core.cc.o"
  "CMakeFiles/camo_core.dir/core.cc.o.d"
  "libcamo_core.a"
  "libcamo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
