file(REMOVE_RECURSE
  "libcamo_noc.a"
)
