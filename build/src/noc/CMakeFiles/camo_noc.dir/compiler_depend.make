# Empty compiler generated dependencies file for camo_noc.
# This may be replaced when dependencies are built.
