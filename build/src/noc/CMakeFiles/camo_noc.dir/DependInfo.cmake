
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/channel.cc" "src/noc/CMakeFiles/camo_noc.dir/channel.cc.o" "gcc" "src/noc/CMakeFiles/camo_noc.dir/channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/camo_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
