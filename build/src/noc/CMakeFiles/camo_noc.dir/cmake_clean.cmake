file(REMOVE_RECURSE
  "CMakeFiles/camo_noc.dir/channel.cc.o"
  "CMakeFiles/camo_noc.dir/channel.cc.o.d"
  "libcamo_noc.a"
  "libcamo_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
