# Empty compiler generated dependencies file for camo_common.
# This may be replaced when dependencies are built.
