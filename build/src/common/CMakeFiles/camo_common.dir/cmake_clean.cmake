file(REMOVE_RECURSE
  "CMakeFiles/camo_common.dir/histogram.cc.o"
  "CMakeFiles/camo_common.dir/histogram.cc.o.d"
  "CMakeFiles/camo_common.dir/logging.cc.o"
  "CMakeFiles/camo_common.dir/logging.cc.o.d"
  "CMakeFiles/camo_common.dir/stats.cc.o"
  "CMakeFiles/camo_common.dir/stats.cc.o.d"
  "libcamo_common.a"
  "libcamo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
