file(REMOVE_RECURSE
  "libcamo_common.a"
)
