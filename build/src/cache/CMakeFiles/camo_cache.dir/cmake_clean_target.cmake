file(REMOVE_RECURSE
  "libcamo_cache.a"
)
