# Empty dependencies file for camo_cache.
# This may be replaced when dependencies are built.
