file(REMOVE_RECURSE
  "CMakeFiles/camo_cache.dir/cache.cc.o"
  "CMakeFiles/camo_cache.dir/cache.cc.o.d"
  "CMakeFiles/camo_cache.dir/hierarchy.cc.o"
  "CMakeFiles/camo_cache.dir/hierarchy.cc.o.d"
  "libcamo_cache.a"
  "libcamo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
