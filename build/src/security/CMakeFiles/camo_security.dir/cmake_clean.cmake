file(REMOVE_RECURSE
  "CMakeFiles/camo_security.dir/covert_receiver.cc.o"
  "CMakeFiles/camo_security.dir/covert_receiver.cc.o.d"
  "CMakeFiles/camo_security.dir/divergence.cc.o"
  "CMakeFiles/camo_security.dir/divergence.cc.o.d"
  "CMakeFiles/camo_security.dir/leakage_bound.cc.o"
  "CMakeFiles/camo_security.dir/leakage_bound.cc.o.d"
  "CMakeFiles/camo_security.dir/mutual_information.cc.o"
  "CMakeFiles/camo_security.dir/mutual_information.cc.o.d"
  "libcamo_security.a"
  "libcamo_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
