
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/covert_receiver.cc" "src/security/CMakeFiles/camo_security.dir/covert_receiver.cc.o" "gcc" "src/security/CMakeFiles/camo_security.dir/covert_receiver.cc.o.d"
  "/root/repo/src/security/divergence.cc" "src/security/CMakeFiles/camo_security.dir/divergence.cc.o" "gcc" "src/security/CMakeFiles/camo_security.dir/divergence.cc.o.d"
  "/root/repo/src/security/leakage_bound.cc" "src/security/CMakeFiles/camo_security.dir/leakage_bound.cc.o" "gcc" "src/security/CMakeFiles/camo_security.dir/leakage_bound.cc.o.d"
  "/root/repo/src/security/mutual_information.cc" "src/security/CMakeFiles/camo_security.dir/mutual_information.cc.o" "gcc" "src/security/CMakeFiles/camo_security.dir/mutual_information.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/camouflage/CMakeFiles/camo_shaper.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/camo_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
