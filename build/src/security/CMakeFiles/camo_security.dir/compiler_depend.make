# Empty compiler generated dependencies file for camo_security.
# This may be replaced when dependencies are built.
