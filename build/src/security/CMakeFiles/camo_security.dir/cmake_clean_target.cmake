file(REMOVE_RECURSE
  "libcamo_security.a"
)
