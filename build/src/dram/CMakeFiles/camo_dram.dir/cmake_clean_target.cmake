file(REMOVE_RECURSE
  "libcamo_dram.a"
)
