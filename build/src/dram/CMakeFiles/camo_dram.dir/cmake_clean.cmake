file(REMOVE_RECURSE
  "CMakeFiles/camo_dram.dir/address.cc.o"
  "CMakeFiles/camo_dram.dir/address.cc.o.d"
  "CMakeFiles/camo_dram.dir/device.cc.o"
  "CMakeFiles/camo_dram.dir/device.cc.o.d"
  "libcamo_dram.a"
  "libcamo_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
