# Empty compiler generated dependencies file for camo_dram.
# This may be replaced when dependencies are built.
