
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/camouflage/bin_config.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/bin_config.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/bin_config.cc.o.d"
  "/root/repo/src/camouflage/bin_shaper.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/bin_shaper.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/bin_shaper.cc.o.d"
  "/root/repo/src/camouflage/config_port.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/config_port.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/config_port.cc.o.d"
  "/root/repo/src/camouflage/monitor.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/monitor.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/monitor.cc.o.d"
  "/root/repo/src/camouflage/request_shaper.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/request_shaper.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/request_shaper.cc.o.d"
  "/root/repo/src/camouflage/response_shaper.cc" "src/camouflage/CMakeFiles/camo_shaper.dir/response_shaper.cc.o" "gcc" "src/camouflage/CMakeFiles/camo_shaper.dir/response_shaper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/camo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/camo_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
