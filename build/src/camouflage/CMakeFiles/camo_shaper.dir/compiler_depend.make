# Empty compiler generated dependencies file for camo_shaper.
# This may be replaced when dependencies are built.
