file(REMOVE_RECURSE
  "CMakeFiles/camo_shaper.dir/bin_config.cc.o"
  "CMakeFiles/camo_shaper.dir/bin_config.cc.o.d"
  "CMakeFiles/camo_shaper.dir/bin_shaper.cc.o"
  "CMakeFiles/camo_shaper.dir/bin_shaper.cc.o.d"
  "CMakeFiles/camo_shaper.dir/config_port.cc.o"
  "CMakeFiles/camo_shaper.dir/config_port.cc.o.d"
  "CMakeFiles/camo_shaper.dir/monitor.cc.o"
  "CMakeFiles/camo_shaper.dir/monitor.cc.o.d"
  "CMakeFiles/camo_shaper.dir/request_shaper.cc.o"
  "CMakeFiles/camo_shaper.dir/request_shaper.cc.o.d"
  "CMakeFiles/camo_shaper.dir/response_shaper.cc.o"
  "CMakeFiles/camo_shaper.dir/response_shaper.cc.o.d"
  "libcamo_shaper.a"
  "libcamo_shaper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_shaper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
