file(REMOVE_RECURSE
  "libcamo_shaper.a"
)
