# Empty compiler generated dependencies file for camo_mem.
# This may be replaced when dependencies are built.
