file(REMOVE_RECURSE
  "CMakeFiles/camo_mem.dir/controller.cc.o"
  "CMakeFiles/camo_mem.dir/controller.cc.o.d"
  "CMakeFiles/camo_mem.dir/memory_system.cc.o"
  "CMakeFiles/camo_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/camo_mem.dir/schedulers.cc.o"
  "CMakeFiles/camo_mem.dir/schedulers.cc.o.d"
  "libcamo_mem.a"
  "libcamo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
