file(REMOVE_RECURSE
  "libcamo_mem.a"
)
