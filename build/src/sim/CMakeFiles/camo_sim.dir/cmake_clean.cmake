file(REMOVE_RECURSE
  "CMakeFiles/camo_sim.dir/presets.cc.o"
  "CMakeFiles/camo_sim.dir/presets.cc.o.d"
  "CMakeFiles/camo_sim.dir/runner.cc.o"
  "CMakeFiles/camo_sim.dir/runner.cc.o.d"
  "CMakeFiles/camo_sim.dir/system.cc.o"
  "CMakeFiles/camo_sim.dir/system.cc.o.d"
  "libcamo_sim.a"
  "libcamo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
