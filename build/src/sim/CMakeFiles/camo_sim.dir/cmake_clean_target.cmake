file(REMOVE_RECURSE
  "libcamo_sim.a"
)
