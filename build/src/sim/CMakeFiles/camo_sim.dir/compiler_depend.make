# Empty compiler generated dependencies file for camo_sim.
# This may be replaced when dependencies are built.
