/**
 * @file
 * Ablation: fake traffic and the replenishment window (SIII-A2 and
 * SIV-B4).
 *
 * Part 1 - fake traffic on/off. The paper's claim is that fake
 * traffic keeps the *observed traffic distribution* fixed when demand
 * drops, so a bus observer's per-window activity carries no signal:
 * we measure windowed MI between the victim's intrinsic activity and
 * its bus activity. We also report the per-request gap MI, which
 * exposes a nuance: when the budget far exceeds demand, real bursts
 * and exact-bin fakes remain sequence-distinguishable, so operators
 * should provision the budget near the average demand.
 *
 * Part 2 - replenishment window sweep: fake traffic takes over one
 * window after a demand drop, so a shorter window shrinks the
 * leaky transition (SIV-B4), at some performance cost.
 */

#include <cstdio>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 3000000;

struct Outcome
{
    double throughput = 0.0;
    double busMi = 0.0; ///< windowed intrinsic-vs-bus MI
    double gapMi = 0.0; ///< per-request gap MI
    std::uint64_t fakes = 0;
    std::uint64_t reals = 0;
    double nJPerServedRead = 0.0; ///< DRAM dynamic energy efficiency
};

const std::vector<shaper::TrafficEvent> &
reference()
{
    static const std::vector<shaper::TrafficEvent> events =
        sim::unshapedIntrinsicEvents(sim::paperConfig(),
                                     sim::adversaryMix("bzip", "apache"),
                                     1, kRunCycles);
    return events;
}

Outcome
runCase(bool fakes, Cycle period, double budget_scale)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    cfg.shapeCore = {false, true, true, true};
    cfg.fakeTraffic = fakes;
    const Cycle base = std::max<Cycle>(2, 20 * period / 10000);
    cfg.reqBins = shaper::BinConfig::desired(base, 1.7, period);
    // Hold the bandwidth *rate* constant across periods: credits
    // scale with the window length.
    const double rate_scale =
        budget_scale * static_cast<double>(period) / 10000.0;
    for (auto &c : cfg.reqBins.credits) {
        c = std::max<std::uint32_t>(
            period >= 10000 ? 1 : 0,
            static_cast<std::uint32_t>(c * rate_scale + 0.5));
    }
    if (cfg.reqBins.totalCredits() == 0)
        cfg.reqBins.credits[0] = 1;
    cfg.recordTraffic = true;
    sim::System system(cfg, sim::adversaryMix("bzip", "apache"));
    system.run(kRunCycles);

    Outcome o;
    for (std::uint32_t i = 0; i < system.numCores(); ++i)
        o.throughput += system.coreAt(i).ipc();
    auto *sh = system.requestShaper(1);
    // The observation window must span >= one replenishment period,
    // or the shaper's own intra-period rhythm reads as signal.
    const Cycle window = std::max<Cycle>(2 * period, 20000);
    o.busMi = security::computeWindowedCrossMiCounts(
                  system.intrinsicMonitor(1).events(),
                  system.busMonitor(1).events(), window, 4)
                  .miBits;
    const Histogram quantizer(cfg.reqBins.edges);
    o.gapMi = security::computeShapingMi(
                  reference(), sh->postMonitor().events(), quantizer)
                  .miBits;
    o.fakes = sh->bins().fakeIssued();
    o.reals = sh->bins().realIssued();

    // Energy overhead of fake traffic: DRAM dynamic energy divided by
    // the reads the programs actually consumed.
    std::uint64_t served = 0;
    for (std::uint32_t i = 0; i < system.numCores(); ++i)
        served += system.servedReads(i);
    if (served > 0) {
        o.nJPerServedRead =
            system.memory().channel(0).device().energy().dynamicPj() /
            (1000.0 * static_cast<double>(served));
    }
    return o;
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Ablation: fake traffic & replenishment window. "
                "mix: w(bzip, apache); ReqC on victims\n\n");

    std::printf("-- fake traffic (period=10000, budget 2x demand) --\n");
    std::printf("%-6s %12s %12s %10s %10s %10s %10s\n", "fakes",
                "throughput", "busMI(win)", "gapMI", "real", "fake",
                "nJ/read");
    for (const bool fakes : {false, true}) {
        const Outcome o = runCase(fakes, 10000, 2.0);
        std::printf("%-6s %12.3f %12.4f %10.4f %10llu %10llu %10.2f\n",
                    fakes ? "on" : "off", o.throughput, o.busMi,
                    o.gapMi, static_cast<unsigned long long>(o.reals),
                    static_cast<unsigned long long>(o.fakes),
                    o.nJPerServedRead);
    }

    std::printf("\n-- replenishment window sweep (fakes on, "
                "budget 2x) --\n");
    std::printf("%-8s %12s %12s %10s %12s\n", "period", "throughput",
                "busMI(win)", "gapMI", "fake/real");
    for (const Cycle period : {2500u, 5000u, 10000u, 20000u, 40000u}) {
        const Outcome o = runCase(true, period, 2.0);
        std::printf("%-8llu %12.3f %12.4f %10.4f %12.3f\n",
                    static_cast<unsigned long long>(period),
                    o.throughput, o.busMi, o.gapMi,
                    o.reals ? static_cast<double>(o.fakes) / o.reals
                            : 0.0);
    }
    std::printf("\n# expectation: fakes halve the windowed "
                "bus-observer signal at a small throughput and\n"
                "# DRAM-energy cost (nJ/read). The window length's "
                "effect is second-order at this\n"
                "# operating point (the SIV-B4 lag matters most for "
                "pulse-like traffic; see the covert bench,\n"
                "# where the one-window takeover lag is directly "
                "visible at pulse transitions).\n");
    return 0;
}
