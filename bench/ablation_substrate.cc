/**
 * @file
 * Substrate design-choice ablations (DESIGN.md §3): the memory-system
 * knobs the paper holds fixed, characterized so their influence on
 * the headline experiments is known.
 *
 *  - address mapping scheme: row-locality vs bank-parallelism
 *  - page policy: open vs closed rows (closed also removes the
 *    row-buffer residency side channel)
 *  - channel count: 1 (Table II) vs 2
 *  - scheduler: FR-FCFS vs plain FCFS
 */

#include <cstdio>
#include <vector>

#include "bench/sweep.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 400000;
constexpr Cycle kWarmup = 40000;

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Substrate ablations (throughput = sum of IPC; mix "
                "in row labels)\n\n");

    // Every ablation point is an independent runConfig; queue them
    // all, sweep once, print from the in-order results.
    std::vector<bench::SimJob> jobs;
    auto queue = [&](sim::SystemConfig cfg, const char *adv,
                     const char *victim) {
        jobs.push_back({std::move(cfg), sim::adversaryMix(adv, victim),
                        kRunCycles, kWarmup});
    };

    sim::SystemConfig map_a = sim::paperConfig();
    map_a.mc.mapping = dram::MappingScheme::RowRankBankCol;
    queue(map_a, "libqt", "mcf"); // 0
    sim::SystemConfig map_b = sim::paperConfig();
    map_b.mc.mapping = dram::MappingScheme::RowColRankBank;
    queue(map_b, "libqt", "mcf"); // 1

    for (const auto policy :
         {mem::PagePolicy::Open, mem::PagePolicy::Closed}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mc.pagePolicy = policy;
        queue(cfg, "libqt", "libqt"); // 2, 4
        queue(cfg, "mcf", "mcf");     // 3, 5
    }

    for (const std::uint32_t channels : {1u, 2u}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mc.org.channels = channels;
        queue(cfg, "mcf", "mcf"); // 6, 7
    }

    for (const auto kind :
         {mem::SchedulerKind::FrFcfs, mem::SchedulerKind::Fcfs}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mc.scheduler = kind;
        queue(cfg, "libqt", "hmmer"); // 8, 9
    }

    const auto m = bench::sweep(jobs);
    auto tput = [&](std::size_t i) { return m[i].throughput(); };

    std::printf("-- address mapping, w(libqt, mcf) --\n");
    std::printf("row:rank:bank:col (row locality) %8.3f\n", tput(0));
    std::printf("row:col:rank:bank (bank parallel) %7.3f\n\n", tput(1));

    std::printf("-- page policy, streaming w(libqt, libqt) vs "
                "random w(mcf, mcf) --\n");
    std::printf("%-8s streaming %7.3f  random %7.3f\n", "open", tput(2),
                tput(3));
    std::printf("%-8s streaming %7.3f  random %7.3f\n", "closed",
                tput(4), tput(5));
    std::printf("\n");

    std::printf("-- channel count, bandwidth-bound w(mcf, mcf) --\n");
    std::printf("1 channel(s) %8.3f\n", tput(6));
    std::printf("2 channel(s) %8.3f\n\n", tput(7));

    std::printf("-- scheduler, row-friendly w(libqt, hmmer) --\n");
    std::printf("%-8s %8.3f\n",
                mem::schedulerKindName(mem::SchedulerKind::FrFcfs),
                tput(8));
    std::printf("%-8s %8.3f\n",
                mem::schedulerKindName(mem::SchedulerKind::Fcfs),
                tput(9));
    std::printf("\n# expectations: bank-parallel mapping and FR-FCFS "
                "win; closed page costs streaming throughput;\n"
                "# a second channel relieves mcf's bandwidth bound\n");
    return 0;
}
