/**
 * @file
 * Substrate design-choice ablations (DESIGN.md §3): the memory-system
 * knobs the paper holds fixed, characterized so their influence on
 * the headline experiments is known.
 *
 *  - address mapping scheme: row-locality vs bank-parallelism
 *  - page policy: open vs closed rows (closed also removes the
 *    row-buffer residency side channel)
 *  - channel count: 1 (Table II) vs 2
 *  - scheduler: FR-FCFS vs plain FCFS
 */

#include <cstdio>

#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 400000;
constexpr Cycle kWarmup = 40000;

double
throughputOf(const sim::SystemConfig &cfg, const char *adv,
             const char *victim)
{
    return sim::runConfig(cfg, sim::adversaryMix(adv, victim),
                          kRunCycles, kWarmup)
        .throughput();
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Substrate ablations (throughput = sum of IPC; mix "
                "in row labels)\n\n");

    {
        std::printf("-- address mapping, w(libqt, mcf) --\n");
        sim::SystemConfig a = sim::paperConfig();
        a.mc.mapping = dram::MappingScheme::RowRankBankCol;
        sim::SystemConfig b = sim::paperConfig();
        b.mc.mapping = dram::MappingScheme::RowColRankBank;
        std::printf("row:rank:bank:col (row locality) %8.3f\n",
                    throughputOf(a, "libqt", "mcf"));
        std::printf("row:col:rank:bank (bank parallel) %7.3f\n\n",
                    throughputOf(b, "libqt", "mcf"));
    }

    {
        std::printf("-- page policy, streaming w(libqt, libqt) vs "
                    "random w(mcf, mcf) --\n");
        for (const auto policy : {mem::PagePolicy::Open,
                                  mem::PagePolicy::Closed}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mc.pagePolicy = policy;
            std::printf("%-8s streaming %7.3f  random %7.3f\n",
                        policy == mem::PagePolicy::Open ? "open"
                                                        : "closed",
                        throughputOf(cfg, "libqt", "libqt"),
                        throughputOf(cfg, "mcf", "mcf"));
        }
        std::printf("\n");
    }

    {
        std::printf("-- channel count, bandwidth-bound w(mcf, mcf) "
                    "--\n");
        for (const std::uint32_t channels : {1u, 2u}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mc.org.channels = channels;
            std::printf("%u channel(s) %8.3f\n", channels,
                        throughputOf(cfg, "mcf", "mcf"));
        }
        std::printf("\n");
    }

    {
        std::printf("-- scheduler, row-friendly w(libqt, hmmer) --\n");
        for (const auto kind : {mem::SchedulerKind::FrFcfs,
                                mem::SchedulerKind::Fcfs}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mc.scheduler = kind;
            std::printf("%-8s %8.3f\n",
                        mem::schedulerKindName(kind),
                        throughputOf(cfg, "libqt", "hmmer"));
        }
    }
    std::printf("\n# expectations: bank-parallel mapping and FR-FCFS "
                "win; closed page costs streaming throughput;\n"
                "# a second channel relieves mcf's bandwidth bound\n");
    return 0;
}
