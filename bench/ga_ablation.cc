/**
 * @file
 * §IV-C: the online genetic algorithm (paper Figure 8 flow).
 *
 * Runs the CONFIG_PHASE on w(ADVERSARY, astar) and reports the best
 * fitness (negated average MISE slowdown) per generation, the final
 * bin configurations, and the RUN_PHASE throughput of the GA-found
 * configuration vs the hand-written DESIRED configuration and a
 * constant-rate shaper with the same total budget.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/sweep.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kMeasureCycles = 300000;
constexpr Cycle kWarmup = 30000;

} // namespace

int
main(int argc, char **argv)
{
    ga::GaConfig ga_cfg;
    ga_cfg.generations = argc > 1 ? std::atoi(argv[1]) : 10;
    ga_cfg.populationSize = argc > 2 ? std::atoi(argv[2]) : 16;

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# SIV-C: online GA, %zu generations x %zu children, "
                "20k-cycle epochs, fitness = -avg MISE slowdown\n\n",
                ga_cfg.generations, ga_cfg.populationSize);

    const auto mix = sim::adversaryMix("bzip", "astar");
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;

    const auto tuned = sim::runOnlineGa(cfg, mix, ga_cfg);

    std::printf("generation best_fitness (higher is better)\n");
    for (std::size_t g = 0; g < tuned.generationBest.size(); ++g)
        std::printf("%10zu %.4f\n", g, tuned.generationBest[g]);
    std::printf("\nper-core tuned configurations:\n");
    for (std::size_t c = 0; c < tuned.reqBinsPerCore.size(); ++c) {
        std::printf("core %zu req:  %s\n", c,
                    tuned.reqBinsPerCore[c].toString().c_str());
        std::printf("core %zu resp: %s\n", c,
                    tuned.respBinsPerCore[c].toString().c_str());
    }
    std::printf("\nCONFIG_PHASE length: %llu cycles; reconfiguration "
                "leak bound (E x log2 R): %.1f bits\n",
                static_cast<unsigned long long>(tuned.configPhaseCycles),
                tuned.configPhaseLeakBoundBits);
    // Offline comparator: same genome layout and MISE fitness, but
    // each child evaluated in a fresh seed-derived system, fanned
    // across the worker pool (src/sim/parallel.h).
    const auto offline = sim::runOfflineGa(cfg, mix, ga_cfg);
    std::printf("\noffline GA (parallel, fresh system per child): "
                "best fitness %.4f over %zu generations\n",
                offline.bestFitness, offline.generationBest.size());

    // RUN_PHASE comparison, all four configurations swept in parallel.
    sim::SystemConfig ga_run = cfg;
    ga_run.reqBinsPerCore = tuned.reqBinsPerCore;
    ga_run.respBinsPerCore = tuned.respBinsPerCore;

    sim::SystemConfig offline_run = cfg;
    offline_run.reqBinsPerCore = offline.reqBinsPerCore;
    offline_run.respBinsPerCore = offline.respBinsPerCore;

    sim::SystemConfig desired_run = cfg;

    // Naive comparator: the same total budget spread uniformly over
    // the bins (no workload awareness), still BDC so the comparison
    // is like-for-like.
    sim::SystemConfig uniform_run = cfg;
    const auto per_bin = static_cast<std::uint32_t>(
        tuned.reqBins.totalCredits() / tuned.reqBins.numBins());
    shaper::BinConfig uniform = tuned.reqBins;
    for (auto &c : uniform.credits)
        c = std::max(1u, per_bin);
    uniform_run.reqBins = uniform;
    uniform_run.respBins = uniform;

    const auto runs = bench::sweep({
        {ga_run, mix, kMeasureCycles, kWarmup},
        {offline_run, mix, kMeasureCycles, kWarmup},
        {desired_run, mix, kMeasureCycles, kWarmup},
        {uniform_run, mix, kMeasureCycles, kWarmup},
    });

    std::printf("\nRUN_PHASE throughput: GA config %.3f | offline GA "
                "%.3f | DESIRED %.3f | uniform same-budget %.3f\n",
                runs[0].throughput(), runs[1].throughput(),
                runs[2].throughput(), runs[3].throughput());
    std::printf("# expectation: GA >= hand-written configurations\n");
    return 0;
}
