/**
 * @file
 * §IV-B2/3 mutual-information measurements.
 *
 * Paper numbers for w(ADVERSARY, bzip): no shaping I(X;X) = H(X) = 4.4;
 * constant shaper 0.002 (0 with fake traffic); ReqC 0.006 (0.002 with
 * fake traffic). BDC is never worse than min(ReqC, RespC) by the data
 * processing inequality. We reproduce the ordering and the orders of
 * magnitude; absolute entropy depends on the trace.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 2000000;
constexpr std::uint32_t kProtected = 1; // bzip instance under ReqC

struct Row
{
    std::string scheme;
    security::ShapingMiResult fine;   ///< 32-bin quantization
    security::ShapingMiResult coarse; ///< the paper's 10 intervals
    double windowedBits = 0.0;        ///< per-window bus observer MI
};

/**
 * X is the program's *intrinsic* request timing — what it does when
 * not shaped — so it comes from an unshaped reference run with the
 * same seed and workloads (under shaping, the in-run "pre-shaper"
 * stream is already perturbed by back-pressure from the shaper
 * itself). Y is what the observer sees on the bus in the shaped run;
 * the k-th real request is the same logical access in both runs.
 */
const std::vector<shaper::TrafficEvent> &
referenceIntrinsic()
{
    static std::vector<shaper::TrafficEvent> events = [] {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.recordTraffic = true;
        sim::System system(cfg, sim::adversaryMix("mcf", "bzip"));
        system.run(kRunCycles);
        return system.intrinsicMonitor(kProtected).events();
    }();
    return events;
}

security::ShapingMiResult
measure(sim::Mitigation mit, bool fakes, const Histogram &quantizer,
        double *windowed_bits = nullptr)
{
    if (mit == sim::Mitigation::None) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.recordTraffic = true;
        sim::System system(cfg, sim::adversaryMix("mcf", "bzip"));
        system.run(kRunCycles);
        if (windowed_bits) {
            *windowed_bits =
                security::computeWindowedCrossMiCounts(
                    system.intrinsicMonitor(kProtected).events(),
                    system.busMonitor(kProtected).events(), 20000, 4)
                    .miBits;
        }
        return security::computeUnshapedLeakage(referenceIntrinsic(),
                                                quantizer);
    }
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = mit;
    cfg.fakeTraffic = fakes;
    cfg.recordTraffic = true;
    // Shape the protected application only, as in the paper's setup.
    cfg.shapeCore = {false, true, true, true};
    sim::System system(cfg, sim::adversaryMix("mcf", "bzip"));
    system.run(kRunCycles);

    if (windowed_bits) {
        *windowed_bits = security::computeWindowedCrossMiCounts(
                             system.intrinsicMonitor(kProtected).events(),
                             system.busMonitor(kProtected).events(),
                             20000, 4)
                             .miBits;
    }
    auto *shaper = system.requestShaper(kProtected);
    return security::computeShapingMi(referenceIntrinsic(),
                                      shaper->postMonitor().events(),
                                      quantizer);
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# SecIV-B2: mutual information between intrinsic and "
                "shaped request inter-arrivals\n");
    std::printf("# workload: w(ADVERSARY, bzip); shaper on the bzip "
                "instances; %llu cycles\n\n",
                static_cast<unsigned long long>(kRunCycles));

    // Fine geometric quantization so H(X) is well resolved (the paper
    // reports 4.4 bits of self-information for bzip), plus the
    // paper's own ten-interval quantization.
    const Histogram fine = security::makeMiQuantizer(32, 8, 1.45);
    const Histogram coarse(shaper::BinConfig::desired().edges);

    std::vector<Row> rows;
    auto add = [&](const std::string &name, sim::Mitigation mit,
                   bool fakes) {
        Row row;
        row.scheme = name;
        row.fine = measure(mit, fakes, fine, &row.windowedBits);
        row.coarse = measure(mit, fakes, coarse);
        rows.push_back(std::move(row));
    };
    add("no-shaping (I(X;X)=H(X))", sim::Mitigation::None, false);
    add("CS, no fake traffic", sim::Mitigation::CS, false);
    add("CS, with fake traffic", sim::Mitigation::CS, true);
    add("ReqC, no fake traffic", sim::Mitigation::ReqC, false);
    add("ReqC, with fake traffic", sim::Mitigation::ReqC, true);

    std::printf("%-28s %11s %11s %9s %8s %8s\n", "scheme",
                "MI@10bins", "MI@32bins", "winMI", "H(X)", "fakes");
    for (const Row &r : rows) {
        std::printf("%-28s %11.4f %11.4f %9.4f %8.3f %8llu\n",
                    r.scheme.c_str(), r.coarse.miBits, r.fine.miBits,
                    r.windowedBits, r.fine.intrinsicEntropy,
                    static_cast<unsigned long long>(r.fine.fakeEvents));
    }

    const double h = rows[0].fine.intrinsicEntropy;
    std::printf("\npaper: no-shaping 4.4, CS 0.002 -> 0 (fake), "
                "ReqC 0.006 -> 0.002 (fake)\n");
    std::printf("gap-MI leak fraction vs no-shaping: CS %.4f%%, "
                "ReqC %.4f%% (paper: <= 0.1%%)\n",
                100.0 * rows[2].fine.miBits / h,
                100.0 * rows[4].fine.miBits / h);
    std::printf("winMI is the per-window (20k-cycle) bus-observer "
                "signal; the residual gap-MI above it\n"
                "comes from phase transitions within one "
                "replenishment window (see EXPERIMENTS.md).\n");
    return 0;
}
