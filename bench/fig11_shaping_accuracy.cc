/**
 * @file
 * Figure 11: Camouflage shapes every application's intrinsic request
 * inter-arrival distribution into the DESIRED distribution
 * (monotonically decreasing bin sizes 10, 9, ..., 1).
 *
 * For each of the 11 workloads we print the intrinsic (pre-shaper)
 * per-bin distribution, the post-Camouflage distribution measured by
 * an independent monitor bin, and the DESIRED target, plus the total
 * variation distance between shaped and DESIRED.
 */

#include <cstdio>

#include "src/camouflage/bin_config.h"
#include "src/common/histogram.h"
#include "src/security/divergence.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 11: shaping arbitrary request distributions "
                "into DESIRED\n");

    const shaper::BinConfig desired = shaper::BinConfig::desired();
    std::printf("# DESIRED credits per bin:");
    for (const auto c : desired.credits)
        std::printf(" %u", c);
    std::printf("  (period=%llu cycles)\n\n",
                static_cast<unsigned long long>(desired.replenishPeriod));

    std::printf("%-10s %-9s %s\n", "workload", "stream",
                "bin share (%) for bins 0..9");

    for (const std::string &name : trace::workloadNames()) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.reqBins = desired;
        cfg.numCores = 1;
        sim::System system(cfg, {name});
        system.run(400000);

        const auto &pre = system.intrinsicMonitor(0).histogram();
        const auto &post =
            system.requestShaper(0)->postMonitor().histogram();

        Histogram target(desired.edges);
        for (std::size_t i = 0; i < desired.numBins(); ++i)
            target.add(desired.edges[i], desired.credits[i]);

        auto print_row = [&](const char *label, const Histogram &h) {
            std::printf("%-10s %-9s", name.c_str(), label);
            for (const double p : h.pmf())
                std::printf(" %5.1f", 100.0 * p);
            std::printf("\n");
        };
        print_row("intrinsic", pre);
        print_row("shaped", post);
        print_row("DESIRED", target);

        // Statistical closeness of the shaped stream to the target.
        std::vector<std::uint64_t> observed;
        for (std::size_t i = 0; i < post.numBins(); ++i)
            observed.push_back(post.count(i));
        const auto chi2 =
            security::chiSquareGoodnessOfFit(observed, target.pmf());
        std::printf("%-10s TVD = %.4f, KL = %.4f bits, chi2 = %.1f "
                    "(df %u)   (paper: shaped == DESIRED)\n\n",
                    name.c_str(), post.totalVariationDistance(target),
                    security::klDivergenceBits(post, target),
                    chi2.statistic, chi2.degreesOfFreedom);
    }
    return 0;
}
