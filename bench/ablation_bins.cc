/**
 * @file
 * Ablation: how the number of hardware bins trades security for
 * performance (DESIGN.md ablation index; the paper chose 10 bins,
 * §III-A1).
 *
 * One bin is configured as the degenerate constant-rate shaper
 * (paper §III-B3); more bins let the shaper track burstiness,
 * recovering performance. The budget (total credits per period) is
 * held constant across all points.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 800000;
constexpr std::uint32_t kBudget = 200; ///< credits per 10000 cycles

/** A bin config with `n` bins and a constant total budget. */
shaper::BinConfig
makeBins(std::size_t n)
{
    if (n == 1) {
        // Degenerate constant-rate configuration (paper SIII-B3).
        return shaper::BinConfig::constantRate(10000 / kBudget, 10000);
    }
    // Decreasing credit ramp across n bins, totalling ~kBudget.
    std::vector<std::uint32_t> credits(n);
    std::uint32_t granted = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::uint32_t>(
            (2.0 * kBudget * (n - i)) / (n * (n + 1)) + 0.5);
        credits[i] = std::max(1u, c);
        granted += credits[i];
    }
    (void)granted;
    const double ratio =
        std::pow(600.0 / 10.0, 1.0 / static_cast<double>(n - 1));
    return shaper::BinConfig::geometric(std::move(credits), 10, ratio,
                                        10000);
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Ablation: bin count at a fixed budget of %u "
                "credits / 10000 cycles.\n"
                "# mix: w(bzip, apache); ReqC on the apache victims\n\n",
                kBudget);
    std::printf("%5s %12s %14s %12s\n", "bins", "throughput",
                "MI(bits)@10q", "fake/real");

    const Histogram quantizer(shaper::BinConfig::desired().edges);
    const auto mix = sim::adversaryMix("bzip", "apache");
    const auto reference =
        sim::unshapedIntrinsicEvents(sim::paperConfig(), mix, 1,
                                     kRunCycles);

    for (const std::size_t n : {std::size_t(1), std::size_t(2),
                                std::size_t(4), std::size_t(8),
                                std::size_t(10), std::size_t(16)}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.shapeCore = {false, true, true, true};
        cfg.reqBins = makeBins(n);
        cfg.recordTraffic = true;
        sim::System system(cfg, mix);
        system.run(kRunCycles);

        double tput = 0.0;
        for (std::uint32_t i = 0; i < system.numCores(); ++i)
            tput += system.coreAt(i).ipc();

        auto *sh = system.requestShaper(1);
        const auto mi = security::computeShapingMi(
            reference, sh->postMonitor().events(), quantizer);
        const double fake_ratio =
            sh->bins().realIssued()
                ? static_cast<double>(sh->bins().fakeIssued()) /
                      static_cast<double>(sh->bins().realIssued())
                : 0.0;
        std::printf("%5zu %12.3f %14.4f %12.3f\n", n, tput, mi.miBits,
                    fake_ratio);
    }
    std::printf("\n# expectation: throughput rises with bin count at "
                "equal budget; 1 bin is the CS subset\n");
    return 0;
}
