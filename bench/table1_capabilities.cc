/**
 * @file
 * Table I: which threats each technique prevents, verified
 * empirically rather than just asserted.
 *
 * - "Pin/Bus monitoring" protection: the request stream on the shared
 *   channel carries (almost) no information about the protected
 *   application's intrinsic timing. Metric: MI between intrinsic and
 *   bus-observed inter-arrival gaps of the protected core (the same
 *   pairing as SIV-B2).
 * - "Memory side-channel" protection: an adversary inspecting its own
 *   response latencies learns (almost) nothing about the victim.
 *   Metric: windowed MI between victim request activity and the
 *   adversary's mean probe latency.
 *
 * Expected (Table I): ReqC = bus Yes / side No; RespC = bus No / side
 * Yes; BDC = Yes / Yes; TP = No / Yes; CS = Yes / No; FS = No / Yes.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 4000000;
constexpr Cycle kWindow = 20000;
constexpr std::size_t kLevels = 4;
constexpr std::uint32_t kVictim = 1;

struct Row
{
    std::string scheme;
    double busLeak = 0.0;  ///< pin/bus channel (bits)
    double sideLeak = 0.0; ///< response side channel (bits)
    const char *paperBus;
    const char *paperSide;
};

Row
evaluate(const std::string &name, sim::Mitigation mit,
         const char *paper_bus, const char *paper_side)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = mit;
    cfg.recordTraffic = true;
    cfg.recordLatencies = true;
    // Protect the victims (cores 1-3); core 0 is the adversary. For
    // RespC the paper shapes the adversary's responses instead.
    if (mit == sim::Mitigation::RespC)
        cfg.shapeCore = {true, false, false, false};
    else
        cfg.shapeCore = {false, true, true, true};

    // Probe = the measuring adversary; apache's on/off phases are the
    // secret the side channel would carry.
    sim::System system(cfg, sim::adversaryMix("probe", "apache"));
    system.run(kRunCycles);

    Row row;
    row.scheme = name;
    row.paperBus = paper_bus;
    row.paperSide = paper_side;

    // Pin/bus channel: windowed MI between the victim's intrinsic
    // activity and what an observer timestamps on the shared channel.
    // The window spans >= one replenishment period so the shaper's
    // intra-period rhythm does not masquerade as signal.
    const auto &intrinsic = system.intrinsicMonitor(kVictim).events();
    const auto &bus = system.busMonitor(kVictim).events();
    row.busLeak = security::computeWindowedCrossMiCounts(
                      intrinsic, bus, kWindow, kLevels)
                      .miBits;

    // Side channel: what the adversary's own latencies say about the
    // victim's activity.
    const auto side = security::computeWindowedCrossMi(
        intrinsic, system.latencyLog(0), kWindow, kLevels);
    row.sideLeak = side.miBits;
    return row;
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Table I: capability matrix, measured (bits of "
                "leakage; lower = protected)\n");
    std::printf("# mix: w(probe=ADVERSARY, apache=victims); "
                "side-channel window=%llu cycles\n\n",
                static_cast<unsigned long long>(kWindow));

    std::vector<Row> rows;
    rows.push_back(evaluate("no-shaping", sim::Mitigation::None,
                            "No", "No"));
    rows.push_back(evaluate("ReqC", sim::Mitigation::ReqC, "Yes", "No"));
    rows.push_back(evaluate("RespC", sim::Mitigation::RespC,
                            "No", "Yes"));
    rows.push_back(evaluate("BDC", sim::Mitigation::BDC, "Yes", "Yes"));
    rows.push_back(evaluate("TP", sim::Mitigation::TP, "No", "Yes"));
    rows.push_back(evaluate("CS", sim::Mitigation::CS, "Yes", "No"));
    rows.push_back(evaluate("FS", sim::Mitigation::FS, "No", "Yes"));

    std::printf("%-12s %14s %6s %14s %6s\n", "scheme",
                "bus leak(bits)", "paper", "side leak(bits)", "paper");
    for (const Row &r : rows) {
        std::printf("%-12s %14.4f %6s %14.4f %6s\n", r.scheme.c_str(),
                    r.busLeak, r.paperBus, r.sideLeak, r.paperSide);
    }
    std::printf("\n# 'Yes' cells should sit well below the no-shaping "
                "row of their column.\n"
                "# Note: ReqC/CS with fake traffic also flatten the "
                "victims' DRAM footprint, so their\n"
                "# measured side leak can drop below the paper's "
                "qualitative 'No' as well.\n");
    return 0;
}
