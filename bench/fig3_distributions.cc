/**
 * @file
 * Figure 3: the conceptual difference between the schemes, measured.
 *
 * Shows the request inter-arrival histograms an observer on the
 * shared channel sees for the same application under: no shaping
 * (the intrinsic distribution), a constant-rate shaper (everything in
 * one bin), Temporal Partitioning (mass pushed into high-latency bins
 * by turn-waiting), and Camouflage (the programmed distribution).
 */

#include <cstdio>
#include <string>

#include "src/common/histogram.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 600000;
constexpr std::uint32_t kApp = 1; // observed application (victim slot)

void
show(const char *label, const Histogram &hist)
{
    std::printf("\n-- %s (%llu requests) --\n", label,
                static_cast<unsigned long long>(hist.totalCount()));
    std::printf("%s", hist.toAscii(48).c_str());
}

Histogram
observed(sim::Mitigation mit)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = mit;
    if (mit == sim::Mitigation::CS || mit == sim::Mitigation::ReqC)
        cfg.shapeCore = {false, true, true, true};
    sim::System system(cfg, sim::adversaryMix("astar", "omnetpp"));
    system.run(kRunCycles);
    // What the shared request channel (SC1) sees from the app. Under
    // TP the queueing shows up in the *service* gaps, so observe the
    // response stream instead for TP.
    return mit == sim::Mitigation::TP
               ? system.responseMonitor(kApp).histogram()
               : system.busMonitor(kApp).histogram();
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 3: inter-arrival distributions under each "
                "scheme (app: omnetpp)\n");
    show("intrinsic (no shaping)", observed(sim::Mitigation::None));
    show("constant rate shaper (CS): one bin",
         observed(sim::Mitigation::CS));
    show("temporal partitioning (TP): mass in high-latency bins "
         "(response stream)",
         observed(sim::Mitigation::TP));
    show("Camouflage (ReqC): the programmed DESIRED distribution",
         observed(sim::Mitigation::ReqC));
    return 0;
}
