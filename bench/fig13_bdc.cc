/**
 * @file
 * Figure 13: Bi-directional Camouflage vs Temporal Partitioning and
 * Fixed Service (with bank partitioning).
 *
 * For each of the 11 ADVERSARY workloads mixed with (a) astar x3 and
 * (b) mcf x3, we report the workload-average slowdown of each secure
 * scheme relative to the unprotected FR-FCFS baseline. Paper: BDC has
 * minimal impact; TP costs ~1.5x more and FS ~1.32x more than BDC on
 * average.
 *
 * BDC bin configurations come from the online genetic algorithm
 * (paper §IV-C); pass a smaller generation/population count via argv
 * to trade fidelity for run time: fig13 [generations] [population].
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/sweep.h"
#include "src/common/stats.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

constexpr Cycle kMeasureCycles = 300000;
constexpr Cycle kWarmup = 30000;

double
avgSlowdown(const sim::RunMetrics &base, const sim::RunMetrics &test)
{
    const auto s = sim::slowdownVs(base, test);
    double sum = 0.0;
    for (const double v : s)
        sum += v;
    return sum / static_cast<double>(s.size());
}

} // namespace

int
main(int argc, char **argv)
{
    ga::GaConfig ga_cfg;
    // Per-core genomes (4 cores x 20 genes) need a bigger search than
    // the shared-config default would.
    ga_cfg.generations = argc > 1 ? std::atoi(argv[1]) : 8;
    ga_cfg.populationSize = argc > 2 ? std::atoi(argv[2]) : 14;

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 13: program average slowdown vs unprotected "
                "FR-FCFS (lower is better)\n");
    std::printf("# BDC configured by online GA: %zu generations x %zu "
                "children, 20k-cycle epochs\n",
                ga_cfg.generations, ga_cfg.populationSize);

    for (const std::string &victim : {std::string("astar"),
                                      std::string("mcf")}) {
        std::printf("\n# (%s) w(ADVERSARY, %s)\n",
                    victim == "astar" ? "a" : "b", victim.c_str());
        std::printf("%-10s %8s %8s %8s\n", "ADVERSARY", "TP", "FS",
                    "BDC");
        std::vector<double> tp_all, fs_all, bdc_all;

        // Baseline/TP/FS are plain runConfig jobs; the BDC column
        // chains a (serial, live-system) online GA into its measured
        // run, so each adversary's whole chain is one parallel job.
        const auto names = trace::workloadNames();
        std::vector<bench::SimJob> jobs;
        for (const std::string &adv : names) {
            const auto mix = sim::adversaryMix(adv, victim);
            sim::SystemConfig base = sim::paperConfig();
            jobs.push_back({base, mix, kMeasureCycles, kWarmup});
            sim::SystemConfig tp = sim::paperConfig();
            tp.mitigation = sim::Mitigation::TP;
            jobs.push_back({tp, mix, kMeasureCycles, kWarmup});
            sim::SystemConfig fs = sim::paperConfig();
            fs.mitigation = sim::Mitigation::FS;
            jobs.push_back({fs, mix, kMeasureCycles, kWarmup});
        }
        const auto static_m = bench::sweep(jobs);
        const auto bdc_m = sim::parallelMap(
            names.size(), 0, [&](std::size_t i) {
                const auto mix = sim::adversaryMix(names[i], victim);
                sim::SystemConfig bdc = sim::paperConfig();
                bdc.mitigation = sim::Mitigation::BDC;
                const auto tuned = sim::runOnlineGa(bdc, mix, ga_cfg);
                bdc.reqBinsPerCore = tuned.reqBinsPerCore;
                bdc.respBinsPerCore = tuned.respBinsPerCore;
                return sim::runConfig(bdc, mix, kMeasureCycles,
                                      kWarmup);
            });

        for (std::size_t i = 0; i < names.size(); ++i) {
            const auto &base_m = static_m[3 * i];
            const double tp_s = avgSlowdown(base_m, static_m[3 * i + 1]);
            const double fs_s = avgSlowdown(base_m, static_m[3 * i + 2]);
            const double bdc_s = avgSlowdown(base_m, bdc_m[i]);
            tp_all.push_back(tp_s);
            fs_all.push_back(fs_s);
            bdc_all.push_back(bdc_s);
            std::printf("%-10s %8.3f %8.3f %8.3f\n", names[i].c_str(),
                        tp_s, fs_s, bdc_s);
        }
        std::printf("%-10s %8.3f %8.3f %8.3f\n", "GEOMEAN",
                    geomean(tp_all), geomean(fs_all), geomean(bdc_all));
        std::printf("# paper: BDC beats TP by ~1.5x and FS by ~1.32x "
                    "on average\n");
    }
    return 0;
}
