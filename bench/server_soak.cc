/**
 * @file
 * Chaos soak for the camosimd experiment service: the proof that the
 * daemon is crash-isolated and self-healing under a hostile workload.
 *
 * Forks a real camosimd, then drives it from several client threads
 * with a deterministic chaos mix: duplicate jobs from a small spec
 * pool (cache + single-flight), jobs that SIGSEGV in the worker
 * (terminal and retried), worker-kill/worker-stall injections,
 * in-simulation faults (corrupt-credits + checkers, wedge +
 * watchdog), wall-clock deadline jobs, cancels, and a side thread
 * spraying malformed protocol frames. Mid-run the limits are
 * reloaded over the socket and via SIGHUP.
 *
 * Asserted invariants (the run fails loudly when any breaks):
 *  - the daemon never dies: every request keeps being answered, and
 *    SIGTERM at the end drains and exits 0;
 *  - every accepted job lands in exactly one terminal state, and the
 *    server-side terminal counters sum to the accepted count;
 *  - every job's terminal state is the one its chaos kind predicts;
 *  - results are byte-identical to one-shot `camosim --stats-json`
 *    runs, including a job that succeeded only on attempt 3 (checked
 *    against camosim at the re-derived retry seed);
 *  - admission control sheds explicitly when the queue is full.
 *
 * Emits BENCH_server.json (schema_version + build provenance, like
 * BENCH_ticks.json) with jobs/sec and p99 latency for benchdiff.
 *
 *   bench_server_soak [--short] [--jobs=N] [--cycles=N]
 *       [--threads=N] [--workers=N] [--out=FILE] [--inject]
 *       [--no-inject]
 *
 * --short is the CI/ASan mode (hundreds of jobs, not thousands);
 * --no-inject turns the fault mix off for pure-throughput runs.
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/logging.h"
#include "src/obs/benchdiff.h"
#include "src/obs/json.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/sim/parallel.h"

#ifndef CAMO_CAMOSIMD_PATH
#define CAMO_CAMOSIMD_PATH "camosimd"
#endif
#ifndef CAMO_CAMOSIM_PATH
#define CAMO_CAMOSIM_PATH "camosim"
#endif

using namespace camo;

namespace {

struct Options
{
    std::uint64_t jobs = 5000;
    std::uint64_t cycles = 120000;
    std::uint64_t warmup = 5000;
    unsigned threads = 8;
    unsigned workers = 4;
    bool inject = true;
    std::string out = "BENCH_server.json";
};

/** The deterministic chaos mix, selected per job index. */
enum class Mix
{
    Plain,       ///< duplicate specs: cache + single-flight traffic
    RetryCrash,  ///< SIGSEGVs once, succeeds on the retried attempt
    TermCrash,   ///< SIGSEGVs every attempt: terminal `crashed`
    WorkerKill,  ///< injected transient fault, retried to success
    WorkerStall, ///< injected stall inside the deadline: succeeds
    DeadlineJob, ///< unbounded sim + tiny deadline: `deadline`
    Invariant,   ///< corrupt-credits + checkers: failed, code 4
    WatchdogJob, ///< wedged shaper + watchdog: failed, code 5
    CancelJob,   ///< canceled right after submit
};

Mix
mixFor(std::uint64_t i, bool inject)
{
    if (!inject)
        return Mix::Plain;
    if (i % 211 == 17)
        return Mix::TermCrash;
    if (i % 239 == 5)
        return Mix::CancelJob;
    if (i % 191 == 3)
        return Mix::WatchdogJob;
    if (i % 173 == 11)
        return Mix::Invariant;
    if (i % 149 == 7)
        return Mix::DeadlineJob;
    if (i % 163 == 19)
        return Mix::WorkerStall;
    if (i % 101 == 29)
        return Mix::WorkerKill;
    if (i % 97 == 13)
        return Mix::RetryCrash;
    return Mix::Plain;
}

const char *
mixName(Mix m)
{
    switch (m) {
      case Mix::Plain: return "plain";
      case Mix::RetryCrash: return "retry-crash";
      case Mix::TermCrash: return "term-crash";
      case Mix::WorkerKill: return "worker-kill";
      case Mix::WorkerStall: return "worker-stall";
      case Mix::DeadlineJob: return "deadline";
      case Mix::Invariant: return "invariant";
      case Mix::WatchdogJob: return "watchdog";
      case Mix::CancelJob: return "cancel";
    }
    return "?";
}

/** The duplicate-heavy spec pool: 8 distinct topologies. */
obs::json::Value
plainConfig(std::uint64_t variant)
{
    static const char *const kPairs[2][2] = {{"mcf", "astar"},
                                             {"libqt", "bzip"}};
    static const char *const kMits[4] = {"none", "bdc", "cs", "tp"};
    obs::json::Value cfg = obs::json::Value::makeObject();
    obs::json::Value w = obs::json::Value::makeArray();
    w.push(obs::json::Value(kPairs[variant % 2][0]));
    w.push(obs::json::Value(kPairs[variant % 2][1]));
    cfg["workloads"] = std::move(w);
    cfg["mitigation"] = obs::json::Value(kMits[(variant / 2) % 4]);
    cfg["seed"] = obs::json::Value(std::uint64_t{7} + variant);
    return cfg;
}

/** A shaping topology for the in-sim fault jobs (the injected
 *  faults need a shaper to corrupt or wedge). */
obs::json::Value
shapedConfig()
{
    obs::json::Value cfg = obs::json::Value::makeObject();
    obs::json::Value w = obs::json::Value::makeArray();
    w.push(obs::json::Value("mcf"));
    w.push(obs::json::Value("astar"));
    cfg["workloads"] = std::move(w);
    cfg["mitigation"] = obs::json::Value("bdc");
    return cfg;
}

struct JobPlan
{
    server::JobSpec spec;
    Mix mix = Mix::Plain;
    bool cancelAfterSubmit = false;
};

JobPlan
makePlan(std::uint64_t i, const Options &opt)
{
    JobPlan p;
    p.mix = mixFor(i, opt.inject);
    p.spec.cycles = opt.cycles;
    p.spec.warmup = opt.warmup;
    // Chaos jobs get unique seeds so each one exercises its fault
    // path instead of collapsing into the result cache.
    const std::uint64_t unique = 1000000 + i;
    switch (p.mix) {
      case Mix::Plain:
        p.spec.config = plainConfig(i % 8);
        break;
      case Mix::RetryCrash:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.crashAttempts = 1;
        break;
      case Mix::TermCrash:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.crashAttempts = 99;
        break;
      case Mix::WorkerKill:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.inject = "worker-kill:param=1";
        break;
      case Mix::WorkerStall:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.inject = "worker-stall:param=100";
        break;
      case Mix::DeadlineJob:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.cycles = 2000000000ULL;
        p.spec.timeoutMs = 250;
        break;
      case Mix::Invariant:
        p.spec.config = shapedConfig();
        p.spec.seed = unique;
        p.spec.inject = "corrupt-credits:at=1000";
        p.spec.checkers = true;
        break;
      case Mix::WatchdogJob:
        p.spec.config = shapedConfig();
        p.spec.seed = unique;
        p.spec.inject = "wedge-req:at=1000";
        p.spec.watchdog = 15000;
        break;
      case Mix::CancelJob:
        p.spec.config = plainConfig(i % 8);
        p.spec.seed = unique;
        p.spec.cycles = 2000000000ULL;
        p.spec.timeoutMs = 30000;
        p.cancelAfterSubmit = true;
        break;
    }
    return p;
}

/** Expected terminal states per mix (a cancel can lose the race to
 *  its own deadline; both are correct accounting). */
bool
stateExpected(Mix m, const std::string &state)
{
    switch (m) {
      case Mix::Plain:
      case Mix::RetryCrash:
      case Mix::WorkerKill:
      case Mix::WorkerStall:
        return state == "succeeded" || state == "cached";
      case Mix::TermCrash:
        return state == "crashed";
      case Mix::DeadlineJob:
        return state == "deadline";
      case Mix::Invariant:
      case Mix::WatchdogJob:
        return state == "failed";
      case Mix::CancelJob:
        return state == "canceled" || state == "deadline";
    }
    return false;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
pathOf(const char *env, const char *fallback)
{
    const char *v = std::getenv(env);
    return v && *v ? v : fallback;
}

/** fork/exec with stdout+stderr redirected to `log_path`. */
pid_t
spawn(const std::vector<std::string> &argv,
      const std::string &log_path)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const int fd = ::open(log_path.c_str(),
                          O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "exec %s: %s\n", cargv[0],
                 std::strerror(errno));
    ::_exit(127);
}

int
waitExit(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

std::string
readFileOr(const std::string &path, const std::string &fallback)
{
    std::ifstream is(path);
    if (!is)
        return fallback;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** One-shot camosim run; returns the --stats-json document text. */
std::string
oneShotCamosim(const std::string &camosim, const std::string &dir,
               const obs::json::Value &config, std::uint64_t cycles,
               std::uint64_t warmup, std::uint64_t seed,
               const std::string &tag)
{
    const std::string cfg_path = dir + "/oneshot-" + tag + ".json";
    const std::string out_path = dir + "/oneshot-" + tag + ".out";
    {
        std::ofstream os(cfg_path);
        os << config.dump(2) << "\n";
    }
    const int code = waitExit(spawn(
        {camosim, "--config=" + cfg_path,
         "--cycles=" + std::to_string(cycles),
         "--warmup=" + std::to_string(warmup),
         "--seed=" + std::to_string(seed),
         "--stats-json=" + out_path},
        dir + "/oneshot-" + tag + ".log"));
    camo_assert(code == 0, "one-shot camosim (", tag,
                ") exited with ", code);
    return readFileOr(out_path, "");
}

// ---------------------------------------------------------------
// Shared soak state.

struct Tally
{
    std::mutex m;
    std::map<std::string, std::uint64_t> states;
    std::uint64_t accepted = 0;
    std::uint64_t shedResponses = 0;
    std::uint64_t lost = 0; ///< never accepted even after retries
    std::vector<std::string> failures;
    std::string plainResult;      ///< variant-0 result text
    std::string watchdogDumpPath; ///< any watchdog job's dump file

    void fail(const std::string &what)
    {
        std::lock_guard<std::mutex> lk(m);
        if (failures.size() < 20)
            failures.push_back(what);
        else if (failures.size() == 20)
            failures.push_back("... more failures suppressed");
    }
};

/** Submit with bounded retry on shed (admission control pushes
 *  back; a well-behaved client backs off and resubmits). */
std::optional<std::uint64_t>
submitRetrying(server::Client &client, const server::JobSpec &spec,
               Tally &tally)
{
    for (int tries = 0; tries < 2000; ++tries) {
        std::string err;
        const auto id = client.submit(spec, &err);
        if (id)
            return id;
        if (err.find("shed") == std::string::npos &&
            err.find("queue full") == std::string::npos) {
            tally.fail("submit rejected: " + err);
            return std::nullopt;
        }
        {
            std::lock_guard<std::mutex> lk(tally.m);
            ++tally.shedResponses;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return std::nullopt;
}

void
settle(server::Client &client, std::uint64_t id,
       const JobPlan &plan, std::uint64_t index, Tally &tally)
{
    const auto resp = client.waitResult(id, 120000);
    if (!resp) {
        tally.fail("job " + std::to_string(index) +
                   ": connection lost waiting for result");
        return;
    }
    const obs::json::Value *done = resp->find("done");
    const obs::json::Value *state = resp->find("state");
    if (!done || !done->isBool() || !done->asBool() || !state ||
        !state->isString()) {
        tally.fail("job " + std::to_string(index) +
                   " not terminal after wait: " + resp->dump(0));
        return;
    }
    const std::string &s = state->asString();
    std::lock_guard<std::mutex> lk(tally.m);
    ++tally.states[s];
    if (!stateExpected(plan.mix, s)) {
        if (tally.failures.size() < 20) {
            tally.failures.push_back(
                "job " + std::to_string(index) + " (" +
                mixName(plan.mix) + "): unexpected state '" + s +
                "': " + resp->dump(0));
        }
        return;
    }
    if (plan.mix == Mix::Plain && tally.plainResult.empty() &&
        plan.spec.config.find("seed") &&
        static_cast<std::uint64_t>(
            plan.spec.config.find("seed")->asNumber()) == 7) {
        if (const obs::json::Value *r = resp->find("result"))
            tally.plainResult = r->asString();
    }
    if (plan.mix == Mix::WatchdogJob &&
        tally.watchdogDumpPath.empty()) {
        if (const obs::json::Value *d = resp->find("dump_path"))
            tally.watchdogDumpPath = d->asString();
        else if (tally.failures.size() < 20)
            tally.failures.push_back(
                "job " + std::to_string(index) +
                " (watchdog): no dump_path in " + resp->dump(0));
    }
}

void
clientThread(const std::string &socket, unsigned tid,
             const Options &opt, Tally &tally)
{
    server::Client client;
    std::string err;
    if (!client.connect(socket, &err)) {
        tally.fail("thread " + std::to_string(tid) + ": " + err);
        return;
    }
    struct Outstanding
    {
        std::uint64_t id;
        std::uint64_t index;
        JobPlan plan;
    };
    std::deque<Outstanding> window;
    for (std::uint64_t i = tid; i < opt.jobs; i += opt.threads) {
        JobPlan plan = makePlan(i, opt);
        const auto id = submitRetrying(client, plan.spec, tally);
        if (!id) {
            std::lock_guard<std::mutex> lk(tally.m);
            ++tally.lost;
            continue;
        }
        {
            std::lock_guard<std::mutex> lk(tally.m);
            ++tally.accepted;
        }
        if (plan.cancelAfterSubmit)
            client.cancel(*id);
        window.push_back({*id, i, std::move(plan)});
        if (window.size() >= 16) {
            settle(client, window.front().id, window.front().plan,
                   window.front().index, tally);
            window.pop_front();
        }
    }
    while (!window.empty()) {
        settle(client, window.front().id, window.front().plan,
               window.front().index, tally);
        window.pop_front();
    }
}

/** Spray malformed frames at the daemon until told to stop; the
 *  daemon must answer errors or drop the connection, never die. */
void
abuseThread(const std::string &socket, std::atomic<bool> &stop,
            std::atomic<std::uint64_t> &count)
{
    for (int pattern = 0; !stop.load(std::memory_order_relaxed);
         ++pattern) {
        server::Client c;
        std::string err;
        if (!c.connect(socket, &err)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            continue;
        }
        const int fd = c.rawFd();
        switch (pattern % 4) {
          case 0: { // oversize header
            const unsigned char h[4] = {0xff, 0xff, 0xff, 0x7f};
            (void)::send(fd, h, sizeof h, MSG_NOSIGNAL);
            break;
          }
          case 1: { // length-correct frame, payload not JSON
            std::string frame;
            server::encodeFrame("}{ not json", &frame);
            (void)::send(fd, frame.data(), frame.size(),
                         MSG_NOSIGNAL);
            break;
          }
          case 2: { // truncated frame, then hang up mid-body
            const unsigned char h[4] = {100, 0, 0, 0};
            (void)::send(fd, h, sizeof h, MSG_NOSIGNAL);
            (void)::send(fd, "abc", 3, MSG_NOSIGNAL);
            break;
          }
          case 3: { // valid JSON, but not a request object
            std::string frame;
            server::encodeFrame("42", &frame);
            (void)::send(fd, frame.data(), frame.size(),
                         MSG_NOSIGNAL);
            break;
          }
        }
        c.close();
        count.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

const obs::json::Value *
statsField(const obs::json::Value &resp, const char *name)
{
    const obs::json::Value *stats = resp.find("stats");
    return stats ? stats->find(name) : nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGPIPE, SIG_IGN);
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (name == "--short") {
            opt.jobs = 400;
            opt.cycles = 40000;
            opt.warmup = 2000;
        } else if (name == "--jobs") {
            opt.jobs = std::strtoull(value.c_str(), nullptr, 10);
        } else if (name == "--cycles") {
            opt.cycles = std::strtoull(value.c_str(), nullptr, 10);
        } else if (name == "--threads") {
            opt.threads = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        } else if (name == "--workers") {
            opt.workers = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        } else if (name == "--inject") {
            opt.inject = true;
        } else if (name == "--no-inject") {
            opt.inject = false;
        } else if (name == "--out") {
            opt.out = value;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    if (opt.threads == 0)
        opt.threads = 1;

    const std::string camosimd =
        pathOf("CAMO_CAMOSIMD", CAMO_CAMOSIMD_PATH);
    const std::string camosim =
        pathOf("CAMO_CAMOSIM", CAMO_CAMOSIM_PATH);

    char tmpl[] = "/tmp/camosoak.XXXXXX";
    camo_assert(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    const std::string dir = tmpl;
    const std::string socket = dir + "/camosimd.sock";
    const std::string daemon_log = dir + "/daemon.log";

    const pid_t daemon = spawn(
        {camosimd, "--socket=" + socket,
         "--workers=" + std::to_string(opt.workers), "--queue=64",
         "--timeout-ms=60000", "--retries=3", "--cache=64",
         "--diag-dir=" + dir},
        daemon_log);
    camo_assert(daemon > 0, "fork failed");

    // Wait for the socket to come up.
    {
        server::Client probe;
        std::string err;
        bool up = false;
        for (int i = 0; i < 200 && !up; ++i) {
            up = probe.connect(socket, &err);
            if (!up)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(25));
        }
        if (!up) {
            std::fprintf(stderr, "daemon never came up: %s\n%s\n",
                         err.c_str(),
                         readFileOr(daemon_log, "(no log)").c_str());
            ::kill(daemon, SIGKILL);
            return 1;
        }
    }

    std::printf("soak: %llu jobs, %u client threads, %u workers, "
                "inject=%s\n",
                static_cast<unsigned long long>(opt.jobs),
                opt.threads, opt.workers,
                opt.inject ? "on" : "off");

    Tally tally;
    std::atomic<bool> stopAbuse{false};
    std::atomic<std::uint64_t> abuseFrames{0};
    const auto t0 = std::chrono::steady_clock::now();

    std::thread abuser(abuseThread, socket, std::ref(stopAbuse),
                       std::ref(abuseFrames));
    // Mid-run chaos: reload the limits over the socket and via
    // SIGHUP while jobs are in flight.
    std::thread reloader([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        server::Client c;
        std::string err;
        if (c.connect(socket, &err)) {
            obs::json::Value req = obs::json::Value::makeObject();
            req["op"] = "reload";
            obs::json::Value limits = obs::json::Value::makeObject();
            limits["cache_entries"] = std::uint64_t{48};
            req["limits"] = limits;
            (void)c.request(req);
        }
        ::kill(daemon, SIGHUP);
    });

    std::vector<std::thread> clients;
    for (unsigned t = 0; t < opt.threads; ++t) {
        clients.emplace_back(clientThread, socket, t, std::cref(opt),
                             std::ref(tally));
    }
    for (auto &t : clients)
        t.join();
    const double soak_sec = secondsSince(t0);
    stopAbuse.store(true, std::memory_order_relaxed);
    abuser.join();
    reloader.join();

    // ----- post-run checks against the still-running daemon -----
    server::Client client;
    std::string err;
    camo_assert(client.connect(socket, &err),
                "daemon unreachable after soak: ", err);

    // Deterministic shed: queue capacity 0 must reject a novel spec
    // explicitly, and restoring the limit must accept it again.
    bool shedExercised = false;
    {
        auto reload = [&](std::uint64_t queue) {
            obs::json::Value req = obs::json::Value::makeObject();
            req["op"] = "reload";
            obs::json::Value limits = obs::json::Value::makeObject();
            limits["max_queue"] = queue;
            req["limits"] = limits;
            const auto resp = client.request(req);
            camo_assert(resp && resp->find("ok") &&
                            resp->find("ok")->asBool(),
                        "reload failed");
        };
        reload(0);
        server::JobSpec novel;
        novel.config = plainConfig(0);
        novel.cycles = opt.cycles;
        novel.warmup = opt.warmup;
        novel.seed = 31337001;
        std::string serr;
        const auto rejected = client.submit(novel, &serr);
        shedExercised = !rejected &&
                        serr.find("shed") != std::string::npos;
        if (!shedExercised)
            tally.fail("max_queue=0 did not shed: " + serr);
        reload(64);
        const auto accepted = client.submit(novel, &serr);
        if (!accepted) {
            tally.fail("post-reload submit rejected: " + serr);
        } else {
            const auto resp = client.waitResult(*accepted, 120000);
            if (!resp || !resp->find("state") ||
                resp->find("state")->asString() != "succeeded")
                tally.fail("post-reload job did not succeed");
            else {
                std::lock_guard<std::mutex> lk(tally.m);
                ++tally.accepted;
                ++tally.states["succeeded"];
            }
        }
    }

    // Byte-identity #1: a cached plain result equals a one-shot
    // camosim run of the same spec.
    bool byteIdentical = true;
    {
        if (tally.plainResult.empty()) {
            // No variant-0 job sampled its result (tiny --jobs runs);
            // fetch one explicitly.
            server::JobSpec spec;
            spec.config = plainConfig(0);
            spec.cycles = opt.cycles;
            spec.warmup = opt.warmup;
            std::string serr;
            const auto id = client.submit(spec, &serr);
            if (id) {
                const auto resp = client.waitResult(*id, 120000);
                if (resp && resp->find("result"))
                    tally.plainResult =
                        resp->find("result")->asString();
                std::lock_guard<std::mutex> lk(tally.m);
                ++tally.accepted;
                if (resp && resp->find("state"))
                    ++tally.states[resp->find("state")->asString()];
            }
        }
        const std::string oneshot = oneShotCamosim(
            camosim, dir, plainConfig(0), opt.cycles, opt.warmup, 7,
            "plain");
        if (tally.plainResult.empty() ||
            tally.plainResult != oneshot) {
            byteIdentical = false;
            tally.fail("plain result != one-shot camosim output (" +
                       std::to_string(tally.plainResult.size()) +
                       " vs " + std::to_string(oneshot.size()) +
                       " bytes)");
        }
    }

    // Byte-identity #2: a job that crashed twice and succeeded on
    // attempt 3 equals a one-shot run at the re-derived retry seed.
    {
        server::JobSpec spec;
        spec.config = plainConfig(1);
        spec.cycles = opt.cycles;
        spec.warmup = opt.warmup;
        spec.seed = 424242;
        spec.crashAttempts = 2;
        std::string serr;
        const auto id = client.submit(spec, &serr);
        if (!id) {
            tally.fail("retry-identity submit rejected: " + serr);
            byteIdentical = false;
        } else {
            const auto resp = client.waitResult(*id, 120000);
            std::string daemonResult;
            if (resp && resp->find("result"))
                daemonResult = resp->find("result")->asString();
            {
                std::lock_guard<std::mutex> lk(tally.m);
                ++tally.accepted;
                if (resp && resp->find("state"))
                    ++tally.states[resp->find("state")->asString()];
            }
            const std::uint64_t derived = sim::deriveSeed(
                424242, sim::kRetrySeedStream, 2);
            const std::string oneshot = oneShotCamosim(
                camosim, dir, plainConfig(1), opt.cycles, opt.warmup,
                derived, "retry");
            if (daemonResult.empty() || daemonResult != oneshot) {
                byteIdentical = false;
                tally.fail(
                    "retried result != one-shot at re-derived seed");
            }
            if (resp && resp->find("attempts") &&
                resp->find("attempts")->asNumber() != 3.0)
                tally.fail("retry-identity job did not take 3 "
                           "attempts");
        }
    }

    // Watchdog dump file from satellite 2: the structured error must
    // name a real per-instance dump file.
    if (opt.inject) {
        if (tally.watchdogDumpPath.empty()) {
            tally.fail("no watchdog job reported a dump_path");
        } else {
            struct stat st;
            if (::stat(tally.watchdogDumpPath.c_str(), &st) != 0)
                tally.fail("dump_path does not exist: " +
                           tally.watchdogDumpPath);
        }
    }

    // ----- final accounting: exactly one terminal state per job ----
    std::uint64_t submitted = 0, terminalSum = 0, reloads = 0;
    std::uint64_t retries = 0, cacheHits = 0, joined = 0, shed = 0;
    double p99 = 0.0, meanLat = 0.0;
    {
        const auto resp = client.stats();
        camo_assert(resp, "stats request failed after soak");
        if (const auto *v = statsField(*resp, "submitted"))
            submitted = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "reloads"))
            reloads = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "retries"))
            retries = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "cache_hits"))
            cacheHits = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "joined"))
            joined = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "shed"))
            shed = static_cast<std::uint64_t>(v->asNumber());
        if (const auto *v = statsField(*resp, "terminal")) {
            for (const auto &[name, n] : v->asObject())
                terminalSum +=
                    static_cast<std::uint64_t>(n.asNumber());
        }
        if (const auto *v = statsField(*resp, "latency_ms")) {
            if (const auto *p = v->find("p99"))
                p99 = p->asNumber();
            if (const auto *p = v->find("mean"))
                meanLat = p->asNumber();
        }
        if (const auto *v = statsField(*resp, "queue_depth");
            v && v->asNumber() != 0.0)
            tally.fail("queue not empty after soak");
        if (const auto *v = statsField(*resp, "running");
            v && v->asNumber() != 0.0)
            tally.fail("jobs still running after soak");
    }
    std::uint64_t clientTerminal = 0;
    for (const auto &[name, n] : tally.states)
        clientTerminal += n;
    if (submitted != terminalSum) {
        tally.fail("accounting broken: submitted=" +
                   std::to_string(submitted) + " but terminal sum=" +
                   std::to_string(terminalSum));
    }
    if (tally.accepted != submitted) {
        tally.fail("client accepted " +
                   std::to_string(tally.accepted) +
                   " jobs but server counted " +
                   std::to_string(submitted));
    }
    if (clientTerminal != tally.accepted) {
        tally.fail("client saw " + std::to_string(clientTerminal) +
                   " terminal results for " +
                   std::to_string(tally.accepted) +
                   " accepted jobs");
    }
    if (tally.lost != 0)
        tally.fail(std::to_string(tally.lost) +
                   " jobs never accepted");
    if (reloads < 2)
        tally.fail("expected >=2 reloads (socket op + SIGHUP), saw " +
                   std::to_string(reloads));

    // ----- graceful drain: SIGTERM must exit 0 -------------------
    client.close();
    ::kill(daemon, SIGTERM);
    const int daemonExit = waitExit(daemon);
    const bool cleanExit = daemonExit == 0;
    if (!cleanExit)
        tally.fail("daemon exit code " + std::to_string(daemonExit) +
                   " after SIGTERM (want 0)");

    const double accountedRatio =
        submitted == 0
            ? 0.0
            : static_cast<double>(terminalSum) /
                  static_cast<double>(submitted);

    std::printf("soak: %llu accepted in %.2fs (%.0f jobs/s), "
                "p99 %.1f ms\n",
                static_cast<unsigned long long>(tally.accepted),
                soak_sec,
                static_cast<double>(tally.accepted) / soak_sec, p99);
    std::printf("soak: states:");
    for (const auto &[name, n] : tally.states)
        std::printf(" %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(n));
    std::printf("\nsoak: retries=%llu cache_hits=%llu joined=%llu "
                "shed=%llu abuse_frames=%llu reloads=%llu\n",
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(cacheHits),
                static_cast<unsigned long long>(joined),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(abuseFrames.load()),
                static_cast<unsigned long long>(reloads));

    // ----- BENCH_server.json -------------------------------------
    obs::json::Value root = obs::json::Value::makeObject();
    root["schema_version"] =
        obs::json::Value(obs::kBenchSchemaVersion);
    root["bench"] = obs::json::Value("server_soak");
    root["build"] = obs::buildInfoJson();
    obs::json::Value server = obs::json::Value::makeObject();
    server["jobs"] = tally.accepted;
    server["client_threads"] =
        static_cast<std::uint64_t>(opt.threads);
    server["workers"] = static_cast<std::uint64_t>(opt.workers);
    server["cycles_per_job"] = opt.cycles;
    server["inject"] = opt.inject;
    server["wall_clock_sec"] = soak_sec;
    server["jobs_per_sec"] =
        static_cast<double>(tally.accepted) / soak_sec;
    server["p99_latency_ms"] = p99;
    server["mean_latency_ms"] = meanLat;
    server["accounted_ratio"] = accountedRatio;
    server["byte_identical"] = byteIdentical ? 1.0 : 0.0;
    server["clean_exit"] = cleanExit ? 1.0 : 0.0;
    server["retries"] = retries;
    server["cache_hits"] = cacheHits;
    server["joined"] = joined;
    server["shed"] = shed;
    server["abuse_frames"] = abuseFrames.load();
    obs::json::Value states = obs::json::Value::makeObject();
    for (const auto &[name, n] : tally.states)
        states[name] = n;
    server["terminal"] = std::move(states);
    root["server"] = std::move(server);
    {
        std::ofstream os(opt.out);
        if (!os)
            camo_fatal("cannot open ", opt.out);
        os << root.dump(2) << "\n";
        std::printf("wrote %s\n", opt.out.c_str());
    }

    if (!tally.failures.empty()) {
        std::fprintf(stderr, "soak FAILED (%zu problems):\n",
                     tally.failures.size());
        for (const std::string &f : tally.failures)
            std::fprintf(stderr, "  - %s\n", f.c_str());
        std::fprintf(stderr, "daemon log:\n%s\n",
                     readFileOr(daemon_log, "(no log)").c_str());
        return 1;
    }
    std::printf("soak OK: daemon exit 0, %llu jobs all accounted, "
                "results byte-identical\n",
                static_cast<unsigned long long>(tally.accepted));
    return 0;
}
